// Fuzz target: CSV dataset import (data/csv.h).
//
// Arbitrary text against a fixed schema must either parse or fail with a
// Status — never crash, and never admit an out-of-domain record. Accepted
// datasets must survive a DatasetToCsv/DatasetFromCsv round trip intact.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace {

const pso::Schema& FuzzSchema() {
  static const pso::Schema* schema = new pso::Schema({
      pso::Attribute::Categorical("sex", {"f", "m"}),
      pso::Attribute::Integer("age", 0, 120),
      pso::Attribute::Categorical("zip", {"02138", "02139", "02140"}),
  });
  return *schema;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const pso::Schema& schema = FuzzSchema();
  std::string csv(reinterpret_cast<const char*>(data), size);
  pso::Result<pso::Dataset> parsed = pso::DatasetFromCsv(schema, csv);
  if (!parsed.ok()) return 0;

  // Every accepted record must be in-domain.
  for (const pso::Record& r : parsed->records()) {
    if (!schema.IsValidRecord(r)) std::abort();
  }

  // Export/import must be the identity on accepted datasets.
  pso::Result<pso::Dataset> again =
      pso::DatasetFromCsv(schema, pso::DatasetToCsv(*parsed));
  if (!again.ok() || again->records() != parsed->records()) std::abort();
  return 0;
}
