// Standalone driver for the fuzz harnesses, used when the toolchain has
// no libFuzzer (-fsanitize=fuzzer is clang-only; the default CI compiler
// is gcc). Links against the same LLVMFuzzerTestOneInput entry point and
// speaks a small subset of libFuzzer's command line:
//
//   harness [options] [corpus file or directory]...
//     -max_total_time=S   after replaying the corpus, run a deterministic
//                         mutation loop for ~S seconds
//     -runs=N             or for exactly N mutated inputs
//     -seed=N             master seed for the mutation loop (default 1)
//     -artifact_prefix=P  where the currently-executing input is staged
//
// Replaying the corpus is the default mode (exactly what the CI smoke job
// needs); mutation mode stages each input at <artifact_prefix>crash-last
// before executing it, so when a sanitizer kills the process the
// reproducer is already on disk. The staging file is removed on a clean
// exit.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void RunOne(const std::vector<uint8_t>& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

// One libFuzzer-ish mutation: erase, insert, flip, or splice.
std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus,
                            pso::Rng& rng) {
  std::vector<uint8_t> out;
  if (!corpus.empty()) {
    out = corpus[rng.UniformUint64(corpus.size())];
  }
  size_t edits = 1 + rng.UniformUint64(8);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng.UniformUint64(5)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.UniformUint64(out.size())] ^=
              static_cast<uint8_t>(1u << rng.UniformUint64(8));
        }
        break;
      case 1:  // insert a random byte
        if (out.size() < (1u << 16)) {
          out.insert(out.begin() + rng.UniformUint64(out.size() + 1),
                     static_cast<uint8_t>(rng.UniformUint64(256)));
        }
        break;
      case 2:  // erase a range
        if (!out.empty()) {
          size_t at = rng.UniformUint64(out.size());
          size_t len = 1 + rng.UniformUint64(out.size() - at);
          out.erase(out.begin() + at, out.begin() + at + len);
        }
        break;
      case 3:  // overwrite with a random byte
        if (!out.empty()) {
          out[rng.UniformUint64(out.size())] =
              static_cast<uint8_t>(rng.UniformUint64(256));
        }
        break;
      default:  // splice a chunk of another corpus entry
        if (!corpus.empty()) {
          const std::vector<uint8_t>& other =
              corpus[rng.UniformUint64(corpus.size())];
          if (!other.empty() && out.size() < (1u << 16)) {
            size_t at = rng.UniformUint64(other.size());
            size_t len = 1 + rng.UniformUint64(other.size() - at);
            out.insert(out.begin() + rng.UniformUint64(out.size() + 1),
                       other.begin() + at, other.begin() + at + len);
          }
        }
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double max_total_time = 0.0;
  uint64_t runs = 0;
  uint64_t seed = 1;
  std::string artifact_prefix = "./";
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("-max_total_time=")) {
      max_total_time = std::atof(v);
    } else if (const char* v = value_of("-runs=")) {
      runs = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("-seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("-artifact_prefix=")) {
      artifact_prefix = v;
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer flags so CI scripts can pass them freely.
    } else {
      inputs.push_back(arg);
    }
  }

  // Gather and replay the corpus.
  std::vector<std::vector<uint8_t>> corpus;
  for (const fs::path& p : inputs) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& f : files) corpus.push_back(ReadFile(f));
    } else if (fs::is_regular_file(p, ec)) {
      corpus.push_back(ReadFile(p));
    } else {
      std::fprintf(stderr, "warning: skipping missing input %s\n",
                   p.string().c_str());
    }
  }
  for (const std::vector<uint8_t>& input : corpus) RunOne(input);
  std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

  // Deterministic mutation loop.
  if (max_total_time > 0.0 || runs > 0) {
    const std::string artifact = artifact_prefix + "crash-last";
    pso::Rng rng(seed);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(max_total_time));
    uint64_t executed = 0;
    while (true) {
      if (runs > 0 && executed >= runs) break;
      if (runs == 0 && std::chrono::steady_clock::now() >= deadline) break;
      std::vector<uint8_t> input = Mutate(corpus, rng);
      {
        // Stage the input first: if the harness dies, this file is the
        // reproducer CI uploads.
        std::ofstream out(artifact, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(input.data()),
                  static_cast<std::streamsize>(input.size()));
      }
      RunOne(input);
      ++executed;
    }
    std::fprintf(stderr, "executed %llu mutated inputs (seed=%llu)\n",
                 static_cast<unsigned long long>(executed),
                 static_cast<unsigned long long>(seed));
    std::error_code ec;
    fs::remove(artifact, ec);
  }
  return 0;
}
