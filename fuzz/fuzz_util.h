// Structure-aware consumption of raw fuzzer bytes.
//
// ByteReader slices an input buffer into integers, doubles, and strings
// so harnesses can derive structured instances (predicate trees, CSP
// constraints) from flat data. All reads are total: past the end of the
// buffer every method returns zeros/empties, so a harness never branches
// on uninitialized memory and shorter inputs simply produce smaller
// instances — which is what lets libFuzzer's trimming work.

#ifndef PSO_FUZZ_FUZZ_UTIL_H_
#define PSO_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace pso::fuzz {

/// Consumes typed values from the front of a fuzzer input buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  /// Next byte, or 0 when exhausted.
  uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  /// Next little-endian u32 (zero-padded when exhausted).
  uint32_t U32() {
    uint8_t b[4] = {U8(), U8(), U8(), U8()};
    uint32_t v;
    std::memcpy(&v, b, 4);
    return v;
  }

  uint64_t U64() {
    uint64_t lo = U32();
    uint64_t hi = U32();
    return (hi << 32) | lo;
  }

  /// Integer in [0, bound); bound 0 returns 0.
  size_t Below(size_t bound) {
    return bound == 0 ? 0 : static_cast<size_t>(U32() % bound);
  }

  /// Integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Below(static_cast<size_t>(hi - lo) + 1));
  }

  bool Bool() { return (U8() & 1) != 0; }

  /// Double built from raw bits — may be NaN/Inf/denormal; harnesses that
  /// want those adversarial values use this.
  double RawDouble() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  /// Small "reasonable" double in about [-8, 8] with quarter steps.
  double SmallDouble() { return (Range(-32, 32)) / 4.0; }

  /// Up to `max_len` raw bytes as a string.
  std::string String(size_t max_len) {
    size_t n = max_len < remaining() ? max_len : remaining();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// The rest of the buffer as a string.
  std::string Rest() { return String(remaining()); }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace pso::fuzz

#endif  // PSO_FUZZ_FUZZ_UTIL_H_
