// Fuzz target: command-line parsing and validation (tools/flags.h).
//
// The input is split on newlines into an argv; parsing, validation, and
// every getter must be total. ValidateFlags must fail whenever the parser
// recorded an unparseable argument, and must never report an unknown flag
// as valid.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "tools/flags.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Rebuild an argv from newline-separated tokens (argv[0] is the
  // program name and is skipped by the parser).
  std::vector<std::string> tokens = {"fuzz_flags"};
  std::string current;
  for (size_t i = 0; i < size; ++i) {
    char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  if (tokens.size() > 64) tokens.resize(64);

  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) argv.push_back(t.data());

  pso::tools::Flags flags(static_cast<int>(argv.size()), argv.data());

  const std::vector<pso::tools::FlagSpec> specs = {
      {"trials", pso::tools::FlagSpec::Type::kInt},
      {"epsilon", pso::tools::FlagSpec::Type::kDouble},
      {"out", pso::tools::FlagSpec::Type::kString},
      {"verbose", pso::tools::FlagSpec::Type::kBool},
      {"threads", pso::tools::FlagSpec::Type::kInt},
  };
  std::vector<std::string> errors;
  bool ok = pso::tools::ValidateFlags(flags, specs, &errors);

  // Validation verdict and error list must agree.
  if (ok != errors.empty()) std::abort();
  // A malformed argument can never validate.
  if (ok && !flags.parse_errors().empty()) std::abort();
  // Known flags that validated must parse cleanly through the getters.
  if (ok && flags.Has("trials")) {
    (void)flags.GetInt("trials", 0);
  }
  (void)flags.GetDouble("epsilon", 0.0);
  (void)flags.GetBool("verbose", false);
  (void)flags.GetThreads();
  (void)flags.GetString("out", "");
  (void)flags.positional();
  return 0;
}
