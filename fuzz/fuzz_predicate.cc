// Fuzz target: predicate expression builder (predicate/predicate.h).
//
// Raw bytes drive the construction of a predicate tree over a fixed
// schema — including out-of-domain constants, empty conjunctions, and
// deep nesting. Building, describing, and evaluating must be total, and
// every analytic weight must be a probability consistent with negation.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/distribution.h"
#include "data/schema.h"
#include "fuzz_util.h"
#include "predicate/predicate.h"

namespace {

using pso::fuzz::ByteReader;

const pso::ProductDistribution& FuzzDistribution() {
  static const pso::ProductDistribution* dist = [] {
    pso::Schema schema({
        pso::Attribute::Categorical("color", {"r", "g", "b"}),
        pso::Attribute::Integer("count", -2, 5),
    });
    std::vector<pso::Marginal> marginals;
    marginals.emplace_back(0, std::vector<double>{0.5, 0.3, 0.2});
    marginals.emplace_back(-2, std::vector<double>{1, 1, 2, 2, 1, 1, 1, 1});
    return new pso::ProductDistribution(schema, std::move(marginals));
  }();
  return *dist;
}

// Builds a predicate tree from the byte stream; depth-bounded so the
// fuzzer cannot blow the stack.
pso::PredicateRef BuildTree(ByteReader& r, size_t depth) {
  const pso::Schema& schema = FuzzDistribution().schema();
  size_t num_attrs = schema.NumAttributes();
  uint8_t op = r.U8();
  if (depth == 0) op = static_cast<uint8_t>(op % 5);  // leaves only
  switch (op % 8) {
    case 0:
      return pso::MakeTrue();
    case 1:
      return pso::MakeFalse();
    case 2:
      // Deliberately unconstrained value: out-of-domain constants must be
      // handled (predicate just never matches).
      return pso::MakeAttributeEquals(r.Below(num_attrs),
                                      r.Range(-100, 100));
    case 3: {
      std::vector<int64_t> values;
      size_t n = r.Below(6);
      for (size_t i = 0; i < n; ++i) values.push_back(r.Range(-10, 10));
      return pso::MakeAttributeIn(r.Below(num_attrs), std::move(values));
    }
    case 4: {
      int64_t a = r.Range(-10, 10);
      int64_t b = r.Range(-10, 10);
      // Empty ranges (a > b) are legal inputs and must yield weight 0.
      return pso::MakeAttributeRange(r.Below(num_attrs), a, b);
    }
    case 5: {
      std::vector<pso::PredicateRef> terms;
      size_t n = r.Below(4);
      for (size_t i = 0; i < n; ++i) terms.push_back(BuildTree(r, depth - 1));
      return pso::MakeAnd(std::move(terms));
    }
    case 6: {
      std::vector<pso::PredicateRef> terms;
      size_t n = r.Below(4);
      for (size_t i = 0; i < n; ++i) terms.push_back(BuildTree(r, depth - 1));
      return pso::MakeOr(std::move(terms));
    }
    default:
      return pso::MakeNot(BuildTree(r, depth - 1));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  const pso::ProductDistribution& dist = FuzzDistribution();
  pso::PredicateRef pred = BuildTree(reader, /*depth=*/6);

  // Description and evaluation must be total.
  (void)pred->Description();
  (void)pred->AttributesTouched();
  pso::Rng rng(42);
  for (int i = 0; i < 16; ++i) {
    pso::Record rec = dist.Sample(rng);
    bool v = pred->Eval(rec);
    // Negation must be the exact pointwise complement.
    if (pso::MakeNot(pred)->Eval(rec) == v) std::abort();
  }

  // Analytic weights must be probabilities, and Not must complement them.
  std::optional<double> w = pred->ExactWeight(dist);
  if (w.has_value()) {
    if (!(*w >= -1e-12 && *w <= 1.0 + 1e-12)) std::abort();
    std::optional<double> nw = pso::MakeNot(pred)->ExactWeight(dist);
    if (nw.has_value() && std::fabs(*nw - (1.0 - *w)) > 1e-9) std::abort();
  }
  return 0;
}
