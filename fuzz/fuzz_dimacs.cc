// Fuzz target: DIMACS CNF parser (solver/dimacs.h).
//
// Any byte string must either parse or fail with a Status — never crash.
// Accepted formulas must round-trip through ToDimacs and, when small,
// solve on BOTH registered backends: each SAT verdict must come with a
// genuine model, and the backends must agree on satisfiability whenever
// both decide within budget.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "solver/dimacs.h"
#include "solver/sat_backend.h"

namespace {

// -1 = UNSAT, 1 = SAT, 0 = undecided (budget or error).
int SolveOn(const char* backend, const pso::DimacsCnf& cnf) {
  pso::SatSolver solver = pso::BuildSatSolver(cnf);
  if (!solver.build_status().ok()) std::abort();
  pso::Result<std::unique_ptr<pso::SatBackend>> engine =
      pso::MakeSatBackend(backend);
  if (!engine.ok()) std::abort();
  pso::SatSolveOptions options;
  options.max_decisions = 20000;
  pso::Result<pso::SatSolution> sol = solver.SolveWith(**engine, options);
  if (!sol.ok()) {
    // The only acceptable failure on a well-formed formula is running
    // out of the decision budget.
    if (sol.status().code() != pso::StatusCode::kResourceExhausted) {
      std::abort();
    }
    return 0;
  }
  if (sol->satisfiable) {
    for (const std::vector<pso::Lit>& clause : cnf.clauses) {
      bool sat = false;
      for (pso::Lit l : clause) {
        if (sol->assignment[pso::LitVar(l)] == pso::LitPositive(l)) {
          sat = true;
          break;
        }
      }
      if (!sat) std::abort();
    }
  }
  return sol->satisfiable ? 1 : -1;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  pso::Result<pso::DimacsCnf> parsed = pso::ParseDimacsCnf(text);
  if (!parsed.ok()) return 0;

  // Accepted input: rendering and re-parsing must be the identity.
  pso::Result<pso::DimacsCnf> again =
      pso::ParseDimacsCnf(pso::ToDimacs(*parsed));
  if (!again.ok() || again->num_vars != parsed->num_vars ||
      again->clauses != parsed->clauses) {
    std::abort();
  }

  // Small formulas: differential solve across the backend registry.
  if (parsed->num_vars <= 24 && parsed->clauses.size() <= 64) {
    int dpll = SolveOn("dpll", *parsed);
    int cdcl = SolveOn("cdcl", *parsed);
    if (dpll != 0 && cdcl != 0 && dpll != cdcl) std::abort();
  }
  return 0;
}
