// Fuzz target: DIMACS CNF parser (solver/dimacs.h).
//
// Any byte string must either parse or fail with a Status — never crash.
// Accepted formulas must round-trip through ToDimacs and, when small,
// solve; a reported model must actually satisfy the formula.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "solver/dimacs.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  pso::Result<pso::DimacsCnf> parsed = pso::ParseDimacsCnf(text);
  if (!parsed.ok()) return 0;

  // Accepted input: rendering and re-parsing must be the identity.
  pso::Result<pso::DimacsCnf> again =
      pso::ParseDimacsCnf(pso::ToDimacs(*parsed));
  if (!again.ok() || again->num_vars != parsed->num_vars ||
      again->clauses != parsed->clauses) {
    std::abort();
  }

  // Small formulas: the solver must accept them, and a SAT verdict must
  // come with a genuine model.
  if (parsed->num_vars <= 24 && parsed->clauses.size() <= 64) {
    pso::SatSolver solver = pso::BuildSatSolver(*parsed);
    if (!solver.build_status().ok()) std::abort();
    pso::Result<pso::SatSolution> sol = solver.Solve(/*max_decisions=*/20000);
    if (sol.ok() && sol->satisfiable) {
      for (const std::vector<pso::Lit>& clause : parsed->clauses) {
        bool sat = false;
        for (pso::Lit l : clause) {
          if (sol->assignment[pso::LitVar(l)] == pso::LitPositive(l)) {
            sat = true;
            break;
          }
        }
        if (!sat) std::abort();
      }
    }
  }
  return 0;
}
