// Fuzz target: count-constraint CSP builder and enumerator
// (solver/csp.h).
//
// Bytes drive instance construction, including deliberately malformed
// pieces (zero domains, wrong mask arity, inverted count windows). A
// poisoned instance must report build_status() != OK and enumerate
// nothing with complete == false; a clean instance must only emit
// non-decreasing, constraint-satisfying solutions.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "fuzz_util.h"
#include "solver/csp.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pso::fuzz::ByteReader r(data, size);

  size_t num_vars = r.Below(6);
  size_t domain = r.Below(5);  // 0 is a legal-to-request, poisoned domain
  pso::CountCsp csp(num_vars, domain);

  size_t num_constraints = r.Below(5);
  for (size_t c = 0; c < num_constraints; ++c) {
    // Mask length intentionally independent of the domain size so arity
    // mismatches get exercised.
    size_t mask_len = r.Bool() ? domain : r.Below(7);
    std::vector<bool> mask;
    for (size_t i = 0; i < mask_len; ++i) mask.push_back(r.Bool());
    int64_t lo = r.Range(-2, 6);
    int64_t hi = r.Range(-2, 6);
    csp.AddCountConstraint(std::move(mask), lo, hi);
  }

  pso::CspStats stats;
  std::vector<std::vector<size_t>> solutions =
      csp.Enumerate(/*max_solutions=*/64, /*max_nodes=*/20000, &stats);

  if (!csp.build_status().ok()) {
    // Poisoned instances must refuse to report solutions as exhaustive.
    if (!solutions.empty() || stats.complete) std::abort();
    return 0;
  }

  for (const std::vector<size_t>& sol : solutions) {
    if (sol.size() != num_vars) std::abort();
    for (size_t i = 0; i < sol.size(); ++i) {
      if (sol[i] >= domain) std::abort();
      if (i > 0 && sol[i] < sol[i - 1]) std::abort();  // symmetry broken
    }
  }
  (void)csp.IsSatisfiable(/*max_nodes=*/20000);
  return 0;
}
