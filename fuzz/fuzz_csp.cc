// Fuzz target: count-constraint CSP builder and enumerator
// (solver/csp.h).
//
// Bytes drive instance construction, including deliberately malformed
// pieces (zero domains, wrong mask arity, inverted count windows). A
// poisoned instance must report build_status() != OK and enumerate
// nothing with complete == false; a clean instance must only emit
// non-decreasing, constraint-satisfying solutions, and a SAT
// cross-encoding of it must agree on satisfiability on BOTH registered
// backends.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fuzz_util.h"
#include "solver/csp.h"
#include "solver/sat.h"
#include "solver/sat_backend.h"

namespace {

struct FuzzCount {
  std::vector<bool> mask;
  int64_t lo = 0;
  int64_t hi = 0;
};

// SAT cross-encoding of a clean instance (mask arity == domain): one
// boolean per (variable, value), exactly-one rows, an auxiliary "matches
// constraint" literal per variable, cardinality bounds over the
// auxiliaries. Returns -1 UNSAT, 1 SAT, 0 undecided.
int CspViaSat(const char* backend, size_t num_vars, size_t domain,
              const std::vector<FuzzCount>& counts) {
  pso::SatSolver solver(static_cast<uint32_t>(num_vars * domain));
  auto x = [&](size_t var, size_t val) {
    return pso::MakeLit(static_cast<uint32_t>(var * domain + val), true);
  };
  for (size_t i = 0; i < num_vars; ++i) {
    std::vector<pso::Lit> row;
    for (size_t v = 0; v < domain; ++v) row.push_back(x(i, v));
    solver.AddExactlyOne(row);
  }
  for (const FuzzCount& count : counts) {
    if (count.hi < 0 ||
        count.lo > static_cast<int64_t>(num_vars)) {
      solver.AddClause({});  // no count can land in this window
      continue;
    }
    std::vector<pso::Lit> ys;
    for (size_t i = 0; i < num_vars; ++i) {
      pso::Lit y = pso::MakeLit(solver.NewVariable(), true);
      std::vector<pso::Lit> forward{pso::LitNegate(y)};
      for (size_t v = 0; v < domain; ++v) {
        if (!count.mask[v]) continue;
        forward.push_back(x(i, v));
        solver.AddBinary(pso::LitNegate(x(i, v)), y);
      }
      solver.AddClause(forward);
      ys.push_back(y);
    }
    if (count.hi < static_cast<int64_t>(num_vars)) {
      solver.AddAtMostK(ys, static_cast<size_t>(count.hi));
    }
    if (count.lo > 0) {
      solver.AddAtLeastK(ys, static_cast<size_t>(count.lo));
    }
  }
  pso::Result<std::unique_ptr<pso::SatBackend>> engine =
      pso::MakeSatBackend(backend);
  if (!engine.ok()) std::abort();
  pso::SatSolveOptions options;
  options.max_decisions = 50000;
  pso::Result<pso::SatSolution> sol = solver.SolveWith(**engine, options);
  if (!sol.ok()) {
    if (sol.status().code() != pso::StatusCode::kResourceExhausted) {
      std::abort();
    }
    return 0;
  }
  return sol->satisfiable ? 1 : -1;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pso::fuzz::ByteReader r(data, size);

  size_t num_vars = r.Below(6);
  size_t domain = r.Below(5);  // 0 is a legal-to-request, poisoned domain
  pso::CountCsp csp(num_vars, domain);

  std::vector<FuzzCount> recorded;
  size_t num_constraints = r.Below(5);
  for (size_t c = 0; c < num_constraints; ++c) {
    // Mask length intentionally independent of the domain size so arity
    // mismatches get exercised.
    size_t mask_len = r.Bool() ? domain : r.Below(7);
    std::vector<bool> mask;
    for (size_t i = 0; i < mask_len; ++i) mask.push_back(r.Bool());
    int64_t lo = r.Range(-2, 6);
    int64_t hi = r.Range(-2, 6);
    recorded.push_back(FuzzCount{mask, lo, hi});
    csp.AddCountConstraint(std::move(mask), lo, hi);
  }

  pso::CspStats stats;
  std::vector<std::vector<size_t>> solutions =
      csp.Enumerate(/*max_solutions=*/64, /*max_nodes=*/20000, &stats);

  if (!csp.build_status().ok()) {
    // Poisoned instances must refuse to report solutions as exhaustive.
    if (!solutions.empty() || stats.complete) std::abort();
    return 0;
  }

  for (const std::vector<size_t>& sol : solutions) {
    if (sol.size() != num_vars) std::abort();
    for (size_t i = 0; i < sol.size(); ++i) {
      if (sol[i] >= domain) std::abort();
      if (i > 0 && sol[i] < sol[i - 1]) std::abort();  // symmetry broken
    }
  }
  (void)csp.IsSatisfiable(/*max_nodes=*/20000);

  // Cross-backend differential: when the enumeration above was
  // exhaustive, its satisfiability verdict is ground truth for the SAT
  // encoding, and the two SAT backends must also agree with each other.
  if (stats.complete) {
    const int truth = solutions.empty() ? -1 : 1;
    const int dpll = CspViaSat("dpll", num_vars, domain, recorded);
    const int cdcl = CspViaSat("cdcl", num_vars, domain, recorded);
    if (dpll != 0 && dpll != truth) std::abort();
    if (cdcl != 0 && cdcl != truth) std::abort();
  }
  return 0;
}
