// Fuzz target: binary LP-instance decoder (solver/lp_io.h).
//
// Any byte string must either decode or fail with a Status — never
// crash or over-allocate. Accepted instances must re-encode to a
// decodable payload, build a clean LpProblem, and (when small) survive a
// Solve() call with any Status outcome.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "solver/lp.h"
#include "solver/lp_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pso::Result<pso::LpInstance> decoded = pso::DecodeLpInstance(data, size);
  if (!decoded.ok()) return 0;

  // Decoder acceptance implies encoder round-trip and builder acceptance.
  pso::Result<pso::LpInstance> again =
      pso::DecodeLpInstance(pso::EncodeLpInstance(*decoded));
  if (!again.ok()) std::abort();

  pso::LpProblem lp = decoded->ToProblem();
  if (!lp.build_status().ok()) std::abort();

  if (decoded->variables.size() <= 12 && decoded->rows.size() <= 24) {
    pso::Result<pso::LpSolution> sol = lp.Solve();
    if (sol.ok()) {
      // Optimum must respect the variable bounds it was solved under.
      for (size_t i = 0; i < decoded->variables.size(); ++i) {
        const pso::LpInstance::Variable& v = decoded->variables[i];
        if (sol->values[i] < v.lower - 1e-6 ||
            sol->values[i] > v.upper + 1e-6) {
          std::abort();
        }
      }
    }
  }
  return 0;
}
