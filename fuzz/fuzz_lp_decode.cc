// Fuzz target: binary LP-instance decoder (solver/lp_io.h).
//
// Any byte string must either decode or fail with a Status — never
// crash or over-allocate. Accepted instances must re-encode to a
// decodable payload, build a clean LpProblem, and (when small) survive a
// solve on EVERY registered LP backend with any Status outcome — and the
// backends must agree on that outcome: the dense tableau and the sparse
// revised simplex returning different statuses for the same decodable
// instance is a solver bug, not an input property.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "solver/lp.h"
#include "solver/lp_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pso::Result<pso::LpInstance> decoded = pso::DecodeLpInstance(data, size);
  if (!decoded.ok()) return 0;

  // Decoder acceptance implies encoder round-trip and builder acceptance.
  pso::Result<pso::LpInstance> again =
      pso::DecodeLpInstance(pso::EncodeLpInstance(*decoded));
  if (!again.ok()) std::abort();

  pso::LpProblem lp = decoded->ToProblem();
  if (!lp.build_status().ok()) std::abort();

  if (decoded->variables.size() <= 12 && decoded->rows.size() <= 24) {
    pso::StatusCode codes[2];
    double objectives[2] = {0.0, 0.0};
    const char* backends[2] = {"dense", "sparse"};
    for (int b = 0; b < 2; ++b) {
      pso::Result<std::unique_ptr<pso::LpBackend>> backend =
          pso::MakeLpBackend(backends[b]);
      if (!backend.ok()) std::abort();  // built-ins always resolve
      pso::Result<pso::LpSolution> sol =
          lp.SolveWith(**backend, pso::LpSolveOptions{});
      codes[b] = sol.ok() ? pso::StatusCode::kOk : sol.status().code();
      if (sol.ok()) {
        objectives[b] = sol->objective;
        // Optimum must respect the variable bounds it was solved under.
        for (size_t i = 0; i < decoded->variables.size(); ++i) {
          const pso::LpInstance::Variable& v = decoded->variables[i];
          if (sol->values[i] < v.lower - 1e-6 ||
              sol->values[i] > v.upper + 1e-6) {
            std::abort();
          }
        }
      }
    }
    // Exact status agreement; objective agreement when both are optimal.
    // The tolerance is loose: fuzzed coefficients reach the 1e18 range
    // where the two pivot orders accumulate different roundoff.
    if (codes[0] != codes[1]) std::abort();
    if (codes[0] == pso::StatusCode::kOk) {
      double scale = std::fmax(1.0, std::fmax(std::fabs(objectives[0]),
                                              std::fabs(objectives[1])));
      if (std::fabs(objectives[0] - objectives[1]) > 1e-4 * scale) {
        std::abort();
      }
    }
  }
  return 0;
}
