#include "recon/oracle.h"

#include <cmath>

#include "common/check.h"

namespace pso::recon {

SubsetSumOracle::SubsetSumOracle(std::vector<uint8_t> bits)
    : bits_(std::move(bits)) {
  PSO_CHECK(!bits_.empty());
  for (uint8_t b : bits_) PSO_CHECK(b <= 1);
}

double SubsetSumOracle::Answer(const SubsetQuery& query) {
  PSO_CHECK(query.size() == bits_.size());
  ++queries_;
  double exact = 0.0;
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (query[i] != 0) exact += static_cast<double>(bits_[i]);
  }
  return Perturb(query, exact, rng_);
}

ExactOracle::ExactOracle(std::vector<uint8_t> bits)
    : SubsetSumOracle(std::move(bits)) {}

BoundedNoiseOracle::BoundedNoiseOracle(std::vector<uint8_t> bits,
                                       double alpha, uint64_t seed)
    : SubsetSumOracle(std::move(bits)), alpha_(alpha) {
  PSO_CHECK(alpha >= 0.0);
  rng() = Rng(seed);
}

double BoundedNoiseOracle::Perturb(const SubsetQuery&, double exact,
                                   Rng& rng) {
  if (alpha_ == 0.0) return exact;
  return exact + (rng.UniformDouble() * 2.0 - 1.0) * alpha_;
}

RoundingOracle::RoundingOracle(std::vector<uint8_t> bits, double granularity)
    : SubsetSumOracle(std::move(bits)), granularity_(granularity) {
  PSO_CHECK(granularity > 0.0);
}

double RoundingOracle::Perturb(const SubsetQuery&, double exact, Rng&) {
  return std::round(exact / granularity_) * granularity_;
}

LaplaceOracle::LaplaceOracle(std::vector<uint8_t> bits, double eps_per_query,
                             uint64_t seed)
    : SubsetSumOracle(std::move(bits)), eps_(eps_per_query) {
  PSO_CHECK(eps_per_query > 0.0);
  rng() = Rng(seed);
}

double LaplaceOracle::Perturb(const SubsetQuery&, double exact,
                              Rng& rng) {
  return exact + rng.Laplace(1.0 / eps_);
}

DecoyOracle::DecoyOracle(std::vector<uint8_t> bits, size_t flips,
                         uint64_t seed)
    : SubsetSumOracle(bits), decoy_(std::move(bits)) {
  PSO_CHECK(flips <= decoy_.size());
  Rng flip_rng(seed);
  for (size_t i : flip_rng.SampleWithoutReplacement(decoy_.size(), flips)) {
    decoy_[i] = 1 - decoy_[i];
  }
}

double DecoyOracle::Perturb(const SubsetQuery& query, double, Rng&) {
  // Answer exactly, but about the decoy.
  double sum = 0.0;
  for (size_t i = 0; i < decoy_.size(); ++i) {
    if (query[i] != 0) sum += static_cast<double>(decoy_[i]);
  }
  return sum;
}

std::vector<uint8_t> RandomBits(size_t n, Rng& rng) {
  std::vector<uint8_t> bits(n);
  for (auto& b : bits) b = rng.Bernoulli(0.5) ? 1 : 0;
  return bits;
}

double FractionAgree(const std::vector<uint8_t>& estimate,
                     const std::vector<uint8_t>& truth) {
  PSO_CHECK(estimate.size() == truth.size());
  PSO_CHECK(!truth.empty());
  size_t agree = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (estimate[i] == truth[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(truth.size());
}

}  // namespace pso::recon
