#include "recon/attacks.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "solver/lp.h"

namespace pso::recon {

namespace {

// Builds `count` random subset queries (each index in w.p. 1/2) and
// answers them, returning the (query, answer) matrix.
struct QuerySet {
  std::vector<SubsetQuery> queries;
  std::vector<double> answers;
};

QuerySet DrawRandomQueries(SubsetSumOracle& oracle, size_t count, Rng& rng) {
  QuerySet qs;
  qs.queries.reserve(count);
  qs.answers.reserve(count);
  for (size_t j = 0; j < count; ++j) {
    SubsetQuery q(oracle.n());
    for (auto& bit : q) bit = rng.Bernoulli(0.5) ? 1 : 0;
    qs.answers.push_back(oracle.Answer(q));
    qs.queries.push_back(std::move(q));
  }
  return qs;
}

std::vector<uint8_t> RoundAtHalf(const std::vector<double>& x) {
  std::vector<uint8_t> bits(x.size());
  for (size_t i = 0; i < x.size(); ++i) bits[i] = x[i] >= 0.5 ? 1 : 0;
  return bits;
}

}  // namespace

Reconstruction ExhaustiveReconstruct(SubsetSumOracle& oracle, double alpha,
                                     ThreadPool* pool) {
  const size_t n = oracle.n();
  PSO_CHECK_MSG(n <= 24, "exhaustive attack is exponential; keep n <= 24");
  metrics::GetCounter("recon.exhaustive_decodes").Add(1);
  metrics::ScopedSpan span("recon.exhaustive_decode");
  PSO_TRACE_SPAN("recon.exhaustive_decode");

  // Ask all 2^n subset queries (serial: the oracle is stateful).
  const uint64_t num_masks = 1ULL << n;
  std::vector<double> answers(num_masks);
  SubsetQuery q(n);
  for (uint64_t mask = 0; mask < num_masks; ++mask) {
    for (size_t i = 0; i < n; ++i) q[i] = (mask >> i) & 1u;
    answers[mask] = oracle.Answer(q);
  }

  // Scan candidates; a candidate is consistent if every query answer is
  // within alpha of the candidate's subset sum. The scan over `answers`
  // is read-only, so chunks of the candidate space run in parallel; each
  // chunk reports its first fully consistent candidate (if any) and its
  // earliest minimum-violation candidate, and the chunk winners merge in
  // index order — the same candidate the serial scan returns.
  struct ChunkBest {
    uint64_t best_candidate = 0;
    double best_violation = std::numeric_limits<double>::infinity();
    bool found_consistent = false;
    uint64_t consistent_candidate = 0;
    double consistent_violation = 0.0;
  };
  const size_t chunk =
      std::max<size_t>(1, DefaultChunkSize(static_cast<size_t>(num_masks)));
  std::vector<ChunkBest> bests(NumChunks(static_cast<size_t>(num_masks),
                                         chunk));
  ParallelFor(
      pool, static_cast<size_t>(num_masks),
      [&](size_t begin, size_t end) {
        ChunkBest& best = bests[begin / chunk];
        for (uint64_t cand = begin; cand < end; ++cand) {
          double worst = 0.0;
          for (uint64_t mask = 0; mask < num_masks; ++mask) {
            double sum = static_cast<double>(std::popcount(cand & mask));
            double v = std::fabs(sum - answers[mask]);
            if (v > worst) {
              worst = v;
              if (worst > alpha && worst >= best.best_violation) {
                break;  // hopeless
              }
            }
          }
          if (worst < best.best_violation) {
            best.best_violation = worst;
            best.best_candidate = cand;
            if (worst <= alpha) {
              best.found_consistent = true;
              best.consistent_candidate = cand;
              best.consistent_violation = worst;
              break;  // fully consistent candidate found in this chunk
            }
          }
        }
      },
      chunk);

  uint64_t best_candidate = 0;
  double best_violation = std::numeric_limits<double>::infinity();
  for (const ChunkBest& best : bests) {
    if (best.found_consistent) {
      best_candidate = best.consistent_candidate;
      best_violation = best.consistent_violation;
      break;  // earliest chunk with a consistent candidate wins
    }
    if (best.best_violation < best_violation) {
      best_violation = best.best_violation;
      best_candidate = best.best_candidate;
    }
  }

  Reconstruction out;
  out.estimate.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.estimate[i] = (best_candidate >> i) & 1u;
  }
  out.queries_used = num_masks;
  out.decoder_residual = best_violation;
  return out;
}

Result<Reconstruction> LpReconstruct(SubsetSumOracle& oracle,
                                     size_t num_queries, Rng& rng) {
  return LpReconstruct(oracle, num_queries, rng, LpDecodeOptions{});
}

Result<Reconstruction> LpReconstruct(SubsetSumOracle& oracle,
                                     size_t num_queries, Rng& rng,
                                     const LpDecodeOptions& options) {
  QuerySet qs = DrawRandomQueries(oracle, num_queries, rng);
  return LpDecodeRecorded(oracle.n(), qs.queries, qs.answers, options);
}

Result<Reconstruction> LpDecodeRecorded(size_t n,
                                        const std::vector<SubsetQuery>& queries,
                                        const std::vector<double>& answers,
                                        const LpDecodeOptions& options) {
  const size_t num_queries = queries.size();
  if (answers.size() != num_queries) {
    return Status::InvalidArgument(
        "transcript shape mismatch: queries != answers");
  }
  for (const SubsetQuery& q : queries) {
    if (q.size() != n) {
      return Status::InvalidArgument("transcript query length != n");
    }
  }
  metrics::GetCounter("recon.lp_decodes").Add(1);
  metrics::GetCounter("recon.queries").Add(num_queries);
  trace::Span decode_span("recon.lp_decode");
  if (decode_span.active()) {
    decode_span.Arg("n", std::to_string(n));
    decode_span.Arg("queries", std::to_string(num_queries));
  }

  LpProblem lp;
  // Residual-splitting L1 fit: minimize sum_j (u_j + v_j) subject to
  //   <q_j, x> + u_j - v_j = a_j,  x in [0,1]^n,  u, v >= 0.
  // u_j / v_j are row-singleton columns, so the simplex crash basis makes
  // every row basic immediately (no artificials, no phase 1).
  std::vector<size_t> x_vars(n);
  for (size_t i = 0; i < n; ++i) x_vars[i] = lp.AddVariable(0.0, 1.0, 0.0);
  for (size_t j = 0; j < num_queries; ++j) {
    size_t u = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    size_t v = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    std::vector<std::pair<size_t, double>> row;
    for (size_t i = 0; i < n; ++i) {
      if (queries[j][i] != 0) row.emplace_back(x_vars[i], 1.0);
    }
    row.emplace_back(u, 1.0);
    row.emplace_back(v, -1.0);
    lp.AddConstraint(row, Relation::kEqual, answers[j]);
  }

  const std::string backend_name =
      options.backend.empty() ? DefaultLpBackendName() : options.backend;
  Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend(backend_name);
  if (!backend.ok()) return backend.status();
  LpSolveOptions solve_options;
  if (options.basis != nullptr) {
    if (!options.basis->empty()) solve_options.warm_start = options.basis;
    solve_options.final_basis = options.basis;
  }
  Result<LpSolution> solved = lp.SolveWith(**backend, solve_options);
  if (!solved.ok()) return solved.status();

  Reconstruction out;
  std::vector<double> x(solved->values.begin(), solved->values.begin() + n);
  out.estimate = RoundAtHalf(x);
  out.queries_used = num_queries;
  out.decoder_residual = solved->objective;
  return out;
}

Reconstruction LeastSquaresReconstruct(SubsetSumOracle& oracle,
                                       size_t num_queries, Rng& rng,
                                       size_t iterations) {
  QuerySet qs = DrawRandomQueries(oracle, num_queries, rng);
  return LeastSquaresDecodeRecorded(oracle.n(), qs.queries, qs.answers,
                                    iterations);
}

Reconstruction LeastSquaresDecodeRecorded(
    size_t n, const std::vector<SubsetQuery>& queries,
    const std::vector<double>& answers, size_t iterations) {
  const size_t num_queries = queries.size();
  PSO_CHECK_MSG(answers.size() == num_queries,
                "transcript shape mismatch: queries != answers");
  for (const SubsetQuery& q : queries) {
    PSO_CHECK_MSG(q.size() == n, "transcript query length != n");
  }
  metrics::GetCounter("recon.lsq_decodes").Add(1);
  metrics::GetCounter("recon.queries").Add(num_queries);
  metrics::ScopedSpan span("recon.lsq_decode");
  PSO_TRACE_SPAN("recon.lsq_decode");
  const size_t m = num_queries;

  // Power iteration for the top eigenvalue of Q^T Q (sets the step size).
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> qv(m);
  double lambda = 1.0;
  for (int it = 0; it < 12; ++it) {
    for (size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (queries[j][i] != 0) s += v[i];
      }
      qv[j] = s;
    }
    std::vector<double> w(n, 0.0);
    for (size_t j = 0; j < m; ++j) {
      if (qv[j] == 0.0) continue;
      for (size_t i = 0; i < n; ++i) {
        if (queries[j][i] != 0) w[i] += qv[j];
      }
    }
    double norm = 0.0;
    for (double wi : w) norm += wi * wi;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    lambda = norm;
    for (size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
  }
  double step = 1.0 / lambda;

  // Projected gradient descent on ||Qx - a||^2 / 2 over [0,1]^n.
  std::vector<double> x(n, 0.5);
  std::vector<double> residual(m);
  for (size_t it = 0; it < iterations; ++it) {
    for (size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (queries[j][i] != 0) s += x[i];
      }
      residual[j] = s - answers[j];
    }
    for (size_t i = 0; i < n; ++i) {
      double g = 0.0;
      for (size_t j = 0; j < m; ++j) {
        if (queries[j][i] != 0) g += residual[j];
      }
      x[i] -= step * g;
      if (x[i] < 0.0) x[i] = 0.0;
      if (x[i] > 1.0) x[i] = 1.0;
    }
  }

  double rss = 0.0;
  for (double r : residual) rss += r * r;

  Reconstruction out;
  out.estimate = RoundAtHalf(x);
  out.queries_used = num_queries;
  out.decoder_residual = std::sqrt(rss);
  return out;
}

}  // namespace pso::recon
