// Noisy subset-sum query oracles (the mechanism of Theorem 1.1).
//
// The private dataset is x in {0,1}^n; an analyst issues subset queries
// q subset of [n] and receives a_q ~ sum_{i in q} x_i with per-query error
// at most alpha (depending on the noise model). Reconstruction attacks
// (attacks.h) talk to these oracles only through Answer().

#ifndef PSO_RECON_ORACLE_H_
#define PSO_RECON_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace pso::recon {

/// A subset query: indicator vector over [n].
using SubsetQuery = std::vector<uint8_t>;

/// Answers noisy subset-sum queries about a fixed secret bit vector.
class SubsetSumOracle {
 public:
  /// Takes ownership of the secret `bits`.
  explicit SubsetSumOracle(std::vector<uint8_t> bits);
  virtual ~SubsetSumOracle() = default;

  size_t n() const { return bits_.size(); }
  size_t queries_answered() const { return queries_; }
  const std::vector<uint8_t>& secret() const { return bits_; }

  /// Answers one query (with this oracle's noise model).
  double Answer(const SubsetQuery& query);

 protected:
  /// Noise model hook: receives the query and its exact sum, returns the
  /// released value.
  virtual double Perturb(const SubsetQuery& query, double exact,
                         Rng& rng) = 0;

  /// RNG available to noise models (seeded by subclass constructors).
  Rng& rng() { return rng_; }

 private:
  std::vector<uint8_t> bits_;
  size_t queries_ = 0;
  Rng rng_{0};
};

/// Exact answers (alpha = 0): blatant non-privacy baseline.
class ExactOracle final : public SubsetSumOracle {
 public:
  explicit ExactOracle(std::vector<uint8_t> bits);

 protected:
  double Perturb(const SubsetQuery&, double exact, Rng&) override {
    return exact;
  }
};

/// Adds independent uniform noise in [-alpha, alpha]: a mechanism with
/// hard error bound alpha, the regime of Theorem 1.1.
class BoundedNoiseOracle final : public SubsetSumOracle {
 public:
  BoundedNoiseOracle(std::vector<uint8_t> bits, double alpha, uint64_t seed);

  double alpha() const { return alpha_; }

 protected:
  double Perturb(const SubsetQuery&, double exact, Rng& rng) override;

 private:
  double alpha_;
};

/// Rounds the exact answer to the nearest multiple of `granularity`
/// (error <= granularity/2): the "cell suppression / rounding" style of
/// disclosure limitation.
class RoundingOracle final : public SubsetSumOracle {
 public:
  RoundingOracle(std::vector<uint8_t> bits, double granularity);

 protected:
  double Perturb(const SubsetQuery&, double exact, Rng&) override;

 private:
  double granularity_;
};

/// Laplace(1/eps) noise per query: the differentially private oracle. Its
/// error grows with the number of queries at fixed total budget; the
/// benches use it to show DP defeats reconstruction at matched accuracy.
class LaplaceOracle final : public SubsetSumOracle {
 public:
  LaplaceOracle(std::vector<uint8_t> bits, double eps_per_query,
                uint64_t seed);

 protected:
  double Perturb(const SubsetQuery&, double exact, Rng& rng) override;

 private:
  double eps_;
};

/// The information-theoretic defense matching Theorem 1.1(i)'s constant:
/// answers every query EXACTLY but about a decoy dataset z at Hamming
/// distance `flips` from x. Per-query error is at most `flips`, yet no
/// attacker can recover more than the n - flips agreed positions — random
/// per-query noise cannot achieve this (an exhaustive attacker averages
/// it away; see bench E1).
class DecoyOracle final : public SubsetSumOracle {
 public:
  /// Flips `flips` uniformly random positions of `bits` to form the decoy.
  DecoyOracle(std::vector<uint8_t> bits, size_t flips, uint64_t seed);

  const std::vector<uint8_t>& decoy() const { return decoy_; }

 protected:
  double Perturb(const SubsetQuery& query, double exact, Rng&) override;

 private:
  std::vector<uint8_t> decoy_;
};

/// Draws a uniformly random secret x in {0,1}^n.
std::vector<uint8_t> RandomBits(size_t n, Rng& rng);

/// Fraction of positions where `estimate` agrees with `truth` (both must
/// have equal length). 1.0 = perfect reconstruction. The complementary
/// error is what "blatant non-privacy" bounds at 5% (Section 1).
double FractionAgree(const std::vector<uint8_t>& estimate,
                     const std::vector<uint8_t>& truth);

}  // namespace pso::recon

#endif  // PSO_RECON_ORACLE_H_
