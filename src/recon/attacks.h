// Reconstruction attacks (Theorem 1.1 and the Fundamental Law).
//
// * ExhaustiveReconstruct — Theorem 1.1(i): with all 2^n subset queries
//   answered within error alpha, scan all 2^n candidate datasets and keep
//   one consistent with every answer; any such candidate agrees with the
//   secret on all but O(alpha) entries.
// * LpReconstruct — Theorem 1.1(ii) via LP decoding (Dwork–McSherry–
//   Talwar): polynomially many random subset queries, minimize the total
//   L1 violation over the fractional hypercube, round.
// * LeastSquaresReconstruct — projected-gradient least-squares decoder;
//   same regime as LP decoding but scales to larger n on this substrate.

#ifndef PSO_RECON_ATTACKS_H_
#define PSO_RECON_ATTACKS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "recon/oracle.h"

namespace pso {
class ThreadPool;
struct LpBasis;
}

namespace pso::recon {

/// Output of a reconstruction attack.
struct Reconstruction {
  std::vector<uint8_t> estimate;
  size_t queries_used = 0;
  double decoder_residual = 0.0;  ///< Decoder-specific fit diagnostic.
};

/// Theorem 1.1(i). Issues all 2^n subset queries (n <= 24 enforced), then
/// searches all 2^n candidates for one whose subset sums match every
/// answer within `alpha`. Returns the first consistent candidate, or the
/// minimum-max-violation candidate if none is fully consistent. The
/// candidate scan is pure, so a non-null `pool` splits it across workers;
/// per-chunk winners merge in chunk order, reproducing the serial
/// "earliest candidate wins" result at any thread count.
Reconstruction ExhaustiveReconstruct(SubsetSumOracle& oracle, double alpha,
                                     ThreadPool* pool = nullptr);

/// Tuning knobs for LpReconstruct. Defaults reproduce the plain call:
/// the process-default LP backend, cold-started.
struct LpDecodeOptions {
  /// Backend registry name ("dense", "sparse", ...); empty uses the
  /// process default (DefaultLpBackendName / --lp-backend).
  std::string backend;
  /// Borrowed basis slot threaded across repeated decodes. When non-null:
  /// a non-empty basis warm-starts the solve (decode LPs of one
  /// experiment share n and query count, hence shape), and the final
  /// basis is written back after an optimal solve. The caller owns the
  /// LpBasis and resets it when the LP shape changes.
  LpBasis* basis = nullptr;
};

/// Theorem 1.1(ii) by LP decoding. Issues `num_queries` uniformly random
/// subset queries (each index included w.p. 1/2), solves
///   min sum_j t_j  s.t.  |<q_j, x> - a_j| <= t_j,  x in [0,1]^n
/// with the simplex solver, and rounds x at 1/2.
[[nodiscard]] Result<Reconstruction> LpReconstruct(SubsetSumOracle& oracle,
                                     size_t num_queries, Rng& rng);

/// As above with an explicit backend choice and optional warm-start basis
/// carried across calls (see LpDecodeOptions).
[[nodiscard]] Result<Reconstruction> LpReconstruct(
    SubsetSumOracle& oracle, size_t num_queries, Rng& rng,
    const LpDecodeOptions& options);

/// Least-squares decoder: minimizes ||Qx - a||_2^2 over [0,1]^n by
/// projected gradient (step from a power-iteration bound on ||Q||^2),
/// then rounds. `iterations` gradient steps.
Reconstruction LeastSquaresReconstruct(SubsetSumOracle& oracle,
                                       size_t num_queries, Rng& rng,
                                       size_t iterations = 400);

/// LP decoding over a RECORDED transcript: the attacker-as-client path.
/// Instead of querying an oracle in-process, the caller supplies the
/// (query, answer) pairs it observed from a live service (the Cohen–
/// Nissim "Linear Program Reconstruction in Practice" loop) and the same
/// residual-splitting L1 program is solved over them. `queries[j]` must
/// all be indicator vectors of length `n`; `answers[j]` is the value the
/// service released for query j.
[[nodiscard]] Result<Reconstruction> LpDecodeRecorded(
    size_t n, const std::vector<SubsetQuery>& queries,
    const std::vector<double>& answers,
    const LpDecodeOptions& options = LpDecodeOptions{});

/// Least-squares decoding over a recorded transcript (see
/// LpDecodeRecorded); scales to larger n than the LP on this substrate.
Reconstruction LeastSquaresDecodeRecorded(
    size_t n, const std::vector<SubsetQuery>& queries,
    const std::vector<double>& answers, size_t iterations = 400);

}  // namespace pso::recon

#endif  // PSO_RECON_ATTACKS_H_
