// "Legal theorems" (Section 2.4): formal claims connecting empirical PSO
// evidence to the GDPR anonymization standard.
//
// The inference chain the paper sets up:
//   Recital 26: preventing singling out is NECESSARY for data to count as
//   anonymous. Security against predicate singling out is (by design)
//   weaker than the GDPR notion, so
//     fails PSO security  ==>  fails GDPR singling out
//                        ==>  does not meet the GDPR anonymization standard
//   while
//     prevents PSO security ==> further analysis needed (necessary, not
//     sufficient).
// This module renders those verdicts from measured game results, keeping
// the evidence attached so the claim is falsifiable (Section 2.4.3).

#ifndef PSO_LEGAL_VERDICT_H_
#define PSO_LEGAL_VERDICT_H_

#include <string>
#include <vector>

#include "pso/game.h"

namespace pso::legal {

/// Conclusion of a legal claim.
enum class Verdict {
  kSatisfies,             ///< The technology meets the requirement.
  kFails,                 ///< The technology provably fails it.
  kNeedsFurtherAnalysis,  ///< Necessary condition met; sufficiency open.
};

const char* VerdictName(Verdict v);

/// One piece of empirical evidence bound to a claim.
struct Evidence {
  std::string description;  ///< What was measured.
  double attack_rate = 0.0;
  double attack_rate_ci_lo = 0.0;
  double baseline = 0.0;
  bool demonstrates_failure = false;  ///< CI-separated from the baseline.
};

/// A formal claim about a technology vs a legal standard.
struct LegalClaim {
  std::string id;           ///< e.g. "Legal Theorem 2.1".
  std::string technology;   ///< e.g. "k-anonymity (Mondrian, k=5)".
  std::string standard;     ///< e.g. "GDPR Recital 26 singling out".
  std::string statement;    ///< The claim in words.
  Verdict verdict = Verdict::kNeedsFurtherAnalysis;
  std::vector<Evidence> evidence;

  std::string ToString() const;
};

/// Margin by which an attack rate's CI lower bound must clear the trivial
/// baseline for the game to count as demonstrating singling out.
constexpr double kFailureMargin = 0.05;

/// Converts one game result into evidence.
Evidence EvidenceFromGame(const PsoGameResult& result);

/// Evaluates "technology T prevents singling out as required by the GDPR"
/// from the games run against T (its best-known adversaries). Any single
/// successful attacker settles the claim negatively.
LegalClaim EvaluateSinglingOutClaim(const std::string& technology,
                                    const std::vector<PsoGameResult>& games);

/// Derives the anonymization-standard corollary from a singling-out claim
/// (Legal Corollary 2.1: failing a necessary condition fails the
/// standard).
LegalClaim DeriveAnonymizationCorollary(const LegalClaim& singling_out);

}  // namespace pso::legal

#endif  // PSO_LEGAL_VERDICT_H_
