#include "legal/verdict.h"

#include "common/str_util.h"

namespace pso::legal {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kSatisfies:
      return "SATISFIES";
    case Verdict::kFails:
      return "FAILS";
    case Verdict::kNeedsFurtherAnalysis:
      return "NEEDS FURTHER ANALYSIS";
  }
  return "?";
}

std::string LegalClaim::ToString() const {
  std::string out = StrFormat("[%s] %s vs %s: %s\n  %s\n", id.c_str(),
                              technology.c_str(), standard.c_str(),
                              VerdictName(verdict), statement.c_str());
  for (const Evidence& e : evidence) {
    out += StrFormat(
        "  evidence: %-60s attack=%.3f (CI lo %.3f) baseline=%.3f  %s\n",
        e.description.c_str(), e.attack_rate, e.attack_rate_ci_lo,
        e.baseline,
        e.demonstrates_failure ? "=> singling out demonstrated" : "");
  }
  return out;
}

Evidence EvidenceFromGame(const PsoGameResult& result) {
  Evidence e;
  e.description = result.mechanism + " vs " + result.adversary;
  e.attack_rate = result.pso_success.rate();
  e.attack_rate_ci_lo = result.pso_success.WilsonInterval().lo;
  e.baseline = result.baseline;
  e.demonstrates_failure =
      e.attack_rate_ci_lo > e.baseline + kFailureMargin;
  return e;
}

LegalClaim EvaluateSinglingOutClaim(
    const std::string& technology,
    const std::vector<PsoGameResult>& games) {
  LegalClaim claim;
  claim.technology = technology;
  claim.standard = "GDPR Recital 26: prevention of singling out";
  bool any_failure = false;
  for (const PsoGameResult& g : games) {
    Evidence e = EvidenceFromGame(g);
    any_failure = any_failure || e.demonstrates_failure;
    claim.evidence.push_back(std::move(e));
  }
  if (any_failure) {
    claim.id = "Legal Theorem 2.1 (instance)";
    claim.verdict = Verdict::kFails;
    claim.statement =
        technology +
        " fails to prevent predicate singling out; since security against "
        "PSO is weaker than the GDPR notion, it fails to prevent singling "
        "out as required by the GDPR.";
  } else {
    claim.id = "Singling-out assessment";
    claim.verdict = Verdict::kNeedsFurtherAnalysis;
    claim.statement =
        technology +
        " prevented predicate singling out against every tested attacker "
        "(success within the trivial baseline). Preventing singling out is "
        "necessary but not sufficient for GDPR anonymization, so further "
        "analysis is needed.";
  }
  return claim;
}

LegalClaim DeriveAnonymizationCorollary(const LegalClaim& singling_out) {
  LegalClaim corollary;
  corollary.technology = singling_out.technology;
  corollary.standard = "GDPR anonymization standard (Recital 26)";
  corollary.evidence = singling_out.evidence;
  if (singling_out.verdict == Verdict::kFails) {
    corollary.id = "Legal Corollary 2.1 (instance)";
    corollary.verdict = Verdict::kFails;
    corollary.statement =
        singling_out.technology +
        " does not meet the GDPR standard for anonymization (it fails "
        "singling-out prevention, a necessary condition).";
  } else {
    corollary.id = "Anonymization assessment";
    corollary.verdict = Verdict::kNeedsFurtherAnalysis;
    corollary.statement =
        singling_out.technology +
        " may provide the level of anonymization the GDPR requires; the "
        "necessary singling-out condition held against all tested "
        "attackers, but sufficiency requires further (legal and technical) "
        "analysis.";
  }
  return corollary;
}

}  // namespace pso::legal
