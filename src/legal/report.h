// Rendering of legal-theorem reports, including the Section 2.4.3
// comparison with the Article 29 Working Party's Opinion on Anonymisation
// Techniques (which answered "Is singling out still a risk?" with "no" for
// k-anonymity and l-diversity and "may not" for differential privacy —
// the opposite of what the analysis here demonstrates).

#ifndef PSO_LEGAL_REPORT_H_
#define PSO_LEGAL_REPORT_H_

#include <string>
#include <vector>

#include "legal/verdict.h"

namespace pso::legal {

/// One row of the Article 29 WP comparison.
struct Article29Row {
  std::string technology;
  std::string wp_opinion;    ///< The Working Party's published answer.
  std::string our_verdict;   ///< What the measured games say.
  bool conflict = false;
};

/// A collection of claims with rendering helpers.
class LegalReport {
 public:
  /// Appends a claim.
  void AddClaim(LegalClaim claim);

  const std::vector<LegalClaim>& claims() const { return claims_; }

  /// Full text report: every claim with its evidence.
  std::string Render() const;

  /// Builds the Section 2.4.3 table. `risk_by_technology` maps a
  /// technology label to whether our games demonstrated singling-out risk.
  static std::vector<Article29Row> Article29Comparison(
      const std::vector<std::pair<std::string, bool>>& risk_by_technology);

  /// Renders the comparison rows as an aligned table.
  static std::string RenderArticle29Table(
      const std::vector<Article29Row>& rows);

 private:
  std::vector<LegalClaim> claims_;
};

}  // namespace pso::legal

#endif  // PSO_LEGAL_REPORT_H_
