#include "legal/report.h"

#include "common/str_util.h"
#include "common/table.h"

namespace pso::legal {

namespace {

// The Working Party's published answers to "Is singling out still a
// risk?" (Opinion 05/2014 on Anonymisation Techniques, Table 6).
std::string WpAnswer(const std::string& technology) {
  if (technology.find("k-anonymity") != std::string::npos ||
      technology.find("K-anonymity") != std::string::npos) {
    return "No";
  }
  if (technology.find("l-diversity") != std::string::npos ||
      technology.find("t-closeness") != std::string::npos) {
    return "No";
  }
  if (technology.find("ifferential") != std::string::npos) {
    return "May not";
  }
  return "(not assessed)";
}

}  // namespace

void LegalReport::AddClaim(LegalClaim claim) {
  claims_.push_back(std::move(claim));
}

std::string LegalReport::Render() const {
  std::string out =
      "==== Legal theorems (formal claims with empirical evidence) ====\n";
  for (const LegalClaim& c : claims_) {
    out += c.ToString();
    out += "\n";
  }
  return out;
}

std::vector<Article29Row> LegalReport::Article29Comparison(
    const std::vector<std::pair<std::string, bool>>& risk_by_technology) {
  std::vector<Article29Row> rows;
  rows.reserve(risk_by_technology.size());
  for (const auto& [technology, risky] : risk_by_technology) {
    Article29Row row;
    row.technology = technology;
    row.wp_opinion = WpAnswer(technology);
    row.our_verdict = risky ? "Yes (attack demonstrated)"
                            : "No attack found (tested adversaries)";
    // Conflict when the WP said "No (risk eliminated)" but we demonstrated
    // an attack, or the WP hedged on DP while no attack exists.
    row.conflict = (row.wp_opinion == "No" && risky) ||
                   (row.wp_opinion == "May not" && !risky);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string LegalReport::RenderArticle29Table(
    const std::vector<Article29Row>& rows) {
  TextTable table({"Technology", "A29WP: singling out a risk?",
                   "This analysis", "Conflict"});
  for (const Article29Row& r : rows) {
    table.AddRow({r.technology, r.wp_opinion, r.our_verdict,
                  r.conflict ? "YES" : "no"});
  }
  return table.Render();
}

}  // namespace pso::legal
