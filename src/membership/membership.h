// Membership inference against aggregate statistics (Homer et al. [26],
// surveyed in Section 1 of the paper): given published per-attribute
// frequencies of a pool, an attacker holding a target's record infers
// whether the target was in the pool.
//
// Statistic (the Homer/Sankararaman likelihood-ratio form over binary
// attributes): T(y) = sum_j [ |y_j - ref_j| - |y_j - pool_j| ], where y is
// the target's record, ref the public reference frequencies, and pool the
// released aggregate. In-pool targets pull the released frequencies
// toward themselves, making T positive in expectation; for out-of-pool
// targets E[T] = 0. The experiment measures the attack's ROC and shows
// how differentially private aggregates destroy it — the same
// aggregate-statistics-are-not-anonymous lesson as the reconstruction
// attacks, in membership form.

#ifndef PSO_MEMBERSHIP_MEMBERSHIP_H_
#define PSO_MEMBERSHIP_MEMBERSHIP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"

namespace pso {
class ThreadPool;
}

namespace pso::membership {

/// Released per-attribute frequencies of a pool (optionally DP).
std::vector<double> AggregateFrequencies(const Dataset& pool);

/// eps-DP release of the aggregate: each frequency gets Laplace noise of
/// scale 1/(m * eps) (one individual moves each frequency by at most 1/m;
/// the per-record L1 sensitivity across all attributes is d/m, so pass
/// eps_total and the noise is scaled by d internally). Clamped to [0, 1].
std::vector<double> DpAggregateFrequencies(const Dataset& pool,
                                           double eps_total, Rng& rng);

/// The Homer-style membership statistic for `target` against the released
/// `pool_freqs` and public `reference_freqs`.
double MembershipStatistic(const Record& target,
                           const std::vector<double>& pool_freqs,
                           const std::vector<double>& reference_freqs);

/// Experiment configuration. Each trial draws from its own counter-derived
/// stream (Rng::StreamAt(seed, trial)), so results are bit-for-bit
/// identical at any thread count.
struct MembershipOptions {
  size_t pool_size = 50;
  size_t trials = 300;       ///< In/out statistic pairs collected.
  double eps = 0.0;          ///< 0 = exact aggregates, > 0 = eps-DP.
  uint64_t seed = 0x40e;
  ThreadPool* pool = nullptr;  ///< Worker pool; null = serial execution.
};

/// Outcome: the attack's discriminative power.
struct MembershipResult {
  double auc = 0.0;        ///< P[T_in > T_out] (+ 0.5 * ties).
  double advantage = 0.0;  ///< max over thresholds of TPR - FPR.
  double mean_in = 0.0;    ///< Mean statistic for members.
  double mean_out = 0.0;   ///< Mean statistic for non-members.
};

/// Runs the experiment over `universe` (binary attributes required): per
/// trial, sample a pool, release (exact or DP) frequencies, score one
/// member and one non-member.
MembershipResult RunMembershipExperiment(const Universe& universe,
                                         const MembershipOptions& options);

}  // namespace pso::membership

#endif  // PSO_MEMBERSHIP_MEMBERSHIP_H_
