#include "membership/membership.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pso::membership {

std::vector<double> AggregateFrequencies(const Dataset& pool) {
  PSO_CHECK(!pool.empty());
  const size_t d = pool.schema().NumAttributes();
  std::vector<double> freqs(d, 0.0);
  for (const Record& r : pool.records()) {
    for (size_t j = 0; j < d; ++j) {
      PSO_CHECK_MSG(r[j] == 0 || r[j] == 1, "binary attributes required");
      freqs[j] += static_cast<double>(r[j]);
    }
  }
  for (double& f : freqs) f /= static_cast<double>(pool.size());
  return freqs;
}

std::vector<double> DpAggregateFrequencies(const Dataset& pool,
                                           double eps_total, Rng& rng) {
  PSO_CHECK(eps_total > 0.0);
  std::vector<double> freqs = AggregateFrequencies(pool);
  const double m = static_cast<double>(pool.size());
  const double d = static_cast<double>(freqs.size());
  // One record changes each of the d frequencies by at most 1/m: L1
  // sensitivity d/m, so Laplace scale (d/m)/eps_total per coordinate.
  const double scale = d / (m * eps_total);
  for (double& f : freqs) {
    f = std::clamp(f + rng.Laplace(scale), 0.0, 1.0);
  }
  return freqs;
}

double MembershipStatistic(const Record& target,
                           const std::vector<double>& pool_freqs,
                           const std::vector<double>& reference_freqs) {
  PSO_CHECK(target.size() == pool_freqs.size());
  PSO_CHECK(target.size() == reference_freqs.size());
  double t = 0.0;
  for (size_t j = 0; j < target.size(); ++j) {
    double y = static_cast<double>(target[j]);
    t += std::fabs(y - reference_freqs[j]) - std::fabs(y - pool_freqs[j]);
  }
  return t;
}

MembershipResult RunMembershipExperiment(const Universe& universe,
                                         const MembershipOptions& options) {
  PSO_CHECK(options.pool_size >= 2);
  PSO_CHECK(options.trials > 0);
  Rng rng(options.seed);

  // Public reference frequencies: the exact marginals of D.
  const size_t d = universe.schema.NumAttributes();
  std::vector<double> reference(d);
  for (size_t j = 0; j < d; ++j) {
    reference[j] = universe.distribution.marginal(j).Probability(1);
  }

  std::vector<double> in_stats;
  std::vector<double> out_stats;
  in_stats.reserve(options.trials);
  out_stats.reserve(options.trials);
  for (size_t t = 0; t < options.trials; ++t) {
    Dataset pool =
        universe.distribution.SampleDataset(options.pool_size, rng);
    std::vector<double> released =
        options.eps > 0.0
            ? DpAggregateFrequencies(pool, options.eps, rng)
            : AggregateFrequencies(pool);
    size_t member = static_cast<size_t>(rng.UniformUint64(pool.size()));
    in_stats.push_back(
        MembershipStatistic(pool.record(member), released, reference));
    out_stats.push_back(MembershipStatistic(
        universe.distribution.Sample(rng), released, reference));
  }

  MembershipResult result;
  // AUC by pairwise comparison (exact, O(T^2) is fine at these sizes).
  double wins = 0.0;
  for (double a : in_stats) {
    for (double b : out_stats) {
      if (a > b) {
        wins += 1.0;
      } else if (a == b) {
        wins += 0.5;
      }
    }
  }
  result.auc = wins / (static_cast<double>(in_stats.size()) *
                       static_cast<double>(out_stats.size()));

  // Best-threshold advantage: sweep all observed statistics.
  std::vector<double> thresholds = in_stats;
  thresholds.insert(thresholds.end(), out_stats.begin(), out_stats.end());
  std::sort(thresholds.begin(), thresholds.end());
  for (double thr : thresholds) {
    double tpr = 0.0;
    double fpr = 0.0;
    for (double a : in_stats) tpr += a >= thr ? 1.0 : 0.0;
    for (double b : out_stats) fpr += b >= thr ? 1.0 : 0.0;
    tpr /= static_cast<double>(in_stats.size());
    fpr /= static_cast<double>(out_stats.size());
    result.advantage = std::max(result.advantage, tpr - fpr);
  }

  double sum_in = 0.0;
  for (double a : in_stats) sum_in += a;
  double sum_out = 0.0;
  for (double b : out_stats) sum_out += b;
  result.mean_in = sum_in / static_cast<double>(in_stats.size());
  result.mean_out = sum_out / static_cast<double>(out_stats.size());
  return result;
}

}  // namespace pso::membership
