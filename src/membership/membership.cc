#include "membership/membership.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace pso::membership {

std::vector<double> AggregateFrequencies(const Dataset& pool) {
  PSO_CHECK(!pool.empty());
  const size_t d = pool.schema().NumAttributes();
  std::vector<double> freqs(d, 0.0);
  for (const Record& r : pool.records()) {
    for (size_t j = 0; j < d; ++j) {
      PSO_CHECK_MSG(r[j] == 0 || r[j] == 1, "binary attributes required");
      freqs[j] += static_cast<double>(r[j]);
    }
  }
  for (double& f : freqs) f /= static_cast<double>(pool.size());
  return freqs;
}

std::vector<double> DpAggregateFrequencies(const Dataset& pool,
                                           double eps_total, Rng& rng) {
  PSO_CHECK(eps_total > 0.0);
  std::vector<double> freqs = AggregateFrequencies(pool);
  const double m = static_cast<double>(pool.size());
  const double d = static_cast<double>(freqs.size());
  // One record changes each of the d frequencies by at most 1/m: L1
  // sensitivity d/m, so Laplace scale (d/m)/eps_total per coordinate.
  const double scale = d / (m * eps_total);
  for (double& f : freqs) {
    f = std::clamp(f + rng.Laplace(scale), 0.0, 1.0);
  }
  return freqs;
}

double MembershipStatistic(const Record& target,
                           const std::vector<double>& pool_freqs,
                           const std::vector<double>& reference_freqs) {
  PSO_CHECK(target.size() == pool_freqs.size());
  PSO_CHECK(target.size() == reference_freqs.size());
  double t = 0.0;
  for (size_t j = 0; j < target.size(); ++j) {
    double y = static_cast<double>(target[j]);
    t += std::fabs(y - reference_freqs[j]) - std::fabs(y - pool_freqs[j]);
  }
  return t;
}

MembershipResult RunMembershipExperiment(const Universe& universe,
                                         const MembershipOptions& options) {
  PSO_CHECK(options.pool_size >= 2);
  PSO_CHECK(options.trials > 0);

  // Public reference frequencies: the exact marginals of D.
  const size_t d = universe.schema.NumAttributes();
  std::vector<double> reference(d);
  for (size_t j = 0; j < d; ++j) {
    reference[j] = universe.distribution.marginal(j).Probability(1);
  }

  // Trial t writes slots in_stats[t] / out_stats[t] from its own
  // counter-derived stream: the statistic vectors are identical at any
  // thread count.
  metrics::GetCounter("membership.trials").Add(options.trials);
  metrics::ScopedSpan span("membership.experiment");
  PSO_TRACE_SPAN("membership.experiment");
  std::vector<double> in_stats(options.trials);
  std::vector<double> out_stats(options.trials);
  ParallelFor(options.pool, options.trials, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      Rng rng = Rng::StreamAt(options.seed, t);
      Dataset pool =
          universe.distribution.SampleDataset(options.pool_size, rng);
      std::vector<double> released =
          options.eps > 0.0
              ? DpAggregateFrequencies(pool, options.eps, rng)
              : AggregateFrequencies(pool);
      size_t member = static_cast<size_t>(rng.UniformUint64(pool.size()));
      in_stats[t] =
          MembershipStatistic(pool.record(member), released, reference);
      out_stats[t] = MembershipStatistic(universe.distribution.Sample(rng),
                                         released, reference);
    }
  });

  MembershipResult result;
  // AUC by pairwise comparison (exact, O(T^2) is fine at these sizes).
  // Chunked over members with per-chunk partial sums merged in index
  // order: the O(T^2) scan parallelizes without perturbing the result.
  const size_t chunk = DefaultChunkSize(options.trials);
  std::vector<double> win_chunks(NumChunks(options.trials, chunk), 0.0);
  ParallelFor(
      options.pool, options.trials,
      [&](size_t begin, size_t end) {
        double wins = 0.0;
        for (size_t i = begin; i < end; ++i) {
          double a = in_stats[i];
          for (double b : out_stats) {
            if (a > b) {
              wins += 1.0;
            } else if (a == b) {
              wins += 0.5;
            }
          }
        }
        win_chunks[begin / chunk] = wins;
      },
      chunk);
  double wins = 0.0;
  for (double w : win_chunks) wins += w;
  result.auc = wins / (static_cast<double>(in_stats.size()) *
                       static_cast<double>(out_stats.size()));

  // Best-threshold advantage: sweep all observed statistics. Per-chunk
  // maxima merge in index order (max is exact, so this too is
  // thread-count-invariant).
  std::vector<double> thresholds = in_stats;
  thresholds.insert(thresholds.end(), out_stats.begin(), out_stats.end());
  std::sort(thresholds.begin(), thresholds.end());
  const size_t thr_chunk = DefaultChunkSize(thresholds.size());
  std::vector<double> adv_chunks(NumChunks(thresholds.size(), thr_chunk),
                                 -1.0);
  ParallelFor(
      options.pool, thresholds.size(),
      [&](size_t begin, size_t end) {
        double best = -1.0;
        for (size_t i = begin; i < end; ++i) {
          double thr = thresholds[i];
          double tpr = 0.0;
          double fpr = 0.0;
          for (double a : in_stats) tpr += a >= thr ? 1.0 : 0.0;
          for (double b : out_stats) fpr += b >= thr ? 1.0 : 0.0;
          tpr /= static_cast<double>(in_stats.size());
          fpr /= static_cast<double>(out_stats.size());
          best = std::max(best, tpr - fpr);
        }
        adv_chunks[begin / thr_chunk] = best;
      },
      thr_chunk);
  for (double a : adv_chunks) result.advantage = std::max(result.advantage, a);

  double sum_in = 0.0;
  for (double a : in_stats) sum_in += a;
  double sum_out = 0.0;
  for (double b : out_stats) sum_out += b;
  result.mean_in = sum_in / static_cast<double>(in_stats.size());
  result.mean_out = sum_out / static_cast<double>(out_stats.size());
  return result;
}

}  // namespace pso::membership
