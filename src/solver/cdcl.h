// Conflict-driven clause learning SAT engine (the "cdcl" backend).
//
// The census-scale successor to the chronological DPLL in sat.cc:
//  * two-watched-literal unit propagation (lazy watch repair, no
//    occurrence scans on satisfied clauses);
//  * first-UIP conflict analysis producing one learned clause per
//    conflict, asserted after a non-chronological backjump to the
//    second-highest decision level in the clause;
//  * VSIDS branching: per-variable activity bumped on conflict-side
//    variables and geometrically decayed, served from an indexed binary
//    max-heap with deterministic index tie-breaking;
//  * phase saving: a variable re-enters the search with the polarity it
//    last held;
//  * Luby-sequence restarts (unit kCdclRestartUnit conflicts);
//  * learned-clause DB reduction at restart boundaries once the learned
//    count passes an adaptive limit (lowest-activity half evicted;
//    binary and reason clauses are kept).
//
// Fully deterministic: no randomness anywhere, so same instance => same
// search on every run and every machine (pinned by cdcl_test).

#ifndef PSO_SOLVER_CDCL_H_
#define PSO_SOLVER_CDCL_H_

#include <cstddef>

namespace pso {

/// Multiplicative VSIDS decay: activities shrink by this factor per
/// conflict (implemented as a growing bump increment plus rescaling).
inline constexpr double kCdclVarDecay = 0.95;

/// Learned-clause activity decay per conflict.
inline constexpr double kCdclClauseDecay = 0.999;

/// Luby restart unit: restart i fires after kCdclRestartUnit * luby(2, i)
/// conflicts since the previous restart.
inline constexpr size_t kCdclRestartUnit = 100;

/// Learned-DB reduction threshold floor and growth: a reduction pass
/// (at a restart boundary) triggers once the learned count exceeds
/// max(kCdclReduceFloor, clauses / 3), and the limit grows by
/// kCdclReduceGrowth after every pass.
inline constexpr size_t kCdclReduceFloor = 2000;
inline constexpr double kCdclReduceGrowth = 1.5;

}  // namespace pso

#endif  // PSO_SOLVER_CDCL_H_
