// Pluggable LP solver backends.
//
// The LP decoder is the paper's workhorse attack (Theorem 1.1(ii) LP
// decoding), so the solver behind it is swappable: every backend consumes
// the same plain-data LpInstance and produces the same LpSolution /
// Status contract, and a process-wide registry selects the default at
// runtime (`--lp-backend=dense|sparse` on psoctl and the benches). The
// original dense tableau simplex survives as the "dense" backend — a
// differential oracle for the sparse revised-simplex rewrite — and any
// future external solver slots in through RegisterLpBackend without
// touching call sites.
//
// Model: minimize c^T x subject to per-constraint relations and variable
// bounds (lower finite, upper finite or +inf). Instances handed to a
// backend must be well-formed; LpProblem's builder and the lp_io decoder
// both guarantee that.

#ifndef PSO_SOLVER_LP_BACKEND_H_
#define PSO_SOLVER_LP_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pso {

class LpProblem;

/// Relation of a linear constraint.
enum class Relation { kLessEq, kGreaterEq, kEqual };

/// One simplex pivot, as recorded by the introspection trace: which
/// column entered, which basis variable left, and the objective after
/// the pivot. A replayable audit record of the solver's path. Column
/// numbering is backend-internal (structural columns first, then the
/// backend's slack/logical columns).
struct LpPivotStep {
  uint8_t phase = 2;        ///< 1 = feasibility phase, 2 = optimization.
  size_t iteration = 0;     ///< Global pivot index within the solve.
  size_t entering = 0;      ///< Column entering the basis.
  size_t leaving = 0;       ///< Basis variable leaving (pre-pivot).
  double objective = 0.0;   ///< Objective value after the pivot.
};

/// Outcome of an LP solve.
struct LpSolution {
  std::vector<double> values;  ///< Optimal variable assignment.
  double objective = 0.0;      ///< Optimal objective value.
  size_t iterations = 0;       ///< Simplex pivots performed.
  /// Pivot-by-pivot audit trail: the most recent kPivotTraceCapacity
  /// pivots (a bounded ring). Collected only while tracing is enabled
  /// (trace::Enabled()); empty otherwise, so the default path pays
  /// nothing.
  std::vector<LpPivotStep> pivot_trace;
};

/// Ring capacity of LpSolution::pivot_trace.
inline constexpr size_t kPivotTraceCapacity = 256;

/// A plain-data LP instance: the unit every backend consumes and the
/// lp_io codec round-trips. Build one through LpProblem (which validates)
/// or DecodeLpInstance (which validates harder).
struct LpInstance {
  struct Variable {
    double lower = 0.0;  ///< Finite.
    double upper = 0.0;  ///< Finite or +infinity; >= lower.
    double cost = 0.0;   ///< Finite.
  };
  struct Row {
    std::vector<std::pair<size_t, double>> coeffs;
    Relation rel = Relation::kLessEq;
    double rhs = 0.0;
  };
  std::vector<Variable> variables;
  std::vector<Row> rows;

  /// Builds the solver problem. An instance produced by a successful
  /// DecodeLpInstance is always well-formed, so the problem's
  /// build_status() is OK.
  LpProblem ToProblem() const;
};

/// Basis membership of one column, as snapshotted for warm starts.
enum class LpVarStatus : uint8_t {
  kAtLower = 0,  ///< Nonbasic at its lower bound.
  kAtUpper = 1,  ///< Nonbasic at its upper bound.
  kBasic = 2,    ///< In the basis.
};

/// A basis snapshot: one status per structural variable and one per row
/// logical. Produced by backends that support warm starts and fed back
/// into a later solve of a same-shaped (or grown) instance. A basis from
/// a *smaller* instance warm-starts a grown one: appended rows start with
/// their logical basic, appended variables start at their lower bound
/// (the natural state after AddConstraint/AddVariable).
struct LpBasis {
  std::vector<LpVarStatus> structurals;
  std::vector<LpVarStatus> logicals;

  bool empty() const { return structurals.empty() && logicals.empty(); }
};

/// Per-solve options. Both pointers are borrowed; null = off.
struct LpSolveOptions {
  /// Basis hint from a previous solve. Backends that cannot use it (or
  /// find it singular / mis-shaped) silently cold-start instead.
  const LpBasis* warm_start = nullptr;
  /// When non-null, a backend that supports warm starts writes the final
  /// basis here on an optimal solve (left untouched otherwise).
  LpBasis* final_basis = nullptr;
};

/// A solver backend. Implementations are stateless and cheap to build;
/// all per-solve state lives on the stack of Solve().
class LpBackend {
 public:
  virtual ~LpBackend() = default;

  /// Registry name, e.g. "dense" or "sparse".
  virtual const char* name() const = 0;

  /// Solves `model` to optimality. Returns kInfeasible when no point
  /// satisfies the constraints, kUnbounded when the objective improves
  /// without bound, and kInternal on iteration-limit exhaustion.
  [[nodiscard]] virtual Result<LpSolution> Solve(
      const LpInstance& model, const LpSolveOptions& options) const = 0;
};

/// The original dense two-phase tableau simplex ("dense").
std::unique_ptr<LpBackend> MakeDenseLpBackend();

/// The sparse revised simplex with an eta-updated factorized basis
/// ("sparse").
std::unique_ptr<LpBackend> MakeRevisedSimplexLpBackend();

using LpBackendFactory = std::unique_ptr<LpBackend> (*)();

/// Adds a backend to the registry (later registrations win on name
/// collision, so tests can shadow a built-in). Thread-safe.
void RegisterLpBackend(const std::string& name, LpBackendFactory factory);

/// Instantiates a registered backend; InvalidArgument for unknown names
/// (the message lists what is available).
[[nodiscard]] Result<std::unique_ptr<LpBackend>> MakeLpBackend(
    const std::string& name);

/// Registered backend names, registration order, built-ins first.
std::vector<std::string> LpBackendNames();

/// The backend LpProblem::Solve uses when none is named explicitly.
/// Starts as "sparse" (the hot path); SetDefaultLpBackend steers every
/// subsequent default-backend solve in the process (e.g. --lp-backend).
std::string DefaultLpBackendName();

/// Sets the process-wide default; InvalidArgument if `name` is not
/// registered. Thread-safe, but intended for startup (flag parsing).
[[nodiscard]] Status SetDefaultLpBackend(const std::string& name);

}  // namespace pso

#endif  // PSO_SOLVER_LP_BACKEND_H_
