// Binary LP-instance encoding/decoding.
//
// A compact little-endian wire format for the bounded-variable linear
// programs the reconstruction attacks build, so instances can be dumped
// from one run and replayed (or fuzzed) in another. The decoder treats
// its input as untrusted: every truncation, bad magic, non-finite value,
// out-of-range index, or cap violation is an InvalidArgument status,
// never an abort or an over-allocation.
//
// Layout (all integers little-endian):
//   byte[6]  magic "PSOLP1"
//   u32      num_vars      (<= kLpInstanceMaxVars)
//   u32      num_rows      (<= kLpInstanceMaxRows)
//   per variable: f64 lower, f64 upper, f64 cost
//     (lower finite, lower <= upper, upper may be +inf, cost finite)
//   per row:      u8 relation (0 <=, 1 >=, 2 ==), f64 rhs (finite),
//                 u32 nnz (<= num_vars), then nnz x (u32 index, f64 coeff)

#ifndef PSO_SOLVER_LP_IO_H_
#define PSO_SOLVER_LP_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "solver/lp.h"

namespace pso {

/// Decoder caps: a header declaring more than this is rejected before any
/// allocation happens.
inline constexpr uint32_t kLpInstanceMaxVars = 4096;
inline constexpr uint32_t kLpInstanceMaxRows = 16384;

/// Serializes `instance` into the wire format above.
std::string EncodeLpInstance(const LpInstance& instance);

/// Parses and fully validates one encoded instance.
[[nodiscard]] Result<LpInstance> DecodeLpInstance(const uint8_t* data, size_t size);

/// String-payload convenience overload.
[[nodiscard]] Result<LpInstance> DecodeLpInstance(const std::string& bytes);

}  // namespace pso

#endif  // PSO_SOLVER_LP_IO_H_
