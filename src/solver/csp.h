// Count-constraint CSP solver.
//
// This is the engine behind the census-table reconstruction experiment
// (Section 1's 2010-Decennial narrative, following the Garfinkel–Abowd–
// Martindale pipeline): a block's published tables become constraints
// "exactly c of the persons in this block match condition P", and the
// solver enumerates all person-assignments consistent with every table.
// A unique solution means the block is reconstructed exactly.
//
// Model: `num_vars` interchangeable variables (persons) over one shared
// abstract domain of `domain_size` values (full attribute combinations).
// Every constraint counts, over all variables, the values matching a
// boolean mask, and requires the count to land in [lo, hi] ([c, c] for
// exact tables; widened intervals encode noisy/DP tables and medians).
//
// Variables being interchangeable, the solver breaks permutation symmetry
// by enumerating non-decreasing value sequences; solutions are multisets.

#ifndef PSO_SOLVER_CSP_H_
#define PSO_SOLVER_CSP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pso {

/// Statistics from a CSP enumeration.
struct CspStats {
  size_t nodes = 0;      ///< Search-tree nodes visited.
  size_t solutions = 0;  ///< Solutions found (capped by the caller).
  bool complete = true;  ///< False if a node/solution cap stopped search.
};

/// Enumerates assignments of interchangeable variables under count
/// constraints (see file comment).
///
/// Malformed input (zero domain, mask arity mismatch, inverted or
/// negative count windows) does not abort: the first violation is
/// recorded and surfaced as an InvalidArgument status by build_status();
/// Enumerate/IsSatisfiable on a poisoned instance report no solutions
/// with `complete == false`, so untrusted instances hard-fail
/// recoverably instead of crashing the process.
class CountCsp {
 public:
  /// `num_vars` variables over a shared domain of `domain_size` values
  /// (must be positive; zero poisons build_status()).
  CountCsp(size_t num_vars, size_t domain_size);

  size_t num_vars() const { return num_vars_; }
  size_t domain_size() const { return domain_size_; }

  /// OK unless the constructor or a builder call above was handed a
  /// malformed instance; then the first violation, as InvalidArgument.
  const Status& build_status() const { return build_status_; }

  /// Requires: #{ vars assigned value v : match[v] } in [lo, hi].
  /// `match` must have domain_size entries and 0 <= lo <= hi; violations
  /// poison build_status().
  void AddCountConstraint(std::vector<bool> match, int64_t lo, int64_t hi);

  /// Exact form: count == c.
  void AddExactCountConstraint(std::vector<bool> match, int64_t c) {
    AddCountConstraint(std::move(match), c, c);
  }

  /// Enumerates solutions (each a non-decreasing vector of value indices,
  /// one per variable). Stops after `max_solutions` solutions or
  /// `max_nodes` search nodes; `stats` reports whether the search was
  /// exhaustive.
  std::vector<std::vector<size_t>> Enumerate(size_t max_solutions,
                                             size_t max_nodes,
                                             CspStats* stats) const;

  /// True iff at least one solution exists (bounded by `max_nodes`).
  bool IsSatisfiable(size_t max_nodes = 1000000) const;

 private:
  struct Constraint {
    std::vector<bool> match;
    int64_t lo;
    int64_t hi;
  };

  size_t num_vars_;
  size_t domain_size_;
  Status build_status_;
  std::vector<Constraint> constraints_;
};

}  // namespace pso

#endif  // PSO_SOLVER_CSP_H_
