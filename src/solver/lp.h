// LP problem builder and solve dispatch.
//
// The paper's reproduction band calls for "CBC/Gurobi or SAT solvers"; none
// are available offline, so libpso ships its own. LpProblem is the validated
// builder for the bounded-variable linear programs produced by LP-decoding
// reconstruction (Theorem 1.1(ii), Dwork–McSherry–Talwar LP decoding); the
// actual simplex lives behind the LpBackend interface (lp_backend.h), with
// two built-ins: "sparse" (revised simplex with a factorized basis — the
// default hot path) and "dense" (the original two-phase tableau, kept as a
// differential oracle).

#ifndef PSO_SOLVER_LP_H_
#define PSO_SOLVER_LP_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "solver/lp_backend.h"

namespace pso {

/// A linear program under construction.
///
/// Malformed input (non-finite or empty bounds, NaN costs/coefficients,
/// unknown variable indices) does not abort: the first violation is
/// recorded and surfaced as an InvalidArgument status by Solve(), so
/// untrusted instances (fuzzers, decoded files) can probe the builder
/// freely and still hard-fail with a recoverable Status.
class LpProblem {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  LpProblem() = default;

  /// Adds a variable with bounds [lb, ub] (ub may be kInfinity) and
  /// objective coefficient `cost`. Returns its index. Requires lb finite,
  /// lb <= ub, and cost finite; violations poison build_status().
  size_t AddVariable(double lb, double ub, double cost);

  /// Adds a constraint sum_i coeffs[i].second * x_{coeffs[i].first}
  /// `rel` rhs. Variable indices must already exist and coefficients and
  /// rhs must be finite; violations poison build_status().
  void AddConstraint(const std::vector<std::pair<size_t, double>>& coeffs,
                     Relation rel, double rhs);

  size_t num_variables() const { return instance_.variables.size(); }
  size_t num_constraints() const { return instance_.rows.size(); }

  /// The validated plain-data instance (what backends consume). Only
  /// meaningful while build_status() is OK.
  const LpInstance& instance() const { return instance_; }

  /// OK unless a builder call above was handed a malformed variable or
  /// constraint; then the first violation, as InvalidArgument.
  const Status& build_status() const { return build_status_; }

  /// Solves to optimality with the process default backend (see
  /// DefaultLpBackendName / --lp-backend). Returns the recorded
  /// build_status() error if the instance is malformed, kInfeasible if no
  /// feasible point exists, kUnbounded if the objective improves without
  /// bound (our decoding LPs are always bounded, so callers may treat it
  /// as a modeling error), and kInternal on iteration-limit exhaustion.
  [[nodiscard]] Result<LpSolution> Solve() const;

  /// As Solve(), with per-solve options (warm-start basis in, final basis
  /// out) for backends that support them.
  [[nodiscard]] Result<LpSolution> Solve(const LpSolveOptions& options) const;

  /// As Solve(options), on an explicit backend instance.
  [[nodiscard]] Result<LpSolution> SolveWith(
      const LpBackend& backend, const LpSolveOptions& options) const;

 private:
  LpInstance instance_;
  Status build_status_;
};

}  // namespace pso

#endif  // PSO_SOLVER_LP_H_
