// Dense two-phase primal simplex LP solver.
//
// The paper's reproduction band calls for "CBC/Gurobi or SAT solvers"; none
// are available offline, so libpso ships its own. This solver handles the
// bounded-variable linear programs produced by LP-decoding reconstruction
// (Theorem 1.1(ii), Dwork–McSherry–Talwar LP decoding) at the instance
// sizes our benches use (hundreds of variables/constraints, dense).
//
// Model: minimize c^T x subject to per-constraint relations and variable
// bounds. Internally variables are shifted to x' >= 0, upper bounds become
// rows, and a two-phase tableau simplex with Bland's rule runs to
// optimality (Bland guarantees termination).

#ifndef PSO_SOLVER_LP_H_
#define PSO_SOLVER_LP_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"

namespace pso {

/// Relation of a linear constraint.
enum class Relation { kLessEq, kGreaterEq, kEqual };

/// One simplex pivot, as recorded by the introspection trace: which
/// column entered, which basis variable left, and the tableau objective
/// after the pivot. A replayable audit record of the solver's path.
struct LpPivotStep {
  uint8_t phase = 2;        ///< 1 = feasibility phase, 2 = optimization.
  size_t iteration = 0;     ///< Global pivot index within the solve.
  size_t entering = 0;      ///< Column entering the basis.
  size_t leaving = 0;       ///< Basis variable leaving (pre-pivot).
  double objective = 0.0;   ///< Tableau objective value after the pivot.
};

/// Outcome of an LP solve.
struct LpSolution {
  std::vector<double> values;  ///< Optimal variable assignment.
  double objective = 0.0;      ///< Optimal objective value.
  size_t iterations = 0;       ///< Simplex pivots performed.
  /// Pivot-by-pivot audit trail: the most recent kPivotTraceCapacity
  /// pivots (a bounded ring). Collected only while tracing is enabled
  /// (trace::Enabled()); empty otherwise, so the default path pays
  /// nothing.
  std::vector<LpPivotStep> pivot_trace;
};

/// Ring capacity of LpSolution::pivot_trace.
inline constexpr size_t kPivotTraceCapacity = 256;

/// A linear program under construction.
///
/// Malformed input (non-finite or empty bounds, NaN costs/coefficients,
/// unknown variable indices) does not abort: the first violation is
/// recorded and surfaced as an InvalidArgument status by Solve(), so
/// untrusted instances (fuzzers, decoded files) can probe the builder
/// freely and still hard-fail with a recoverable Status.
class LpProblem {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  LpProblem() = default;

  /// Adds a variable with bounds [lb, ub] (ub may be kInfinity) and
  /// objective coefficient `cost`. Returns its index. Requires lb finite,
  /// lb <= ub, and cost finite; violations poison build_status().
  size_t AddVariable(double lb, double ub, double cost);

  /// Adds a constraint sum_i coeffs[i].second * x_{coeffs[i].first}
  /// `rel` rhs. Variable indices must already exist and coefficients and
  /// rhs must be finite; violations poison build_status().
  void AddConstraint(const std::vector<std::pair<size_t, double>>& coeffs,
                     Relation rel, double rhs);

  size_t num_variables() const { return lower_.size(); }
  size_t num_constraints() const { return rows_.size(); }

  /// OK unless a builder call above was handed a malformed variable or
  /// constraint; then the first violation, as InvalidArgument.
  const Status& build_status() const { return build_status_; }

  /// Solves to optimality. Returns the recorded build_status() error if
  /// the instance is malformed, kInfeasible if phase 1 cannot reach a
  /// feasible basis, kUnbounded if the objective improves without bound
  /// (our decoding LPs are always bounded, so callers may treat it as a
  /// modeling error), and kInternal on iteration-limit exhaustion.
  [[nodiscard]] Result<LpSolution> Solve() const;

 private:
  struct Row {
    std::vector<std::pair<size_t, double>> coeffs;
    Relation rel;
    double rhs;
  };

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<Row> rows_;
  Status build_status_;
};

}  // namespace pso

#endif  // PSO_SOLVER_LP_H_
