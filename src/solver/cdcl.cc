#include "solver/cdcl.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/sat_backend.h"
#include "solver/sat_internal.h"

namespace pso {

namespace {

using sat_internal::Assign;
using sat_internal::kMaxSatInstants;

constexpr size_t kNoReason = static_cast<size_t>(-1);

// Heartbeat cadence in work units (decisions + conflicts). A work-count
// boundary, never a timer, so heartbeats replay deterministically.
constexpr uint64_t kCdclProgressEvery = 64;

// luby(2, x): the reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 1 1 2
// 4 8 ... governing the restart schedule.
size_t Luby(size_t x) {
  // Locate the finished subsequence of size 2^seq - 1 containing x.
  size_t size = 1;
  size_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return size_t{1} << seq;
}

struct Clause {
  std::vector<Lit> lits;
  double activity = 0.0;  // learned clauses only
  bool learned = false;
};

// Indexed binary max-heap over variables ordered by (activity, then the
// LOWER index on ties) — the deterministic VSIDS order. `positions` maps
// a variable to its slot, or kNotInHeap.
class VsidsHeap {
 public:
  static constexpr size_t kNotInHeap = static_cast<size_t>(-1);

  VsidsHeap(uint32_t num_vars, const std::vector<double>& activity)
      : activity_(activity), positions_(num_vars, kNotInHeap) {
    heap_.reserve(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v) Insert(v);
  }

  bool empty() const { return heap_.empty(); }
  bool contains(uint32_t v) const { return positions_[v] != kNotInHeap; }

  void Insert(uint32_t v) {
    if (contains(v)) return;
    positions_[v] = heap_.size();
    heap_.push_back(v);
    SiftUp(positions_[v]);
  }

  uint32_t PopMax() {
    uint32_t top = heap_[0];
    Swap(0, heap_.size() - 1);
    positions_[top] = kNotInHeap;
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Restores heap order around `v` after its activity grew.
  void Bumped(uint32_t v) {
    if (contains(v)) SiftUp(positions_[v]);
  }

 private:
  // Strict "a orders before b": higher activity first, lower index on a
  // tie — byte-identical runs need a total order.
  bool Before(uint32_t a, uint32_t b) const {
    if (activity_[a] != activity_[b]) return activity_[a] > activity_[b];
    return a < b;
  }

  void Swap(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    positions_[heap_[i]] = i;
    positions_[heap_[j]] = j;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Before(heap_[i], heap_[parent])) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    for (;;) {
      size_t left = 2 * i + 1;
      size_t right = left + 1;
      size_t best = i;
      if (left < heap_.size() && Before(heap_[left], heap_[best])) {
        best = left;
      }
      if (right < heap_.size() && Before(heap_[right], heap_[best])) {
        best = right;
      }
      if (best == i) break;
      Swap(i, best);
      i = best;
    }
  }

  const std::vector<double>& activity_;
  std::vector<size_t> positions_;
  std::vector<uint32_t> heap_;
};

// All per-solve state; the backend object itself stays stateless.
class CdclSearch {
 public:
  CdclSearch(const SatInstance& inst, const SatSolveOptions& options)
      : inst_(inst),
        options_(options),
        values_(inst.num_vars, Assign::kUnset),
        levels_(inst.num_vars, 0),
        reasons_(inst.num_vars, kNoReason),
        saved_phase_(inst.num_vars, true),
        seen_(inst.num_vars, false),
        activity_(inst.num_vars, 0.0),
        watches_(2 * static_cast<size_t>(inst.num_vars)) {}

  trace::RingBuffer<SatStep>* step_ring = nullptr;
  sat_internal::SearchStats stats;
  size_t instants_emitted = 0;

  Result<SatSolution> Run() {
    SatSolution out;
    if (inst_.trivially_unsat) {
      out.satisfiable = false;
      Finish(out);
      return out;
    }

    // Load the instance: units enqueue at the root, larger clauses get
    // their first two literals watched. Activities seed from occurrence
    // counts — the same static order DPLL branches on — so the search
    // starts informed and VSIDS refines from conflicts.
    for (const std::vector<Lit>& c : inst_.clauses) {
      for (Lit l : c) activity_[LitVar(l)] += 1.0;
      if (c.size() == 1) {
        if (!RootEnqueue(c[0])) {
          out.satisfiable = false;
          Finish(out);
          return out;
        }
      } else {
        clauses_.push_back(Clause{c, 0.0, false});
        Watch(clauses_.size() - 1);
      }
    }
    if (Propagate() != kNoReason) {
      out.satisfiable = false;
      Finish(out);
      return out;
    }

    VsidsHeap heap(inst_.num_vars, activity_);
    bump_heap_ = &heap;
    size_t conflicts_until_restart = kCdclRestartUnit * Luby(0);
    size_t conflicts_this_restart = 0;
    size_t reduce_limit =
        std::max(kCdclReduceFloor, inst_.clauses.size() / 3);
    progress::ScopedSolve solve_guard;
    progress::ProgressReporter progress("cdcl", kCdclProgressEvery);

    for (;;) {
      size_t confl = Propagate();
      if (confl != kNoReason) {
        ++stats.conflicts;
        ++conflicts_this_restart;
        progress.Tick(
            stats.decisions + stats.conflicts,
            {{"conflicts", static_cast<double>(stats.conflicts)},
             {"decisions", static_cast<double>(stats.decisions)},
             {"learned", static_cast<double>(stats.learned_clauses)},
             {"restarts", static_cast<double>(stats.restarts)}});
        if (DecisionLevel() == 0) {
          out.satisfiable = false;  // conflict with no decisions: UNSAT
          Finish(out);
          return out;
        }
        std::vector<Lit> learnt;
        size_t backjump_level = 0;
        Analyze(confl, &learnt, &backjump_level);
        stats.backjump_levels += DecisionLevel() - backjump_level;
        ++stats.backtracks;
        EmitConflictInstant(learnt.size(), backjump_level);
        BacktrackTo(backjump_level, &heap);
        RecordStep(SatStep::Kind::kBacktrack, LitVar(learnt[0]),
                   LitPositive(learnt[0]), trail_.size());
        if (learnt.size() == 1) {
          // Learned unit: asserted at the root, permanent. The UIP
          // variable was just unassigned by the backjump, so the enqueue
          // cannot itself conflict.
          PSO_CHECK(backjump_level == 0);
          ++stats.propagations;
          RecordStep(SatStep::Kind::kPropagation, LitVar(learnt[0]),
                     LitPositive(learnt[0]), trail_.size());
          const bool asserted = RootEnqueue(learnt[0]);
          PSO_CHECK_MSG(asserted, "learned unit conflicted at the root");
        } else {
          clauses_.push_back(Clause{std::move(learnt), clause_inc_, true});
          ++stats.learned_clauses;
          Watch(clauses_.size() - 1);
          // The learned clause is asserting: lits[0] is forced now.
          const Clause& c = clauses_.back();
          ++stats.propagations;
          RecordStep(SatStep::Kind::kPropagation, LitVar(c.lits[0]),
                     LitPositive(c.lits[0]), trail_.size());
          EnqueueLit(c.lits[0], clauses_.size() - 1);
        }
        DecayActivities();
        continue;
      }

      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats.restarts;
        conflicts_this_restart = 0;
        conflicts_until_restart = kCdclRestartUnit * Luby(stats.restarts);
        EmitRestartInstant();
        BacktrackTo(0, &heap);
        if (stats.learned_clauses >= reduce_limit) {
          ReduceLearnedDb();
          reduce_limit = static_cast<size_t>(
              static_cast<double>(reduce_limit) * kCdclReduceGrowth);
        }
        continue;
      }

      // Pick the next branch variable; none left means a full model.
      uint32_t decision_var = 0;
      bool found = false;
      while (!heap.empty()) {
        uint32_t v = heap.PopMax();
        if (values_[v] == Assign::kUnset) {
          decision_var = v;
          found = true;
          break;
        }
      }
      if (!found) {
        out.satisfiable = true;
        out.assignment.resize(inst_.num_vars);
        for (uint32_t v = 0; v < inst_.num_vars; ++v) {
          out.assignment[v] = (values_[v] == Assign::kTrue);
        }
        Finish(out);
        return out;
      }

      ++stats.decisions;
      progress.Tick(
          stats.decisions + stats.conflicts,
          {{"conflicts", static_cast<double>(stats.conflicts)},
           {"decisions", static_cast<double>(stats.decisions)},
           {"learned", static_cast<double>(stats.learned_clauses)},
           {"restarts", static_cast<double>(stats.restarts)}});
      if (options_.max_decisions > 0 &&
          stats.decisions > options_.max_decisions) {
        PSO_LOG(WARN)
                .Field("engine", "cdcl")
                .Field("budget", static_cast<uint64_t>(options_.max_decisions))
                .Field("conflicts", static_cast<uint64_t>(stats.conflicts))
                .Field("learned",
                       static_cast<uint64_t>(stats.learned_clauses))
            << "SAT decision budget exceeded";
        return Status::ResourceExhausted(
            StrFormat("SAT decision budget of %zu exceeded (cdcl)",
                      options_.max_decisions));
      }
      RecordStep(SatStep::Kind::kDecision, decision_var,
                 saved_phase_[decision_var], trail_.size());
      EmitDecisionInstant(decision_var);
      trail_limits_.push_back(trail_.size());
      EnqueueLit(MakeLit(decision_var, saved_phase_[decision_var]),
                 kNoReason);
    }
  }

 private:
  size_t DecisionLevel() const { return trail_limits_.size(); }

  bool LitIsTrue(Lit l) const {
    Assign v = values_[LitVar(l)];
    if (v == Assign::kUnset) return false;
    return (v == Assign::kTrue) == LitPositive(l);
  }

  bool LitIsFalse(Lit l) const {
    Assign v = values_[LitVar(l)];
    if (v == Assign::kUnset) return false;
    return (v == Assign::kTrue) != LitPositive(l);
  }

  // Registers the first two literals of clause `ci` as its watches.
  void Watch(size_t ci) {
    const Clause& c = clauses_[ci];
    watches_[c.lits[0]].push_back(ci);
    watches_[c.lits[1]].push_back(ci);
  }

  // Assigns `l` true at the current decision level with `reason`.
  void EnqueueLit(Lit l, size_t reason) {
    uint32_t v = LitVar(l);
    values_[v] = LitPositive(l) ? Assign::kTrue : Assign::kFalse;
    saved_phase_[v] = LitPositive(l);
    levels_[v] = DecisionLevel();
    reasons_[v] = reason;
    trail_.push_back(l);
  }

  // Level-0 assignment (initial units, learned units); false on conflict.
  bool RootEnqueue(Lit l) {
    if (LitIsTrue(l)) return true;
    if (LitIsFalse(l)) {
      ++stats.conflicts;
      return false;
    }
    EnqueueLit(l, kNoReason);
    return true;
  }

  // Two-watched-literal propagation over the trail suffix. Returns the
  // index of a conflicting clause, or kNoReason when a fixpoint is
  // reached without conflict.
  size_t Propagate() {
    while (qhead_ < trail_.size()) {
      Lit assigned = trail_[qhead_++];
      Lit falsified = LitNegate(assigned);
      std::vector<size_t>& watch_list = watches_[falsified];
      size_t keep = 0;
      for (size_t i = 0; i < watch_list.size(); ++i) {
        size_t ci = watch_list[i];
        Clause& c = clauses_[ci];
        // Normalize: the falsified watch sits at lits[1].
        if (c.lits[0] == falsified) std::swap(c.lits[0], c.lits[1]);
        if (LitIsTrue(c.lits[0])) {
          watch_list[keep++] = ci;  // satisfied; keep the watch
          continue;
        }
        // Hunt for a replacement watch among the tail literals.
        bool rewatched = false;
        for (size_t k = 2; k < c.lits.size(); ++k) {
          if (!LitIsFalse(c.lits[k])) {
            std::swap(c.lits[1], c.lits[k]);
            watches_[c.lits[1]].push_back(ci);
            rewatched = true;
            break;
          }
        }
        if (rewatched) continue;  // watch moved; drop from this list
        watch_list[keep++] = ci;  // stays watched here either way
        if (LitIsFalse(c.lits[0])) {
          // Conflict: restore the untraversed suffix and bail out.
          for (size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          qhead_ = trail_.size();
          return ci;
        }
        // Unit: lits[0] is forced.
        ++stats.propagations;
        RecordStep(SatStep::Kind::kPropagation, LitVar(c.lits[0]),
                   LitPositive(c.lits[0]), trail_.size());
        EnqueueLit(c.lits[0], ci);
      }
      watch_list.resize(keep);
    }
    return kNoReason;
  }

  // First-UIP conflict analysis. Fills `out_learnt` with the learned
  // clause — the asserting literal first, a highest-remaining-level
  // literal second (the backjump watch) — and `out_level` with the
  // non-chronological backjump target.
  void Analyze(size_t confl, std::vector<Lit>* out_learnt,
               size_t* out_level) {
    out_learnt->clear();
    out_learnt->push_back(0);  // slot for the asserting literal
    size_t path_count = 0;
    Lit uip = 0;
    size_t index = trail_.size();
    size_t reason = confl;
    bool first = true;

    // Walk the implication graph backwards from the conflict, marking
    // current-level variables until only the first UIP remains.
    for (;;) {
      PSO_CHECK_MSG(reason != kNoReason, "conflict analysis lost its path");
      Clause& c = clauses_[reason];
      if (c.learned) BumpClause(reason);
      // On the first round every clause literal seeds the cut; on later
      // rounds lits[0] is the resolved-on literal and is skipped.
      for (size_t k = first ? 0 : 1; k < c.lits.size(); ++k) {
        Lit q = c.lits[k];
        uint32_t v = LitVar(q);
        if (seen_[v] || levels_[v] == 0) continue;
        seen_[v] = true;
        BumpVar(v);
        if (levels_[v] == DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt->push_back(q);
        }
      }
      first = false;
      // Next marked literal on the trail.
      do {
        --index;
      } while (!seen_[LitVar(trail_[index])]);
      uip = trail_[index];
      seen_[LitVar(uip)] = false;
      --path_count;
      if (path_count == 0) break;
      reason = reasons_[LitVar(uip)];
    }
    (*out_learnt)[0] = LitNegate(uip);

    // Backjump target: the highest level among the non-asserting
    // literals (0 for a learned unit). Keep that literal at slot 1 so it
    // becomes the second watch.
    *out_level = 0;
    for (size_t k = 1; k < out_learnt->size(); ++k) {
      uint32_t v = LitVar((*out_learnt)[k]);
      if (levels_[v] > *out_level) {
        *out_level = levels_[v];
        std::swap((*out_learnt)[1], (*out_learnt)[k]);
      }
    }
    for (Lit l : *out_learnt) seen_[LitVar(l)] = false;
  }

  // Unassigns everything above `level`, re-inserting freed variables
  // into the branch heap (phases stay saved).
  void BacktrackTo(size_t level, VsidsHeap* heap) {
    if (DecisionLevel() <= level) return;
    size_t keep = trail_limits_[level];
    for (size_t i = trail_.size(); i > keep; --i) {
      uint32_t v = LitVar(trail_[i - 1]);
      values_[v] = Assign::kUnset;
      reasons_[v] = kNoReason;
      heap->Insert(v);
    }
    trail_.resize(keep);
    trail_limits_.resize(level);
    qhead_ = keep;
  }

  void BumpVar(uint32_t v) {
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
      for (double& a : activity_) a *= 1e-100;
      var_inc_ *= 1e-100;
    }
    if (bump_heap_ != nullptr) bump_heap_->Bumped(v);
  }

  void BumpClause(size_t ci) {
    clauses_[ci].activity += clause_inc_;
    if (clauses_[ci].activity > 1e20) {
      for (Clause& c : clauses_) {
        if (c.learned) c.activity *= 1e-20;
      }
      clause_inc_ *= 1e-20;
    }
  }

  void DecayActivities() {
    var_inc_ /= kCdclVarDecay;
    clause_inc_ /= kCdclClauseDecay;
  }

  // Evicts the lowest-activity half of the learned clauses (binary and
  // reason clauses are kept) and rebuilds the watch lists over the
  // compacted clause vector. Runs only at level 0 (restart boundaries).
  void ReduceLearnedDb() {
    PSO_CHECK(DecisionLevel() == 0);
    std::vector<size_t> learned_idx;
    for (size_t ci = 0; ci < clauses_.size(); ++ci) {
      if (clauses_[ci].learned && clauses_[ci].lits.size() > 2 &&
          !Locked(ci)) {
        learned_idx.push_back(ci);
      }
    }
    // Lowest activity first; index ascending on ties (determinism).
    std::sort(learned_idx.begin(), learned_idx.end(),
              [this](size_t a, size_t b) {
                if (clauses_[a].activity != clauses_[b].activity) {
                  return clauses_[a].activity < clauses_[b].activity;
                }
                return a < b;
              });
    std::vector<bool> drop(clauses_.size(), false);
    for (size_t i = 0; i < learned_idx.size() / 2; ++i) {
      drop[learned_idx[i]] = true;
    }

    // Compact, remembering old -> new so variable reasons stay valid.
    std::vector<size_t> remap(clauses_.size(), kNoReason);
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (size_t ci = 0; ci < clauses_.size(); ++ci) {
      if (drop[ci]) continue;
      remap[ci] = kept.size();
      kept.push_back(std::move(clauses_[ci]));
    }
    clauses_ = std::move(kept);
    for (uint32_t v = 0; v < inst_.num_vars; ++v) {
      if (reasons_[v] != kNoReason) reasons_[v] = remap[reasons_[v]];
    }
    for (std::vector<size_t>& wl : watches_) wl.clear();
    for (size_t ci = 0; ci < clauses_.size(); ++ci) Watch(ci);
  }

  // A clause that is the recorded reason of an assigned variable must
  // survive DB reduction.
  bool Locked(size_t ci) const {
    Lit first = clauses_[ci].lits[0];
    return values_[LitVar(first)] != Assign::kUnset &&
           reasons_[LitVar(first)] == ci;
  }

  void RecordStep(SatStep::Kind kind, uint32_t var, bool value,
                  size_t trail_depth) {
    if (step_ring != nullptr) {
      step_ring->Push(SatStep{kind, var, value, trail_depth});
    }
  }

  bool InstantBudget() {
    if (step_ring == nullptr || !trace::Enabled()) return false;
    if (instants_emitted >= kMaxSatInstants) return false;
    ++instants_emitted;
    return true;
  }

  void EmitDecisionInstant(uint32_t var) {
    if (!InstantBudget()) return;
    trace::Instant("sat.decision",
                   {{"var", std::to_string(var)},
                    {"depth", std::to_string(DecisionLevel())}});
  }

  void EmitConflictInstant(size_t learnt_size, size_t backjump_level) {
    if (!InstantBudget()) return;
    trace::Instant("sat.conflict",
                   {{"level", std::to_string(DecisionLevel())},
                    {"backjump", std::to_string(backjump_level)},
                    {"learnt_size", std::to_string(learnt_size)}});
  }

  void EmitRestartInstant() {
    if (!InstantBudget()) return;
    trace::Instant("sat.restart",
                   {{"conflicts", std::to_string(stats.conflicts)},
                    {"learned", std::to_string(stats.learned_clauses)}});
  }

  void Finish(SatSolution& out) {
    stats.CopyTo(out);
    if (step_ring != nullptr) out.step_trace = step_ring->Drain();
  }

  const SatInstance& inst_;
  const SatSolveOptions& options_;
  std::vector<Assign> values_;
  std::vector<size_t> levels_;
  std::vector<size_t> reasons_;
  std::vector<bool> saved_phase_;
  std::vector<bool> seen_;
  std::vector<double> activity_;
  std::vector<std::vector<size_t>> watches_;  // literal -> watching clauses
  std::vector<Clause> clauses_;
  std::vector<Lit> trail_;
  std::vector<size_t> trail_limits_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  // Set once the branch heap exists so VSIDS bumps restore heap order.
  VsidsHeap* bump_heap_ = nullptr;
};

class CdclBackend final : public SatBackend {
 public:
  const char* name() const override { return "cdcl"; }

  Result<SatSolution> Solve(const SatInstance& inst,
                            const SatSolveOptions& options) const override {
    CdclSearch search(inst, options);

    trace::Span solve_span("sat.solve");
    std::unique_ptr<trace::RingBuffer<SatStep>> step_ring;
    if (solve_span.active()) {
      solve_span.Arg("backend", "cdcl");
      solve_span.Arg("vars", std::to_string(inst.num_vars));
      solve_span.Arg("clauses", std::to_string(inst.clauses.size()));
      step_ring =
          std::make_unique<trace::RingBuffer<SatStep>>(kSatStepTraceCapacity);
      search.step_ring = step_ring.get();
    }

    sat_internal::MetricsPublisher publish{&search.stats, "sat.cdcl.solves",
                                           /*cdcl=*/true};
    return search.Run();
  }
};

}  // namespace

std::unique_ptr<SatBackend> MakeCdclSatBackend() {
  return std::make_unique<CdclBackend>();
}

}  // namespace pso
