#include "solver/lp_io.h"

#include <cmath>
#include <cstring>

#include "common/str_util.h"

namespace pso {

namespace {

constexpr char kMagic[6] = {'P', 'S', 'O', 'L', 'P', '1'};

// Bounds-checked little-endian cursor over the encoded payload.
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadBytes(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU8(uint8_t* out) { return ReadBytes(out, 1); }
  bool ReadU32(uint32_t* out) { return ReadBytes(out, 4); }
  bool ReadF64(double* out) { return ReadBytes(out, 8); }

  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Status Truncated(const char* what, size_t at) {
  return Status::InvalidArgument(
      StrFormat("truncated input: %s at byte %zu", what, at));
}

}  // namespace

std::string EncodeLpInstance(const LpInstance& instance) {
  std::string out(kMagic, sizeof(kMagic));
  AppendU32(&out, static_cast<uint32_t>(instance.variables.size()));
  AppendU32(&out, static_cast<uint32_t>(instance.rows.size()));
  for (const LpInstance::Variable& v : instance.variables) {
    AppendF64(&out, v.lower);
    AppendF64(&out, v.upper);
    AppendF64(&out, v.cost);
  }
  for (const LpInstance::Row& r : instance.rows) {
    out.push_back(static_cast<char>(r.rel));
    AppendF64(&out, r.rhs);
    AppendU32(&out, static_cast<uint32_t>(r.coeffs.size()));
    for (const auto& [idx, coeff] : r.coeffs) {
      AppendU32(&out, static_cast<uint32_t>(idx));
      AppendF64(&out, coeff);
    }
  }
  return out;
}

Result<LpInstance> DecodeLpInstance(const uint8_t* data, size_t size) {
  ByteCursor cur(data, size);
  char magic[sizeof(kMagic)];
  if (!cur.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a PSOLP1 instance");
  }
  uint32_t num_vars = 0;
  uint32_t num_rows = 0;
  if (!cur.ReadU32(&num_vars) || !cur.ReadU32(&num_rows)) {
    return Truncated("header counts", cur.pos());
  }
  if (num_vars > kLpInstanceMaxVars) {
    return Status::InvalidArgument(StrFormat(
        "declared %u variables exceeds the cap of %u", num_vars,
        kLpInstanceMaxVars));
  }
  if (num_rows > kLpInstanceMaxRows) {
    return Status::InvalidArgument(StrFormat(
        "declared %u rows exceeds the cap of %u", num_rows,
        kLpInstanceMaxRows));
  }

  LpInstance out;
  out.variables.reserve(num_vars);
  for (uint32_t i = 0; i < num_vars; ++i) {
    LpInstance::Variable v;
    if (!cur.ReadF64(&v.lower) || !cur.ReadF64(&v.upper) ||
        !cur.ReadF64(&v.cost)) {
      return Truncated("variable record", cur.pos());
    }
    if (!std::isfinite(v.lower)) {
      return Status::InvalidArgument(
          StrFormat("variable %u: lower bound not finite", i));
    }
    if (std::isnan(v.upper) || v.lower > v.upper) {
      return Status::InvalidArgument(
          StrFormat("variable %u: empty bounds", i));
    }
    if (!std::isfinite(v.cost)) {
      return Status::InvalidArgument(
          StrFormat("variable %u: cost not finite", i));
    }
    out.variables.push_back(v);
  }

  out.rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    LpInstance::Row row;
    uint8_t rel = 0;
    uint32_t nnz = 0;
    if (!cur.ReadU8(&rel) || !cur.ReadF64(&row.rhs) || !cur.ReadU32(&nnz)) {
      return Truncated("row header", cur.pos());
    }
    if (rel > 2) {
      return Status::InvalidArgument(
          StrFormat("row %u: unknown relation code %u", r, rel));
    }
    row.rel = static_cast<Relation>(rel);
    if (!std::isfinite(row.rhs)) {
      return Status::InvalidArgument(
          StrFormat("row %u: right-hand side not finite", r));
    }
    if (nnz > num_vars) {
      return Status::InvalidArgument(StrFormat(
          "row %u: %u coefficients over %u variables", r, nnz, num_vars));
    }
    row.coeffs.reserve(nnz);
    for (uint32_t k = 0; k < nnz; ++k) {
      uint32_t idx = 0;
      double coeff = 0.0;
      if (!cur.ReadU32(&idx) || !cur.ReadF64(&coeff)) {
        return Truncated("coefficient", cur.pos());
      }
      if (idx >= num_vars) {
        return Status::InvalidArgument(StrFormat(
            "row %u: coefficient references unknown variable %u", r, idx));
      }
      if (!std::isfinite(coeff)) {
        return Status::InvalidArgument(
            StrFormat("row %u: coefficient %u not finite", r, k));
      }
      row.coeffs.emplace_back(idx, coeff);
    }
    out.rows.push_back(std::move(row));
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("%zu trailing bytes after the last row",
                  size - cur.pos()));
  }
  return out;
}

Result<LpInstance> DecodeLpInstance(const std::string& bytes) {
  return DecodeLpInstance(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size());
}

}  // namespace pso
