#include "solver/dimacs.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace pso {

namespace {

// Token scanner over whitespace-separated fields, tracking the line
// number for diagnostics. DIMACS is line-oriented only for comments;
// clause literals may wrap, so tokenizing the whole body is correct.
class TokenScanner {
 public:
  explicit TokenScanner(const std::string& text) : text_(text) {}

  /// Advances to the next token; false at end of input. Skips comment
  /// lines ('c' ... end of line) when `skip_comments`.
  bool Next(std::string* token) {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == 'c' && at_line_start_) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size()) return false;
    at_line_start_ = false;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    *token = text_.substr(start, pos_ - start);
    return true;
  }

  size_t line() const { return line_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  bool at_line_start_ = true;
};

// Parses a whole-token decimal integer into `out`; false on any junk,
// overflow included (strtoll saturates, which the range checks catch).
bool ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

Result<DimacsCnf> ParseDimacsCnf(const std::string& text) {
  TokenScanner scan(text);
  std::string token;

  // Header: "p cnf <vars> <clauses>".
  if (!scan.Next(&token)) {
    return Status::InvalidArgument("missing 'p cnf' header");
  }
  if (token != "p") {
    return Status::InvalidArgument(StrFormat(
        "line %zu: expected 'p cnf' header, got '%s'", scan.line(),
        token.c_str()));
  }
  if (!scan.Next(&token) || token != "cnf") {
    return Status::InvalidArgument(
        StrFormat("line %zu: header format is not 'cnf'", scan.line()));
  }
  int64_t declared_vars = 0;
  int64_t declared_clauses = 0;
  if (!scan.Next(&token) || !ParseInt64(token, &declared_vars) ||
      declared_vars < 0) {
    return Status::InvalidArgument(
        StrFormat("line %zu: malformed variable count", scan.line()));
  }
  if (!scan.Next(&token) || !ParseInt64(token, &declared_clauses) ||
      declared_clauses < 0) {
    return Status::InvalidArgument(
        StrFormat("line %zu: malformed clause count", scan.line()));
  }
  if (declared_vars > static_cast<int64_t>(kDimacsMaxVars)) {
    return Status::InvalidArgument(
        StrFormat("declared %lld variables exceeds the cap of %u",
                  (long long)declared_vars, kDimacsMaxVars));
  }
  if (declared_clauses > static_cast<int64_t>(kDimacsMaxClauses)) {
    return Status::InvalidArgument(
        StrFormat("declared %lld clauses exceeds the cap of %zu",
                  (long long)declared_clauses, kDimacsMaxClauses));
  }

  DimacsCnf cnf;
  cnf.num_vars = static_cast<uint32_t>(declared_vars);
  cnf.clauses.reserve(static_cast<size_t>(declared_clauses));

  std::vector<Lit> clause;
  while (scan.Next(&token)) {
    int64_t lit = 0;
    if (!ParseInt64(token, &lit)) {
      return Status::InvalidArgument(StrFormat(
          "line %zu: '%s' is not a literal", scan.line(), token.c_str()));
    }
    if (lit == 0) {
      if (cnf.clauses.size() ==
          static_cast<size_t>(declared_clauses)) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: more clauses than the %lld declared", scan.line(),
            (long long)declared_clauses));
      }
      cnf.clauses.push_back(std::move(clause));
      clause.clear();
      continue;
    }
    // Range-check before negating: the token -9223372036854775808 parses
    // to INT64_MIN, whose negation overflows (UB). Any magnitude beyond
    // the declared variable count is equally malformed, so reject on the
    // raw value and only then form the absolute value.
    if (lit < -declared_vars || lit > declared_vars) {
      return Status::InvalidArgument(StrFormat(
          "line %zu: literal %lld outside the %lld declared variables",
          scan.line(), (long long)lit, (long long)declared_vars));
    }
    int64_t var = lit < 0 ? -lit : lit;
    clause.push_back(
        MakeLit(static_cast<uint32_t>(var - 1), /*positive=*/lit > 0));
  }
  if (!clause.empty()) {
    return Status::InvalidArgument("last clause is not '0'-terminated");
  }
  if (cnf.clauses.size() != static_cast<size_t>(declared_clauses)) {
    return Status::InvalidArgument(
        StrFormat("found %zu clauses, header declared %lld",
                  cnf.clauses.size(), (long long)declared_clauses));
  }
  return cnf;
}

std::string ToDimacs(const DimacsCnf& cnf) {
  std::string out = StrFormat("p cnf %u %zu\n", cnf.num_vars,
                              cnf.clauses.size());
  for (const std::vector<Lit>& clause : cnf.clauses) {
    for (Lit l : clause) {
      int64_t v = static_cast<int64_t>(LitVar(l)) + 1;
      out += StrFormat("%lld ", (long long)(LitPositive(l) ? v : -v));
    }
    out += "0\n";
  }
  return out;
}

SatSolver BuildSatSolver(const DimacsCnf& cnf) {
  SatSolver solver(cnf.num_vars);
  for (const std::vector<Lit>& clause : cnf.clauses) {
    solver.AddClause(clause);
  }
  return solver;
}

}  // namespace pso
