// Sparse revised simplex ("sparse" LP backend) — shared tuning constants.
//
// The backend itself is reached through lp_backend.h
// (MakeRevisedSimplexLpBackend / the "sparse" registry name); this header
// only publishes the tuning constants tests need to craft instances that
// cross specific solver regimes (e.g. enough pivots to force a periodic
// refactorization, or a degenerate streak long enough to trip the
// Bland's-rule fallback).
//
// Algorithm sketch (details in revised_simplex.cc):
//   - Bounded-variable formulation: every constraint row i gets a logical
//     variable s_i with A x + s = b; relations become bounds on s
//     (<= : s in [0, inf), >= : s in (-inf, 0], == : s fixed at 0), and
//     variable bounds never become rows — the working dimension is the
//     constraint count, not constraints + bounds.
//   - The constraint matrix is stored column-sparse (CSC); the basis
//     inverse is a product-form eta file, refreshed by a from-scratch
//     refactorization with partial pivoting every kRefactorInterval
//     pivots (and on warm starts).
//   - Composite phase 1 drives out bound infeasibilities of basic
//     variables; phase 2 optimizes. Dantzig pricing with a Bland
//     fallback after kBlandStreak degenerate steps; entering variables
//     that hit their own opposite bound flip without a basis change.
//   - Warm starts accept an LpBasis from a previous (possibly smaller)
//     solve; a singular or mis-shaped basis silently cold-starts.

#ifndef PSO_SOLVER_REVISED_SIMPLEX_H_
#define PSO_SOLVER_REVISED_SIMPLEX_H_

#include <cstddef>

namespace pso::revised_simplex_internal {

/// Pivots between from-scratch basis refactorizations. Between refreshes
/// each pivot appends one eta to the product-form file.
inline constexpr size_t kRefactorInterval = 64;

/// Degenerate (zero-step) pivots tolerated before pricing switches from
/// Dantzig to Bland's rule. Matches the dense backend's fallback.
inline constexpr size_t kBlandStreak = 64;

}  // namespace pso::revised_simplex_internal

#endif  // PSO_SOLVER_REVISED_SIMPLEX_H_
