// The "sparse" backend: a bounded-variable revised simplex over
// column-sparse constraint storage with a product-form (eta-file) basis
// inverse.
//
// Where the dense tableau updates every cell of an (m+1) x (cols+1) array
// per pivot, this backend touches only the nonzeros that matter: FTRAN /
// BTRAN walk the eta file, pricing walks CSC columns, and upper bounds
// live as bounds (not rows), so reconstruction L1-fit LPs run in the
// query dimension instead of queries + bound rows. See revised_simplex.h
// for the algorithm sketch and the tuning constants shared with tests.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/lp_backend.h"
#include "solver/lp_internal.h"
#include "solver/revised_simplex.h"
#include "solver/sparse_matrix.h"

namespace pso {

namespace {

using revised_simplex_internal::kBlandStreak;
using revised_simplex_internal::kRefactorInterval;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;        // Reduced-cost / ratio tie tolerance.
constexpr double kPivotTol = 1e-7;   // Minimum acceptable pivot magnitude.
constexpr double kFeasTol = 1e-7;    // Per-variable bound violation slack.
constexpr double kInfeasTol = 1e-6;  // Total violation => kInfeasible.
constexpr size_t kMaxIterations = 200000;

// Heartbeat cadence in simplex steps (pricing rounds). A work-count
// boundary, never a timer, so heartbeats replay deterministically.
constexpr uint64_t kProgressEvery = 256;

// One product-form eta: the FTRAN image w = B^-1 A_q of an entering
// column, split into the pivot element and the off-pivot nonzeros.
// Applying the eta forward divides the pivot position by pivot_value and
// eliminates the off-pivot rows; applying it transposed is one sparse dot
// product. Both skip entirely when the pivot position is zero.
struct Eta {
  size_t pivot_row = 0;
  double pivot_value = 1.0;
  std::vector<std::pair<size_t, double>> others;
};

// Pricing outcome: the entering column (SIZE_MAX = none eligible) plus
// the phase-1 infeasibility summary gathered while building c_B.
struct Pricing {
  size_t enter = SIZE_MAX;
  double reduced = 0.0;
  bool any_infeasible = false;
  double total_violation = 0.0;
};

// Ratio-test outcome: the step length, the blocking row (has_leave) or a
// bound flip (!has_leave, finite t) or an unbounded ray.
struct Ratio {
  bool unbounded = false;
  bool has_leave = false;
  size_t leave_row = 0;
  bool leave_at_upper = false;
  double t = 0.0;
};

// All per-solve state. Column indexing: [0, n) structural, [n, n+m)
// logical (one per row, identity coefficient).
class SimplexState {
 public:
  SimplexState(const LpInstance& model, size_t* pivot_work)
      : pivot_work_(pivot_work) {
    n_ = model.variables.size();
    m_ = model.rows.size();
    ncols_ = n_ + m_;

    lower_.resize(ncols_);
    upper_.resize(ncols_);
    cost_.assign(ncols_, 0.0);
    rhs_.resize(m_);

    std::vector<SparseTriplet> triplets;
    size_t nnz_guess = m_;
    for (const LpInstance::Row& row : model.rows) nnz_guess += row.coeffs.size();
    triplets.reserve(nnz_guess);
    for (size_t j = 0; j < n_; ++j) {
      lower_[j] = model.variables[j].lower;
      upper_[j] = model.variables[j].upper;
      cost_[j] = model.variables[j].cost;
    }
    for (size_t i = 0; i < m_; ++i) {
      const LpInstance::Row& row = model.rows[i];
      for (const auto& [idx, coeff] : row.coeffs) {
        triplets.push_back(SparseTriplet{i, idx, coeff});
      }
      triplets.push_back(SparseTriplet{i, n_ + i, 1.0});
      rhs_[i] = row.rhs;
      // Relation -> logical bounds: A x + s = b.
      switch (row.rel) {
        case Relation::kLessEq:
          lower_[n_ + i] = 0.0;
          upper_[n_ + i] = kInf;
          break;
        case Relation::kGreaterEq:
          lower_[n_ + i] = -kInf;
          upper_[n_ + i] = 0.0;
          break;
        case Relation::kEqual:
          lower_[n_ + i] = 0.0;
          upper_[n_ + i] = 0.0;
          break;
      }
    }
    cols_ = SparseMatrix::FromTriplets(m_, ncols_, triplets);

    status_.assign(ncols_, LpVarStatus::kAtLower);
    basic_.assign(m_, SIZE_MAX);
    x_.assign(ncols_, 0.0);
    work_.Resize(m_);
    dual_.assign(m_, 0.0);
  }

  // ---- Eta file ----------------------------------------------------

  // v <- B^-1 v (apply etas in file order).
  void ApplyEtasForward(SparseVector& v) {
    for (const Eta& e : etas_) {
      double vp = v[e.pivot_row];
      ++*pivot_work_;
      if (vp == 0.0) continue;
      double t = vp / e.pivot_value;
      v.Set(e.pivot_row, t);
      for (const auto& [r, val] : e.others) v.Add(r, -val * t);
      *pivot_work_ += e.others.size();
    }
  }

  // y <- B^-T y (apply transposed etas in reverse file order).
  void ApplyEtasTranspose(std::vector<double>& y) {
    for (size_t k = etas_.size(); k > 0; --k) {
      const Eta& e = etas_[k - 1];
      double acc = y[e.pivot_row];
      for (const auto& [r, val] : e.others) acc -= val * y[r];
      y[e.pivot_row] = acc / e.pivot_value;
      *pivot_work_ += e.others.size() + 1;
    }
  }

  // work_ <- B^-1 A_j.
  void Ftran(size_t j) {
    work_.Clear();
    for (size_t k = cols_.ColumnBegin(j); k < cols_.ColumnEnd(j); ++k) {
      work_.Add(cols_.EntryRow(k), cols_.EntryValue(k));
    }
    *pivot_work_ += cols_.ColumnNnz(j);
    ApplyEtasForward(work_);
  }

  // ---- Factorization -----------------------------------------------

  // Rebuilds the eta file from scratch for the current basic column set
  // (status_ == kBasic), reassigning basic_ rows via partial pivoting.
  // Columns are processed in ascending-nnz order (ties by index) to keep
  // fill low; a column whose pivot candidates are all below kPivotTol is
  // dropped from the basis and the logical of a still-unpivoted row takes
  // its place (basis repair). Returns false only if repair fails too.
  bool Refactorize() {
    metrics::GetCounter("lp.refactorizations").Add(1);
    ++refactor_count_;
    etas_.clear();
    pivots_since_refactor_ = 0;

    std::vector<size_t> cols;
    cols.reserve(m_);
    for (size_t j = 0; j < ncols_; ++j) {
      if (status_[j] == LpVarStatus::kBasic) cols.push_back(j);
    }
    PSO_CHECK(cols.size() == m_);
    std::sort(cols.begin(), cols.end(), [this](size_t a, size_t b) {
      size_t na = cols_.ColumnNnz(a);
      size_t nb = cols_.ColumnNnz(b);
      return na != nb ? na < nb : a < b;
    });

    row_assigned_.assign(m_, false);
    basic_.assign(m_, SIZE_MAX);
    std::vector<size_t> dropped;
    for (size_t j : cols) {
      if (!FactorColumn(j)) dropped.push_back(j);
    }
    for (size_t j : dropped) {
      // The column is dependent on earlier basis columns: park it at a
      // finite bound and promote the logical of some unpivoted row.
      status_[j] = std::isfinite(lower_[j]) ? LpVarStatus::kAtLower
                                            : LpVarStatus::kAtUpper;
      x_[j] = NonbasicValue(j);
      bool repaired = false;
      for (size_t p = 0; p < m_ && !repaired; ++p) {
        if (row_assigned_[p]) continue;
        if (status_[n_ + p] == LpVarStatus::kBasic) continue;
        status_[n_ + p] = LpVarStatus::kBasic;
        if (FactorColumn(n_ + p)) {
          repaired = true;
        } else {
          status_[n_ + p] = std::isfinite(lower_[n_ + p])
                                ? LpVarStatus::kAtLower
                                : LpVarStatus::kAtUpper;
        }
      }
      if (!repaired) return false;
    }
    return true;
  }

  // Factors one basis column: FTRAN against the etas so far, pivot on the
  // largest-magnitude entry over unassigned rows (smallest row on ties).
  bool FactorColumn(size_t j) {
    Ftran(j);
    size_t best_row = SIZE_MAX;
    double best_mag = kPivotTol;
    for (size_t p : work_.nonzeros()) {
      if (row_assigned_[p]) continue;
      double mag = std::fabs(work_[p]);
      if (mag > best_mag || (mag == best_mag && best_row != SIZE_MAX &&
                             p < best_row)) {
        best_mag = mag;
        best_row = p;
      }
    }
    if (best_row == SIZE_MAX) return false;
    AppendEta(best_row);
    row_assigned_[best_row] = true;
    basic_[best_row] = j;
    return true;
  }

  // Records work_ as an eta pivoting on row p.
  void AppendEta(size_t p) {
    Eta e;
    e.pivot_row = p;
    e.pivot_value = work_[p];
    for (size_t r : work_.nonzeros()) {
      if (r != p && work_[r] != 0.0) e.others.emplace_back(r, work_[r]);
    }
    etas_.push_back(std::move(e));
  }

  // ---- State helpers -----------------------------------------------

  double NonbasicValue(size_t j) const {
    return status_[j] == LpVarStatus::kAtUpper ? upper_[j] : lower_[j];
  }

  // Solves B x_B = b - A_N x_N and installs the basic values.
  void ComputeBasicValues() {
    work_.Clear();
    for (size_t i = 0; i < m_; ++i) {
      if (rhs_[i] != 0.0) work_.Set(i, rhs_[i]);
    }
    for (size_t j = 0; j < ncols_; ++j) {
      if (status_[j] == LpVarStatus::kBasic || x_[j] == 0.0) continue;
      for (size_t k = cols_.ColumnBegin(j); k < cols_.ColumnEnd(j); ++k) {
        work_.Add(cols_.EntryRow(k), -cols_.EntryValue(k) * x_[j]);
      }
      *pivot_work_ += cols_.ColumnNnz(j);
    }
    ApplyEtasForward(work_);
    for (size_t i = 0; i < m_; ++i) x_[basic_[i]] = work_[i];
  }

  double Objective() const {
    double obj = 0.0;
    for (size_t j = 0; j < n_; ++j) obj += cost_[j] * x_[j];
    return obj;
  }

  double TotalViolation() const {
    double total = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      size_t j = basic_[i];
      if (x_[j] < lower_[j] - kFeasTol) total += lower_[j] - x_[j];
      if (x_[j] > upper_[j] + kFeasTol) total += x_[j] - upper_[j];
    }
    return total;
  }

  // ---- Start bases -------------------------------------------------

  // All-logical basis plus the same singleton crash the dense backend
  // uses: an equality row whose +1-coefficient structural appears in no
  // other row (and has no upper bound to violate) starts that structural
  // basic. L1-fit instances (residual splitting u - v per query) crash
  // completely this way and, with nonnegative query answers, start
  // feasible — phase 1 is a no-op.
  void ColdStart() {
    for (size_t j = 0; j < n_; ++j) {
      status_[j] = LpVarStatus::kAtLower;
    }
    for (size_t i = 0; i < m_; ++i) {
      status_[n_ + i] = LpVarStatus::kBasic;
    }
    // Crash pass, column-major: a structural with exactly one entry,
    // coefficient ~1, infinite upper bound, landing in an equality row
    // whose logical is still basic.
    for (size_t j = 0; j < n_; ++j) {
      if (cols_.ColumnNnz(j) != 1 || upper_[j] != kInf) continue;
      size_t k = cols_.ColumnBegin(j);
      if (std::fabs(cols_.EntryValue(k) - 1.0) > 1e-12) continue;
      size_t r = cols_.EntryRow(k);
      if (lower_[n_ + r] != 0.0 || upper_[n_ + r] != 0.0) continue;
      if (status_[n_ + r] != LpVarStatus::kBasic) continue;
      status_[n_ + r] = LpVarStatus::kAtLower;
      status_[j] = LpVarStatus::kBasic;
    }
    for (size_t j = 0; j < ncols_; ++j) {
      x_[j] = status_[j] == LpVarStatus::kBasic ? 0.0 : NonbasicValue(j);
    }
  }

  // Installs a warm-start basis. A basis from a smaller instance is
  // padded (new rows -> logical basic, new variables -> at lower bound);
  // statuses parked on an infinite bound are coerced to the finite side.
  // Returns false (leaving state unspecified) if the basis is mis-shaped
  // or singular — the caller cold-starts.
  bool WarmStart(const LpBasis& basis) {
    if (basis.structurals.size() > n_ || basis.logicals.size() > m_) {
      return false;
    }
    for (size_t j = 0; j < n_; ++j) {
      status_[j] = j < basis.structurals.size() ? basis.structurals[j]
                                                : LpVarStatus::kAtLower;
    }
    for (size_t i = 0; i < m_; ++i) {
      status_[n_ + i] = i < basis.logicals.size() ? basis.logicals[i]
                                                  : LpVarStatus::kBasic;
    }
    size_t basics = 0;
    for (size_t j = 0; j < ncols_; ++j) {
      if (status_[j] == LpVarStatus::kBasic) {
        ++basics;
        continue;
      }
      if (status_[j] == LpVarStatus::kAtLower && !std::isfinite(lower_[j])) {
        status_[j] = LpVarStatus::kAtUpper;
      } else if (status_[j] == LpVarStatus::kAtUpper &&
                 !std::isfinite(upper_[j])) {
        status_[j] = LpVarStatus::kAtLower;
      }
    }
    if (basics != m_) return false;
    if (!Refactorize()) return false;
    for (size_t j = 0; j < ncols_; ++j) {
      if (status_[j] != LpVarStatus::kBasic) x_[j] = NonbasicValue(j);
    }
    ComputeBasicValues();
    metrics::GetCounter("lp.warm_starts").Add(1);
    return true;
  }

  void ExportBasis(LpBasis* out) const {
    out->structurals.assign(status_.begin(), status_.begin() + n_);
    out->logicals.assign(status_.begin() + n_, status_.end());
  }

  // ---- Simplex core ------------------------------------------------

  // Computes duals for the current phase objective and scans nonbasic
  // columns for the best eligible entering candidate. Phase-1 costs are
  // the composite infeasibility gradient on basic variables (zero on
  // nonbasic ones), so feasibility, once attained, is preserved.
  Pricing Price(bool phase1, bool bland) {
    Pricing out;
    bool any_cb = false;
    for (size_t i = 0; i < m_; ++i) {
      size_t j = basic_[i];
      double cb = 0.0;
      if (phase1) {
        if (x_[j] < lower_[j] - kFeasTol) {
          cb = -1.0;
          out.any_infeasible = true;
          out.total_violation += lower_[j] - x_[j];
        } else if (x_[j] > upper_[j] + kFeasTol) {
          cb = 1.0;
          out.any_infeasible = true;
          out.total_violation += x_[j] - upper_[j];
        }
      } else {
        cb = cost_[j];
      }
      dual_[i] = cb;
      any_cb = any_cb || cb != 0.0;
    }
    *pivot_work_ += m_;
    if (phase1 && !out.any_infeasible) return out;  // Feasible: phase done.
    if (any_cb) ApplyEtasTranspose(dual_);

    double best = kEps;
    for (size_t j = 0; j < ncols_; ++j) {
      if (status_[j] == LpVarStatus::kBasic) continue;
      if (upper_[j] - lower_[j] <= 0.0) continue;  // Fixed: cannot move.
      double d = phase1 ? 0.0 : cost_[j];
      if (any_cb) {
        for (size_t k = cols_.ColumnBegin(j); k < cols_.ColumnEnd(j); ++k) {
          d -= dual_[cols_.EntryRow(k)] * cols_.EntryValue(k);
        }
        *pivot_work_ += cols_.ColumnNnz(j);
      }
      bool eligible = status_[j] == LpVarStatus::kAtLower ? d < -kEps
                                                          : d > kEps;
      if (!eligible) continue;
      if (bland) {  // First eligible index: guarantees termination.
        out.enter = j;
        out.reduced = d;
        break;
      }
      if (std::fabs(d) > best) {
        best = std::fabs(d);
        out.enter = j;
        out.reduced = d;
      }
    }
    return out;
  }

  // Bounded-variable ratio test on work_ = B^-1 A_q. `dir` is +1 when q
  // enters rising off its lower bound, -1 when falling off its upper. In
  // phase 1 an infeasible basic variable blocks only when the step would
  // carry it *to* its violated bound (crossing would flip its gradient);
  // feasible basics block at whichever bound the step pushes them toward.
  // The entering variable's own bound gap competes as a bound flip.
  Ratio RatioTest(size_t q, bool phase1, double dir) {
    Ratio out;
    double best_t = upper_[q] - lower_[q];  // May be +inf.
    for (size_t p : work_.nonzeros()) {
      double wv = work_[p];
      if (std::fabs(wv) <= kPivotTol) continue;
      double alpha = dir * wv;  // x_basic(t) = x_basic - t * alpha.
      size_t j = basic_[p];
      double xj = x_[j];
      double t;
      bool hit_upper;
      if (phase1 && xj < lower_[j] - kFeasTol) {
        if (alpha >= 0.0) continue;  // Worsens; objective already counts it.
        t = (xj - lower_[j]) / alpha;
        hit_upper = false;
      } else if (phase1 && xj > upper_[j] + kFeasTol) {
        if (alpha <= 0.0) continue;
        t = (xj - upper_[j]) / alpha;
        hit_upper = true;
      } else if (alpha > 0.0) {
        if (!std::isfinite(lower_[j])) continue;
        t = (xj - lower_[j]) / alpha;
        hit_upper = false;
      } else {
        if (!std::isfinite(upper_[j])) continue;
        t = (xj - upper_[j]) / alpha;
        hit_upper = true;
      }
      if (t < 0.0) t = 0.0;  // Tolerance-level infeasibility: degenerate.
      bool take;
      if (!out.has_leave) {
        // Current best is the bound flip (or +inf): prefer a basis pivot
        // on near-ties — it makes progress the dual simplex can reuse.
        take = t <= best_t + kEps;
      } else {
        take = t < best_t - kEps ||
               (t <= best_t + kEps && j < basic_[out.leave_row]);
      }
      if (take) {
        best_t = std::min(best_t, t);
        out.has_leave = true;
        out.leave_row = p;
        out.leave_at_upper = hit_upper;
      }
    }
    if (!out.has_leave && !std::isfinite(best_t)) {
      out.unbounded = true;
      return out;
    }
    out.t = best_t;
    return out;
  }

  // Executes one entering step: FTRAN, ratio test, then either a bound
  // flip (no basis change, not counted as an iteration) or a pivot
  // (basic set update + eta append + periodic refactorization).
  Status Step(size_t q, bool phase1, size_t* degenerate_streak,
              lp_internal::PivotSink* sink) {
    double dir = status_[q] == LpVarStatus::kAtLower ? 1.0 : -1.0;
    Ftran(q);
    Ratio r = RatioTest(q, phase1, dir);
    if (r.unbounded) {
      if (phase1) {
        // A phase-1 ray cannot exist (every improving direction is blocked
        // by the infeasible variable generating it); reaching here means
        // the factorization has degraded beyond the tolerances.
        return Status::Internal("phase-1 ray: numerically singular basis");
      }
      return Status::Unbounded(StrFormat(
          "objective improves without bound along column %zu", q));
    }

    // Move the basic variables along the step.
    if (r.t != 0.0) {
      for (size_t p : work_.nonzeros()) {
        double wv = work_[p];
        if (wv == 0.0) continue;
        x_[basic_[p]] -= r.t * dir * wv;
      }
      *pivot_work_ += work_.nonzeros().size();
    }

    if (!r.has_leave) {
      // Bound flip: q traverses its whole gap and parks on the other side.
      status_[q] = dir > 0.0 ? LpVarStatus::kAtUpper : LpVarStatus::kAtLower;
      x_[q] = NonbasicValue(q);
      metrics::GetCounter("lp.bound_flips").Add(1);
      return Status::Ok();
    }

    size_t p = r.leave_row;
    size_t leaving = basic_[p];
    x_[q] += dir * r.t;
    status_[leaving] =
        r.leave_at_upper ? LpVarStatus::kAtUpper : LpVarStatus::kAtLower;
    x_[leaving] = NonbasicValue(leaving);  // Snap off rounding drift.
    status_[q] = LpVarStatus::kBasic;
    AppendEta(p);
    basic_[p] = q;
    metrics::GetCounter("lp.eta_updates").Add(1);
    ++pivots_since_refactor_;
    *degenerate_streak = r.t <= kEps ? *degenerate_streak + 1 : 0;
    size_t pivot_index = iterations_;
    ++iterations_;
    if (sink != nullptr && sink->ring != nullptr) {
      sink->OnPivot(pivot_index, q, leaving,
                    phase1 ? TotalViolation() : Objective());
    }
    if (pivots_since_refactor_ >= kRefactorInterval) {
      if (!Refactorize()) {
        return Status::Internal("basis refactorization failed");
      }
      ComputeBasicValues();
    }
    return Status::Ok();
  }

  // ---- Driver ------------------------------------------------------

  Result<LpSolution> Run(const LpSolveOptions& options,
                         lp_internal::SolveScope& scope,
                         trace::RingBuffer<LpPivotStep>* ring) {
    bool warm = false;
    if (options.warm_start != nullptr && !options.warm_start->empty()) {
      warm = WarmStart(*options.warm_start);
    }
    if (!warm) {
      ColdStart();
      if (!Refactorize()) {
        // The cold basis is triangular by construction; this cannot fire
        // unless the instance itself is numerically broken.
        return Status::Internal("cold-start basis is singular");
      }
      ComputeBasicValues();
    }

    size_t steps = 0;
    size_t degenerate_streak = 0;
    progress::ScopedSolve solve_guard;
    progress::ProgressReporter progress("simplex", kProgressEvery);

    // ---- Phase 1: drive out basic bound violations. ----
    // The span always opens, even for a feasible (crashed / warm) start:
    // a zero-pivot phase 1 documents "feasible by construction".
    {
      trace::Span phase1_span("lp.phase1");
      lp_internal::PivotSink sink{ring, /*phase=*/1};
      while (true) {
        if (++steps > kMaxIterations) {
          PSO_LOG(WARN).Field("iterations", iterations_)
              << "LP phase-1 iteration limit exceeded";
          return Status::Internal("phase-1 iteration limit exceeded");
        }
        Pricing pr = Price(/*phase1=*/true, degenerate_streak > kBlandStreak);
        if (!pr.any_infeasible) break;
        if (pr.enter == SIZE_MAX) {
          if (pr.total_violation > kInfeasTol) {
            PSO_LOG(DEBUG).Field("residual", pr.total_violation)
                << "LP infeasible";
            return Status::Infeasible(
                StrFormat("phase-1 residual %.3g", pr.total_violation));
          }
          break;  // Violations below tolerance: accept as feasible.
        }
        Status step = Step(pr.enter, /*phase1=*/true, &degenerate_streak,
                           &sink);
        if (!step.ok()) return step;
        progress.Tick(
            steps,
            {{"pivots", static_cast<double>(iterations_)},
             {"refactorizations", static_cast<double>(refactor_count_)},
             {"objective", TotalViolation()},
             {"phase", 1.0}});
      }
      scope.phase1_iterations = iterations_;
      scope.total_iterations = iterations_;
      if (phase1_span.active()) {
        phase1_span.Arg("pivots", std::to_string(iterations_));
      }
    }

    // ---- Phase 2: optimize. ----
    trace::Span phase2_span("lp.phase2");
    lp_internal::PivotSink sink{ring, /*phase=*/2};
    degenerate_streak = 0;
    while (true) {
      if (++steps > kMaxIterations) {
        PSO_LOG(WARN).Field("iterations", iterations_)
            << "LP phase-2 iteration limit exceeded";
        return Status::Internal("phase-2 iteration limit exceeded");
      }
      Pricing pr = Price(/*phase1=*/false, degenerate_streak > kBlandStreak);
      if (pr.enter == SIZE_MAX) break;  // Optimal.
      Status step = Step(pr.enter, /*phase1=*/false, &degenerate_streak,
                         &sink);
      if (!step.ok()) return step;
      progress.Tick(
          steps,
          {{"pivots", static_cast<double>(iterations_)},
           {"refactorizations", static_cast<double>(refactor_count_)},
           {"objective", Objective()},
           {"phase", 2.0}});
      scope.total_iterations = iterations_;
    }
    scope.total_iterations = iterations_;
    if (phase2_span.active()) {
      phase2_span.Arg("pivots",
                      std::to_string(iterations_ - scope.phase1_iterations));
    }

    LpSolution sol;
    sol.values.assign(n_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      // Clamp tolerance-level drift so callers can rely on bounds.
      double v = x_[j];
      if (v < lower_[j]) v = lower_[j];
      if (v > upper_[j]) v = upper_[j];
      sol.values[j] = v;
    }
    double obj = 0.0;
    for (size_t j = 0; j < n_; ++j) obj += cost_[j] * sol.values[j];
    sol.objective = obj;
    sol.iterations = iterations_;
    if (options.final_basis != nullptr) ExportBasis(options.final_basis);
    return sol;
  }

  size_t iterations() const { return iterations_; }
  size_t refactor_count() const { return refactor_count_; }

 private:
  size_t n_ = 0;
  size_t m_ = 0;
  size_t ncols_ = 0;
  SparseMatrix cols_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<double> rhs_;

  std::vector<LpVarStatus> status_;
  std::vector<size_t> basic_;
  std::vector<double> x_;
  std::vector<Eta> etas_;
  std::vector<bool> row_assigned_;
  SparseVector work_;
  std::vector<double> dual_;
  size_t pivots_since_refactor_ = 0;
  size_t iterations_ = 0;
  size_t refactor_count_ = 0;
  size_t* pivot_work_;
};

class RevisedSimplexBackend final : public LpBackend {
 public:
  const char* name() const override { return "sparse"; }

  Result<LpSolution> Solve(const LpInstance& model,
                           const LpSolveOptions& options) const override {
    lp_internal::SolveScope scope;
    trace::Span solve_span("lp.solve");
    std::unique_ptr<trace::RingBuffer<LpPivotStep>> pivot_ring;
    if (solve_span.active()) {
      solve_span.Arg("backend", "sparse");
      solve_span.Arg("vars", std::to_string(model.variables.size()));
      solve_span.Arg("constraints", std::to_string(model.rows.size()));
      pivot_ring = std::make_unique<trace::RingBuffer<LpPivotStep>>(
          kPivotTraceCapacity);
    }
    metrics::GetCounter("lp.sparse.solves").Add(1);
    SimplexState state(model, &scope.pivot_work);
    Result<LpSolution> result = state.Run(options, scope, pivot_ring.get());
    if (result.ok() && pivot_ring != nullptr) {
      result->pivot_trace = pivot_ring->Drain();
      solve_span.Arg("pivots", std::to_string(result->iterations));
    }
    return result;
  }
};

}  // namespace

std::unique_ptr<LpBackend> MakeRevisedSimplexLpBackend() {
  return std::make_unique<RevisedSimplexBackend>();
}

}  // namespace pso
