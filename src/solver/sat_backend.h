// Pluggable SAT solver backends.
//
// The census reconstruction's SAT leg (and any DIMACS instance fed to the
// repo) is solved through a swappable engine: every backend consumes the
// same plain-data SatInstance and produces the same SatSolution / Status
// contract, and a process-wide registry selects the default at runtime
// (`--sat-backend=dpll|cdcl` on psoctl and the benches). The original
// chronological DPLL survives as the "dpll" backend — the differential
// oracle for the CDCL engine — and any future external solver slots in
// through RegisterSatBackend without touching call sites. The design
// mirrors the LP layer's LpBackend (lp_backend.h) exactly.
//
// Literal encoding: variable v in [0, num_vars), literal = 2*v for the
// positive phase, 2*v+1 for the negated phase.

#ifndef PSO_SOLVER_SAT_BACKEND_H_
#define PSO_SOLVER_SAT_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace pso {

/// A literal (see file comment for the encoding).
using Lit = uint32_t;

/// Makes a literal for variable `var` with the given sign.
inline Lit MakeLit(uint32_t var, bool positive) {
  return (var << 1) | (positive ? 0u : 1u);
}
inline uint32_t LitVar(Lit l) { return l >> 1; }
inline bool LitPositive(Lit l) { return (l & 1u) == 0; }
inline Lit LitNegate(Lit l) { return l ^ 1u; }

/// One step of a SAT search, as recorded by the introspection trace.
///
/// `trail_depth` convention (all backends, all step kinds): the number of
/// assignments on the trail immediately BEFORE this step's own assignment
/// lands. A decision records the trail length at the moment of branching;
/// a propagation records the length before its forced literal is pushed;
/// a backtrack/backjump records the length after unwinding — i.e. the
/// depth the search resumes from before re-assigning. Pinned by
/// trace_test's SatStepTrailDepthConvention.
struct SatStep {
  enum class Kind : uint8_t {
    kDecision = 0,     ///< Branching decision.
    kPropagation = 1,  ///< Forced assignment from unit propagation.
    kBacktrack = 2,    ///< Conflict-driven flip (DPLL) or backjump (CDCL).
  };
  Kind kind = Kind::kDecision;
  uint32_t var = 0;        ///< Variable acted on.
  bool value = false;      ///< Value assigned (false for a flip's target).
  size_t trail_depth = 0;  ///< See the convention in the struct comment.
};

/// Ring capacity of SatSolution::step_trace.
inline constexpr size_t kSatStepTraceCapacity = 512;

/// Result of a SAT solve. The DPLL backend leaves the CDCL-only fields
/// (learned_clauses, restarts) at zero and reports conflicts ==
/// backtracks (every DPLL conflict is one chronological flip).
struct SatSolution {
  bool satisfiable = false;
  std::vector<bool> assignment;  ///< Per-variable value when satisfiable.
  size_t decisions = 0;          ///< Branching decisions explored.
  size_t propagations = 0;       ///< Unit propagations performed.
  size_t backtracks = 0;         ///< Backtracks / backjumps taken.
  size_t conflicts = 0;          ///< Conflicts hit during the search.
  size_t learned_clauses = 0;    ///< Clauses learned (CDCL only).
  size_t restarts = 0;           ///< Restarts performed (CDCL only).
  /// Step-by-step audit trail of the search: the most recent
  /// kSatStepTraceCapacity decision/propagation/backtrack steps (a
  /// bounded ring). Collected only while tracing is enabled
  /// (trace::Enabled()); empty otherwise, so the default path pays one
  /// null check per step.
  std::vector<SatStep> step_trace;
};

/// A plain-data CNF instance: the unit every backend consumes. Build one
/// through SatSolver (whose builder validates, deduplicates literals and
/// drops tautological clauses) — backends may assume each clause is
/// sorted, duplicate-free, tautology-free, non-empty, and references only
/// variables below num_vars. An instance whose construction saw an empty
/// clause carries trivially_unsat instead of storing the clause.
struct SatInstance {
  uint32_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
  bool trivially_unsat = false;
};

/// Per-solve options, shared by every backend.
struct SatSolveOptions {
  /// Bounds the search (0 = unlimited); exceeding it returns
  /// kResourceExhausted — the budget ran out, the solver is healthy.
  size_t max_decisions = 0;
};

/// A solver backend. Implementations are stateless and cheap to build;
/// all per-solve state lives on the stack of Solve().
class SatBackend {
 public:
  virtual ~SatBackend() = default;

  /// Registry name, e.g. "dpll" or "cdcl".
  virtual const char* name() const = 0;

  /// Decides `instance`. Returns kResourceExhausted when
  /// options.max_decisions ran out before an answer.
  [[nodiscard]] virtual Result<SatSolution> Solve(
      const SatInstance& instance, const SatSolveOptions& options) const = 0;
};

/// The original chronological DPLL with occurrence-list propagation
/// ("dpll") — the differential oracle.
std::unique_ptr<SatBackend> MakeDpllSatBackend();

/// The conflict-driven clause-learning engine ("cdcl"): two-watched-
/// literal propagation, first-UIP learning with non-chronological
/// backjumping, VSIDS, phase saving, Luby restarts, learned-DB reduction.
std::unique_ptr<SatBackend> MakeCdclSatBackend();

using SatBackendFactory = std::unique_ptr<SatBackend> (*)();

/// Adds a backend to the registry (later registrations win on name
/// collision, so tests can shadow a built-in). Thread-safe.
void RegisterSatBackend(const std::string& name, SatBackendFactory factory);

/// Instantiates a registered backend; InvalidArgument for unknown names
/// (the message lists what is available).
[[nodiscard]] Result<std::unique_ptr<SatBackend>> MakeSatBackend(
    const std::string& name);

/// Registered backend names, registration order, built-ins first.
std::vector<std::string> SatBackendNames();

/// The backend SatSolver::Solve uses when none is named explicitly.
/// Starts as "cdcl" (the census-scale engine); SetDefaultSatBackend
/// steers every subsequent default-backend solve in the process
/// (e.g. --sat-backend).
std::string DefaultSatBackendName();

/// Sets the process-wide default; InvalidArgument if `name` is not
/// registered. Thread-safe, but intended for startup (flag parsing).
[[nodiscard]] Status SetDefaultSatBackend(const std::string& name);

}  // namespace pso

#endif  // PSO_SOLVER_SAT_BACKEND_H_
