#include "solver/sat_backend.h"

#include "common/mutex.h"
#include "common/str_util.h"
#include "common/thread_annotations.h"

namespace pso {

namespace {

// Registry state behind one mutex. Function-local statics sidestep
// static-initialization-order hazards; the built-ins are materialized on
// first touch so a registry query never observes an empty table.
struct RegistryEntry {
  std::string name;
  SatBackendFactory factory;
};

Mutex& RegistryMu() {
  // Process-configuration lock: acquired alone, at registration or
  // backend-selection time, never under a workload lock => top rank.
  static Mutex mu PSO_LOCK_ORDER(kService){LockRank::kService,
                                           "solver.sat_backends"};
  return mu;
}

std::vector<RegistryEntry>& Entries() PSO_REQUIRES(RegistryMu()) {
  static std::vector<RegistryEntry> entries = {
      {"dpll", &MakeDpllSatBackend},
      {"cdcl", &MakeCdclSatBackend},
  };
  return entries;
}

std::string& DefaultName() PSO_REQUIRES(RegistryMu()) {
  // CDCL is the census-scale engine; "dpll" stays available as the
  // differential oracle (and via --sat-backend=dpll).
  static std::string name = "cdcl";
  return name;
}

// Latest registration wins: scan back-to-front.
SatBackendFactory FindFactory(const std::string& name)
    PSO_REQUIRES(RegistryMu()) {
  const std::vector<RegistryEntry>& entries = Entries();
  for (size_t i = entries.size(); i > 0; --i) {
    if (entries[i - 1].name == name) return entries[i - 1].factory;
  }
  return nullptr;
}

}  // namespace

void RegisterSatBackend(const std::string& name, SatBackendFactory factory) {
  MutexLock lock(RegistryMu());
  Entries().push_back(RegistryEntry{name, factory});
}

Result<std::unique_ptr<SatBackend>> MakeSatBackend(const std::string& name) {
  SatBackendFactory factory = nullptr;
  {
    MutexLock lock(RegistryMu());
    factory = FindFactory(name);
  }
  if (factory == nullptr) {
    std::string known;
    for (const std::string& n : SatBackendNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument(StrFormat(
        "unknown SAT backend '%s' (registered: %s)", name.c_str(),
        known.c_str()));
  }
  return factory();
}

std::vector<std::string> SatBackendNames() {
  MutexLock lock(RegistryMu());
  std::vector<std::string> names;
  names.reserve(Entries().size());
  for (const RegistryEntry& e : Entries()) {
    bool shadowed = false;
    for (const std::string& seen : names) {
      if (seen == e.name) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) names.push_back(e.name);
  }
  return names;
}

std::string DefaultSatBackendName() {
  MutexLock lock(RegistryMu());
  return DefaultName();
}

Status SetDefaultSatBackend(const std::string& name) {
  MutexLock lock(RegistryMu());
  if (FindFactory(name) == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown SAT backend '%s'", name.c_str()));
  }
  DefaultName() = name;
  return Status::Ok();
}

}  // namespace pso
