#include "solver/sparse_matrix.h"

#include "common/check.h"

namespace pso {

SparseMatrix SparseMatrix::FromTriplets(
    size_t rows, size_t cols, const std::vector<SparseTriplet>& entries) {
  SparseMatrix m(rows, cols);

  // Two-pass counting sort by column: count, prefix-sum, place. Within a
  // column, entries keep their triplet order before duplicate folding, so
  // construction is deterministic for a given triplet sequence.
  std::vector<size_t> count(cols + 1, 0);
  for (const SparseTriplet& t : entries) {
    PSO_CHECK(t.row < rows && t.col < cols);
    ++count[t.col + 1];
  }
  for (size_t c = 0; c < cols; ++c) count[c + 1] += count[c];

  std::vector<size_t> row_index(entries.size());
  std::vector<double> values(entries.size());
  std::vector<size_t> cursor(count.begin(), count.end() - 1);
  for (const SparseTriplet& t : entries) {
    size_t k = cursor[t.col]++;
    row_index[k] = t.row;
    values[k] = t.value;
  }

  // Fold duplicates per column (sum), compacting in place. Entries within
  // a column are sorted by row first so equal rows become adjacent;
  // insertion sort is fine at the per-column sizes the solver produces.
  std::vector<size_t> col_start(cols + 1, 0);
  size_t out = 0;
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = count[c];
    size_t end = count[c + 1];
    for (size_t i = begin + 1; i < end; ++i) {
      size_t r = row_index[i];
      double v = values[i];
      size_t j = i;
      while (j > begin && row_index[j - 1] > r) {
        row_index[j] = row_index[j - 1];
        values[j] = values[j - 1];
        --j;
      }
      row_index[j] = r;
      values[j] = v;
    }
    col_start[c] = out;
    for (size_t i = begin; i < end; ++i) {
      if (out > col_start[c] && row_index[out - 1] == row_index[i]) {
        values[out - 1] += values[i];
      } else {
        row_index[out] = row_index[i];
        values[out] = values[i];
        ++out;
      }
    }
  }
  col_start[cols] = out;
  row_index.resize(out);
  values.resize(out);

  m.col_start_ = std::move(col_start);
  m.row_index_ = std::move(row_index);
  m.values_ = std::move(values);
  return m;
}

}  // namespace pso
