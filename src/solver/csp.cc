#include "solver/csp.h"

#include "common/str_util.h"

namespace pso {

CountCsp::CountCsp(size_t num_vars, size_t domain_size)
    : num_vars_(num_vars), domain_size_(domain_size) {
  if (domain_size_ == 0) {
    build_status_ = Status::InvalidArgument("domain size must be positive");
  }
}

void CountCsp::AddCountConstraint(std::vector<bool> match, int64_t lo,
                                  int64_t hi) {
  // Poison instead of abort: callers probing with untrusted instances
  // (fuzzers, decoded tables) observe the error through build_status().
  if (build_status_.ok()) {
    if (match.size() != domain_size_) {
      build_status_ = Status::InvalidArgument(
          StrFormat("constraint %zu: mask has %zu entries, domain has %zu",
                    constraints_.size(), match.size(), domain_size_));
    } else if (lo < 0 || lo > hi) {
      build_status_ = Status::InvalidArgument(StrFormat(
          "constraint %zu: malformed count window [%lld, %lld]",
          constraints_.size(), (long long)lo, (long long)hi));
    }
  }
  if (!build_status_.ok()) return;
  constraints_.push_back(Constraint{std::move(match), lo, hi});
}

std::vector<std::vector<size_t>> CountCsp::Enumerate(size_t max_solutions,
                                                     size_t max_nodes,
                                                     CspStats* stats) const {
  CspStats local;
  std::vector<std::vector<size_t>> solutions;
  // A poisoned instance has no meaningful answer: report an incomplete,
  // empty search so callers checking build_status() can hard-fail.
  if (!build_status_.ok()) {
    local.complete = false;
    if (stats != nullptr) *stats = local;
    return solutions;
  }

  // Candidate filter: a value matching any hi == 0 constraint can never be
  // used. For census-style instances (exact zero cells for absent ages)
  // this shrinks the domain by orders of magnitude.
  std::vector<size_t> candidates;
  candidates.reserve(domain_size_);
  for (size_t v = 0; v < domain_size_; ++v) {
    bool feasible = true;
    for (const Constraint& c : constraints_) {
      if (c.match[v] && c.hi == 0) {
        feasible = false;
        break;
      }
    }
    if (feasible) candidates.push_back(v);
  }
  // Per-candidate list of the constraints it matches (for O(#affected)
  // incremental updates instead of scanning every constraint per child).
  std::vector<std::vector<size_t>> affected(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    for (size_t c = 0; c < constraints_.size(); ++c) {
      if (constraints_[c].match[candidates[ci]]) affected[ci].push_back(c);
    }
  }

  std::vector<size_t> assignment;
  assignment.reserve(num_vars_);
  // matched[c]: how many assigned variables currently match constraint c.
  std::vector<int64_t> matched(constraints_.size(), 0);

  // Recursive search over non-decreasing candidate-index sequences
  // (symmetry breaking: variables are interchangeable).
  auto recurse = [&](auto&& self, size_t depth, size_t min_index) -> bool {
    // Returns false when a global cap fired (abort the whole search).
    if (local.nodes >= max_nodes) {
      local.complete = false;
      return false;
    }
    ++local.nodes;

    const int64_t remaining = static_cast<int64_t>(num_vars_ - depth);
    // Feasibility pruning: the final count for constraint c lies in
    // [matched, matched + remaining]; a miss of [lo, hi] kills the branch.
    for (size_t c = 0; c < constraints_.size(); ++c) {
      if (matched[c] > constraints_[c].hi ||
          matched[c] + remaining < constraints_[c].lo) {
        return true;
      }
    }

    if (depth == num_vars_) {
      // All constraints necessarily satisfied (remaining == 0 above).
      solutions.push_back(assignment);
      ++local.solutions;
      return local.solutions < max_solutions;
    }

    for (size_t ci = min_index; ci < candidates.size(); ++ci) {
      // Cheap pre-check on just the affected constraints: placing this
      // value must not overshoot any hi.
      bool overshoot = false;
      for (size_t c : affected[ci]) {
        if (matched[c] + 1 > constraints_[c].hi) {
          overshoot = true;
          break;
        }
      }
      if (overshoot) continue;

      assignment.push_back(candidates[ci]);
      for (size_t c : affected[ci]) ++matched[c];
      bool keep_going = self(self, depth + 1, ci);
      for (size_t c : affected[ci]) --matched[c];
      assignment.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };

  if (!recurse(recurse, 0, 0) && local.solutions >= max_solutions) {
    // Stopped because the solution cap was reached: not exhaustive.
    local.complete = false;
  }
  if (stats != nullptr) *stats = local;
  return solutions;
}

bool CountCsp::IsSatisfiable(size_t max_nodes) const {
  CspStats stats;
  auto sols = Enumerate(1, max_nodes, &stats);
  return !sols.empty();
}

}  // namespace pso
