// CNF builder and SAT front-end. A self-contained substrate standing in
// for the external SAT solvers the census-reconstruction literature links
// against.
//
// SatSolver owns the *formula* — clauses, cardinality encodings,
// auxiliary variables — and delegates the *search* to a pluggable
// SatBackend (sat_backend.h): the chronological "dpll" oracle or the
// conflict-driven "cdcl" engine, selected per call (SolveWith) or via the
// process-wide default (Solve, steered by --sat-backend).
//
// Literal encoding: variable v in [0, num_vars), literal = 2*v for the
// positive phase, 2*v+1 for the negated phase (see sat_backend.h).

#ifndef PSO_SOLVER_SAT_H_
#define PSO_SOLVER_SAT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "solver/sat_backend.h"

namespace pso {

/// CNF formula builder and solve front-end.
///
/// Malformed input (clause literals over undeclared variables,
/// over-demanding cardinality constraints) does not abort: the first
/// violation is recorded and surfaced as an InvalidArgument status by
/// Solve(), so untrusted instances (fuzzers, DIMACS files) can probe the
/// builder freely and still hard-fail with a recoverable Status.
class SatSolver {
 public:
  /// Creates a builder over `num_vars` variables.
  explicit SatSolver(uint32_t num_vars);

  uint32_t num_vars() const { return instance_.num_vars; }

  /// OK unless a builder call above was handed a malformed clause or
  /// cardinality constraint; then the first violation, as InvalidArgument.
  const Status& build_status() const { return build_status_; }

  /// The formula built so far, in the plain-data form every backend
  /// consumes. Clauses are sorted, duplicate-free and tautology-free.
  const SatInstance& instance() const { return instance_; }

  /// Adds a fresh variable (for encodings needing auxiliaries, e.g. the
  /// sequential-counter cardinality constraints) and returns its index.
  uint32_t NewVariable();

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// formula trivially unsatisfiable. Duplicate literals are allowed;
  /// tautological clauses (l and ~l) are dropped.
  void AddClause(std::vector<Lit> clause);

  /// Convenience for small clauses.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Adds clauses enforcing "at most one of `lits` is true" (pairwise).
  void AddAtMostOne(const std::vector<Lit>& lits);

  /// Adds clauses enforcing "exactly one of `lits` is true".
  void AddExactlyOne(const std::vector<Lit>& lits);

  /// Adds Sinz's sequential-counter encoding of "at most k of `lits` are
  /// true" (creates O(|lits| * k) auxiliary variables/clauses). k = 0
  /// forces all literals false.
  void AddAtMostK(const std::vector<Lit>& lits, size_t k);

  /// "At least k of `lits` are true" (AtMostK over the negations).
  void AddAtLeastK(const std::vector<Lit>& lits, size_t k);

  /// "Exactly k of `lits` are true".
  void AddExactlyK(const std::vector<Lit>& lits, size_t k);

  /// Solves on the process-default backend (DefaultSatBackendName()).
  /// `max_decisions` bounds the search (0 = unlimited); exceeding it
  /// returns kResourceExhausted.
  [[nodiscard]] Result<SatSolution> Solve(size_t max_decisions = 0) const;

  /// Solves on an explicit backend (the per-call form of Solve).
  [[nodiscard]] Result<SatSolution> SolveWith(
      const SatBackend& backend, const SatSolveOptions& options) const;

 private:
  SatInstance instance_;
  Status build_status_;
};

}  // namespace pso

#endif  // PSO_SOLVER_SAT_H_
