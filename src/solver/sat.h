// DPLL SAT solver (unit propagation via watched literals, activity-guided
// branching). A self-contained substrate standing in for the external SAT
// solvers the census-reconstruction literature links against.
//
// Literal encoding: variable v in [0, num_vars), literal = 2*v for the
// positive phase, 2*v+1 for the negated phase.

#ifndef PSO_SOLVER_SAT_H_
#define PSO_SOLVER_SAT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pso {

/// A literal (see file comment for the encoding).
using Lit = uint32_t;

/// Makes a literal for variable `var` with the given sign.
inline Lit MakeLit(uint32_t var, bool positive) {
  return (var << 1) | (positive ? 0u : 1u);
}
inline uint32_t LitVar(Lit l) { return l >> 1; }
inline bool LitPositive(Lit l) { return (l & 1u) == 0; }
inline Lit LitNegate(Lit l) { return l ^ 1u; }

namespace trace {
template <typename T>
class RingBuffer;
}  // namespace trace

/// One step of the DPLL search, as recorded by the introspection trace.
struct SatStep {
  enum class Kind : uint8_t {
    kDecision = 0,     ///< Branching decision (first phase: value true).
    kPropagation = 1,  ///< Forced assignment from unit propagation.
    kBacktrack = 2,    ///< Conflict-driven flip to the second phase.
  };
  Kind kind = Kind::kDecision;
  uint32_t var = 0;        ///< Variable acted on.
  bool value = false;      ///< Value assigned (false for a flip's target).
  size_t trail_depth = 0;  ///< Assignment-trail depth when recorded.
};

/// Ring capacity of SatSolution::step_trace.
inline constexpr size_t kSatStepTraceCapacity = 512;

/// Result of a SAT solve.
struct SatSolution {
  bool satisfiable = false;
  std::vector<bool> assignment;  ///< Per-variable value when satisfiable.
  size_t decisions = 0;          ///< Branching decisions explored.
  size_t propagations = 0;       ///< Unit propagations performed.
  size_t backtracks = 0;         ///< Decision flips forced by conflicts.
  /// Step-by-step audit trail of the search: the most recent
  /// kSatStepTraceCapacity decision/propagation/backtrack steps (a
  /// bounded ring). Collected only while tracing is enabled
  /// (trace::Enabled()); empty otherwise, so the default path pays one
  /// null check per step.
  std::vector<SatStep> step_trace;
};

/// CNF formula and DPLL search.
///
/// Malformed input (clause literals over undeclared variables,
/// over-demanding cardinality constraints) does not abort: the first
/// violation is recorded and surfaced as an InvalidArgument status by
/// Solve(), so untrusted instances (fuzzers, DIMACS files) can probe the
/// builder freely and still hard-fail with a recoverable Status.
class SatSolver {
 public:
  /// Creates a solver over `num_vars` variables.
  explicit SatSolver(uint32_t num_vars);

  uint32_t num_vars() const { return num_vars_; }

  /// OK unless a builder call above was handed a malformed clause or
  /// cardinality constraint; then the first violation, as InvalidArgument.
  const Status& build_status() const { return build_status_; }

  /// Adds a fresh variable (for encodings needing auxiliaries, e.g. the
  /// sequential-counter cardinality constraints) and returns its index.
  uint32_t NewVariable();

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// formula trivially unsatisfiable. Duplicate literals are allowed;
  /// tautological clauses (l and ~l) are dropped.
  void AddClause(std::vector<Lit> clause);

  /// Convenience for small clauses.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Adds clauses enforcing "at most one of `lits` is true" (pairwise).
  void AddAtMostOne(const std::vector<Lit>& lits);

  /// Adds clauses enforcing "exactly one of `lits` is true".
  void AddExactlyOne(const std::vector<Lit>& lits);

  /// Adds Sinz's sequential-counter encoding of "at most k of `lits` are
  /// true" (creates O(|lits| * k) auxiliary variables/clauses). k = 0
  /// forces all literals false.
  void AddAtMostK(const std::vector<Lit>& lits, size_t k);

  /// "At least k of `lits` are true" (AtMostK over the negations).
  void AddAtLeastK(const std::vector<Lit>& lits, size_t k);

  /// "Exactly k of `lits` are true".
  void AddExactlyK(const std::vector<Lit>& lits, size_t k);

  /// Runs DPLL. `max_decisions` bounds the search (0 = unlimited);
  /// exceeding it returns an Internal error.
  [[nodiscard]] Result<SatSolution> Solve(size_t max_decisions = 0);

 private:
  enum class Assign : int8_t { kUnset = -1, kFalse = 0, kTrue = 1 };

  bool LitIsTrue(Lit l) const;
  bool LitIsFalse(Lit l) const;
  // Assigns l true, propagates; returns false on conflict.
  bool Enqueue(Lit l, std::vector<Lit>& trail);
  void Unwind(std::vector<Lit>& trail, size_t keep);

  uint32_t num_vars_;
  Status build_status_;
  bool trivially_unsat_ = false;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<size_t>> watchers_;  // literal -> clause indices
  std::vector<Assign> values_;
  std::vector<double> activity_;
  size_t decisions_ = 0;
  size_t propagations_ = 0;
  size_t backtracks_ = 0;
  // Introspection sink: points at a Solve-local ring while tracing is
  // enabled, null otherwise (Enqueue checks it on each propagation).
  trace::RingBuffer<SatStep>* step_ring_ = nullptr;
};

}  // namespace pso

#endif  // PSO_SOLVER_SAT_H_
