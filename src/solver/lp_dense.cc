// The "dense" backend: the original dense two-phase tableau simplex.
//
// Kept verbatim as a differential oracle for the sparse revised simplex:
// internally variables are shifted to x' >= 0, upper bounds become rows,
// and a two-phase tableau simplex (Dantzig pricing with a Bland's-rule
// fallback after degenerate streaks) runs to optimality. Warm starts are
// not supported — the tableau has no reusable factorization — so
// LpSolveOptions is accepted and ignored.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/lp_backend.h"
#include "solver/lp_internal.h"

namespace pso {

namespace {

constexpr double kEps = 1e-9;
constexpr size_t kMaxIterations = 200000;

// Dense simplex tableau. Row layout: m constraint rows then the objective
// row; column layout: structural+slack+artificial columns then RHS.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * (cols + 1), 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * (cols_ + 1) + c]; }
  double At(size_t r, size_t c) const { return data_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return At(r, cols_); }
  double Rhs(size_t r) const { return At(r, cols_); }
  double& Obj(size_t c) { return At(rows_, c); }
  double Obj(size_t c) const { return At(rows_, c); }
  double& ObjValue() { return At(rows_, cols_); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Gauss pivot on (pr, pc); makes column pc a unit vector with 1 at pr.
  void Pivot(size_t pr, size_t pc) {
    double piv = At(pr, pc);
    PSO_CHECK(std::fabs(piv) > kEps);
    double inv = 1.0 / piv;
    for (size_t c = 0; c <= cols_; ++c) At(pr, c) *= inv;
    for (size_t r = 0; r <= rows_; ++r) {
      if (r == pr) continue;
      double factor = At(r, pc);
      if (std::fabs(factor) < kEps) {
        At(r, pc) = 0.0;
        continue;
      }
      for (size_t c = 0; c <= cols_; ++c) At(r, c) -= factor * At(pr, c);
      At(r, pc) = 0.0;
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Runs simplex minimization on the tableau whose objective row already
// holds reduced costs w.r.t. the current basis. `allowed` masks columns
// eligible to enter. Returns false on iteration-limit exhaustion.
bool RunSimplex(Tableau& t, std::vector<size_t>& basis,
                const std::vector<bool>& allowed, size_t* iterations,
                size_t* pivot_work, lp_internal::PivotSink* sink = nullptr) {
  size_t degenerate_streak = 0;
  for (size_t iter = 0; iter < kMaxIterations; ++iter) {
    // Entering column: Dantzig (most negative reduced cost); switch to
    // Bland's rule (first negative) after a degenerate streak to guarantee
    // termination.
    bool bland = degenerate_streak > 64;
    size_t enter = t.cols();
    double best = -kEps;
    for (size_t c = 0; c < t.cols(); ++c) {
      if (!allowed[c]) continue;
      double rc = t.Obj(c);
      if (rc < -kEps) {
        if (bland) {
          enter = c;
          break;
        }
        if (rc < best) {
          best = rc;
          enter = c;
        }
      }
    }
    if (enter == t.cols()) {
      *iterations += iter;
      return true;  // optimal
    }

    // Leaving row: min ratio; ties broken by smallest basis index (Bland).
    // Pivot magnitudes below 1e-7 are rejected for numerical stability.
    size_t leave = t.rows();
    double best_ratio = 0.0;
    for (size_t r = 0; r < t.rows(); ++r) {
      double a = t.At(r, enter);
      if (a > 1e-7) {
        double ratio = std::max(0.0, t.Rhs(r)) / a;
        if (leave == t.rows() || ratio < best_ratio - kEps ||
            (std::fabs(ratio - best_ratio) <= kEps &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.rows()) {
      *iterations += iter;
      return true;  // unbounded direction; caller inspects objective
    }

    degenerate_streak = (best_ratio <= kEps) ? degenerate_streak + 1 : 0;
    size_t leaving_var = basis[leave];
    t.Pivot(leave, enter);
    // A Gauss pivot touches every tableau cell: that is the dense
    // backend's FLOPs-equivalent unit of pivot work.
    *pivot_work += (t.rows() + 1) * (t.cols() + 1);
    basis[leave] = enter;
    // The tableau stores the negated running objective in the corner
    // cell; report the natural sign so traces read "objective fell".
    if (sink != nullptr) {
      sink->OnPivot(*iterations + iter, enter, leaving_var, -t.ObjValue());
    }
  }
  return false;
}

class DenseLpBackend final : public LpBackend {
 public:
  const char* name() const override { return "dense"; }

  Result<LpSolution> Solve(const LpInstance& model,
                           const LpSolveOptions& options) const override;
};

Result<LpSolution> DenseLpBackend::Solve(const LpInstance& model,
                                         const LpSolveOptions& options) const {
  (void)options;  // No factorization to reuse: warm starts are ignored.
  lp_internal::SolveScope scope;
  trace::Span solve_span("lp.solve");
  // Introspection ring: one per solve, shared by both phases, collected
  // only while tracing is on (the default path allocates nothing).
  std::unique_ptr<trace::RingBuffer<LpPivotStep>> pivot_ring;
  if (solve_span.active()) {
    solve_span.Arg("backend", "dense");
    solve_span.Arg("vars", std::to_string(model.variables.size()));
    solve_span.Arg("constraints", std::to_string(model.rows.size()));
    pivot_ring =
        std::make_unique<trace::RingBuffer<LpPivotStep>>(kPivotTraceCapacity);
  }
  const size_t n = model.variables.size();

  // Shifted problem: y_i = x_i - lb_i >= 0. Upper bounds become rows.
  struct NormRow {
    std::vector<std::pair<size_t, double>> coeffs;
    Relation rel;
    double rhs;
  };
  std::vector<NormRow> norm;
  norm.reserve(model.rows.size() + n);
  for (const LpInstance::Row& row : model.rows) {
    double shift = 0.0;
    for (const auto& [idx, coeff] : row.coeffs) {
      shift += coeff * model.variables[idx].lower;
    }
    norm.push_back(NormRow{row.coeffs, row.rel, row.rhs - shift});
  }
  for (size_t i = 0; i < n; ++i) {
    if (std::isfinite(model.variables[i].upper)) {
      norm.push_back(NormRow{{{i, 1.0}},
                             Relation::kLessEq,
                             model.variables[i].upper -
                                 model.variables[i].lower});
    }
  }

  // Flip rows to non-negative RHS.
  for (NormRow& row : norm) {
    if (row.rhs < 0.0) {
      for (auto& [idx, coeff] : row.coeffs) coeff = -coeff;
      row.rhs = -row.rhs;
      row.rel = (row.rel == Relation::kLessEq)    ? Relation::kGreaterEq
                : (row.rel == Relation::kGreaterEq) ? Relation::kLessEq
                                                    : Relation::kEqual;
    }
  }

  const size_t m = norm.size();

  // Crash basis: a structural variable appearing in exactly one row with
  // coefficient +1 (and zero entries elsewhere) can start basic in that
  // row, avoiding an artificial. L1-fit formulations (residual-splitting
  // u_j - v_j) crash completely this way and skip phase 1.
  std::vector<int> occurrences(n, 0);
  for (const NormRow& row : norm) {
    for (const auto& [idx, coeff] : row.coeffs) {
      (void)coeff;
      ++occurrences[idx];
    }
  }
  // Variables with finite upper bounds occupy their bound row too (already
  // counted, since bound rows are in `norm`).
  std::vector<size_t> crash(m, SIZE_MAX);
  for (size_t r = 0; r < m; ++r) {
    // Only equality rows need crashing: <= rows get a slack basic and
    // >= rows need their surplus handled by an artificial.
    if (norm[r].rel != Relation::kEqual) continue;
    for (const auto& [idx, coeff] : norm[r].coeffs) {
      if (occurrences[idx] == 1 && std::fabs(coeff - 1.0) < 1e-12) {
        crash[r] = idx;
        break;
      }
    }
  }

  // Columns: n structural, then one slack/surplus per inequality, then one
  // artificial per un-crashed >=/= row.
  size_t num_slack = 0;
  size_t num_art = 0;
  for (size_t r = 0; r < m; ++r) {
    if (norm[r].rel != Relation::kEqual) ++num_slack;
    if (norm[r].rel != Relation::kLessEq && crash[r] == SIZE_MAX) ++num_art;
  }
  const size_t cols = n + num_slack + num_art;
  const size_t art_begin = n + num_slack;

  Tableau t(m, cols);
  std::vector<size_t> basis(m);
  size_t slack_at = n;
  size_t art_at = art_begin;
  for (size_t r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : norm[r].coeffs) t.At(r, idx) += coeff;
    t.Rhs(r) = norm[r].rhs;
    switch (norm[r].rel) {
      case Relation::kLessEq:
        t.At(r, slack_at) = 1.0;
        basis[r] = slack_at++;
        break;
      case Relation::kGreaterEq:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
      case Relation::kEqual:
        if (crash[r] != SIZE_MAX) {
          basis[r] = crash[r];
        } else {
          t.At(r, art_at) = 1.0;
          basis[r] = art_at++;
        }
        break;
    }
  }
  num_art = art_at - art_begin;
  metrics::GetCounter("lp.dense.solves").Add(1);
  metrics::GetCounter("lp.tableau_rows").Add(m);
  metrics::GetCounter("lp.tableau_cols").Add(cols);

  size_t iterations = 0;

  // ---- Phase 1: minimize sum of artificials. ----
  // The span is opened even when the crash basis removed every
  // artificial, so a trace always shows the phase-1/phase-2 pair; a
  // zero-pivot phase 1 documents "feasible by construction".
  {
    trace::Span phase1_span("lp.phase1");
    if (phase1_span.active()) {
      phase1_span.Arg("artificials", std::to_string(num_art));
    }
    if (num_art > 0) {
      for (size_t c = art_begin; c < cols; ++c) t.Obj(c) = 1.0;
      // Reduce objective row w.r.t. the initial (artificial) basis.
      for (size_t r = 0; r < m; ++r) {
        if (basis[r] >= art_begin) {
          for (size_t c = 0; c <= cols; ++c) t.Obj(c) -= t.At(r, c);
        }
      }
      std::vector<bool> allowed(cols, true);
      lp_internal::PivotSink sink{pivot_ring.get(), /*phase=*/1};
      bool phase1_done = RunSimplex(t, basis, allowed, &iterations,
                                    &scope.pivot_work, &sink);
      scope.phase1_iterations = iterations;
      scope.total_iterations = iterations;
      if (phase1_span.active()) {
        phase1_span.Arg("pivots", std::to_string(iterations));
      }
      if (!phase1_done) {
        PSO_LOG(WARN).Field("iterations", iterations)
            << "LP phase-1 iteration limit exceeded";
        return Status::Internal("phase-1 iteration limit exceeded");
      }
      if (-t.ObjValue() > 1e-6) {
        PSO_LOG(DEBUG).Field("residual", -t.ObjValue()) << "LP infeasible";
        return Status::Infeasible(
            StrFormat("phase-1 residual %.3g", -t.ObjValue()));
      }
      // Pivot remaining (degenerate) artificials out of the basis.
      for (size_t r = 0; r < m; ++r) {
        if (basis[r] >= art_begin) {
          size_t pivot_col = cols;
          for (size_t c = 0; c < art_begin; ++c) {
            if (std::fabs(t.At(r, c)) > kEps) {
              pivot_col = c;
              break;
            }
          }
          if (pivot_col < cols) {
            t.Pivot(r, pivot_col);
            basis[r] = pivot_col;
          }
          // Else the row is all-zero over real columns: redundant
          // constraint; the artificial stays basic at value 0, which is
          // harmless as long as it cannot re-enter (masked below).
        }
      }
    }
  }

  // ---- Phase 2: minimize the real objective. ----
  trace::Span phase2_span("lp.phase2");
  for (size_t c = 0; c <= cols; ++c) t.Obj(c) = 0.0;
  for (size_t i = 0; i < n; ++i) t.Obj(i) = model.variables[i].cost;
  for (size_t r = 0; r < m; ++r) {
    size_t b = basis[r];
    if (b < n && std::fabs(model.variables[b].cost) > 0.0) {
      double factor = model.variables[b].cost;
      for (size_t c = 0; c <= cols; ++c) t.Obj(c) -= factor * t.At(r, c);
    }
  }
  std::vector<bool> allowed(cols, true);
  for (size_t c = art_begin; c < cols; ++c) allowed[c] = false;
  lp_internal::PivotSink phase2_sink{pivot_ring.get(), /*phase=*/2};
  bool phase2_done = RunSimplex(t, basis, allowed, &iterations,
                                &scope.pivot_work, &phase2_sink);
  scope.total_iterations = iterations;
  if (phase2_span.active()) {
    phase2_span.Arg("pivots",
                    std::to_string(iterations - scope.phase1_iterations));
  }
  if (!phase2_done) {
    PSO_LOG(WARN).Field("iterations", iterations)
        << "LP phase-2 iteration limit exceeded";
    return Status::Internal("phase-2 iteration limit exceeded");
  }
  // Unboundedness check: a negative reduced cost with no leaving row leaves
  // the objective row non-optimal; detect by rescanning. This is a property
  // of the model (a cost ray the constraints never cap), not a solver
  // failure, so it gets its own status code.
  for (size_t c = 0; c < cols; ++c) {
    if (allowed[c] && t.Obj(c) < -1e-6) {
      bool has_leaving = false;
      for (size_t r = 0; r < m; ++r) {
        if (t.At(r, c) > kEps) {
          has_leaving = true;
          break;
        }
      }
      if (!has_leaving) {
        return Status::Unbounded(StrFormat(
            "objective improves without bound along column %zu", c));
      }
    }
  }

  LpSolution sol;
  sol.values.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.values[basis[r]] = t.Rhs(r);
  }
  double obj = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sol.values[i] += model.variables[i].lower;
    obj += model.variables[i].cost * sol.values[i];
  }
  sol.objective = obj;
  sol.iterations = iterations;
  if (pivot_ring != nullptr) {
    sol.pivot_trace = pivot_ring->Drain();
    solve_span.Arg("pivots", std::to_string(iterations));
  }
  return sol;
}

}  // namespace

std::unique_ptr<LpBackend> MakeDenseLpBackend() {
  return std::make_unique<DenseLpBackend>();
}

}  // namespace pso
