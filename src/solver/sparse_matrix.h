// Column-compressed sparse storage for the revised simplex.
//
// SparseMatrix is a read-only CSC (compressed sparse column) matrix built
// once from triplets: reconstruction constraint matrices are overwhelmingly
// sparse (each query touches few records), so the solver never materializes
// a dense tableau. Duplicate (row, col) triplets are summed, matching the
// dense tableau's `At(r, c) += coeff` builder semantics; exact zeros
// produced by cancellation are kept (the simplex tolerances treat them as
// zero anyway, and dropping them would make nnz counts data-dependent in
// surprising ways).
//
// SparseVector is the companion scatter/gather workspace: a dense value
// array plus an index list of nonzero positions, giving O(nnz) iteration
// with O(1) random access — the standard sparse-solve working vector.

#ifndef PSO_SOLVER_SPARSE_MATRIX_H_
#define PSO_SOLVER_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pso {

/// One (row, column, value) entry handed to the CSC builder.
struct SparseTriplet {
  size_t row = 0;
  size_t col = 0;
  double value = 0.0;
};

/// Immutable CSC matrix.
class SparseMatrix {
 public:
  /// An empty rows x cols matrix.
  SparseMatrix() = default;
  SparseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    col_start_.assign(cols + 1, 0);
  }

  /// Builds from triplets (any order; duplicates summed). Triplet indices
  /// must be in range — the callers (simplex setup) construct them from
  /// already-validated instances.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   const std::vector<SparseTriplet>& entries);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return row_index_.size(); }

  /// Entry count of column `c`.
  size_t ColumnNnz(size_t c) const { return col_start_[c + 1] - col_start_[c]; }

  /// Iteration bounds for column `c`: entries k in [ColumnBegin(c),
  /// ColumnEnd(c)) with EntryRow(k) / EntryValue(k).
  size_t ColumnBegin(size_t c) const { return col_start_[c]; }
  size_t ColumnEnd(size_t c) const { return col_start_[c + 1]; }
  size_t EntryRow(size_t k) const { return row_index_[k]; }
  double EntryValue(size_t k) const { return values_[k]; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> col_start_;  ///< cols + 1 offsets into the arrays.
  std::vector<size_t> row_index_;  ///< Row of each entry, column-major.
  std::vector<double> values_;    ///< Value of each entry, column-major.
};

/// Dense-backed sparse working vector (scatter/gather). The `values`
/// array always has one slot per dimension; `nonzeros` lists tracked
/// positions in first-touch order, each exactly once. Membership is
/// recorded in a separate bitmap — "value is 0.0" is NOT the tracking
/// criterion, because a position can cancel to exact zero and be touched
/// again, and listing it twice would double-apply updates iterating
/// nonzeros(). Clear() is O(nnz).
class SparseVector {
 public:
  explicit SparseVector(size_t dim = 0) { Resize(dim); }

  void Resize(size_t dim) {
    values_.assign(dim, 0.0);
    tracked_.assign(dim, 0);
    nonzeros_.clear();
  }

  size_t dim() const { return values_.size(); }
  const std::vector<size_t>& nonzeros() const { return nonzeros_; }
  double operator[](size_t i) const { return values_[i]; }

  /// Adds `v` at position `i`, tracking it on first touch.
  void Add(size_t i, double v) {
    if (!tracked_[i]) {
      tracked_[i] = 1;
      nonzeros_.push_back(i);
    }
    values_[i] += v;
  }

  /// Overwrites position `i` (a nonzero value registers it).
  void Set(size_t i, double v) {
    if (!tracked_[i] && v != 0.0) {
      tracked_[i] = 1;
      nonzeros_.push_back(i);
    }
    values_[i] = v;
  }

  /// Zeroes and untracks every tracked position. Positions that became
  /// exactly 0.0 through cancellation are tracked until this runs, which
  /// is harmless (they contribute nothing).
  void Clear() {
    for (size_t i : nonzeros_) {
      values_[i] = 0.0;
      tracked_[i] = 0;
    }
    nonzeros_.clear();
  }

 private:
  std::vector<double> values_;
  std::vector<uint8_t> tracked_;
  std::vector<size_t> nonzeros_;
};

}  // namespace pso

#endif  // PSO_SOLVER_SPARSE_MATRIX_H_
