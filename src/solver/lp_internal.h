// Internal: instrumentation plumbing shared by the LP backends.
//
// Not part of the public solver surface — include only from backend
// implementations. Provides the pivot-trace sink feeding
// LpSolution::pivot_trace plus the common per-solve counter scope, so
// the dense and sparse backends publish an identical metric vocabulary
// (lp.solves, lp.pivots, lp.pivot_work, per-phase iteration counts) and
// differ only in their backend-specific counters.

#ifndef PSO_SOLVER_LP_INTERNAL_H_
#define PSO_SOLVER_LP_INTERNAL_H_

#include <string>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/lp_backend.h"

namespace pso::lp_internal {

// Per-pivot instants emitted into the trace timeline per solve; the ring
// buffer keeps recording past this.
inline constexpr size_t kMaxPivotInstants = 256;

// Pivot-trace sink handed to a backend's pivot loop: a bounded ring of
// audit records plus per-pivot trace instants. Null ring =>
// introspection off, OnPivot costs one branch.
struct PivotSink {
  trace::RingBuffer<LpPivotStep>* ring = nullptr;
  uint8_t phase = 2;
  size_t instants_emitted = 0;

  void OnPivot(size_t iteration, size_t entering, size_t leaving,
               double objective) {
    if (ring == nullptr) return;
    ring->Push(LpPivotStep{phase, iteration, entering, leaving, objective});
    if (instants_emitted < kMaxPivotInstants && trace::Enabled()) {
      ++instants_emitted;
      trace::Instant("lp.pivot",
                     {{"enter", std::to_string(entering)},
                      {"leave", std::to_string(leaving)},
                      {"obj", StrFormat("%.9g", objective)}});
    }
  }
};

// Publishes one solve's shared counters to the global registry on every
// exit path (optimal, infeasible, unbounded, iteration limit). Counters
// are seed-deterministic totals; the wall-clock span is reported
// separately. `pivot_work` is the backend's FLOPs-equivalent tally: the
// number of matrix/vector cells it actually touched while pivoting —
// dense tableau updates count full rows x cols, the revised simplex
// counts traversed nonzeros — so the two backends are comparable on one
// axis.
struct SolveScope {
  size_t phase1_iterations = 0;
  size_t total_iterations = 0;
  size_t pivot_work = 0;
  metrics::ScopedSpan span{"lp.solve"};

  ~SolveScope() {
    metrics::GetCounter("lp.solves").Add(1);
    metrics::GetCounter("lp.pivots").Add(total_iterations);
    metrics::GetCounter("lp.phase1_iterations").Add(phase1_iterations);
    metrics::GetCounter("lp.phase2_iterations")
        .Add(total_iterations - phase1_iterations);
    metrics::GetCounter("lp.pivot_work").Add(pivot_work);
  }
};

}  // namespace pso::lp_internal

#endif  // PSO_SOLVER_LP_INTERNAL_H_
