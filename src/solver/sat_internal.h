// Internals shared by the SAT backends (dpll in sat.cc, cdcl in
// cdcl.cc): the tri-state assignment cell, the per-solve trace budget,
// and the scope guard publishing search counters on every exit path.

#ifndef PSO_SOLVER_SAT_INTERNAL_H_
#define PSO_SOLVER_SAT_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "common/metrics.h"
#include "solver/sat_backend.h"

namespace pso::sat_internal {

/// Tri-state variable assignment.
enum class Assign : int8_t { kUnset = -1, kFalse = 0, kTrue = 1 };

/// Per-solve cap on decision/conflict/restart instants emitted into the
/// trace timeline; the step ring keeps recording past this.
inline constexpr size_t kMaxSatInstants = 256;

/// Search totals a backend accumulates during one solve. The totals are
/// input-deterministic, so the metric registry's sums stay reproducible.
struct SearchStats {
  size_t decisions = 0;
  size_t propagations = 0;
  size_t backtracks = 0;
  size_t conflicts = 0;
  size_t learned_clauses = 0;  ///< CDCL only.
  size_t restarts = 0;         ///< CDCL only.
  size_t backjump_levels = 0;  ///< CDCL only: total levels jumped over.

  /// Copies the shared totals onto a finished solution.
  void CopyTo(SatSolution& out) const {
    out.decisions = decisions;
    out.propagations = propagations;
    out.backtracks = backtracks;
    out.conflicts = conflicts;
    out.learned_clauses = learned_clauses;
    out.restarts = restarts;
  }
};

/// Publishes one solve's counters on destruction (every exit path,
/// including kResourceExhausted). `backend_solves_counter` is the
/// per-backend name, e.g. "sat.dpll.solves"; the CDCL-only counters are
/// published only when `cdcl` is set, so DPLL solves do not materialize
/// them in the registry.
struct MetricsPublisher {
  const SearchStats* stats;
  const char* backend_solves_counter;
  bool cdcl = false;
  metrics::ScopedSpan span{"sat.solve"};

  ~MetricsPublisher() {
    metrics::GetCounter("sat.solves").Add(1);
    metrics::GetCounter(backend_solves_counter).Add(1);
    metrics::GetCounter("sat.decisions").Add(stats->decisions);
    metrics::GetCounter("sat.propagations").Add(stats->propagations);
    metrics::GetCounter("sat.backtracks").Add(stats->backtracks);
    metrics::GetCounter("sat.conflicts").Add(stats->conflicts);
    if (cdcl) {
      metrics::GetCounter("sat.learned_clauses").Add(stats->learned_clauses);
      metrics::GetCounter("sat.restarts").Add(stats->restarts);
      metrics::GetCounter("sat.backjump_levels").Add(stats->backjump_levels);
    }
  }
};

}  // namespace pso::sat_internal

#endif  // PSO_SOLVER_SAT_INTERNAL_H_
