// DIMACS CNF import/export for the SAT solver.
//
// DIMACS CNF is the lingua franca of the SAT world: the census
// reconstruction pipeline can dump its cardinality encodings for external
// solvers, and external instances (or fuzzer-generated ones) can be fed
// to our DPLL engine. The parser treats its input as untrusted: every
// malformed header, out-of-range literal, or truncated clause is an
// InvalidArgument status, never an abort.
//
// Accepted dialect:
//   c <comment>                 -- anywhere before/between clauses
//   p cnf <num_vars> <num_clauses>
//   <lit> ... <lit> 0           -- clauses; literals may span lines
// Literal v > 0 is variable v-1 positive, -v is variable v-1 negated.
// The declared clause count must match the clauses present; the declared
// variable count bounds every literal.

#ifndef PSO_SOLVER_DIMACS_H_
#define PSO_SOLVER_DIMACS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "solver/sat.h"

namespace pso {

/// A parsed DIMACS CNF formula.
struct DimacsCnf {
  uint32_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Hard caps enforced by ParseDimacsCnf so adversarial headers cannot
/// reserve unbounded memory: a declared variable or clause count above
/// these limits is rejected as InvalidArgument.
inline constexpr uint32_t kDimacsMaxVars = 1u << 20;
inline constexpr size_t kDimacsMaxClauses = 1u << 22;

/// Parses DIMACS CNF `text` (see file comment for the dialect).
[[nodiscard]] Result<DimacsCnf> ParseDimacsCnf(const std::string& text);

/// Renders `cnf` back to DIMACS text (inverse of ParseDimacsCnf up to
/// comments and whitespace).
std::string ToDimacs(const DimacsCnf& cnf);

/// Loads `cnf` into a fresh solver (clauses added in order).
SatSolver BuildSatSolver(const DimacsCnf& cnf);

}  // namespace pso

#endif  // PSO_SOLVER_DIMACS_H_
