#include "solver/lp.h"

#include <cmath>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace pso {

namespace {

constexpr double kEps = 1e-9;
constexpr size_t kMaxIterations = 200000;

// Per-pivot instants emitted into the trace timeline, per RunSimplex
// call; the ring buffer keeps recording past this.
constexpr size_t kMaxPivotInstants = 256;

// Pivot-trace sink handed to RunSimplex: a bounded ring of audit records
// plus per-pivot trace instants. Null ring => introspection off.
struct PivotSink {
  trace::RingBuffer<LpPivotStep>* ring = nullptr;
  uint8_t phase = 2;
  size_t instants_emitted = 0;

  void OnPivot(size_t iteration, size_t entering, size_t leaving,
               double objective) {
    if (ring == nullptr) return;
    ring->Push(LpPivotStep{phase, iteration, entering, leaving, objective});
    if (instants_emitted < kMaxPivotInstants && trace::Enabled()) {
      ++instants_emitted;
      trace::Instant("lp.pivot",
                     {{"enter", std::to_string(entering)},
                      {"leave", std::to_string(leaving)},
                      {"obj", StrFormat("%.9g", objective)}});
    }
  }
};

// Dense simplex tableau. Row layout: m constraint rows then the objective
// row; column layout: structural+slack+artificial columns then RHS.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * (cols + 1), 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * (cols_ + 1) + c]; }
  double At(size_t r, size_t c) const { return data_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return At(r, cols_); }
  double Rhs(size_t r) const { return At(r, cols_); }
  double& Obj(size_t c) { return At(rows_, c); }
  double Obj(size_t c) const { return At(rows_, c); }
  double& ObjValue() { return At(rows_, cols_); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Gauss pivot on (pr, pc); makes column pc a unit vector with 1 at pr.
  void Pivot(size_t pr, size_t pc) {
    double piv = At(pr, pc);
    PSO_CHECK(std::fabs(piv) > kEps);
    double inv = 1.0 / piv;
    for (size_t c = 0; c <= cols_; ++c) At(pr, c) *= inv;
    for (size_t r = 0; r <= rows_; ++r) {
      if (r == pr) continue;
      double factor = At(r, pc);
      if (std::fabs(factor) < kEps) {
        At(r, pc) = 0.0;
        continue;
      }
      for (size_t c = 0; c <= cols_; ++c) At(r, c) -= factor * At(pr, c);
      At(r, pc) = 0.0;
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Runs simplex minimization on the tableau whose objective row already
// holds reduced costs w.r.t. the current basis. `allowed` masks columns
// eligible to enter. Returns false on iteration-limit exhaustion.
bool RunSimplex(Tableau& t, std::vector<size_t>& basis,
                const std::vector<bool>& allowed, size_t* iterations,
                PivotSink* sink = nullptr) {
  size_t degenerate_streak = 0;
  for (size_t iter = 0; iter < kMaxIterations; ++iter) {
    // Entering column: Dantzig (most negative reduced cost); switch to
    // Bland's rule (first negative) after a degenerate streak to guarantee
    // termination.
    bool bland = degenerate_streak > 64;
    size_t enter = t.cols();
    double best = -kEps;
    for (size_t c = 0; c < t.cols(); ++c) {
      if (!allowed[c]) continue;
      double rc = t.Obj(c);
      if (rc < -kEps) {
        if (bland) {
          enter = c;
          break;
        }
        if (rc < best) {
          best = rc;
          enter = c;
        }
      }
    }
    if (enter == t.cols()) {
      *iterations += iter;
      return true;  // optimal
    }

    // Leaving row: min ratio; ties broken by smallest basis index (Bland).
    // Pivot magnitudes below 1e-7 are rejected for numerical stability.
    size_t leave = t.rows();
    double best_ratio = 0.0;
    for (size_t r = 0; r < t.rows(); ++r) {
      double a = t.At(r, enter);
      if (a > 1e-7) {
        double ratio = std::max(0.0, t.Rhs(r)) / a;
        if (leave == t.rows() || ratio < best_ratio - kEps ||
            (std::fabs(ratio - best_ratio) <= kEps &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.rows()) {
      *iterations += iter;
      return true;  // unbounded direction; caller inspects objective
    }

    degenerate_streak = (best_ratio <= kEps) ? degenerate_streak + 1 : 0;
    size_t leaving_var = basis[leave];
    t.Pivot(leave, enter);
    basis[leave] = enter;
    // The tableau stores the negated running objective in the corner
    // cell; report the natural sign so traces read "objective fell".
    if (sink != nullptr) {
      sink->OnPivot(*iterations + iter, enter, leaving_var, -t.ObjValue());
    }
  }
  return false;
}

}  // namespace

size_t LpProblem::AddVariable(double lb, double ub, double cost) {
  // Malformed bounds poison the problem instead of aborting: Solve()
  // returns build_status_, which keeps the whole builder surface safe for
  // untrusted (fuzzed/decoded) instances. A placeholder variable is still
  // appended so returned indices stay dense and later calls stay in range.
  if (build_status_.ok()) {
    if (!std::isfinite(lb)) {
      build_status_ = Status::InvalidArgument(StrFormat(
          "variable %zu: lower bound must be finite", lower_.size()));
    } else if (std::isnan(ub) || lb > ub) {
      build_status_ = Status::InvalidArgument(
          StrFormat("variable %zu: empty bounds [%g, %g]", lower_.size(), lb,
                    ub));
    } else if (!std::isfinite(cost)) {
      build_status_ = Status::InvalidArgument(
          StrFormat("variable %zu: cost must be finite", lower_.size()));
    }
  }
  if (!build_status_.ok()) {
    lower_.push_back(0.0);
    upper_.push_back(0.0);
    cost_.push_back(0.0);
    return lower_.size() - 1;
  }
  lower_.push_back(lb);
  upper_.push_back(ub);
  cost_.push_back(cost);
  return lower_.size() - 1;
}

void LpProblem::AddConstraint(
    const std::vector<std::pair<size_t, double>>& coeffs, Relation rel,
    double rhs) {
  if (build_status_.ok()) {
    for (const auto& [idx, coeff] : coeffs) {
      if (idx >= lower_.size()) {
        build_status_ = Status::InvalidArgument(
            StrFormat("constraint %zu references unknown variable %zu",
                      rows_.size(), idx));
        break;
      }
      if (!std::isfinite(coeff)) {
        build_status_ = Status::InvalidArgument(StrFormat(
            "constraint %zu: coefficient of variable %zu must be finite",
            rows_.size(), idx));
        break;
      }
    }
    if (build_status_.ok() && !std::isfinite(rhs)) {
      build_status_ = Status::InvalidArgument(StrFormat(
          "constraint %zu: right-hand side must be finite", rows_.size()));
    }
  }
  if (!build_status_.ok()) return;
  rows_.push_back(Row{coeffs, rel, rhs});
}

namespace {

// Publishes one solve's counters to the global registry on every exit
// path (optimal, infeasible, unbounded, iteration limit). Counters are
// seed-deterministic totals; the wall-clock span is reported separately.
struct SolveMetrics {
  size_t phase1_iterations = 0;
  size_t total_iterations = 0;
  size_t tableau_rows = 0;
  size_t tableau_cols = 0;
  metrics::ScopedSpan span{"lp.solve"};

  ~SolveMetrics() {
    metrics::GetCounter("lp.solves").Add(1);
    metrics::GetCounter("lp.pivots").Add(total_iterations);
    metrics::GetCounter("lp.phase1_iterations").Add(phase1_iterations);
    metrics::GetCounter("lp.phase2_iterations")
        .Add(total_iterations - phase1_iterations);
    metrics::GetCounter("lp.tableau_rows").Add(tableau_rows);
    metrics::GetCounter("lp.tableau_cols").Add(tableau_cols);
  }
};

}  // namespace

Result<LpSolution> LpProblem::Solve() const {
  if (!build_status_.ok()) return build_status_;
  SolveMetrics solve_metrics;
  trace::Span solve_span("lp.solve");
  // Introspection ring: one per solve, shared by both phases, collected
  // only while tracing is on (the default path allocates nothing).
  std::unique_ptr<trace::RingBuffer<LpPivotStep>> pivot_ring;
  if (solve_span.active()) {
    solve_span.Arg("vars", std::to_string(num_variables()));
    solve_span.Arg("constraints", std::to_string(num_constraints()));
    pivot_ring =
        std::make_unique<trace::RingBuffer<LpPivotStep>>(kPivotTraceCapacity);
  }
  const size_t n = lower_.size();

  // Shifted problem: y_i = x_i - lb_i >= 0. Upper bounds become rows.
  struct NormRow {
    std::vector<std::pair<size_t, double>> coeffs;
    Relation rel;
    double rhs;
  };
  std::vector<NormRow> norm;
  norm.reserve(rows_.size() + n);
  for (const Row& row : rows_) {
    double shift = 0.0;
    for (const auto& [idx, coeff] : row.coeffs) shift += coeff * lower_[idx];
    norm.push_back(NormRow{row.coeffs, row.rel, row.rhs - shift});
  }
  for (size_t i = 0; i < n; ++i) {
    if (std::isfinite(upper_[i])) {
      norm.push_back(NormRow{{{i, 1.0}}, Relation::kLessEq,
                             upper_[i] - lower_[i]});
    }
  }

  // Flip rows to non-negative RHS.
  for (NormRow& row : norm) {
    if (row.rhs < 0.0) {
      for (auto& [idx, coeff] : row.coeffs) coeff = -coeff;
      row.rhs = -row.rhs;
      row.rel = (row.rel == Relation::kLessEq)    ? Relation::kGreaterEq
                : (row.rel == Relation::kGreaterEq) ? Relation::kLessEq
                                                    : Relation::kEqual;
    }
  }

  const size_t m = norm.size();

  // Crash basis: a structural variable appearing in exactly one row with
  // coefficient +1 (and zero entries elsewhere) can start basic in that
  // row, avoiding an artificial. L1-fit formulations (residual-splitting
  // u_j - v_j) crash completely this way and skip phase 1.
  std::vector<int> occurrences(n, 0);
  for (const NormRow& row : norm) {
    for (const auto& [idx, coeff] : row.coeffs) {
      (void)coeff;
      ++occurrences[idx];
    }
  }
  // Variables with finite upper bounds occupy their bound row too (already
  // counted, since bound rows are in `norm`).
  std::vector<size_t> crash(m, SIZE_MAX);
  for (size_t r = 0; r < m; ++r) {
    // Only equality rows need crashing: <= rows get a slack basic and
    // >= rows need their surplus handled by an artificial.
    if (norm[r].rel != Relation::kEqual) continue;
    for (const auto& [idx, coeff] : norm[r].coeffs) {
      if (occurrences[idx] == 1 && std::fabs(coeff - 1.0) < 1e-12) {
        crash[r] = idx;
        break;
      }
    }
  }

  // Columns: n structural, then one slack/surplus per inequality, then one
  // artificial per un-crashed >=/= row.
  size_t num_slack = 0;
  size_t num_art = 0;
  for (size_t r = 0; r < m; ++r) {
    if (norm[r].rel != Relation::kEqual) ++num_slack;
    if (norm[r].rel != Relation::kLessEq && crash[r] == SIZE_MAX) ++num_art;
  }
  const size_t cols = n + num_slack + num_art;
  const size_t art_begin = n + num_slack;

  Tableau t(m, cols);
  std::vector<size_t> basis(m);
  size_t slack_at = n;
  size_t art_at = art_begin;
  for (size_t r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : norm[r].coeffs) t.At(r, idx) += coeff;
    t.Rhs(r) = norm[r].rhs;
    switch (norm[r].rel) {
      case Relation::kLessEq:
        t.At(r, slack_at) = 1.0;
        basis[r] = slack_at++;
        break;
      case Relation::kGreaterEq:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
      case Relation::kEqual:
        if (crash[r] != SIZE_MAX) {
          basis[r] = crash[r];
        } else {
          t.At(r, art_at) = 1.0;
          basis[r] = art_at++;
        }
        break;
    }
  }
  num_art = art_at - art_begin;
  solve_metrics.tableau_rows = m;
  solve_metrics.tableau_cols = cols;

  size_t iterations = 0;

  // ---- Phase 1: minimize sum of artificials. ----
  // The span is opened even when the crash basis removed every
  // artificial, so a trace always shows the phase-1/phase-2 pair; a
  // zero-pivot phase 1 documents "feasible by construction".
  {
    trace::Span phase1_span("lp.phase1");
    if (phase1_span.active()) {
      phase1_span.Arg("artificials", std::to_string(num_art));
    }
    if (num_art > 0) {
      for (size_t c = art_begin; c < cols; ++c) t.Obj(c) = 1.0;
      // Reduce objective row w.r.t. the initial (artificial) basis.
      for (size_t r = 0; r < m; ++r) {
        if (basis[r] >= art_begin) {
          for (size_t c = 0; c <= cols; ++c) t.Obj(c) -= t.At(r, c);
        }
      }
      std::vector<bool> allowed(cols, true);
      PivotSink sink{pivot_ring.get(), /*phase=*/1};
      bool phase1_done = RunSimplex(t, basis, allowed, &iterations, &sink);
      solve_metrics.phase1_iterations = iterations;
      solve_metrics.total_iterations = iterations;
      if (phase1_span.active()) {
        phase1_span.Arg("pivots", std::to_string(iterations));
      }
      if (!phase1_done) {
        PSO_LOG(WARN).Field("iterations", iterations)
            << "LP phase-1 iteration limit exceeded";
        return Status::Internal("phase-1 iteration limit exceeded");
      }
      if (-t.ObjValue() > 1e-6) {
        PSO_LOG(DEBUG).Field("residual", -t.ObjValue()) << "LP infeasible";
        return Status::Infeasible(
            StrFormat("phase-1 residual %.3g", -t.ObjValue()));
      }
      // Pivot remaining (degenerate) artificials out of the basis.
      for (size_t r = 0; r < m; ++r) {
        if (basis[r] >= art_begin) {
          size_t pivot_col = cols;
          for (size_t c = 0; c < art_begin; ++c) {
            if (std::fabs(t.At(r, c)) > kEps) {
              pivot_col = c;
              break;
            }
          }
          if (pivot_col < cols) {
            t.Pivot(r, pivot_col);
            basis[r] = pivot_col;
          }
          // Else the row is all-zero over real columns: redundant
          // constraint; the artificial stays basic at value 0, which is
          // harmless as long as it cannot re-enter (masked below).
        }
      }
    }
  }

  // ---- Phase 2: minimize the real objective. ----
  trace::Span phase2_span("lp.phase2");
  for (size_t c = 0; c <= cols; ++c) t.Obj(c) = 0.0;
  for (size_t i = 0; i < n; ++i) t.Obj(i) = cost_[i];
  for (size_t r = 0; r < m; ++r) {
    size_t b = basis[r];
    if (b < n && std::fabs(cost_[b]) > 0.0) {
      double factor = cost_[b];
      for (size_t c = 0; c <= cols; ++c) t.Obj(c) -= factor * t.At(r, c);
    }
  }
  std::vector<bool> allowed(cols, true);
  for (size_t c = art_begin; c < cols; ++c) allowed[c] = false;
  PivotSink phase2_sink{pivot_ring.get(), /*phase=*/2};
  bool phase2_done =
      RunSimplex(t, basis, allowed, &iterations, &phase2_sink);
  solve_metrics.total_iterations = iterations;
  if (phase2_span.active()) {
    phase2_span.Arg(
        "pivots",
        std::to_string(iterations - solve_metrics.phase1_iterations));
  }
  if (!phase2_done) {
    PSO_LOG(WARN).Field("iterations", iterations)
        << "LP phase-2 iteration limit exceeded";
    return Status::Internal("phase-2 iteration limit exceeded");
  }
  // Unboundedness check: a negative reduced cost with no leaving row leaves
  // the objective row non-optimal; detect by rescanning. This is a property
  // of the model (a cost ray the constraints never cap), not a solver
  // failure, so it gets its own status code.
  for (size_t c = 0; c < cols; ++c) {
    if (allowed[c] && t.Obj(c) < -1e-6) {
      bool has_leaving = false;
      for (size_t r = 0; r < m; ++r) {
        if (t.At(r, c) > kEps) {
          has_leaving = true;
          break;
        }
      }
      if (!has_leaving) {
        return Status::Unbounded(StrFormat(
            "objective improves without bound along column %zu", c));
      }
    }
  }

  LpSolution sol;
  sol.values.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.values[basis[r]] = t.Rhs(r);
  }
  double obj = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sol.values[i] += lower_[i];
    obj += cost_[i] * sol.values[i];
  }
  sol.objective = obj;
  sol.iterations = iterations;
  if (pivot_ring != nullptr) {
    sol.pivot_trace = pivot_ring->Drain();
    solve_span.Arg("pivots", std::to_string(iterations));
  }
  return sol;
}

}  // namespace pso
