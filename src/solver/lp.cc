#include "solver/lp.h"

#include <cmath>
#include <memory>

#include "common/str_util.h"
#include "solver/lp_backend.h"

namespace pso {

size_t LpProblem::AddVariable(double lb, double ub, double cost) {
  // Malformed bounds poison the problem instead of aborting: Solve()
  // returns build_status_, which keeps the whole builder surface safe for
  // untrusted (fuzzed/decoded) instances. A placeholder variable is still
  // appended so returned indices stay dense and later calls stay in range.
  if (build_status_.ok()) {
    if (!std::isfinite(lb)) {
      build_status_ = Status::InvalidArgument(
          StrFormat("variable %zu: lower bound must be finite",
                    instance_.variables.size()));
    } else if (std::isnan(ub) || lb > ub) {
      build_status_ = Status::InvalidArgument(
          StrFormat("variable %zu: empty bounds [%g, %g]",
                    instance_.variables.size(), lb, ub));
    } else if (!std::isfinite(cost)) {
      build_status_ = Status::InvalidArgument(StrFormat(
          "variable %zu: cost must be finite", instance_.variables.size()));
    }
  }
  if (!build_status_.ok()) {
    instance_.variables.push_back(LpInstance::Variable{0.0, 0.0, 0.0});
    return instance_.variables.size() - 1;
  }
  instance_.variables.push_back(LpInstance::Variable{lb, ub, cost});
  return instance_.variables.size() - 1;
}

void LpProblem::AddConstraint(
    const std::vector<std::pair<size_t, double>>& coeffs, Relation rel,
    double rhs) {
  if (build_status_.ok()) {
    for (const auto& [idx, coeff] : coeffs) {
      if (idx >= instance_.variables.size()) {
        build_status_ = Status::InvalidArgument(
            StrFormat("constraint %zu references unknown variable %zu",
                      instance_.rows.size(), idx));
        break;
      }
      if (!std::isfinite(coeff)) {
        build_status_ = Status::InvalidArgument(StrFormat(
            "constraint %zu: coefficient of variable %zu must be finite",
            instance_.rows.size(), idx));
        break;
      }
    }
    if (build_status_.ok() && !std::isfinite(rhs)) {
      build_status_ = Status::InvalidArgument(
          StrFormat("constraint %zu: right-hand side must be finite",
                    instance_.rows.size()));
    }
  }
  if (!build_status_.ok()) return;
  instance_.rows.push_back(LpInstance::Row{coeffs, rel, rhs});
}

Result<LpSolution> LpProblem::Solve() const { return Solve(LpSolveOptions{}); }

Result<LpSolution> LpProblem::Solve(const LpSolveOptions& options) const {
  if (!build_status_.ok()) return build_status_;
  Result<std::unique_ptr<LpBackend>> backend =
      MakeLpBackend(DefaultLpBackendName());
  // The default name is always registered (SetDefaultLpBackend checks),
  // but a failure here must still surface as a Status, not a crash.
  if (!backend.ok()) return backend.status();
  return (*backend)->Solve(instance_, options);
}

Result<LpSolution> LpProblem::SolveWith(const LpBackend& backend,
                                        const LpSolveOptions& options) const {
  if (!build_status_.ok()) return build_status_;
  return backend.Solve(instance_, options);
}

LpProblem LpInstance::ToProblem() const {
  LpProblem problem;
  for (const Variable& v : variables) {
    problem.AddVariable(v.lower, v.upper, v.cost);
  }
  for (const Row& row : rows) {
    problem.AddConstraint(row.coeffs, row.rel, row.rhs);
  }
  return problem;
}

}  // namespace pso
