#include "solver/sat.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace pso {

namespace {

// Per-solve cap on decision/backtrack instants emitted into the trace
// timeline; the step ring keeps recording past this.
constexpr size_t kMaxSatInstants = 256;

}  // namespace

SatSolver::SatSolver(uint32_t num_vars)
    : num_vars_(num_vars),
      watchers_(2 * static_cast<size_t>(num_vars)),
      values_(num_vars, Assign::kUnset),
      activity_(num_vars, 0.0) {}

void SatSolver::AddClause(std::vector<Lit> clause) {
  for (Lit l : clause) {
    if (LitVar(l) >= num_vars_) {
      // Poison instead of abort: Solve() surfaces the error as a Status,
      // keeping the builder safe for untrusted (fuzzed/parsed) formulas.
      if (build_status_.ok()) {
        build_status_ = Status::InvalidArgument(
            StrFormat("clause %zu references undeclared variable %u",
                      clauses_.size(), LitVar(l)));
      }
      return;
    }
  }
  // Drop duplicates; detect tautologies.
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (LitNegate(clause[i]) == clause[i + 1]) return;  // tautology
  }
  if (clause.empty()) {
    trivially_unsat_ = true;
    return;
  }
  size_t idx = clauses_.size();
  for (Lit l : clause) {
    // Occurrence list: clauses containing l, visited when ~l is assigned.
    watchers_[l].push_back(idx);
    activity_[LitVar(l)] += 1.0;
  }
  clauses_.push_back(std::move(clause));
}

uint32_t SatSolver::NewVariable() {
  uint32_t v = num_vars_++;
  values_.push_back(Assign::kUnset);
  activity_.push_back(0.0);
  watchers_.emplace_back();
  watchers_.emplace_back();
  return v;
}

void SatSolver::AddAtMostK(const std::vector<Lit>& lits, size_t k) {
  const size_t n = lits.size();
  if (k >= n) return;  // vacuous
  if (k == 0) {
    for (Lit l : lits) AddUnit(LitNegate(l));
    return;
  }
  // Sinz sequential counter: s[i][j] = "at least j+1 of the first i+1
  // literals are true".
  std::vector<std::vector<uint32_t>> s(n, std::vector<uint32_t>(k));
  for (size_t i = 0; i + 1 < n; ++i) {  // s for the last literal is unused
    for (size_t j = 0; j < k; ++j) s[i][j] = NewVariable();
  }
  // l_0 -> s_0,0 ; s_0,j false for j >= 1.
  AddBinary(LitNegate(lits[0]), MakeLit(s[0][0], true));
  for (size_t j = 1; j < k; ++j) AddUnit(MakeLit(s[0][j], false));
  for (size_t i = 1; i + 1 < n; ++i) {
    // l_i -> s_i,0 ; s_{i-1},0 -> s_i,0.
    AddBinary(LitNegate(lits[i]), MakeLit(s[i][0], true));
    AddBinary(MakeLit(s[i - 1][0], false), MakeLit(s[i][0], true));
    for (size_t j = 1; j < k; ++j) {
      // l_i & s_{i-1},{j-1} -> s_i,j ; s_{i-1},j -> s_i,j.
      AddTernary(LitNegate(lits[i]), MakeLit(s[i - 1][j - 1], false),
                 MakeLit(s[i][j], true));
      AddBinary(MakeLit(s[i - 1][j], false), MakeLit(s[i][j], true));
    }
    // Overflow: l_i & s_{i-1},{k-1} is a conflict.
    AddBinary(LitNegate(lits[i]), MakeLit(s[i - 1][k - 1], false));
  }
  if (n >= 2) {
    AddBinary(LitNegate(lits[n - 1]), MakeLit(s[n - 2][k - 1], false));
  }
}

void SatSolver::AddAtLeastK(const std::vector<Lit>& lits, size_t k) {
  if (k == 0) return;
  if (k > lits.size()) {
    if (build_status_.ok()) {
      build_status_ = Status::InvalidArgument(
          StrFormat("at-least-%zu over %zu literals is unsatisfiable by "
                    "construction",
                    k, lits.size()));
    }
    return;
  }
  if (k == lits.size()) {
    for (Lit l : lits) AddUnit(l);
    return;
  }
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (Lit l : lits) negated.push_back(LitNegate(l));
  AddAtMostK(negated, lits.size() - k);
}

void SatSolver::AddExactlyK(const std::vector<Lit>& lits, size_t k) {
  AddAtMostK(lits, k);
  AddAtLeastK(lits, k);
}

void SatSolver::AddAtMostOne(const std::vector<Lit>& lits) {
  for (size_t i = 0; i < lits.size(); ++i) {
    for (size_t j = i + 1; j < lits.size(); ++j) {
      AddBinary(LitNegate(lits[i]), LitNegate(lits[j]));
    }
  }
}

void SatSolver::AddExactlyOne(const std::vector<Lit>& lits) {
  AddClause(lits);
  AddAtMostOne(lits);
}

bool SatSolver::LitIsTrue(Lit l) const {
  Assign v = values_[LitVar(l)];
  if (v == Assign::kUnset) return false;
  return (v == Assign::kTrue) == LitPositive(l);
}

bool SatSolver::LitIsFalse(Lit l) const {
  Assign v = values_[LitVar(l)];
  if (v == Assign::kUnset) return false;
  return (v == Assign::kTrue) != LitPositive(l);
}

bool SatSolver::Enqueue(Lit l, std::vector<Lit>& trail) {
  if (LitIsTrue(l)) return true;
  if (LitIsFalse(l)) return false;
  values_[LitVar(l)] = LitPositive(l) ? Assign::kTrue : Assign::kFalse;
  trail.push_back(l);

  // BFS unit propagation from the newly assigned literal.
  for (size_t head = trail.size() - 1; head < trail.size(); ++head) {
    Lit assigned = trail[head];
    Lit falsified = LitNegate(assigned);
    for (size_t ci : watchers_[falsified]) {
      const std::vector<Lit>& clause = clauses_[ci];
      Lit unit = 0;
      size_t unassigned = 0;
      bool satisfied = false;
      for (Lit cl : clause) {
        if (LitIsTrue(cl)) {
          satisfied = true;
          break;
        }
        if (!LitIsFalse(cl)) {
          ++unassigned;
          unit = cl;
          if (unassigned > 1) break;
        }
      }
      if (satisfied || unassigned > 1) continue;
      if (unassigned == 0) return false;  // conflict
      ++propagations_;
      values_[LitVar(unit)] =
          LitPositive(unit) ? Assign::kTrue : Assign::kFalse;
      trail.push_back(unit);
      if (step_ring_ != nullptr) {
        step_ring_->Push(SatStep{SatStep::Kind::kPropagation, LitVar(unit),
                                 LitPositive(unit), trail.size()});
      }
    }
  }
  return true;
}

void SatSolver::Unwind(std::vector<Lit>& trail, size_t keep) {
  while (trail.size() > keep) {
    values_[LitVar(trail.back())] = Assign::kUnset;
    trail.pop_back();
  }
}

Result<SatSolution> SatSolver::Solve(size_t max_decisions) {
  if (!build_status_.ok()) return build_status_;
  decisions_ = 0;
  propagations_ = 0;
  backtracks_ = 0;
  std::fill(values_.begin(), values_.end(), Assign::kUnset);

  // Introspection ring: created only while tracing is on. Enqueue sees it
  // through step_ring_, which Publish resets on every exit path.
  trace::Span solve_span("sat.solve");
  std::unique_ptr<trace::RingBuffer<SatStep>> step_ring;
  if (solve_span.active()) {
    solve_span.Arg("vars", std::to_string(num_vars_));
    solve_span.Arg("clauses", std::to_string(clauses_.size()));
    step_ring =
        std::make_unique<trace::RingBuffer<SatStep>>(kSatStepTraceCapacity);
    step_ring_ = step_ring.get();
  }
  size_t instants_emitted = 0;

  // Publish this solve's search statistics on every exit path. The totals
  // are input-deterministic, so the registry's sums stay reproducible.
  struct Publish {
    SatSolver* solver;
    metrics::ScopedSpan span{"sat.solve"};
    ~Publish() {
      metrics::GetCounter("sat.solves").Add(1);
      metrics::GetCounter("sat.decisions").Add(solver->decisions_);
      metrics::GetCounter("sat.propagations").Add(solver->propagations_);
      metrics::GetCounter("sat.backtracks").Add(solver->backtracks_);
      solver->step_ring_ = nullptr;
    }
  } publish{this};

  // Attaches the retained steps to a finished solution.
  auto attach_steps = [&](SatSolution& s) {
    if (step_ring != nullptr) s.step_trace = step_ring->Drain();
  };

  SatSolution out;
  if (trivially_unsat_) {
    out.satisfiable = false;
    attach_steps(out);
    return out;
  }

  std::vector<Lit> trail;
  // Propagate initial unit clauses.
  for (const auto& clause : clauses_) {
    if (clause.size() == 1) {
      if (!Enqueue(clause[0], trail)) {
        out.satisfiable = false;
        out.propagations = propagations_;
        attach_steps(out);
        return out;
      }
    }
  }

  // Iterative DPLL with an explicit decision stack.
  struct Frame {
    uint32_t var;
    bool tried_second;
    size_t trail_size;
  };
  std::vector<Frame> stack;

  auto pick_branch_var = [&]() -> int64_t {
    int64_t best = -1;
    double best_act = -1.0;
    for (uint32_t v = 0; v < num_vars_; ++v) {
      if (values_[v] == Assign::kUnset && activity_[v] > best_act) {
        best_act = activity_[v];
        best = v;
      }
    }
    return best;
  };

  for (;;) {
    int64_t v = pick_branch_var();
    if (v < 0) {
      // All variables assigned without conflict: satisfiable.
      out.satisfiable = true;
      out.assignment.resize(num_vars_);
      for (uint32_t i = 0; i < num_vars_; ++i) {
        out.assignment[i] = (values_[i] == Assign::kTrue);
      }
      out.decisions = decisions_;
      out.propagations = propagations_;
      out.backtracks = backtracks_;
      attach_steps(out);
      return out;
    }

    ++decisions_;
    if (max_decisions > 0 && decisions_ > max_decisions) {
      return Status::Internal("SAT decision limit exceeded");
    }
    if (step_ring_ != nullptr) {
      step_ring_->Push(SatStep{SatStep::Kind::kDecision,
                               static_cast<uint32_t>(v), true, trail.size()});
      if (instants_emitted < kMaxSatInstants && trace::Enabled()) {
        ++instants_emitted;
        trace::Instant("sat.decision",
                       {{"var", std::to_string(v)},
                        {"depth", std::to_string(stack.size())}});
      }
    }

    stack.push_back(
        Frame{static_cast<uint32_t>(v), false, trail.size()});
    bool ok = Enqueue(MakeLit(static_cast<uint32_t>(v), true), trail);

    while (!ok) {
      // Backtrack to the most recent frame with an untried phase.
      while (!stack.empty() && stack.back().tried_second) {
        Unwind(trail, stack.back().trail_size);
        stack.pop_back();
      }
      if (stack.empty()) {
        out.satisfiable = false;
        out.decisions = decisions_;
        out.propagations = propagations_;
        out.backtracks = backtracks_;
        attach_steps(out);
        return out;
      }
      Frame& frame = stack.back();
      Unwind(trail, frame.trail_size);
      frame.tried_second = true;
      ++backtracks_;
      if (step_ring_ != nullptr) {
        step_ring_->Push(SatStep{SatStep::Kind::kBacktrack, frame.var, false,
                                 trail.size()});
        if (instants_emitted < kMaxSatInstants && trace::Enabled()) {
          ++instants_emitted;
          trace::Instant("sat.backtrack",
                         {{"var", std::to_string(frame.var)},
                          {"depth", std::to_string(stack.size())}});
        }
      }
      ok = Enqueue(MakeLit(frame.var, false), trail);
    }
  }
}

}  // namespace pso
