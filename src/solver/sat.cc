#include "solver/sat.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/sat_internal.h"

namespace pso {

// ---------------------------------------------------------------------
// SatSolver: the CNF builder and backend front-end.
// ---------------------------------------------------------------------

SatSolver::SatSolver(uint32_t num_vars) { instance_.num_vars = num_vars; }

void SatSolver::AddClause(std::vector<Lit> clause) {
  for (Lit l : clause) {
    if (LitVar(l) >= instance_.num_vars) {
      // Poison instead of abort: Solve() surfaces the error as a Status,
      // keeping the builder safe for untrusted (fuzzed/parsed) formulas.
      if (build_status_.ok()) {
        build_status_ = Status::InvalidArgument(
            StrFormat("clause %zu references undeclared variable %u",
                      instance_.clauses.size(), LitVar(l)));
      }
      return;
    }
  }
  // Drop duplicates; detect tautologies.
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (LitNegate(clause[i]) == clause[i + 1]) return;  // tautology
  }
  if (clause.empty()) {
    instance_.trivially_unsat = true;
    return;
  }
  instance_.clauses.push_back(std::move(clause));
}

uint32_t SatSolver::NewVariable() { return instance_.num_vars++; }

void SatSolver::AddAtMostK(const std::vector<Lit>& lits, size_t k) {
  const size_t n = lits.size();
  if (k >= n) return;  // vacuous
  if (k == 0) {
    for (Lit l : lits) AddUnit(LitNegate(l));
    return;
  }
  // Sinz sequential counter: s[i][j] = "at least j+1 of the first i+1
  // literals are true".
  std::vector<std::vector<uint32_t>> s(n, std::vector<uint32_t>(k));
  for (size_t i = 0; i + 1 < n; ++i) {  // s for the last literal is unused
    for (size_t j = 0; j < k; ++j) s[i][j] = NewVariable();
  }
  // l_0 -> s_0,0 ; s_0,j false for j >= 1.
  AddBinary(LitNegate(lits[0]), MakeLit(s[0][0], true));
  for (size_t j = 1; j < k; ++j) AddUnit(MakeLit(s[0][j], false));
  for (size_t i = 1; i + 1 < n; ++i) {
    // l_i -> s_i,0 ; s_{i-1},0 -> s_i,0.
    AddBinary(LitNegate(lits[i]), MakeLit(s[i][0], true));
    AddBinary(MakeLit(s[i - 1][0], false), MakeLit(s[i][0], true));
    for (size_t j = 1; j < k; ++j) {
      // l_i & s_{i-1},{j-1} -> s_i,j ; s_{i-1},j -> s_i,j.
      AddTernary(LitNegate(lits[i]), MakeLit(s[i - 1][j - 1], false),
                 MakeLit(s[i][j], true));
      AddBinary(MakeLit(s[i - 1][j], false), MakeLit(s[i][j], true));
    }
    // Overflow: l_i & s_{i-1},{k-1} is a conflict.
    AddBinary(LitNegate(lits[i]), MakeLit(s[i - 1][k - 1], false));
  }
  if (n >= 2) {
    AddBinary(LitNegate(lits[n - 1]), MakeLit(s[n - 2][k - 1], false));
  }
}

void SatSolver::AddAtLeastK(const std::vector<Lit>& lits, size_t k) {
  if (k == 0) return;
  if (k > lits.size()) {
    if (build_status_.ok()) {
      build_status_ = Status::InvalidArgument(
          StrFormat("at-least-%zu over %zu literals is unsatisfiable by "
                    "construction",
                    k, lits.size()));
    }
    return;
  }
  if (k == lits.size()) {
    for (Lit l : lits) AddUnit(l);
    return;
  }
  if (k == 1) {
    AddClause(lits);
    return;
  }
  // Direct sequential counter, O(|lits| * k). The dual route (at-most
  // (n-k) over the negations) costs O(|lits| * (|lits| - k)) — quadratic
  // when k is small and the literal set is census-row wide.
  //
  // t[i][j] = "at least j+1 of the first i+1 literals are true", with
  // implications from t to its evidence so forcing t[n-1][k-1] true makes
  // any under-count assignment contradictory.
  const size_t n = lits.size();
  std::vector<std::vector<uint32_t>> t(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    t[i].resize(std::min(i + 1, k));
    for (size_t j = 0; j < t[i].size(); ++j) t[i][j] = NewVariable();
  }
  t[n - 1].resize(k);
  for (size_t j = 0; j + 1 < k; ++j) t[n - 1][j] = 0;  // unused
  t[n - 1][k - 1] = NewVariable();

  // t[0][0] -> l_0.
  AddBinary(MakeLit(t[0][0], false), lits[0]);
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < t[i].size(); ++j) {
      if (i + 1 == n && j + 1 < k) continue;  // only the root is needed
      Lit tij = MakeLit(t[i][j], false);  // ~t[i][j]
      if (j == i) {
        // All of the first i+1 literals are true.
        AddBinary(tij, lits[i]);
        AddBinary(tij, MakeLit(t[i - 1][j - 1], true));
        continue;
      }
      // t[i][j] -> t[i-1][j] or (l_i and t[i-1][j-1]).
      AddTernary(tij, MakeLit(t[i - 1][j], true), lits[i]);
      if (j == 0) continue;  // "at least 1 among fewer" needs no j-1 arm
      AddTernary(tij, MakeLit(t[i - 1][j], true),
                 MakeLit(t[i - 1][j - 1], true));
    }
  }
  AddUnit(MakeLit(t[n - 1][k - 1], true));
}

void SatSolver::AddExactlyK(const std::vector<Lit>& lits, size_t k) {
  AddAtMostK(lits, k);
  AddAtLeastK(lits, k);
}

void SatSolver::AddAtMostOne(const std::vector<Lit>& lits) {
  // Pairwise is propagation-strongest but quadratic in clauses; past a
  // small cutoff the sequential counter's O(n) auxiliaries win (the
  // census encoding hands us candidate rows thousands of literals wide).
  constexpr size_t kPairwiseCutoff = 16;
  if (lits.size() > kPairwiseCutoff) {
    AddAtMostK(lits, 1);
    return;
  }
  for (size_t i = 0; i < lits.size(); ++i) {
    for (size_t j = i + 1; j < lits.size(); ++j) {
      AddBinary(LitNegate(lits[i]), LitNegate(lits[j]));
    }
  }
}

void SatSolver::AddExactlyOne(const std::vector<Lit>& lits) {
  AddClause(lits);
  AddAtMostOne(lits);
}

Result<SatSolution> SatSolver::Solve(size_t max_decisions) const {
  Result<std::unique_ptr<SatBackend>> backend =
      MakeSatBackend(DefaultSatBackendName());
  if (!backend.ok()) return backend.status();
  SatSolveOptions options;
  options.max_decisions = max_decisions;
  return SolveWith(**backend, options);
}

Result<SatSolution> SatSolver::SolveWith(const SatBackend& backend,
                                         const SatSolveOptions& options) const {
  if (!build_status_.ok()) return build_status_;
  return backend.Solve(instance_, options);
}

// ---------------------------------------------------------------------
// The "dpll" backend: chronological DPLL with occurrence-list unit
// propagation and static activity-guided branching — the differential
// oracle for the CDCL engine.
// ---------------------------------------------------------------------

namespace {

using sat_internal::Assign;
using sat_internal::kMaxSatInstants;

// All per-solve search state; the backend object itself stays stateless.
struct DpllSearch {
  const SatInstance& inst;
  std::vector<Assign> values;
  // Occurrence list: clauses containing l, visited when ~l is assigned.
  std::vector<std::vector<size_t>> occurrences;
  std::vector<double> activity;
  std::vector<Lit> trail;
  sat_internal::SearchStats stats;
  // Introspection sink: points at a Solve-local ring while tracing is
  // enabled, null otherwise (Enqueue checks it on each propagation).
  trace::RingBuffer<SatStep>* step_ring = nullptr;

  explicit DpllSearch(const SatInstance& instance)
      : inst(instance),
        values(instance.num_vars, Assign::kUnset),
        occurrences(2 * static_cast<size_t>(instance.num_vars)),
        activity(instance.num_vars, 0.0) {
    for (size_t ci = 0; ci < inst.clauses.size(); ++ci) {
      for (Lit l : inst.clauses[ci]) {
        occurrences[l].push_back(ci);
        activity[LitVar(l)] += 1.0;
      }
    }
  }

  bool LitIsTrue(Lit l) const {
    Assign v = values[LitVar(l)];
    if (v == Assign::kUnset) return false;
    return (v == Assign::kTrue) == LitPositive(l);
  }

  bool LitIsFalse(Lit l) const {
    Assign v = values[LitVar(l)];
    if (v == Assign::kUnset) return false;
    return (v == Assign::kTrue) != LitPositive(l);
  }

  // Assigns l true, propagates; returns false on conflict.
  bool Enqueue(Lit l) {
    if (LitIsTrue(l)) return true;
    if (LitIsFalse(l)) {
      ++stats.conflicts;
      return false;
    }
    values[LitVar(l)] = LitPositive(l) ? Assign::kTrue : Assign::kFalse;
    trail.push_back(l);

    // BFS unit propagation from the newly assigned literal.
    for (size_t head = trail.size() - 1; head < trail.size(); ++head) {
      Lit assigned = trail[head];
      Lit falsified = LitNegate(assigned);
      for (size_t ci : occurrences[falsified]) {
        const std::vector<Lit>& clause = inst.clauses[ci];
        Lit unit = 0;
        size_t unassigned = 0;
        bool satisfied = false;
        for (Lit cl : clause) {
          if (LitIsTrue(cl)) {
            satisfied = true;
            break;
          }
          if (!LitIsFalse(cl)) {
            ++unassigned;
            unit = cl;
            if (unassigned > 1) break;
          }
        }
        if (satisfied || unassigned > 1) continue;
        if (unassigned == 0) {
          ++stats.conflicts;
          return false;  // conflict
        }
        ++stats.propagations;
        // trail_depth pre-push: the step ring records the trail length
        // before the forced literal lands (see SatStep's convention).
        if (step_ring != nullptr) {
          step_ring->Push(SatStep{SatStep::Kind::kPropagation, LitVar(unit),
                                  LitPositive(unit), trail.size()});
        }
        values[LitVar(unit)] =
            LitPositive(unit) ? Assign::kTrue : Assign::kFalse;
        trail.push_back(unit);
      }
    }
    return true;
  }

  void Unwind(size_t keep) {
    while (trail.size() > keep) {
      values[LitVar(trail.back())] = Assign::kUnset;
      trail.pop_back();
    }
  }
};

class DpllBackend final : public SatBackend {
 public:
  const char* name() const override { return "dpll"; }

  Result<SatSolution> Solve(const SatInstance& inst,
                            const SatSolveOptions& options) const override {
    DpllSearch search(inst);

    // Introspection ring: created only while tracing is on.
    trace::Span solve_span("sat.solve");
    std::unique_ptr<trace::RingBuffer<SatStep>> step_ring;
    if (solve_span.active()) {
      solve_span.Arg("backend", "dpll");
      solve_span.Arg("vars", std::to_string(inst.num_vars));
      solve_span.Arg("clauses", std::to_string(inst.clauses.size()));
      step_ring =
          std::make_unique<trace::RingBuffer<SatStep>>(kSatStepTraceCapacity);
      search.step_ring = step_ring.get();
    }
    size_t instants_emitted = 0;

    // Publish this solve's search statistics on every exit path.
    sat_internal::MetricsPublisher publish{&search.stats, "sat.dpll.solves"};

    // Attaches the retained steps to a finished solution.
    auto attach = [&](SatSolution& s) {
      search.stats.CopyTo(s);
      if (step_ring != nullptr) s.step_trace = step_ring->Drain();
    };

    SatSolution out;
    if (inst.trivially_unsat) {
      out.satisfiable = false;
      attach(out);
      return out;
    }

    // Propagate initial unit clauses.
    for (const auto& clause : inst.clauses) {
      if (clause.size() == 1) {
        if (!search.Enqueue(clause[0])) {
          out.satisfiable = false;
          attach(out);
          return out;
        }
      }
    }

    // Iterative DPLL with an explicit decision stack.
    struct Frame {
      uint32_t var;
      bool tried_second;
      size_t trail_size;
    };
    std::vector<Frame> stack;

    auto pick_branch_var = [&]() -> int64_t {
      int64_t best = -1;
      double best_act = -1.0;
      for (uint32_t v = 0; v < inst.num_vars; ++v) {
        if (search.values[v] == Assign::kUnset &&
            search.activity[v] > best_act) {
          best_act = search.activity[v];
          best = v;
        }
      }
      return best;
    };

    for (;;) {
      int64_t v = pick_branch_var();
      if (v < 0) {
        // All variables assigned without conflict: satisfiable.
        out.satisfiable = true;
        out.assignment.resize(inst.num_vars);
        for (uint32_t i = 0; i < inst.num_vars; ++i) {
          out.assignment[i] = (search.values[i] == Assign::kTrue);
        }
        attach(out);
        return out;
      }

      ++search.stats.decisions;
      if (options.max_decisions > 0 &&
          search.stats.decisions > options.max_decisions) {
        return Status::ResourceExhausted(
            StrFormat("SAT decision budget of %zu exceeded (dpll)",
                      options.max_decisions));
      }
      if (search.step_ring != nullptr) {
        search.step_ring->Push(SatStep{SatStep::Kind::kDecision,
                                       static_cast<uint32_t>(v), true,
                                       search.trail.size()});
        if (instants_emitted < kMaxSatInstants && trace::Enabled()) {
          ++instants_emitted;
          trace::Instant("sat.decision",
                         {{"var", std::to_string(v)},
                          {"depth", std::to_string(stack.size())}});
        }
      }

      stack.push_back(
          Frame{static_cast<uint32_t>(v), false, search.trail.size()});
      bool ok = search.Enqueue(MakeLit(static_cast<uint32_t>(v), true));

      while (!ok) {
        // Backtrack to the most recent frame with an untried phase.
        while (!stack.empty() && stack.back().tried_second) {
          search.Unwind(stack.back().trail_size);
          stack.pop_back();
        }
        if (stack.empty()) {
          out.satisfiable = false;
          attach(out);
          return out;
        }
        Frame& frame = stack.back();
        search.Unwind(frame.trail_size);
        frame.tried_second = true;
        ++search.stats.backtracks;
        if (search.step_ring != nullptr) {
          search.step_ring->Push(SatStep{SatStep::Kind::kBacktrack,
                                         frame.var, false,
                                         search.trail.size()});
          if (instants_emitted < kMaxSatInstants && trace::Enabled()) {
            ++instants_emitted;
            trace::Instant("sat.backtrack",
                           {{"var", std::to_string(frame.var)},
                            {"depth", std::to_string(stack.size())}});
          }
        }
        ok = search.Enqueue(MakeLit(frame.var, false));
      }
    }
  }
};

}  // namespace

std::unique_ptr<SatBackend> MakeDpllSatBackend() {
  return std::make_unique<DpllBackend>();
}

}  // namespace pso
