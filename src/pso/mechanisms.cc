#include "pso/mechanisms.h"

#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/str_util.h"
#include "dp/mechanisms.h"

namespace pso {

namespace {

class IdentityMechanism final : public Mechanism {
 public:
  std::string Name() const override { return "Identity"; }
  MechanismOutput Run(const Dataset& input, Rng&) const override {
    return MechanismOutput::Of(input);
  }
};

class CountMechanism final : public Mechanism {
 public:
  CountMechanism(PredicateRef q, std::string query_name)
      : q_(std::move(q)), query_name_(std::move(query_name)) {
    PSO_CHECK(q_ != nullptr);
  }
  std::string Name() const override { return "M#" + query_name_; }
  MechanismOutput Run(const Dataset& input, Rng&) const override {
    return MechanismOutput::Of(
        static_cast<double>(CountMatches(*q_, input)));
  }

 private:
  PredicateRef q_;
  std::string query_name_;
};

class LaplaceCountMechanism final : public Mechanism {
 public:
  LaplaceCountMechanism(PredicateRef q, std::string query_name, double eps)
      : q_(std::move(q)), query_name_(std::move(query_name)), eps_(eps) {
    PSO_CHECK(q_ != nullptr);
    PSO_CHECK(eps > 0.0);
  }
  std::string Name() const override {
    return StrFormat("Laplace#%s(eps=%.2f)", query_name_.c_str(), eps_);
  }
  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    return MechanismOutput::Of(dp::LaplaceCount(input, *q_, eps_, rng));
  }

 private:
  PredicateRef q_;
  std::string query_name_;
  double eps_;
};

class GeometricCountMechanism final : public Mechanism {
 public:
  GeometricCountMechanism(PredicateRef q, std::string query_name, double eps)
      : q_(std::move(q)), query_name_(std::move(query_name)), eps_(eps) {
    PSO_CHECK(q_ != nullptr);
    PSO_CHECK(eps > 0.0);
  }
  std::string Name() const override {
    return StrFormat("Geom#%s(eps=%.2f)", query_name_.c_str(), eps_);
  }
  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    return MechanismOutput::Of(
        static_cast<double>(dp::GeometricCount(input, *q_, eps_, rng)));
  }

 private:
  PredicateRef q_;
  std::string query_name_;
  double eps_;
};

class NoisyHistogramMechanism final : public Mechanism {
 public:
  NoisyHistogramMechanism(size_t attr, double eps)
      : attr_(attr), eps_(eps) {
    PSO_CHECK(eps > 0.0);
  }
  std::string Name() const override {
    return StrFormat("NoisyHist[attr %zu](eps=%.2f)", attr_, eps_);
  }
  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    return MechanismOutput::Of(
        dp::NoisyHistogram(input, attr_, eps_, rng));
  }

 private:
  size_t attr_;
  double eps_;
};

class KAnonymityMechanism final : public Mechanism {
 public:
  KAnonymityMechanism(KAnonAlgorithm algorithm, size_t k,
                      kanon::HierarchySet hierarchies,
                      std::vector<size_t> qi_attrs, size_t l_diversity,
                      size_t sensitive_attr)
      : algorithm_(algorithm),
        k_(k),
        hierarchies_(std::move(hierarchies)),
        qi_attrs_(std::move(qi_attrs)),
        l_diversity_(l_diversity),
        sensitive_attr_(sensitive_attr) {
    PSO_CHECK_MSG(l_diversity_ == 0 ||
                      algorithm_ == KAnonAlgorithm::kMondrian,
                  "l-diversity enforcement is Mondrian-only");
  }

  std::string Name() const override {
    std::string base = StrFormat(
        "%s(k=%zu)",
        algorithm_ == KAnonAlgorithm::kDatafly ? "Datafly" : "Mondrian",
        k_);
    if (l_diversity_ >= 2) {
      base += StrFormat("+%zu-diverse", l_diversity_);
    }
    return base;
  }

  MechanismOutput Run(const Dataset& input, Rng&) const override {
    std::vector<size_t> qi = qi_attrs_;
    if (qi.empty()) {
      qi.resize(input.schema().NumAttributes());
      for (size_t i = 0; i < qi.size(); ++i) qi[i] = i;
    }
    if (algorithm_ == KAnonAlgorithm::kDatafly) {
      kanon::DataflyOptions opts;
      opts.k = k_;
      opts.qi_attrs = qi;
      auto result = kanon::DataflyAnonymize(input, hierarchies_, opts);
      if (!result.ok()) return MechanismOutput();
      return MechanismOutput::Of(std::move(result).value());
    }
    kanon::MondrianOptions opts;
    opts.k = k_;
    opts.qi_attrs = qi;
    opts.l_diversity = l_diversity_;
    opts.sensitive_attr = sensitive_attr_;
    auto result = kanon::MondrianAnonymize(input, hierarchies_, opts);
    if (!result.ok()) return MechanismOutput();
    return MechanismOutput::Of(std::move(result).value());
  }

 private:
  KAnonAlgorithm algorithm_;
  size_t k_;
  kanon::HierarchySet hierarchies_;
  std::vector<size_t> qi_attrs_;
  size_t l_diversity_;
  size_t sensitive_attr_;
};

class BundleMechanism final : public Mechanism {
 public:
  explicit BundleMechanism(std::vector<MechanismRef> mechanisms)
      : mechanisms_(std::move(mechanisms)) {
    for (const auto& m : mechanisms_) PSO_CHECK(m != nullptr);
  }
  std::string Name() const override {
    std::vector<std::string> names;
    names.reserve(mechanisms_.size());
    for (const auto& m : mechanisms_) names.push_back(m->Name());
    if (names.size() > 4) {
      return StrFormat("Bundle[%zu mechanisms]", names.size());
    }
    return "(" + Join(names, ", ") + ")";
  }
  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    std::vector<MechanismOutput> outputs;
    outputs.reserve(mechanisms_.size());
    for (const auto& m : mechanisms_) outputs.push_back(m->Run(input, rng));
    return MechanismOutput::Of(std::move(outputs));
  }

 private:
  std::vector<MechanismRef> mechanisms_;
};

class PostProcessMechanism final : public Mechanism {
 public:
  PostProcessMechanism(
      MechanismRef inner,
      std::function<MechanismOutput(const MechanismOutput&)> f,
      std::string name)
      : inner_(std::move(inner)), f_(std::move(f)), name_(std::move(name)) {
    PSO_CHECK(inner_ != nullptr);
    PSO_CHECK(f_ != nullptr);
  }
  std::string Name() const override {
    return name_ + " o " + inner_->Name();
  }
  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    return f_(inner_->Run(input, rng));
  }

 private:
  MechanismRef inner_;
  std::function<MechanismOutput(const MechanismOutput&)> f_;
  std::string name_;
};

class CiphertextMechanism final : public Mechanism {
 public:
  std::string Name() const override { return "M1:Ciphertext"; }
  MechanismOutput Run(const Dataset& input, Rng&) const override {
    PSO_CHECK(input.size() >= 2);
    uint64_t key = DerivePadKey(input);
    const Record& target = input.record(0);
    std::vector<uint64_t> ciphertext;
    ciphertext.reserve(target.size());
    for (size_t a = 0; a < target.size(); ++a) {
      ciphertext.push_back(
          static_cast<uint64_t>(PadValue(key, a, target[a])));
    }
    return MechanismOutput::Of(std::move(ciphertext));
  }
};

class PadMechanism final : public Mechanism {
 public:
  std::string Name() const override { return "M2:Pad"; }
  MechanismOutput Run(const Dataset& input, Rng&) const override {
    PSO_CHECK(input.size() >= 2);
    return MechanismOutput::Of(DerivePadKey(input));
  }
};

}  // namespace

MechanismRef MakeIdentityMechanism() {
  return std::make_shared<IdentityMechanism>();
}

MechanismRef MakeCountMechanism(PredicateRef q, std::string query_name) {
  return std::make_shared<CountMechanism>(std::move(q),
                                          std::move(query_name));
}

MechanismRef MakeLaplaceCountMechanism(PredicateRef q,
                                       std::string query_name, double eps) {
  return std::make_shared<LaplaceCountMechanism>(std::move(q),
                                                 std::move(query_name), eps);
}

MechanismRef MakeGeometricCountMechanism(PredicateRef q,
                                         std::string query_name,
                                         double eps) {
  return std::make_shared<GeometricCountMechanism>(
      std::move(q), std::move(query_name), eps);
}

MechanismRef MakeNoisyHistogramMechanism(size_t attr, double eps) {
  return std::make_shared<NoisyHistogramMechanism>(attr, eps);
}

MechanismRef MakeKAnonymityMechanism(KAnonAlgorithm algorithm, size_t k,
                                     kanon::HierarchySet hierarchies,
                                     std::vector<size_t> qi_attrs,
                                     size_t l_diversity,
                                     size_t sensitive_attr) {
  return std::make_shared<KAnonymityMechanism>(
      algorithm, k, std::move(hierarchies), std::move(qi_attrs),
      l_diversity, sensitive_attr);
}

MechanismRef MakeBundleMechanism(std::vector<MechanismRef> mechanisms) {
  return std::make_shared<BundleMechanism>(std::move(mechanisms));
}

MechanismRef MakePostProcessMechanism(
    MechanismRef inner,
    std::function<MechanismOutput(const MechanismOutput&)> f,
    std::string name) {
  return std::make_shared<PostProcessMechanism>(std::move(inner),
                                                std::move(f),
                                                std::move(name));
}

MechanismRef MakeCiphertextMechanism() {
  return std::make_shared<CiphertextMechanism>();
}

MechanismRef MakePadMechanism() { return std::make_shared<PadMechanism>(); }

uint64_t DerivePadKey(const Dataset& x) {
  // Deterministic digest of records 2..n; with n-1 high-entropy records
  // the key is (computationally) unguessable from either release alone.
  uint64_t key = 0x1234abcd5678ef01ULL;
  for (size_t i = 1; i < x.size(); ++i) {
    key = HashCombine(key, x.schema().RecordKey(x.record(i)));
  }
  return key;
}

int64_t PadValue(uint64_t key, size_t position, int64_t value) {
  uint64_t pad = MixUint64(key ^ (0x9e3779b97f4a7c15ULL * (position + 1)));
  return static_cast<int64_t>(static_cast<uint64_t>(value) ^ pad);
}

}  // namespace pso
