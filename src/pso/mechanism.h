// Anonymization mechanisms M : X^n -> Y (Section 2.2).
//
// Outputs are type-erased: each concrete mechanism publishes whatever its Y
// is (a count, a noisy histogram, a generalized dataset, a tuple of other
// outputs), and adversaries downcast what they understand.

#ifndef PSO_PSO_MECHANISM_H_
#define PSO_PSO_MECHANISM_H_

#include <any>
#include <memory>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"

namespace pso {

/// Type-erased mechanism output y in Y.
class MechanismOutput {
 public:
  MechanismOutput() = default;

  /// Wraps a value of any type.
  template <typename T>
  static MechanismOutput Of(T value) {
    MechanismOutput out;
    out.payload_ = std::make_shared<std::any>(std::move(value));
    return out;
  }

  /// The payload as a T, or nullptr on type mismatch / empty output.
  /// The pointer is valid only while this MechanismOutput (or a copy of
  /// it) is alive — bind the output to a local before calling As().
  template <typename T>
  const T* As() const {
    if (payload_ == nullptr) return nullptr;
    return std::any_cast<T>(payload_.get());
  }

  bool empty() const { return payload_ == nullptr; }

 private:
  std::shared_ptr<const std::any> payload_;
};

/// A (possibly randomized) mechanism M : X^n -> Y.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Name for reports ("M#q", "Laplace(eps=1)", "Mondrian(k=5)", ...).
  virtual std::string Name() const = 0;

  /// Runs the mechanism on `input` with fresh randomness from `rng`.
  virtual MechanismOutput Run(const Dataset& input, Rng& rng) const = 0;
};

using MechanismRef = std::shared_ptr<const Mechanism>;

}  // namespace pso

#endif  // PSO_PSO_MECHANISM_H_
