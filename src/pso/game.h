// The predicate-singling-out security game (Definitions 2.3 / 2.4).
//
// One trial:  x ~ D^n;  y := M(x);  p := A(y);  the attacker scores a PSO
// win iff p isolates in x AND w_D(p) is below the negligibility threshold
// tau(n). The game verifies the weight itself (exactly when the predicate
// supports it, otherwise against a large Monte-Carlo record pool) — it
// never trusts the attacker's claim.
//
// Finite-n reading of "negligible": the game reports, next to the PSO
// success rate, the *baseline* success any output-ignoring attacker can
// reach at weight tau — max_{w <= tau} n w (1-w)^{n-1} — and the advantage
// over it. "M prevents PSO" at finite n = no tested attacker achieves
// advantage significantly above zero; "M fails" = some attacker has large
// advantage (Theorem 2.10's ~37% against a ~n*tau baseline).

#ifndef PSO_PSO_GAME_H_
#define PSO_PSO_GAME_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "data/distribution.h"
#include "pso/adversary.h"
#include "pso/mechanism.h"

namespace pso {

class InteractiveMechanism;
class InteractiveAdversary;
class ThreadPool;

/// Game configuration.
///
/// Determinism guarantee: for a fixed seed, results are bit-for-bit
/// identical at any thread count (including `pool == nullptr`). Every
/// trial draws from its own counter-derived stream
/// (Rng::StreamAt(seed, trial)), and per-chunk accumulators are merged in
/// chunk-index order with thread-count-independent chunking.
struct PsoGameOptions {
  size_t trials = 200;          ///< Independent game trials.
  double weight_threshold = 0;  ///< tau(n); 0 = default 1/(10 n).
  size_t weight_pool = 200000;  ///< Monte-Carlo pool for weight checks.
  uint64_t seed = 0x5eed;       ///< Master seed (fully deterministic runs).
  ThreadPool* pool = nullptr;   ///< Worker pool; null = serial execution.
};

/// Outcome of a game run.
struct PsoGameResult {
  std::string mechanism;
  std::string adversary;
  size_t n = 0;
  double weight_threshold = 0.0;

  BernoulliEstimator isolation;    ///< p isolated (any weight).
  BernoulliEstimator pso_success;  ///< p isolated AND weight <= tau.
  BernoulliEstimator weight_ok;    ///< weight <= tau (isolated or not).
  RunningStats weights;            ///< Verified weights across trials.

  /// Best success of any predicate of weight <= tau chosen independently
  /// of the data: max_{w <= tau} n w (1-w)^{n-1}.
  double baseline = 0.0;

  /// pso_success.rate() - baseline. Large positive advantage demonstrates
  /// the mechanism enables predicate singling out.
  double advantage = 0.0;

  /// Renders a one-line summary.
  std::string Summary() const;
};

/// Runs the PSO game for (mechanism, adversary) over D^n.
class PsoGame {
 public:
  /// The game keeps a reference to `dist`; it must outlive the game.
  PsoGame(const Distribution& dist, size_t n, PsoGameOptions options = {});

  /// Plays `options.trials` rounds and scores them.
  PsoGameResult Run(const Mechanism& mechanism, const Adversary& adversary);

  /// Interactive variant (pso/interactive.h): per trial, a fresh session
  /// over x ~ D^n is handed to the adversary; isolation and weight are
  /// verified exactly as in the one-shot game.
  PsoGameResult RunInteractive(const InteractiveMechanism& mechanism,
                               const InteractiveAdversary& adversary);

  /// The negligibility threshold in force.
  double weight_threshold() const { return threshold_; }

  /// Verified weight of `pred`: the exact value when analytically
  /// available (a point value, strictly tighter than any bound), else the
  /// Wilson 95% upper bound over the shared Monte-Carlo pool
  /// (conservative: an attacker only scores if even the upper bound is
  /// below tau).
  double VerifiedWeightUpperBound(const Predicate& pred) const;

 private:
  /// Shared trial loop: `attack` maps (dataset, trial rng) to the
  /// adversary's predicate (or nullptr on concession).
  PsoGameResult RunTrialLoop(
      const std::string& mechanism_name, const std::string& adversary_name,
      const std::function<PredicateRef(const Dataset&, Rng&)>& attack) const;

  const Distribution& dist_;
  const ProductDistribution* product_;
  size_t n_;
  PsoGameOptions options_;
  double threshold_;
  std::vector<Record> pool_;  ///< Shared weight-verification sample.
};

}  // namespace pso

#endif  // PSO_PSO_GAME_H_
