// Theorem 2.8: composing count mechanisms breaks PSO security.
//
// Each count mechanism M#q is individually secure (Theorem 2.5), but an
// attacker who receives the answers to ~log n well-chosen count queries
// can "learn sufficiently many bits of a single record so as to isolate it
// with a predicate of negligible weight" (Section 2.3.2). We implement the
// bit-learning as a binary search over the range of a public universal
// hash h: each query counts the records whose hash falls in a half of the
// current interval, and the interval is narrowed until it (a) contains
// exactly one record's hash and (b) has design weight below the budget.
//
// Two variants are provided:
//  * Adaptive: ~log2(1/tau) sequential count queries — the ell = omega(log
//    n) regime of Theorem 2.8 (adaptivity stands in for releasing every
//    prefix level of the non-adaptive construction).
//  * Non-adaptive: one bundle of B = ceil(16/tau...) bucket counts
//    released at once; the attacker picks any singleton bucket. More
//    mechanisms, zero interaction.

#ifndef PSO_PSO_COMPOSITION_ATTACK_H_
#define PSO_PSO_COMPOSITION_ATTACK_H_

#include <optional>

#include "common/rng.h"
#include "common/stats.h"
#include "data/distribution.h"
#include "predicate/predicate.h"

namespace pso {

/// One successful adaptive attack transcript.
struct CompositionAttackOutcome {
  PredicateRef predicate;      ///< The isolating predicate found.
  size_t count_queries = 0;    ///< Count mechanisms consumed.
  double design_weight = 0.0;  ///< Interval width / hash range.
};

/// Runs the adaptive binary-search attack against exact count queries on
/// `x`. Returns nullopt if the search exhausts `max_queries` or the hash
/// resolution without isolating (hash collisions; probability ~ n^2/2^40).
std::optional<CompositionAttackOutcome> AdaptiveCountAttack(
    const Dataset& x, double target_weight, size_t max_queries, Rng& rng);

/// Non-adaptive variant: hashes records into `num_buckets` buckets, counts
/// each bucket with one count mechanism, and outputs the predicate of the
/// first singleton bucket (design weight 1/num_buckets).
std::optional<CompositionAttackOutcome> BucketCountAttack(
    const Dataset& x, size_t num_buckets, Rng& rng);

/// Aggregated game result for the composition experiments.
struct CompositionGameResult {
  size_t n = 0;
  double weight_threshold = 0.0;
  BernoulliEstimator pso_success;  ///< Isolated with weight <= threshold.
  RunningStats queries_used;
  double baseline = 0.0;  ///< Trivial-attacker success at the threshold.
};

/// Plays `trials` rounds: x ~ D^n, attack, verify isolation and weight
/// (weight verified via the predicate's design weight, which the universal
/// hash guarantees up to the distribution's min-entropy slack; see
/// predicate.h). `adaptive` selects the attack variant; non-adaptive uses
/// num_buckets = ceil(4 / threshold).
CompositionGameResult RunCompositionGame(const Distribution& dist, size_t n,
                                         size_t trials, bool adaptive,
                                         double weight_threshold,
                                         size_t max_queries, uint64_t seed);

}  // namespace pso

#endif  // PSO_PSO_COMPOSITION_ATTACK_H_
