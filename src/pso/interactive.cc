#include "pso/interactive.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/hash.h"
#include "common/str_util.h"

namespace pso {

namespace {

class ExactCountSession final : public QuerySession {
 public:
  explicit ExactCountSession(const Dataset& x) : x_(x) {}

  double AnswerCount(const Predicate& query) override {
    ++queries_;
    return static_cast<double>(CountMatches(query, x_));
  }
  size_t queries_answered() const override { return queries_; }
  dp::PrivacyGuarantee PrivacySpent() const override {
    // Exact answers carry no finite DP guarantee; report infinity.
    return {std::numeric_limits<double>::infinity(), 0.0};
  }

 private:
  const Dataset& x_;
  size_t queries_ = 0;
};

class ExactCountSessionMechanism final : public InteractiveMechanism {
 public:
  std::string Name() const override { return "Session[M#q exact]"; }
  std::unique_ptr<QuerySession> StartSession(const Dataset& x,
                                             Rng&) const override {
    return std::make_unique<ExactCountSession>(x);
  }
};

class LaplaceCountSession final : public QuerySession {
 public:
  LaplaceCountSession(const Dataset& x, double eps_per_query,
                      size_t max_queries, Rng& rng)
      : x_(x),
        eps_(eps_per_query),
        max_queries_(max_queries),
        rng_(rng.Fork()) {}

  double AnswerCount(const Predicate& query) override {
    if (max_queries_ > 0 && queries_ >= max_queries_) {
      return std::numeric_limits<double>::quiet_NaN();  // budget exhausted
    }
    ++queries_;
    accountant_.Spend(eps_);
    double exact = static_cast<double>(CountMatches(query, x_));
    return exact + rng_.Laplace(1.0 / eps_);
  }
  size_t queries_answered() const override { return queries_; }
  dp::PrivacyGuarantee PrivacySpent() const override {
    return accountant_.BestBound(1e-9);
  }

 private:
  const Dataset& x_;
  double eps_;
  size_t max_queries_;
  Rng rng_;
  size_t queries_ = 0;
  dp::PrivacyAccountant accountant_;
};

class LaplaceCountSessionMechanism final : public InteractiveMechanism {
 public:
  LaplaceCountSessionMechanism(double eps_per_query, size_t max_queries)
      : eps_(eps_per_query), max_queries_(max_queries) {
    PSO_CHECK(eps_per_query > 0.0);
  }
  std::string Name() const override {
    return StrFormat("Session[Laplace eps=%.2f/query%s]", eps_,
                     max_queries_ > 0
                         ? StrFormat(", budget %zu", max_queries_).c_str()
                         : "");
  }
  std::unique_ptr<QuerySession> StartSession(const Dataset& x,
                                             Rng& rng) const override {
    return std::make_unique<LaplaceCountSession>(x, eps_, max_queries_,
                                                 rng);
  }

 private:
  double eps_;
  size_t max_queries_;
};

class BinarySearchIsolationAdversary final : public InteractiveAdversary {
 public:
  explicit BinarySearchIsolationAdversary(size_t max_queries)
      : max_queries_(max_queries) {}

  std::string Name() const override {
    return "BinarySearch(Thm2.8, interactive)";
  }

  PredicateRef Attack(QuerySession& session, const AttackContext& ctx,
                      Rng& rng) const override {
    constexpr uint64_t kRange = 1ULL << 40;
    const Schema& schema = ctx.dist->schema();
    UniversalHash h(rng, kRange);

    uint64_t lo = 0;
    uint64_t hi = kRange;
    double count = static_cast<double>(ctx.n);  // known a priori
    size_t used = 0;
    // Aim well below the budget so the game's conservative Monte-Carlo
    // weight check clears (same margin the one-shot attackers use).
    const double target = ctx.weight_budget / 5.0;

    while (used < max_queries_) {
      double weight =
          static_cast<double>(hi - lo) / static_cast<double>(kRange);
      if (std::llround(count) == 1 && weight <= target) {
        return MakeHashIntervalPredicate(schema, h, lo, hi);
      }
      if (hi - lo <= 1) return nullptr;

      uint64_t mid = lo + (hi - lo) / 2;
      auto left_pred = MakeHashIntervalPredicate(schema, h, lo, mid);
      double left = session.AnswerCount(*left_pred);
      ++used;
      if (std::isnan(left)) return nullptr;  // session refused
      double right = count - left;

      // Descend toward the smaller nonzero side (noisy answers just make
      // the descent err; the final predicate is checked by the game).
      if (left < 0.5) {
        lo = mid;
        count = right;
      } else if (right < 0.5) {
        hi = mid;
        count = left;
      } else if (left <= right) {
        hi = mid;
        count = left;
      } else {
        lo = mid;
        count = right;
      }
    }
    return nullptr;
  }

 private:
  size_t max_queries_;
};

}  // namespace

InteractiveMechanismRef MakeExactCountSessionMechanism() {
  return std::make_shared<ExactCountSessionMechanism>();
}

InteractiveMechanismRef MakeLaplaceCountSessionMechanism(
    double eps_per_query, size_t max_queries) {
  return std::make_shared<LaplaceCountSessionMechanism>(eps_per_query,
                                                        max_queries);
}

InteractiveAdversaryRef MakeBinarySearchIsolationAdversary(
    size_t max_queries) {
  return std::make_shared<BinarySearchIsolationAdversary>(max_queries);
}

}  // namespace pso
