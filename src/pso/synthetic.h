// Synthetic-data mechanisms.
//
// Section 1.2 asks how legal concepts like linkability apply "when PII is
// replaced with 'synthetic data'". The PSO game gives one rigorous
// answer: it depends entirely on *how* the synthetic data was made.
// Three generators spanning the spectrum:
//   * Bootstrap   — resamples real records with replacement (the naive
//     "synthetic" data that is really a copy): fails PSO like the
//     identity mechanism.
//   * Marginal    — fits per-attribute empirical marginals and samples
//     independent records: aggregate-only, but the exact marginals are
//     still n sensitivity-1 histograms released with no noise.
//   * DP marginal — fits eps-DP noisy marginals first; the whole release
//     is eps-DP and inherits Theorem 2.9's protection.
// Output payload for all three: Dataset (the synthetic records).

#ifndef PSO_PSO_SYNTHETIC_H_
#define PSO_PSO_SYNTHETIC_H_

#include "pso/adversary.h"
#include "pso/mechanism.h"

namespace pso {

/// Which synthetic-data generator a SyntheticDataMechanism uses.
enum class SyntheticMode {
  kBootstrap,   ///< Resample real records (overfit to the point of copying).
  kMarginal,    ///< Independent sampling from exact empirical marginals.
  kDpMarginal,  ///< Independent sampling from eps-DP noisy marginals.
};

/// Creates a synthetic-data mechanism producing `out_records` records
/// (0 = as many as the input). `eps` is used only in kDpMarginal mode
/// (budget split evenly across the attribute histograms' parallel
/// composition — each record touches one bucket per attribute).
MechanismRef MakeSyntheticDataMechanism(SyntheticMode mode,
                                        size_t out_records = 0,
                                        double eps = 1.0);

/// The matching attacker: looks for a synthetic record that is "too real"
/// — a record whose probability under the public distribution D is
/// negligible yet appears in the synthetic output (bootstrap copies
/// qualify; independent marginal samples almost never hit a specific rare
/// record of x). Outputs RecordEquals on the rarest synthetic record whose
/// D-probability is below the weight budget; concedes otherwise.
AdversaryRef MakeSyntheticCopyAdversary();

}  // namespace pso

#endif  // PSO_PSO_SYNTHETIC_H_
