#include "pso/game.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"
#include "pso/interactive.h"

namespace pso {

std::string PsoGameResult::Summary() const {
  Interval ci = pso_success.WilsonInterval();
  return StrFormat(
      "%-28s vs %-28s n=%-6zu tau=%.2e  PSO=%.3f [%.3f,%.3f]  "
      "isolate=%.3f  baseline=%.3f  advantage=%+.3f",
      mechanism.c_str(), adversary.c_str(), n, weight_threshold,
      pso_success.rate(), ci.lo, ci.hi, isolation.rate(), baseline,
      advantage);
}

PsoGame::PsoGame(const Distribution& dist, size_t n, PsoGameOptions options)
    : dist_(dist),
      product_(dynamic_cast<const ProductDistribution*>(&dist)),
      n_(n),
      options_(options),
      threshold_(options.weight_threshold > 0.0
                     ? options.weight_threshold
                     : 1.0 / (10.0 * static_cast<double>(n))),
      rng_(options.seed) {
  PSO_CHECK(n_ > 0);
  PSO_CHECK(options_.trials > 0);
  pool_.reserve(options_.weight_pool);
  for (size_t i = 0; i < options_.weight_pool; ++i) {
    pool_.push_back(dist_.Sample(rng_));
  }
}

double PsoGame::VerifiedWeightUpperBound(const Predicate& pred) const {
  if (product_ != nullptr) {
    auto exact = pred.ExactWeight(*product_);
    if (exact.has_value()) return *exact;
  }
  BernoulliEstimator est;
  for (const Record& r : pool_) est.Add(pred.Eval(r));
  return est.WilsonInterval().hi;
}

PsoGameResult PsoGame::Run(const Mechanism& mechanism,
                           const Adversary& adversary) {
  PsoGameResult result;
  result.mechanism = mechanism.Name();
  result.adversary = adversary.Name();
  result.n = n_;
  result.weight_threshold = threshold_;

  AttackContext ctx;
  ctx.dist = &dist_;
  ctx.product = product_;
  ctx.n = n_;
  ctx.weight_budget = threshold_;

  for (size_t t = 0; t < options_.trials; ++t) {
    Dataset x = dist_.SampleDataset(n_, rng_);
    MechanismOutput y = mechanism.Run(x, rng_);
    PredicateRef p = adversary.Attack(y, ctx, rng_);
    if (p == nullptr) {
      result.isolation.Add(false);
      result.pso_success.Add(false);
      result.weight_ok.Add(false);
      continue;
    }
    bool isolated = Isolates(*p, x);
    double weight = VerifiedWeightUpperBound(*p);
    bool light = weight <= threshold_;
    result.isolation.Add(isolated);
    result.weight_ok.Add(light);
    result.pso_success.Add(isolated && light);
    result.weights.Add(weight);
  }

  // Baseline: the best data-independent predicate of weight <= tau. The
  // curve n w (1-w)^{n-1} is increasing up to w = 1/n, so for tau <= 1/n
  // the max is at w = tau.
  double w_star = std::min(threshold_, 1.0 / static_cast<double>(n_));
  result.baseline = BaselineIsolationProbability(n_, w_star);
  result.advantage = result.pso_success.rate() - result.baseline;
  return result;
}

PsoGameResult PsoGame::RunInteractive(const InteractiveMechanism& mechanism,
                                      const InteractiveAdversary& adversary) {
  PsoGameResult result;
  result.mechanism = mechanism.Name();
  result.adversary = adversary.Name();
  result.n = n_;
  result.weight_threshold = threshold_;

  AttackContext ctx;
  ctx.dist = &dist_;
  ctx.product = product_;
  ctx.n = n_;
  ctx.weight_budget = threshold_;

  for (size_t t = 0; t < options_.trials; ++t) {
    Dataset x = dist_.SampleDataset(n_, rng_);
    std::unique_ptr<QuerySession> session = mechanism.StartSession(x, rng_);
    PredicateRef p = adversary.Attack(*session, ctx, rng_);
    if (p == nullptr) {
      result.isolation.Add(false);
      result.pso_success.Add(false);
      result.weight_ok.Add(false);
      continue;
    }
    bool isolated = Isolates(*p, x);
    double weight = VerifiedWeightUpperBound(*p);
    bool light = weight <= threshold_;
    result.isolation.Add(isolated);
    result.weight_ok.Add(light);
    result.pso_success.Add(isolated && light);
    result.weights.Add(weight);
  }

  double w_star = std::min(threshold_, 1.0 / static_cast<double>(n_));
  result.baseline = BaselineIsolationProbability(n_, w_star);
  result.advantage = result.pso_success.rate() - result.baseline;
  return result;
}

}  // namespace pso
