#include "pso/game.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "pso/interactive.h"

namespace pso {

namespace {

// Domain-separation tags for the game's counter-based RNG streams: the
// weight-verification pool and the trial loop must never share streams.
constexpr uint64_t kPoolStreamTag = 0x706f6f6cULL;
constexpr uint64_t kTrialStreamTag = 0x747269616cULL;

}  // namespace

std::string PsoGameResult::Summary() const {
  Interval ci = pso_success.WilsonInterval();
  return StrFormat(
      "%-28s vs %-28s n=%-6zu tau=%.2e  PSO=%.3f [%.3f,%.3f]  "
      "isolate=%.3f  baseline=%.3f  advantage=%+.3f",
      mechanism.c_str(), adversary.c_str(), n, weight_threshold,
      pso_success.rate(), ci.lo, ci.hi, isolation.rate(), baseline,
      advantage);
}

PsoGame::PsoGame(const Distribution& dist, size_t n, PsoGameOptions options)
    : dist_(dist),
      product_(dynamic_cast<const ProductDistribution*>(&dist)),
      n_(n),
      options_(options),
      threshold_(options.weight_threshold > 0.0
                     ? options.weight_threshold
                     : 1.0 / (10.0 * static_cast<double>(n))) {
  PSO_CHECK(n_ > 0);
  PSO_CHECK(options_.trials > 0);
  // Build the shared weight-verification pool with one counter-derived
  // stream per record: identical pool at any thread count.
  pool_.resize(options_.weight_pool);
  ParallelFor(options_.pool, options_.weight_pool, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      Rng rec_rng = Rng::StreamAt(options_.seed ^ kPoolStreamTag, i);
      pool_[i] = dist_.Sample(rec_rng);
    }
  });
}

double PsoGame::VerifiedWeightUpperBound(const Predicate& pred) const {
  if (product_ != nullptr) {
    auto exact = pred.ExactWeight(*product_);
    if (exact.has_value()) return *exact;
  }
  // Serial scan: callers (the trial loop) already run in parallel, so the
  // outermost loop owns the parallelism.
  BernoulliEstimator est;
  for (const Record& r : pool_) est.Add(pred.Eval(r));
  return est.WilsonInterval().hi;
}

PsoGameResult PsoGame::RunTrialLoop(
    const std::string& mechanism_name, const std::string& adversary_name,
    const std::function<PredicateRef(const Dataset&, Rng&)>& attack) const {
  PsoGameResult result;
  result.mechanism = mechanism_name;
  result.adversary = adversary_name;
  result.n = n_;
  result.weight_threshold = threshold_;

  // Per-chunk accumulators, merged in chunk-index order below. Chunk
  // boundaries depend only on the trial count, so the merged result is
  // bit-for-bit identical at any thread count.
  struct TrialAccum {
    BernoulliEstimator isolation;
    BernoulliEstimator pso_success;
    BernoulliEstimator weight_ok;
    RunningStats weights;
  };
  const size_t chunk = DefaultChunkSize(options_.trials);
  std::vector<TrialAccum> accums(NumChunks(options_.trials, chunk));

  metrics::GetCounter("pso.trials").Add(options_.trials);
  metrics::ScopedSpan span("pso.trial_loop");
  trace::Span trace_span("pso.trial_loop");
  if (trace_span.active()) {
    trace_span.Arg("trials", std::to_string(options_.trials));
  }
  ParallelFor(
      options_.pool, options_.trials,
      [&](size_t begin, size_t end) {
        TrialAccum& acc = accums[begin / chunk];
        for (size_t t = begin; t < end; ++t) {
          Rng rng = Rng::StreamAt(options_.seed ^ kTrialStreamTag, t);
          Dataset x = dist_.SampleDataset(n_, rng);
          PredicateRef p = attack(x, rng);
          if (p == nullptr) {
            acc.isolation.Add(false);
            acc.pso_success.Add(false);
            acc.weight_ok.Add(false);
            continue;
          }
          bool isolated = Isolates(*p, x);
          double weight = VerifiedWeightUpperBound(*p);
          bool light = weight <= threshold_;
          acc.isolation.Add(isolated);
          acc.weight_ok.Add(light);
          acc.pso_success.Add(isolated && light);
          acc.weights.Add(weight);
        }
      },
      chunk);

  for (const TrialAccum& acc : accums) {
    result.isolation.Merge(acc.isolation);
    result.pso_success.Merge(acc.pso_success);
    result.weight_ok.Merge(acc.weight_ok);
    result.weights.Merge(acc.weights);
  }

  // Baseline: the best data-independent predicate of weight <= tau. The
  // curve n w (1-w)^{n-1} is increasing up to w = 1/n, so for tau <= 1/n
  // the max is at w = tau.
  double w_star = std::min(threshold_, 1.0 / static_cast<double>(n_));
  result.baseline = BaselineIsolationProbability(n_, w_star);
  result.advantage = result.pso_success.rate() - result.baseline;
  return result;
}

PsoGameResult PsoGame::Run(const Mechanism& mechanism,
                           const Adversary& adversary) {
  AttackContext ctx;
  ctx.dist = &dist_;
  ctx.product = product_;
  ctx.n = n_;
  ctx.weight_budget = threshold_;
  return RunTrialLoop(
      mechanism.Name(), adversary.Name(),
      [&](const Dataset& x, Rng& rng) {
        MechanismOutput y = mechanism.Run(x, rng);
        return adversary.Attack(y, ctx, rng);
      });
}

PsoGameResult PsoGame::RunInteractive(const InteractiveMechanism& mechanism,
                                      const InteractiveAdversary& adversary) {
  AttackContext ctx;
  ctx.dist = &dist_;
  ctx.product = product_;
  ctx.n = n_;
  ctx.weight_budget = threshold_;
  return RunTrialLoop(
      mechanism.Name(), adversary.Name(),
      [&](const Dataset& x, Rng& rng) {
        std::unique_ptr<QuerySession> session = mechanism.StartSession(x, rng);
        return adversary.Attack(*session, ctx, rng);
      });
}

}  // namespace pso
