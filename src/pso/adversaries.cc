#include "pso/adversaries.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "kanon/attacks.h"
#include "kanon/generalized.h"
#include "pso/mechanisms.h"

namespace pso {

namespace {

class TrivialHashAdversary final : public Adversary {
 public:
  explicit TrivialHashAdversary(double weight) : weight_(weight) {
    PSO_CHECK(weight > 0.0 && weight < 1.0);
  }
  std::string Name() const override {
    return StrFormatName();
  }
  PredicateRef Attack(const MechanismOutput&, const AttackContext& ctx,
                      Rng& rng) const override {
    uint64_t range = static_cast<uint64_t>(std::llround(1.0 / weight_));
    if (range < 2) range = 2;
    UniversalHash h(rng, range);
    return MakeHashPredicate(ctx.dist->schema(), h, 0);
  }

 private:
  std::string StrFormatName() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "Trivial(w=%.2e)", weight_);
    return buf;
  }
  double weight_;
};

class FixedValueAdversary final : public Adversary {
 public:
  FixedValueAdversary(size_t attr, int64_t value, std::string attr_name)
      : attr_(attr), value_(value), attr_name_(std::move(attr_name)) {}
  std::string Name() const override { return "FixedValue"; }
  PredicateRef Attack(const MechanismOutput&, const AttackContext&,
                      Rng&) const override {
    return MakeAttributeEquals(attr_, value_, attr_name_);
  }

 private:
  size_t attr_;
  int64_t value_;
  std::string attr_name_;
};

class ConstantAdversary final : public Adversary {
 public:
  ConstantAdversary(PredicateRef pred, std::string name)
      : pred_(std::move(pred)), name_(std::move(name)) {
    PSO_CHECK(pred_ != nullptr);
  }
  std::string Name() const override { return name_; }
  PredicateRef Attack(const MechanismOutput&, const AttackContext&,
                      Rng&) const override {
    return pred_;
  }

 private:
  PredicateRef pred_;
  std::string name_;
};

class CountTunedAdversary final : public Adversary {
 public:
  CountTunedAdversary(PredicateRef q, std::string query_name)
      : q_(std::move(q)), query_name_(std::move(query_name)) {
    PSO_CHECK(q_ != nullptr);
  }
  std::string Name() const override { return "CountTuned#" + query_name_; }
  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng& rng) const override {
    const double* count = output.As<double>();
    if (count == nullptr) return nullptr;
    double c = std::max(2.0, std::round(*count));
    // Weight of the refinement ~ w_D(q)/c; concede if that cannot fit the
    // budget (the honest thing: the count output gives nothing better).
    double wq = 1.0;
    if (ctx.product != nullptr) {
      auto exact = q_->ExactWeight(*ctx.product);
      if (exact.has_value()) wq = *exact;
    }
    if (wq / c > ctx.weight_budget) return nullptr;
    UniversalHash h(rng, static_cast<uint64_t>(c));
    return MakeAnd({q_, MakeHashPredicate(ctx.dist->schema(), h, 0)});
  }

 private:
  PredicateRef q_;
  std::string query_name_;
};

class KAnonHashAdversary final : public Adversary {
 public:
  std::string Name() const override { return "KAnonHash(Thm2.10)"; }
  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng& rng) const override {
    const auto* release = output.As<kanon::AnonymizationResult>();
    if (release == nullptr || ctx.product == nullptr) return nullptr;
    // The game verifies weights conservatively (Monte-Carlo upper bound),
    // so aim well below the budget; fall back to the nominal budget only
    // if no class is that light.
    auto attack = kanon::HashIsolationPredicate(
        *release, *ctx.product, ctx.weight_budget / 5.0, rng);
    if (!attack.has_value()) {
      attack = kanon::HashIsolationPredicate(*release, *ctx.product,
                                             ctx.weight_budget, rng);
    }
    if (!attack.has_value()) return nullptr;
    return attack->predicate;
  }
};

class KAnonMinimalityAdversary final : public Adversary {
 public:
  std::string Name() const override { return "KAnonMinimality(Cohen)"; }
  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng&) const override {
    const auto* release = output.As<kanon::AnonymizationResult>();
    if (release == nullptr || ctx.product == nullptr) return nullptr;
    auto attack = kanon::MinimalityIsolationPredicate(
        *release, *ctx.product, ctx.weight_budget / 5.0);
    if (!attack.has_value()) {
      attack = kanon::MinimalityIsolationPredicate(*release, *ctx.product,
                                                   ctx.weight_budget);
    }
    if (!attack.has_value()) return nullptr;
    return attack->predicate;
  }
};

class UniqueRecordAdversary final : public Adversary {
 public:
  std::string Name() const override { return "UniqueRecord"; }
  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng&) const override {
    const Dataset* x = output.As<Dataset>();
    if (x == nullptr || x->empty()) return nullptr;
    // Choose the unique record with the smallest probability under D
    // (weight of RecordEquals == that probability).
    const Record* best = nullptr;
    double best_p = 2.0;
    for (const auto& group : x->GroupIdentical()) {
      if (group.size() != 1) continue;
      const Record& r = x->record(group.front());
      double p = ctx.dist->RecordProbability(r);
      if (p < best_p) {
        best_p = p;
        best = &r;
      }
    }
    if (best == nullptr) return nullptr;
    return MakeRecordEquals(x->schema(), *best);
  }
};

class DecryptPairAdversary final : public Adversary {
 public:
  std::string Name() const override { return "DecryptPair(Thm2.7)"; }
  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng&) const override {
    const auto* bundle = output.As<std::vector<MechanismOutput>>();
    if (bundle == nullptr) return nullptr;
    const std::vector<uint64_t>* ciphertext = nullptr;
    const uint64_t* key = nullptr;
    for (const auto& part : *bundle) {
      if (ciphertext == nullptr) {
        ciphertext = part.As<std::vector<uint64_t>>();
        if (ciphertext != nullptr) continue;
      }
      if (key == nullptr) key = part.As<uint64_t>();
    }
    if (ciphertext == nullptr || key == nullptr) return nullptr;
    Record r(ciphertext->size());
    for (size_t a = 0; a < ciphertext->size(); ++a) {
      r[a] = PadValue(*key, a, static_cast<int64_t>((*ciphertext)[a]));
    }
    if (!ctx.dist->schema().IsValidRecord(r)) return nullptr;
    return MakeRecordEquals(ctx.dist->schema(), r);
  }
};

}  // namespace

AdversaryRef MakeTrivialHashAdversary(double weight) {
  return std::make_shared<TrivialHashAdversary>(weight);
}

AdversaryRef MakeFixedValueAdversary(size_t attr, int64_t value,
                                     std::string attr_name) {
  return std::make_shared<FixedValueAdversary>(attr, value,
                                               std::move(attr_name));
}

AdversaryRef MakeConstantAdversary(PredicateRef pred, std::string name) {
  return std::make_shared<ConstantAdversary>(std::move(pred),
                                             std::move(name));
}

AdversaryRef MakeCountTunedAdversary(PredicateRef q,
                                     std::string query_name) {
  return std::make_shared<CountTunedAdversary>(std::move(q),
                                               std::move(query_name));
}

AdversaryRef MakeKAnonHashAdversary() {
  return std::make_shared<KAnonHashAdversary>();
}

AdversaryRef MakeKAnonMinimalityAdversary() {
  return std::make_shared<KAnonMinimalityAdversary>();
}

AdversaryRef MakeUniqueRecordAdversary() {
  return std::make_shared<UniqueRecordAdversary>();
}

AdversaryRef MakeDecryptPairAdversary() {
  return std::make_shared<DecryptPairAdversary>();
}

}  // namespace pso
