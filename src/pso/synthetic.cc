#include "pso/synthetic.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"
#include "dp/mechanisms.h"

namespace pso {

namespace {

class SyntheticDataMechanism final : public Mechanism {
 public:
  SyntheticDataMechanism(SyntheticMode mode, size_t out_records, double eps)
      : mode_(mode), out_records_(out_records), eps_(eps) {
    PSO_CHECK(eps > 0.0);
  }

  std::string Name() const override {
    switch (mode_) {
      case SyntheticMode::kBootstrap:
        return "Synthetic(bootstrap)";
      case SyntheticMode::kMarginal:
        return "Synthetic(marginal)";
      case SyntheticMode::kDpMarginal:
        return StrFormat("Synthetic(DP marginal, eps=%.2f)", eps_);
    }
    return "Synthetic(?)";
  }

  MechanismOutput Run(const Dataset& input, Rng& rng) const override {
    PSO_CHECK(!input.empty());
    const size_t m = out_records_ > 0 ? out_records_ : input.size();
    const Schema& schema = input.schema();
    Dataset synthetic{schema};

    if (mode_ == SyntheticMode::kBootstrap) {
      for (size_t i = 0; i < m; ++i) {
        size_t pick = static_cast<size_t>(rng.UniformUint64(input.size()));
        synthetic.Append(input.record(pick));
      }
      return MechanismOutput::Of(std::move(synthetic));
    }

    // Fit per-attribute marginals (exact or DP-noisy histograms). Each
    // attribute histogram is a sensitivity-1 parallel composition, so the
    // DP variant spends eps per attribute... no: a record touches one
    // bucket in EVERY attribute histogram, so sequential composition over
    // attributes applies; split eps across them.
    const size_t d = schema.NumAttributes();
    std::vector<std::vector<double>> weights(d);
    for (size_t a = 0; a < d; ++a) {
      const Attribute& attr = schema.attribute(a);
      std::vector<int64_t> counts(static_cast<size_t>(attr.DomainSize()), 0);
      for (const Record& r : input.records()) {
        ++counts[static_cast<size_t>(r[a] - attr.MinValue())];
      }
      weights[a].resize(counts.size());
      if (mode_ == SyntheticMode::kDpMarginal) {
        double eps_per_attr = eps_ / static_cast<double>(d);
        for (size_t v = 0; v < counts.size(); ++v) {
          int64_t noisy = dp::GeometricValue(counts[v], eps_per_attr, rng);
          weights[a][v] = static_cast<double>(std::max<int64_t>(0, noisy));
        }
      } else {
        for (size_t v = 0; v < counts.size(); ++v) {
          weights[a][v] = static_cast<double>(counts[v]);
        }
      }
      // Degenerate all-zero histogram (possible under DP): fall back to
      // uniform so sampling stays well-defined.
      double total = 0.0;
      for (double w : weights[a]) total += w;
      if (total <= 0.0) {
        std::fill(weights[a].begin(), weights[a].end(), 1.0);
      }
    }

    for (size_t i = 0; i < m; ++i) {
      Record r(d);
      for (size_t a = 0; a < d; ++a) {
        const Attribute& attr = schema.attribute(a);
        r[a] = attr.MinValue() +
               static_cast<int64_t>(rng.Discrete(weights[a]));
      }
      synthetic.Append(std::move(r));
    }
    return MechanismOutput::Of(std::move(synthetic));
  }

 private:
  SyntheticMode mode_;
  size_t out_records_;
  double eps_;
};

class SyntheticCopyAdversary final : public Adversary {
 public:
  std::string Name() const override { return "SyntheticCopy"; }

  PredicateRef Attack(const MechanismOutput& output,
                      const AttackContext& ctx, Rng&) const override {
    const Dataset* synthetic = output.As<Dataset>();
    if (synthetic == nullptr || synthetic->empty()) return nullptr;
    // The rarest synthetic record under D whose exact-match weight fits
    // the budget: if the generator copied a real record, this predicate
    // isolates it in x.
    const Record* best = nullptr;
    double best_p = 2.0;
    for (const Record& r : synthetic->records()) {
      double p = ctx.dist->RecordProbability(r);
      if (p <= ctx.weight_budget && p < best_p) {
        best_p = p;
        best = &r;
      }
    }
    if (best == nullptr) return nullptr;
    return MakeRecordEquals(ctx.dist->schema(), *best);
  }
};

}  // namespace

MechanismRef MakeSyntheticDataMechanism(SyntheticMode mode,
                                        size_t out_records, double eps) {
  return std::make_shared<SyntheticDataMechanism>(mode, out_records, eps);
}

AdversaryRef MakeSyntheticCopyAdversary() {
  return std::make_shared<SyntheticCopyAdversary>();
}

}  // namespace pso
