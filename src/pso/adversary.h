// Privacy attackers A : Y -> predicates (Section 2.2).
//
// Following the paper's modeling choices, an attacker sees the mechanism
// output and knows the data-generating distribution D and the dataset size
// n, but has no auxiliary information and never sees x itself.

#ifndef PSO_PSO_ADVERSARY_H_
#define PSO_PSO_ADVERSARY_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "data/distribution.h"
#include "predicate/predicate.h"
#include "pso/mechanism.h"

namespace pso {

/// Public knowledge available to an attacker in the PSO game.
struct AttackContext {
  const Distribution* dist = nullptr;  ///< The data distribution D.
  /// Non-null when D is a product distribution (lets attackers compute
  /// exact marginal masses, as the Theorem 2.10 attack does).
  const ProductDistribution* product = nullptr;
  size_t n = 0;              ///< Dataset size.
  double weight_budget = 0;  ///< The negligibility threshold tau(n) in force.
};

/// An attacker in the predicate-singling-out game.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Name for reports.
  virtual std::string Name() const = 0;

  /// Produces a predicate after observing `output`. May return nullptr to
  /// concede the trial.
  virtual PredicateRef Attack(const MechanismOutput& output,
                              const AttackContext& ctx, Rng& rng) const = 0;
};

using AdversaryRef = std::shared_ptr<const Adversary>;

}  // namespace pso

#endif  // PSO_PSO_ADVERSARY_H_
