// The attacker zoo.
//
//   TrivialHashAdversary   — ignores the output; random predicate of a
//     chosen design weight (the Section 2.2 baseline attacker; 37% at
//     weight 1/n, negligible at negligible weight).
//   FixedValueAdversary    — the birthday attacker of Section 2.2 ("x ==
//     Apr-30"), a special case of the above.
//   CountTunedAdversary    — best-effort attacker against count outputs:
//     refines the counted predicate with a hash of range = released count.
//   KAnonHashAdversary     — Theorem 2.10 (equivalence class + 1/k' hash).
//   KAnonMinimalityAdversary — Cohen-style downcoding via tight ranges.
//   UniqueRecordAdversary  — reads a verbatim Dataset output and singles
//     out its rarest unique record (breaks the Identity mechanism).
//   DecryptPairAdversary   — Theorem 2.7: recombines the ciphertext/pad
//     bundle into the exact first record.
//   ConstantAdversary      — always outputs the same fixed predicate.

#ifndef PSO_PSO_ADVERSARIES_H_
#define PSO_PSO_ADVERSARIES_H_

#include <cstdint>

#include "pso/adversary.h"

namespace pso {

/// Output-ignoring attacker emitting a fresh universal-hash predicate of
/// design weight `weight` each trial.
AdversaryRef MakeTrivialHashAdversary(double weight);

/// Output-ignoring attacker emitting "attr == value" every trial.
AdversaryRef MakeFixedValueAdversary(size_t attr, int64_t value,
                                     std::string attr_name = "");

/// Always outputs `pred` (for post-processing and robustness tests).
AdversaryRef MakeConstantAdversary(PredicateRef pred, std::string name);

/// Against count outputs of the known query `q`: outputs q AND hash with
/// range max(2, round(count)), hoping q's weight divides down below the
/// budget. Concedes when even the refined design weight exceeds it.
AdversaryRef MakeCountTunedAdversary(PredicateRef q, std::string query_name);

/// Theorem 2.10 attacker (kanon::HashIsolationPredicate).
AdversaryRef MakeKAnonHashAdversary();

/// Downcoding/minimality attacker (kanon::MinimalityIsolationPredicate).
AdversaryRef MakeKAnonMinimalityAdversary();

/// Reads a Dataset payload (the Identity mechanism) and outputs
/// RecordEquals on a unique record of minimal probability under D.
AdversaryRef MakeUniqueRecordAdversary();

/// Theorem 2.7 attacker: expects a bundle (ciphertext, pad key), decrypts
/// x_1 and outputs RecordEquals(x_1).
AdversaryRef MakeDecryptPairAdversary();

}  // namespace pso

#endif  // PSO_PSO_ADVERSARIES_H_
