// Interactive mechanisms: analyst-chosen queries answered in a session.
//
// Section 1's reconstruction story and Theorem 2.8's composition attack
// both live in this setting — the analyst adaptively picks count queries
// q and the mechanism returns (an estimate of) sum_i q(x_i). A session
// wraps one dataset; the attacker drives it and must finally output an
// isolating predicate, exactly as in the one-shot game.
//
// Two session types bracket the paper's dichotomy:
//   * ExactCountMechanism   — every answer exact: the Theorem 2.8 attack
//     singles out after ~log n queries.
//   * LaplaceCountMechanism — Laplace(1/eps) noise per query; the session
//     tracks cumulative privacy loss with the accountant, and the noise
//     derails the binary search (Theorem 2.9 in interactive form).

#ifndef PSO_PSO_INTERACTIVE_H_
#define PSO_PSO_INTERACTIVE_H_

#include <memory>
#include <string>

#include "dp/accountant.h"
#include "pso/adversary.h"

namespace pso {

/// One attacker-driven session against a fixed dataset.
class QuerySession {
 public:
  virtual ~QuerySession() = default;

  /// Answers one count query (one M#q invocation, possibly noisy).
  virtual double AnswerCount(const Predicate& query) = 0;

  /// Queries answered so far.
  virtual size_t queries_answered() const = 0;

  /// Cumulative privacy loss of the answers given so far (0 for exact
  /// sessions, which have no finite guarantee).
  virtual dp::PrivacyGuarantee PrivacySpent() const = 0;
};

/// A mechanism that opens query sessions.
class InteractiveMechanism {
 public:
  virtual ~InteractiveMechanism() = default;
  virtual std::string Name() const = 0;
  virtual std::unique_ptr<QuerySession> StartSession(const Dataset& x,
                                                     Rng& rng) const = 0;
};

using InteractiveMechanismRef = std::shared_ptr<const InteractiveMechanism>;

/// An attacker that drives a session, then outputs a predicate.
class InteractiveAdversary {
 public:
  virtual ~InteractiveAdversary() = default;
  virtual std::string Name() const = 0;
  virtual PredicateRef Attack(QuerySession& session,
                              const AttackContext& ctx, Rng& rng) const = 0;
};

using InteractiveAdversaryRef = std::shared_ptr<const InteractiveAdversary>;

/// Exact count answers.
InteractiveMechanismRef MakeExactCountSessionMechanism();

/// Laplace(1/eps_per_query) noise per answer; optional hard query budget
/// (0 = unlimited) after which the session refuses (returns NaN).
InteractiveMechanismRef MakeLaplaceCountSessionMechanism(
    double eps_per_query, size_t max_queries = 0);

/// The Theorem 2.8 attacker as an interactive adversary: binary search on
/// a public universal hash's range, descending toward a count-1 interval
/// of design weight below the budget. `max_queries` bounds the search.
InteractiveAdversaryRef MakeBinarySearchIsolationAdversary(
    size_t max_queries = 200);

}  // namespace pso

#endif  // PSO_PSO_INTERACTIVE_H_
