#include "pso/composition_attack.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"

namespace pso {

namespace {

constexpr uint64_t kHashRange = 1ULL << 40;

// The "count mechanism" the attacker composes: exact number of records
// whose hash value lies in [lo, hi). Each call is one M#q invocation with
// q = MakeHashIntervalPredicate(schema, h, lo, hi).
size_t CountInInterval(const Dataset& x, const UniversalHash& h, uint64_t lo,
                       uint64_t hi) {
  size_t count = 0;
  for (const Record& r : x.records()) {
    uint64_t v = h.Eval(x.schema().RecordKey(r));
    if (v >= lo && v < hi) ++count;
  }
  return count;
}

}  // namespace

std::optional<CompositionAttackOutcome> AdaptiveCountAttack(
    const Dataset& x, double target_weight, size_t max_queries, Rng& rng) {
  PSO_CHECK(!x.empty());
  PSO_CHECK(target_weight > 0.0);
  UniversalHash h(rng, kHashRange);

  uint64_t lo = 0;
  uint64_t hi = kHashRange;
  size_t count = x.size();  // known without a query
  size_t queries = 0;

  while (queries < max_queries) {
    double weight =
        static_cast<double>(hi - lo) / static_cast<double>(kHashRange);
    if (count == 1 && weight <= target_weight) {
      CompositionAttackOutcome out;
      out.predicate = MakeHashIntervalPredicate(x.schema(), h, lo, hi);
      out.count_queries = queries;
      out.design_weight = weight;
      return out;
    }
    if (hi - lo <= 1) return std::nullopt;  // hash collision, give up

    uint64_t mid = lo + (hi - lo) / 2;
    size_t left = CountInInterval(x, h, lo, mid);
    ++queries;
    size_t right = count - left;

    if (count == 1) {
      // Track the single record's hash into whichever half holds it.
      if (left == 1) {
        hi = mid;
      } else {
        lo = mid;
      }
      count = 1;
      continue;
    }
    // Narrow toward an interval that still holds someone, preferring the
    // smaller non-empty side (reaches count == 1 fastest).
    if (left == 0) {
      lo = mid;
      count = right;
    } else if (right == 0) {
      hi = mid;
      count = left;
    } else if (left <= right) {
      hi = mid;
      count = left;
    } else {
      lo = mid;
      count = right;
    }
  }
  return std::nullopt;
}

std::optional<CompositionAttackOutcome> BucketCountAttack(
    const Dataset& x, size_t num_buckets, Rng& rng) {
  PSO_CHECK(!x.empty());
  PSO_CHECK(num_buckets >= 2);
  UniversalHash h(rng, num_buckets);

  // One count mechanism per bucket, all released in a single bundle.
  std::vector<size_t> counts(num_buckets, 0);
  for (const Record& r : x.records()) {
    ++counts[h.Eval(x.schema().RecordKey(r))];
  }
  for (uint64_t b = 0; b < num_buckets; ++b) {
    if (counts[b] == 1) {
      CompositionAttackOutcome out;
      out.predicate = MakeHashPredicate(x.schema(), h, b);
      out.count_queries = num_buckets;
      out.design_weight = 1.0 / static_cast<double>(num_buckets);
      return out;
    }
  }
  return std::nullopt;
}

CompositionGameResult RunCompositionGame(const Distribution& dist, size_t n,
                                         size_t trials, bool adaptive,
                                         double weight_threshold,
                                         size_t max_queries, uint64_t seed) {
  PSO_CHECK(n > 0 && trials > 0);
  CompositionGameResult result;
  result.n = n;
  result.weight_threshold = weight_threshold;
  Rng rng(seed);

  // Cap the non-adaptive bucket count: below thresholds of ~1e-7 the
  // attack needs the adaptive (logarithmic) variant anyway, and an
  // unbounded ceil(4/threshold) would allocate gigabytes.
  constexpr size_t kMaxBuckets = 1ULL << 26;
  size_t num_buckets = static_cast<size_t>(
      std::min<double>(std::ceil(4.0 / weight_threshold),
                       static_cast<double>(kMaxBuckets)));

  for (size_t t = 0; t < trials; ++t) {
    Dataset x = dist.SampleDataset(n, rng);
    std::optional<CompositionAttackOutcome> attack =
        adaptive ? AdaptiveCountAttack(x, weight_threshold, max_queries, rng)
                 : BucketCountAttack(x, num_buckets, rng);
    if (!attack.has_value()) {
      result.pso_success.Add(false);
      continue;
    }
    bool isolated = Isolates(*attack->predicate, x);
    bool light = attack->design_weight <= weight_threshold;
    result.pso_success.Add(isolated && light);
    result.queries_used.Add(static_cast<double>(attack->count_queries));
  }

  double w_star = std::min(weight_threshold, 1.0 / static_cast<double>(n));
  result.baseline = BaselineIsolationProbability(n, w_star);
  return result;
}

}  // namespace pso
