// The mechanism zoo used by the legal-theorem experiments.
//
// Poles and subjects:
//   IdentityMechanism      — publishes x verbatim (maximally non-private).
//   CountMechanism         — M#q of Theorem 2.5 (exact count, PSO-secure).
//   LaplaceCountMechanism  — Theorem 1.3 / Theorem 2.9 (eps-DP).
//   GeometricCountMechanism / NoisyHistogramMechanism — integer DP outputs.
//   KAnonymityMechanism    — Datafly or Mondrian release (Theorem 2.10).
//   BundleMechanism        — composition (M1(x), ..., Mk(x)).
//   PostProcessMechanism   — f(M(x)) for Theorem 2.6.
//   CiphertextMechanism / PadMechanism — the explicit incomposability pair
//     of Theorem 2.7: each alone prevents PSO, the bundle decrypts x_1.

#ifndef PSO_PSO_MECHANISMS_H_
#define PSO_PSO_MECHANISMS_H_

#include <functional>
#include <vector>

#include "kanon/datafly.h"
#include "kanon/mondrian.h"
#include "pso/mechanism.h"
#include "predicate/predicate.h"

namespace pso {

/// Publishes the dataset unchanged. Output payload: Dataset.
MechanismRef MakeIdentityMechanism();

/// M#q: exact count of records satisfying `q`. Output payload: double.
MechanismRef MakeCountMechanism(PredicateRef q, std::string query_name);

/// Laplace count: M#q + Lap(1/eps). Output payload: double. eps-DP.
MechanismRef MakeLaplaceCountMechanism(PredicateRef q, std::string query_name,
                                       double eps);

/// Geometric count: M#q + two-sided geometric. Output payload: double.
MechanismRef MakeGeometricCountMechanism(PredicateRef q,
                                         std::string query_name, double eps);

/// eps-DP noisy histogram of `attr`. Output payload:
/// std::vector<int64_t>.
MechanismRef MakeNoisyHistogramMechanism(size_t attr, double eps);

/// Which k-anonymizer a KAnonymityMechanism wraps.
enum class KAnonAlgorithm { kDatafly, kMondrian };

/// k-anonymizes the input. Output payload: kanon::AnonymizationResult
/// (empty output if the anonymizer fails, e.g. infeasible suppression
/// budget). `qi_attrs` empty means all attributes are quasi-identifiers.
/// With l_diversity >= 2 (Mondrian only) the release additionally
/// enforces l distinct values of `sensitive_attr` per class — footnote 3's
/// variant, which the PSO attacks break all the same (see E8).
MechanismRef MakeKAnonymityMechanism(KAnonAlgorithm algorithm, size_t k,
                                     kanon::HierarchySet hierarchies,
                                     std::vector<size_t> qi_attrs,
                                     size_t l_diversity = 0,
                                     size_t sensitive_attr = 0);

/// Runs every sub-mechanism on the same input. Output payload:
/// std::vector<MechanismOutput>.
MechanismRef MakeBundleMechanism(std::vector<MechanismRef> mechanisms);

/// f(M(x)): post-processing wrapper (Theorem 2.6 — if M prevents PSO so
/// does f o M, since the attacker could compute f itself).
MechanismRef MakePostProcessMechanism(
    MechanismRef inner,
    std::function<MechanismOutput(const MechanismOutput&)> f,
    std::string name);

/// Theorem 2.7 pair. The pad key is derived deterministically from records
/// x_2..x_n; CiphertextMechanism publishes x_1 one-time-padded under that
/// key, PadMechanism publishes the key. Output payloads:
/// std::vector<uint64_t> (ciphertext) and uint64_t (key).
MechanismRef MakeCiphertextMechanism();
MechanismRef MakePadMechanism();

/// The key derivation shared by the Theorem 2.7 pair (exposed for the
/// decrypting adversary and for tests).
uint64_t DerivePadKey(const Dataset& x);

/// Encrypts/decrypts one attribute value of x_1 under (key, position).
int64_t PadValue(uint64_t key, size_t position, int64_t value);

}  // namespace pso

#endif  // PSO_PSO_MECHANISMS_H_
