#include "kanon/checks.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace pso::kanon {

bool IsLDiverse(const Dataset& data,
                const std::vector<std::vector<size_t>>& classes,
                size_t sensitive_attr, size_t l) {
  PSO_CHECK(sensitive_attr < data.schema().NumAttributes());
  for (const auto& cls : classes) {
    std::set<int64_t> values;
    for (size_t i : cls) values.insert(data.At(i, sensitive_attr));
    if (values.size() < l) return false;
  }
  return true;
}

double TClosenessValue(const Dataset& data,
                       const std::vector<std::vector<size_t>>& classes,
                       size_t sensitive_attr) {
  PSO_CHECK(sensitive_attr < data.schema().NumAttributes());
  const Attribute& attr = data.schema().attribute(sensitive_attr);
  const size_t domain = static_cast<size_t>(attr.DomainSize());
  const int64_t base = attr.MinValue();

  std::vector<double> global(domain, 0.0);
  for (const Record& r : data.records()) {
    global[static_cast<size_t>(r[sensitive_attr] - base)] += 1.0;
  }
  for (double& g : global) g /= static_cast<double>(data.size());

  double worst = 0.0;
  for (const auto& cls : classes) {
    if (cls.empty()) continue;
    std::vector<double> local(domain, 0.0);
    for (size_t i : cls) {
      local[static_cast<size_t>(data.At(i, sensitive_attr) - base)] += 1.0;
    }
    double tv = 0.0;
    for (size_t v = 0; v < domain; ++v) {
      tv += std::fabs(local[v] / static_cast<double>(cls.size()) - global[v]);
    }
    worst = std::max(worst, tv / 2.0);
  }
  return worst;
}

bool IsTClose(const Dataset& data,
              const std::vector<std::vector<size_t>>& classes,
              size_t sensitive_attr, double t) {
  return TClosenessValue(data, classes, sensitive_attr) <= t;
}

}  // namespace pso::kanon
