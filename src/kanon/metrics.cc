#include "kanon/metrics.h"

namespace pso::kanon {

double DiscernibilityMetric(const AnonymizationResult& result) {
  double total = 0.0;
  double n = static_cast<double>(result.generalized.size());
  for (const auto& cls : result.classes) {
    double s = static_cast<double>(cls.size());
    // The suppressed catch-all class is indistinguishable from everything.
    bool all_suppressed = true;
    for (size_t i : cls) {
      const auto& row = result.generalized.row(i);
      for (size_t a = 0; a < row.size(); ++a) {
        const Attribute& attr = result.generalized.schema().attribute(a);
        if (!(row[a].lo <= attr.MinValue() && row[a].hi >= attr.MaxValue())) {
          all_suppressed = false;
          break;
        }
      }
      if (!all_suppressed) break;
    }
    total += all_suppressed ? s * n : s * s;
  }
  return total;
}

double GeneralizedInformationLoss(const GeneralizedDataset& gds) {
  if (gds.size() == 0) return 0.0;
  const Schema& schema = gds.schema();
  double total = 0.0;
  size_t cells = 0;
  for (size_t i = 0; i < gds.size(); ++i) {
    for (size_t a = 0; a < schema.NumAttributes(); ++a) {
      double domain = static_cast<double>(schema.attribute(a).DomainSize());
      if (domain <= 1.0) continue;
      double width = static_cast<double>(gds.row(i)[a].Width());
      total += (width - 1.0) / (domain - 1.0);
      ++cells;
    }
  }
  return cells == 0 ? 0.0 : total / static_cast<double>(cells);
}

double AverageClassSize(const AnonymizationResult& result) {
  if (result.classes.empty()) return 0.0;
  return static_cast<double>(result.generalized.size()) /
         static_cast<double>(result.classes.size());
}

}  // namespace pso::kanon
