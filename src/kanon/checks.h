// Syntactic privacy checks beyond k-anonymity: l-diversity and t-closeness
// (footnote 3 of the paper: "the analysis of k-anonymity throughout also
// holds for variants such as l-diversity and t-closeness"). The PSO attack
// experiments run these checks to show the attacked releases satisfy the
// *stronger* variants too.

#ifndef PSO_KANON_CHECKS_H_
#define PSO_KANON_CHECKS_H_

#include <vector>

#include "data/dataset.h"
#include "kanon/generalized.h"

namespace pso::kanon {

/// True if every equivalence class (given as row-index groups over `data`)
/// contains at least `l` distinct values of the sensitive attribute.
bool IsLDiverse(const Dataset& data,
                const std::vector<std::vector<size_t>>& classes,
                size_t sensitive_attr, size_t l);

/// Maximum, over classes, of the total-variation distance between the
/// class's sensitive-attribute distribution and the whole dataset's.
/// A release is t-close when this value is <= t.
double TClosenessValue(const Dataset& data,
                       const std::vector<std::vector<size_t>>& classes,
                       size_t sensitive_attr);

/// True if TClosenessValue(...) <= t.
bool IsTClose(const Dataset& data,
              const std::vector<std::vector<size_t>>& classes,
              size_t sensitive_attr, double t);

}  // namespace pso::kanon

#endif  // PSO_KANON_CHECKS_H_
