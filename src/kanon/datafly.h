// Datafly-style greedy full-domain generalization (Sweeney).
//
// Global recoding: all rows share one generalization level per
// quasi-identifier attribute. The algorithm raises the level of the QI
// attribute with the most distinct generalized values until every
// equivalence class reaches size k, suppressing up to a bounded fraction
// of outlier rows instead of over-generalizing. This is the "typical
// implementation ... which tries to optimize on the information content"
// that Theorem 2.10 speaks about.

#ifndef PSO_KANON_DATAFLY_H_
#define PSO_KANON_DATAFLY_H_

#include <vector>

#include "common/result.h"
#include "kanon/generalized.h"

namespace pso::kanon {

/// Configuration for the Datafly anonymizer.
struct DataflyOptions {
  size_t k = 5;                    ///< Minimum equivalence-class size.
  std::vector<size_t> qi_attrs;    ///< Quasi-identifier attribute indices.
  double max_suppression = 0.05;   ///< Max fraction of rows to suppress.
};

/// Runs Datafly on `data`. Non-QI attributes are kept exact (sensitive
/// attributes in the k-anonymity literature are not generalized).
/// Suppressed rows get full-domain cells on every attribute.
[[nodiscard]] Result<AnonymizationResult> DataflyAnonymize(const Dataset& data,
                                             const HierarchySet& hierarchies,
                                             const DataflyOptions& options);

}  // namespace pso::kanon

#endif  // PSO_KANON_DATAFLY_H_
