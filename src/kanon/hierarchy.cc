#include "kanon/hierarchy.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace pso::kanon {

ValueHierarchy::ValueHierarchy(int64_t min, int64_t max,
                               std::vector<int64_t> widths)
    : min_(min), max_(max), widths_(std::move(widths)) {}

ValueHierarchy ValueHierarchy::Intervals(const Attribute& attr,
                                         std::vector<int64_t> widths) {
  PSO_CHECK_MSG(!widths.empty() && widths[0] == 1,
                "hierarchy must start with width 1 (identity level)");
  int64_t domain = attr.DomainSize();
  for (size_t i = 1; i < widths.size(); ++i) {
    PSO_CHECK_MSG(widths[i] > widths[i - 1], "widths must increase");
    PSO_CHECK_MSG(widths[i] % widths[i - 1] == 0,
                  "each width must divide the next (nesting)");
  }
  if (widths.back() < domain) widths.push_back(domain);
  return ValueHierarchy(attr.MinValue(), attr.MaxValue(), std::move(widths));
}

ValueHierarchy ValueHierarchy::IdentityOrSuppress(const Attribute& attr) {
  std::vector<int64_t> widths = {1};
  if (attr.DomainSize() > 1) widths.push_back(attr.DomainSize());
  return ValueHierarchy(attr.MinValue(), attr.MaxValue(), std::move(widths));
}

GenCell ValueHierarchy::Generalize(int64_t value, size_t level) const {
  PSO_CHECK(level < widths_.size());
  PSO_CHECK_MSG(value >= min_ && value <= max_, "value out of domain");
  int64_t w = widths_[level];
  int64_t bucket = (value - min_) / w;
  GenCell cell;
  cell.lo = min_ + bucket * w;
  cell.hi = std::min(max_, cell.lo + w - 1);
  return cell;
}

int64_t ValueHierarchy::NumCells(size_t level) const {
  PSO_CHECK(level < widths_.size());
  int64_t domain = max_ - min_ + 1;
  int64_t w = widths_[level];
  return (domain + w - 1) / w;
}

void ValueHierarchy::SetLevelLabels(size_t level,
                                    std::vector<std::string> labels) {
  PSO_CHECK(level < widths_.size());
  PSO_CHECK_MSG(static_cast<int64_t>(labels.size()) == NumCells(level),
                "one label per cell required");
  if (labels_.size() < widths_.size()) labels_.resize(widths_.size());
  labels_[level] = std::move(labels);
}

std::string ValueHierarchy::CellLabel(int64_t value, size_t level) const {
  PSO_CHECK(level < widths_.size());
  if (level >= labels_.size() || labels_[level].empty()) return "";
  int64_t bucket = (value - min_) / widths_[level];
  return labels_[level][static_cast<size_t>(bucket)];
}

HierarchySet::HierarchySet(Schema schema,
                           std::vector<ValueHierarchy> hierarchies)
    : schema_(std::move(schema)), hierarchies_(std::move(hierarchies)) {
  PSO_CHECK(hierarchies_.size() == schema_.NumAttributes());
  for (size_t i = 0; i < hierarchies_.size(); ++i) {
    PSO_CHECK_MSG(hierarchies_[i].domain_min() ==
                          schema_.attribute(i).MinValue() &&
                      hierarchies_[i].domain_max() ==
                          schema_.attribute(i).MaxValue(),
                  "hierarchy domain mismatch");
  }
}

HierarchySet HierarchySet::Defaults(const Schema& schema) {
  std::vector<ValueHierarchy> hs;
  hs.reserve(schema.NumAttributes());
  for (size_t i = 0; i < schema.NumAttributes(); ++i) {
    const Attribute& a = schema.attribute(i);
    int64_t domain = a.DomainSize();
    if (domain <= 4) {
      hs.push_back(ValueHierarchy::IdentityOrSuppress(a));
      continue;
    }
    // Doubling chain 1, 2, 4, ... capped below the domain size.
    std::vector<int64_t> widths;
    for (int64_t w = 1; w < domain; w *= 2) widths.push_back(w);
    hs.push_back(ValueHierarchy::Intervals(a, std::move(widths)));
  }
  return HierarchySet(schema, std::move(hs));
}

const ValueHierarchy& HierarchySet::hierarchy(size_t attr) const {
  PSO_CHECK(attr < hierarchies_.size());
  return hierarchies_[attr];
}

std::string HierarchySet::CellToString(size_t attr,
                                       const GenCell& cell) const {
  const Attribute& a = schema_.attribute(attr);
  if (cell.lo <= a.MinValue() && cell.hi >= a.MaxValue()) return "*";
  if (cell.lo == cell.hi) return a.ValueToString(cell.lo);
  // Prefer a taxonomy label if the cell matches a labelled level's bucket.
  const ValueHierarchy& h = hierarchy(attr);
  for (size_t level = 0; level < h.NumLevels(); ++level) {
    if (h.Generalize(cell.lo, level) == cell) {
      std::string label = h.CellLabel(cell.lo, level);
      if (!label.empty()) return label;
    }
  }
  return a.ValueToString(cell.lo) + "-" + a.ValueToString(cell.hi);
}

PredicateRef HierarchySet::CellsPredicate(
    const std::vector<GenCell>& cells) const {
  PSO_CHECK(cells.size() == schema_.NumAttributes());
  std::vector<PredicateRef> terms;
  terms.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const Attribute& a = schema_.attribute(i);
    if (cells[i].lo <= a.MinValue() && cells[i].hi >= a.MaxValue()) {
      continue;  // suppressed attribute constrains nothing
    }
    terms.push_back(
        MakeAttributeRange(i, cells[i].lo, cells[i].hi, a.name()));
  }
  return MakeAnd(std::move(terms));
}

}  // namespace pso::kanon
