// Generalization hierarchies (Section 1.1: suppression and hierarchical
// generalization, e.g. ZIP-prefix truncation and age ranges).
//
// A hierarchy for an attribute is a chain of successively coarser
// partitions of the attribute's code domain into contiguous intervals:
// level 0 is the identity (no generalization) and the top level is full
// suppression ("*"). Categorical taxonomies are supported by ordering the
// category codes so that each taxonomy group is contiguous (the built-in
// universes in data/generators.h are laid out this way).

#ifndef PSO_KANON_HIERARCHY_H_
#define PSO_KANON_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "predicate/predicate.h"

namespace pso::kanon {

/// A generalized attribute value: the inclusive code interval [lo, hi].
/// lo == hi means "not generalized"; the full domain means suppressed.
struct GenCell {
  int64_t lo = 0;
  int64_t hi = 0;

  bool Contains(int64_t v) const { return lo <= v && v <= hi; }
  int64_t Width() const { return hi - lo + 1; }
  friend bool operator==(const GenCell&, const GenCell&) = default;
};

/// A chain of interval partitions of one attribute's domain.
class ValueHierarchy {
 public:
  /// Builds a hierarchy whose level-l partition uses intervals of
  /// `widths[l]` codes (aligned to the domain minimum). `widths` must be
  /// strictly increasing and start at 1; a final full-domain level is
  /// appended automatically. Each width should divide the next for the
  /// levels to nest (checked).
  static ValueHierarchy Intervals(const Attribute& attr,
                                  std::vector<int64_t> widths);

  /// The trivial two-level hierarchy: identity, then suppression.
  static ValueHierarchy IdentityOrSuppress(const Attribute& attr);

  /// Number of levels, including level 0 (identity) and the top
  /// (suppression) level.
  size_t NumLevels() const { return widths_.size(); }

  /// The generalization of `value` at `level`.
  GenCell Generalize(int64_t value, size_t level) const;

  /// Number of distinct cells at `level`.
  int64_t NumCells(size_t level) const;

  /// Attaches human-readable names to the cells of `level` (taxonomy group
  /// names like "PULM"); `labels` must have NumCells(level) entries. Used
  /// by HierarchySet::CellToString.
  void SetLevelLabels(size_t level, std::vector<std::string> labels);

  /// The label of the cell containing `value` at `level`, or empty when
  /// none was set.
  std::string CellLabel(int64_t value, size_t level) const;

  int64_t domain_min() const { return min_; }
  int64_t domain_max() const { return max_; }

 private:
  ValueHierarchy(int64_t min, int64_t max, std::vector<int64_t> widths);

  int64_t min_;
  int64_t max_;
  std::vector<int64_t> widths_;  // widths_[0] == 1; back() == domain size
  // labels_[level] is empty or has NumCells(level) entries.
  std::vector<std::vector<std::string>> labels_;
};

/// Per-attribute hierarchies for a schema, with helpers to render and to
/// turn generalized rows into predicates.
class HierarchySet {
 public:
  /// One hierarchy per schema attribute, in order.
  HierarchySet(Schema schema, std::vector<ValueHierarchy> hierarchies);

  /// Sensible defaults for any schema: integer attributes get a
  /// doubling-width chain; categorical attributes get identity/suppress
  /// unless small enough to warrant a middle level.
  static HierarchySet Defaults(const Schema& schema);

  const Schema& schema() const { return schema_; }
  const ValueHierarchy& hierarchy(size_t attr) const;
  size_t NumAttributes() const { return hierarchies_.size(); }

  /// Renders a cell of attribute `attr` ("42", "40-49", or "*").
  std::string CellToString(size_t attr, const GenCell& cell) const;

  /// Predicate matching exactly the records covered by `cells`
  /// (conjunction of attribute ranges).
  PredicateRef CellsPredicate(const std::vector<GenCell>& cells) const;

 private:
  Schema schema_;
  std::vector<ValueHierarchy> hierarchies_;
};

}  // namespace pso::kanon

#endif  // PSO_KANON_HIERARCHY_H_
