// Optimal full-domain generalization by lattice search (Incognito-style).
//
// The paper notes that minimizing suppression/generalization is NP-hard
// (Meyerson–Williams [30]) "and a rich algorithmic literature exists".
// Datafly (datafly.h) is the greedy end of that literature; this module
// is the exact end: enumerate the lattice of per-attribute generalization
// level vectors bottom-up, exploit the anonymity monotonicity (coarser
// levels preserve k-anonymity) to collect the *minimal* k-anonymous
// nodes, and return the one with the least information loss.
//
// Cost is exponential in the number of quasi-identifier attributes — use
// for small QI sets or as a quality yardstick for the greedy anonymizers.

#ifndef PSO_KANON_LATTICE_H_
#define PSO_KANON_LATTICE_H_

#include <vector>

#include "common/result.h"
#include "kanon/generalized.h"

namespace pso::kanon {

/// Configuration for the lattice search.
struct LatticeOptions {
  size_t k = 5;
  std::vector<size_t> qi_attrs;   ///< Quasi-identifier attribute indices.
  size_t max_nodes = 200000;      ///< Lattice nodes to examine at most.
};

/// Outcome of the search.
struct LatticeResult {
  AnonymizationResult anonymization;   ///< The loss-optimal release.
  std::vector<size_t> levels;          ///< Chosen level per QI attribute.
  size_t nodes_examined = 0;
  size_t minimal_nodes = 0;  ///< Count of minimal k-anonymous nodes found.
};

/// Finds the full-domain generalization with minimal
/// GeneralizedInformationLoss among all k-anonymous level vectors
/// (suppression-free). Returns kInfeasible when even the top of the
/// lattice is not k-anonymous, kInternal when max_nodes is exhausted
/// before any k-anonymous node is found.
[[nodiscard]] Result<LatticeResult> OptimalFullDomainAnonymize(
    const Dataset& data, const HierarchySet& hierarchies,
    const LatticeOptions& options);

}  // namespace pso::kanon

#endif  // PSO_KANON_LATTICE_H_
