#include "kanon/lattice.h"

#include <map>
#include <set>

#include "common/check.h"
#include "kanon/metrics.h"

namespace pso::kanon {

namespace {

using Levels = std::vector<size_t>;

// True iff generalizing the QI attributes of `data` at `levels` yields
// classes of size >= k.
bool IsAnonymousAt(const Dataset& data, const HierarchySet& hierarchies,
                   const std::vector<size_t>& qi, const Levels& levels,
                   size_t k) {
  std::map<std::vector<std::pair<int64_t, int64_t>>, size_t> counts;
  for (const Record& r : data.records()) {
    std::vector<std::pair<int64_t, int64_t>> key;
    key.reserve(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      GenCell c = hierarchies.hierarchy(qi[j]).Generalize(r[qi[j]],
                                                          levels[j]);
      key.emplace_back(c.lo, c.hi);
    }
    ++counts[std::move(key)];
  }
  for (const auto& [key, count] : counts) {
    if (count < k) return false;
  }
  return true;
}

// Builds the release at `levels` (non-QI attributes kept exact).
AnonymizationResult BuildRelease(const Dataset& data,
                                 const HierarchySet& hierarchies,
                                 const std::vector<size_t>& qi,
                                 const Levels& levels) {
  GeneralizedDataset gds(hierarchies);
  const Schema& schema = data.schema();
  std::map<std::vector<std::pair<int64_t, int64_t>>, std::vector<size_t>>
      buckets;
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<GenCell> cells(schema.NumAttributes());
    for (size_t a = 0; a < schema.NumAttributes(); ++a) {
      cells[a] = GenCell{data.At(i, a), data.At(i, a)};
    }
    std::vector<std::pair<int64_t, int64_t>> key;
    key.reserve(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      GenCell c = hierarchies.hierarchy(qi[j]).Generalize(
          data.At(i, qi[j]), levels[j]);
      cells[qi[j]] = c;
      key.emplace_back(c.lo, c.hi);
    }
    buckets[std::move(key)].push_back(i);
    gds.Append(std::move(cells));
  }
  AnonymizationResult result{std::move(gds), {}, 0};
  result.classes.reserve(buckets.size());
  for (auto& [key, rows] : buckets) result.classes.push_back(std::move(rows));
  return result;
}

}  // namespace

Result<LatticeResult> OptimalFullDomainAnonymize(
    const Dataset& data, const HierarchySet& hierarchies,
    const LatticeOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.qi_attrs.empty()) {
    return Status::InvalidArgument("no quasi-identifier attributes given");
  }
  for (size_t a : options.qi_attrs) {
    if (a >= data.schema().NumAttributes()) {
      return Status::InvalidArgument("QI attribute index out of range");
    }
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (data.size() < options.k) return Status::Infeasible("fewer rows than k");

  const std::vector<size_t>& qi = options.qi_attrs;
  Levels top(qi.size());
  for (size_t j = 0; j < qi.size(); ++j) {
    top[j] = hierarchies.hierarchy(qi[j]).NumLevels() - 1;
  }
  if (!IsAnonymousAt(data, hierarchies, qi, top, options.k)) {
    return Status::Infeasible(
        "not k-anonymous even at full suppression (duplicated records "
        "fewer than k)");
  }

  // Bottom-up BFS by total height. Monotonicity: once a node is
  // k-anonymous it is minimal (no tested predecessor was), and none of
  // its successors can be minimal — mark the whole up-set as dominated.
  std::set<Levels> frontier = {Levels(qi.size(), 0)};
  std::set<Levels> seen = frontier;
  std::vector<Levels> minimal;
  size_t examined = 0;

  auto dominated = [&minimal](const Levels& node) {
    for (const Levels& m : minimal) {
      bool above = true;
      for (size_t j = 0; j < node.size(); ++j) {
        if (node[j] < m[j]) {
          above = false;
          break;
        }
      }
      if (above) return true;
    }
    return false;
  };

  while (!frontier.empty()) {
    std::set<Levels> next;
    for (const Levels& node : frontier) {
      if (dominated(node)) continue;
      if (++examined > options.max_nodes) {
        if (minimal.empty()) {
          return Status::Internal("lattice node budget exhausted");
        }
        frontier.clear();
        break;
      }
      if (IsAnonymousAt(data, hierarchies, qi, node, options.k)) {
        minimal.push_back(node);
        continue;  // successors dominated
      }
      for (size_t j = 0; j < qi.size(); ++j) {
        if (node[j] >= top[j]) continue;
        Levels succ = node;
        ++succ[j];
        if (seen.insert(succ).second) next.insert(std::move(succ));
      }
    }
    frontier = std::move(next);
  }

  PSO_CHECK_MSG(!minimal.empty(), "top node is anonymous, BFS must find it");

  // Pick the minimal node with the least information loss.
  const Levels* best = nullptr;
  double best_loss = 0.0;
  AnonymizationResult best_release{GeneralizedDataset{hierarchies}, {}, 0};
  for (const Levels& node : minimal) {
    AnonymizationResult release = BuildRelease(data, hierarchies, qi, node);
    double loss = GeneralizedInformationLoss(release.generalized);
    if (best == nullptr || loss < best_loss) {
      best = &node;
      best_loss = loss;
      best_release = std::move(release);
    }
  }

  LatticeResult out{std::move(best_release), *best, examined,
                    minimal.size()};
  return out;
}

}  // namespace pso::kanon
