#include "kanon/generalized.h"

#include <map>

#include "common/check.h"
#include "common/str_util.h"

namespace pso::kanon {

GeneralizedDataset::GeneralizedDataset(HierarchySet hierarchies)
    : hierarchies_(std::move(hierarchies)) {}

void GeneralizedDataset::Append(std::vector<GenCell> row) {
  PSO_CHECK(row.size() == schema().NumAttributes());
  rows_.push_back(std::move(row));
}

const std::vector<GenCell>& GeneralizedDataset::row(size_t i) const {
  PSO_CHECK(i < rows_.size());
  return rows_[i];
}

bool GeneralizedDataset::Covers(size_t i, const Record& record) const {
  const auto& cells = row(i);
  if (record.size() != cells.size()) return false;
  for (size_t a = 0; a < cells.size(); ++a) {
    if (!cells[a].Contains(record[a])) return false;
  }
  return true;
}

PredicateRef GeneralizedDataset::RowPredicate(size_t i) const {
  return hierarchies_.CellsPredicate(row(i));
}

std::vector<std::vector<size_t>> GeneralizedDataset::EquivalenceClasses()
    const {
  std::map<std::vector<std::pair<int64_t, int64_t>>, std::vector<size_t>>
      buckets;
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::vector<std::pair<int64_t, int64_t>> key;
    key.reserve(rows_[i].size());
    for (const GenCell& c : rows_[i]) key.emplace_back(c.lo, c.hi);
    buckets[std::move(key)].push_back(i);
  }
  std::vector<std::vector<size_t>> classes;
  classes.reserve(buckets.size());
  for (auto& [key, rows] : buckets) classes.push_back(std::move(rows));
  return classes;
}

std::string GeneralizedDataset::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    std::vector<std::string> parts;
    parts.reserve(rows_[i].size());
    for (size_t a = 0; a < rows_[i].size(); ++a) {
      parts.push_back(schema().attribute(a).name() + "=" +
                      hierarchies_.CellToString(a, rows_[i][a]));
    }
    out += Join(parts, ", ");
    out += "\n";
  }
  if (rows_.size() > max_rows) out += "...\n";
  return out;
}

bool IsKAnonymous(const GeneralizedDataset& gds, size_t k,
                  const std::vector<size_t>& qi) {
  std::map<std::vector<std::pair<int64_t, int64_t>>, size_t> counts;
  std::vector<size_t> attrs = qi;
  if (attrs.empty()) {
    attrs.resize(gds.schema().NumAttributes());
    for (size_t a = 0; a < attrs.size(); ++a) attrs[a] = a;
  }
  for (size_t i = 0; i < gds.size(); ++i) {
    std::vector<std::pair<int64_t, int64_t>> key;
    key.reserve(attrs.size());
    for (size_t a : attrs) {
      const GenCell& c = gds.row(i)[a];
      key.emplace_back(c.lo, c.hi);
    }
    ++counts[std::move(key)];
  }
  for (const auto& [key, count] : counts) {
    if (count < k) return false;
  }
  return true;
}

}  // namespace pso::kanon
