// Attacks on k-anonymized releases.
//
// * EquivalenceClassPredicate / HashIsolationPredicate implement the
//   Theorem 2.10 attack verbatim: take the predicate of an equivalence
//   class of k' records (negligible weight when the schema is rich), and
//   conjoin a leftover-hash-lemma predicate of weight 1/k' over the class;
//   the conjunction isolates with probability ~ 1/e ~ 37%.
//
// * MinimalityIsolationPredicate strengthens this for anonymizers that
//   publish data-dependent tight ranges (Mondrian local recoding): a tight
//   cell boundary is *attained* by some record, so "class AND attr == lo"
//   matches at least one record and exactly one with high probability.
//   This mirrors Cohen's downcoding result [12] (success approaching 100%).
//
// * IntersectionAttack implements the composition attack of Ganta et al.
//   [23] (Section 1.1: k-anonymity is not closed under composition): two
//   independent k-anonymizations of the same data are intersected to pin
//   sensitive values.
//
// All attackers here see only the released x' (and, per Section 2.2, know
// the data-generating distribution); none touch the raw dataset.

#ifndef PSO_KANON_ATTACKS_H_
#define PSO_KANON_ATTACKS_H_

#include <optional>

#include "common/rng.h"
#include "data/distribution.h"
#include "kanon/generalized.h"
#include "predicate/predicate.h"

namespace pso::kanon {

/// The conjunction of the cells shared by every row of class `class_idx`
/// (attributes whose cells differ within the class are omitted).
PredicateRef EquivalenceClassPredicate(const AnonymizationResult& result,
                                       size_t class_idx);

/// A predicate produced by an attack, with its audit trail.
struct AttackPredicate {
  PredicateRef predicate;
  size_t class_index = 0;
  double predicted_weight = 0.0;   ///< Attacker-side weight estimate.
  double predicted_success = 0.0;  ///< Attacker-side isolation estimate.
};

/// Theorem 2.10 attack: picks the eligible class whose class predicate has
/// the smallest exact weight under `dist` subject to weight*1/k' <=
/// `weight_budget` (pass +infinity for "any"), and conjoins a fresh
/// universal-hash predicate of range k'. Returns nullopt when no class is
/// eligible (e.g. everything was suppressed).
std::optional<AttackPredicate> HashIsolationPredicate(
    const AnonymizationResult& result, const ProductDistribution& dist,
    double weight_budget, Rng& rng);

/// Minimality/downcoding attack for tight-range releases: over all
/// (class, QI attribute, lo/hi side) candidates whose predicate weight is
/// within `weight_budget`, picks the one maximizing the probability that
/// the attained extreme value is unique in the class, and returns
/// "class AND attr == extreme".
std::optional<AttackPredicate> MinimalityIsolationPredicate(
    const AnonymizationResult& result, const ProductDistribution& dist,
    double weight_budget);

/// Result of the composition (intersection) attack.
struct IntersectionAttackResult {
  size_t rows = 0;
  size_t sensitive_pinned = 0;  ///< Rows whose sensitive value is uniquely
                                ///< determined by intersecting the releases.
  double pinned_fraction = 0.0;
  /// Rows whose sensitive candidate set strictly shrank versus what either
  /// release alone reveals — the composition leaked extra information even
  /// when it did not fully pin the value.
  size_t candidates_shrunk = 0;
  double shrunk_fraction = 0.0;
};

/// Intersects two independent anonymizations of the same dataset (rows
/// aligned by index): for each row, the candidate sensitive values are the
/// ones present in the row's class in *both* releases; a singleton
/// intersection discloses the value.
IntersectionAttackResult IntersectionAttack(const Dataset& data,
                                            const AnonymizationResult& a,
                                            const AnonymizationResult& b,
                                            size_t sensitive_attr);

}  // namespace pso::kanon

#endif  // PSO_KANON_ATTACKS_H_
