#include "kanon/mondrian.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace pso::kanon {

namespace {

// Number of distinct sensitive values among `rows`.
size_t DistinctSensitive(const Dataset& data, const std::vector<size_t>& rows,
                         size_t attr) {
  std::set<int64_t> values;
  for (size_t i : rows) values.insert(data.At(i, attr));
  return values.size();
}

struct Partition {
  std::vector<size_t> rows;
  // Bounding box over QI attributes (parallel to options.qi_attrs); used
  // when tight_ranges is false.
  std::vector<GenCell> box;
};

// Median value of attribute `attr` over `rows` (lower median).
int64_t MedianOf(const Dataset& data, const std::vector<size_t>& rows,
                 size_t attr) {
  std::vector<int64_t> vals;
  vals.reserve(rows.size());
  for (size_t i : rows) vals.push_back(data.At(i, attr));
  size_t mid = (vals.size() - 1) / 2;
  std::nth_element(vals.begin(), vals.begin() + mid, vals.end());
  return vals[mid];
}

}  // namespace

Result<AnonymizationResult> MondrianAnonymize(const Dataset& data,
                                              const HierarchySet& hierarchies,
                                              const MondrianOptions& options) {
  metrics::GetCounter("kanon.mondrian_runs").Add(1);
  metrics::GetCounter("kanon.records_anonymized").Add(data.size());
  metrics::ScopedSpan span("kanon.anonymize");
  PSO_TRACE_SPAN("kanon.anonymize");
  if (data.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.qi_attrs.empty()) {
    return Status::InvalidArgument("no quasi-identifier attributes given");
  }
  for (size_t a : options.qi_attrs) {
    if (a >= data.schema().NumAttributes()) {
      return Status::InvalidArgument("QI attribute index out of range");
    }
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (data.size() < options.k) {
    return Status::Infeasible("fewer rows than k");
  }
  if (options.l_diversity >= 2) {
    if (options.sensitive_attr >= data.schema().NumAttributes()) {
      return Status::InvalidArgument("sensitive attribute out of range");
    }
    std::vector<size_t> all(data.size());
    for (size_t i = 0; i < data.size(); ++i) all[i] = i;
    if (DistinctSensitive(data, all, options.sensitive_attr) <
        options.l_diversity) {
      return Status::Infeasible(
          "dataset has fewer distinct sensitive values than l");
    }
  }

  const Schema& schema = data.schema();
  const std::vector<size_t>& qi = options.qi_attrs;

  Partition root;
  root.rows.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) root.rows[i] = i;
  root.box.reserve(qi.size());
  for (size_t a : qi) {
    root.box.push_back(
        GenCell{schema.attribute(a).MinValue(), schema.attribute(a).MaxValue()});
  }

  std::vector<Partition> leaves;
  std::vector<Partition> stack = {std::move(root)};
  while (!stack.empty()) {
    Partition part = std::move(stack.back());
    stack.pop_back();

    // Rank QI dimensions by normalized value spread inside the partition.
    struct Dim {
      size_t qi_pos;
      double spread;
      int64_t lo;
      int64_t hi;
    };
    std::vector<Dim> dims;
    dims.reserve(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      int64_t lo = data.At(part.rows[0], qi[j]);
      int64_t hi = lo;
      for (size_t i : part.rows) {
        int64_t v = data.At(i, qi[j]);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      double domain =
          static_cast<double>(schema.attribute(qi[j]).DomainSize());
      dims.push_back(Dim{j, static_cast<double>(hi - lo) / domain, lo, hi});
    }
    std::sort(dims.begin(), dims.end(),
              [](const Dim& a, const Dim& b) { return a.spread > b.spread; });

    bool split_done = false;
    for (const Dim& dim : dims) {
      if (dim.lo == dim.hi) continue;  // no spread, cannot split
      int64_t median = MedianOf(data, part.rows, qi[dim.qi_pos]);
      Partition left;
      Partition right;
      for (size_t i : part.rows) {
        (data.At(i, qi[dim.qi_pos]) <= median ? left.rows : right.rows)
            .push_back(i);
      }
      if (left.rows.size() < options.k || right.rows.size() < options.k) {
        continue;  // not an allowable cut
      }
      if (options.l_diversity >= 2 &&
          (DistinctSensitive(data, left.rows, options.sensitive_attr) <
               options.l_diversity ||
           DistinctSensitive(data, right.rows, options.sensitive_attr) <
               options.l_diversity)) {
        continue;  // cut would break l-diversity
      }
      left.box = part.box;
      right.box = part.box;
      left.box[dim.qi_pos].hi = median;
      right.box[dim.qi_pos].lo = median + 1;
      stack.push_back(std::move(left));
      stack.push_back(std::move(right));
      split_done = true;
      break;
    }
    if (!split_done) leaves.push_back(std::move(part));
  }

  // Emit generalized rows.
  GeneralizedDataset gds(hierarchies);
  std::vector<std::vector<GenCell>> out_rows(data.size());
  for (const Partition& leaf : leaves) {
    // Cell per QI attribute: tight min/max or the split-path box.
    std::vector<GenCell> qi_cells(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      if (options.tight_ranges) {
        int64_t lo = data.At(leaf.rows[0], qi[j]);
        int64_t hi = lo;
        for (size_t i : leaf.rows) {
          int64_t v = data.At(i, qi[j]);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        qi_cells[j] = GenCell{lo, hi};
      } else {
        qi_cells[j] = leaf.box[j];
      }
    }
    for (size_t i : leaf.rows) {
      std::vector<GenCell> cells(schema.NumAttributes());
      for (size_t a = 0; a < schema.NumAttributes(); ++a) {
        cells[a] = GenCell{data.At(i, a), data.At(i, a)};
      }
      for (size_t j = 0; j < qi.size(); ++j) cells[qi[j]] = qi_cells[j];
      out_rows[i] = std::move(cells);
    }
  }
  for (auto& row : out_rows) gds.Append(std::move(row));

  AnonymizationResult result{std::move(gds), {}, 0};
  // Classes are the leaf partitions (k-anonymity is over the QI cells;
  // exact non-QI attributes must not split them).
  result.classes.reserve(leaves.size());
  for (const Partition& leaf : leaves) result.classes.push_back(leaf.rows);
  return result;
}

}  // namespace pso::kanon
