#include "kanon/attacks.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/hash.h"

namespace pso::kanon {

namespace {

// True if the class is usable for isolation attacks: at least 2 rows and
// not the fully suppressed catch-all.
bool ClassEligible(const AnonymizationResult& result,
                   const std::vector<size_t>& cls) {
  if (cls.size() < 2) return false;
  const Schema& schema = result.generalized.schema();
  const auto& row = result.generalized.row(cls.front());
  for (size_t a = 0; a < row.size(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (!(row[a].lo <= attr.MinValue() && row[a].hi >= attr.MaxValue())) {
      return true;  // some attribute is not suppressed
    }
  }
  return false;  // every attribute suppressed: catch-all class
}

// The shared cells of a class: per attribute, the cell if identical across
// all class rows, nullopt otherwise.
std::vector<std::optional<GenCell>> SharedCells(
    const AnonymizationResult& result, const std::vector<size_t>& cls) {
  const GeneralizedDataset& gds = result.generalized;
  std::vector<std::optional<GenCell>> shared;
  const auto& first = gds.row(cls.front());
  shared.reserve(first.size());
  for (const GenCell& c : first) shared.emplace_back(c);
  for (size_t idx = 1; idx < cls.size(); ++idx) {
    const auto& row = gds.row(cls[idx]);
    for (size_t a = 0; a < row.size(); ++a) {
      if (shared[a].has_value() && !(row[a] == *shared[a])) {
        shared[a] = std::nullopt;
      }
    }
  }
  return shared;
}

PredicateRef SharedCellsPredicate(const AnonymizationResult& result,
                                  const std::vector<std::optional<GenCell>>&
                                      shared) {
  const Schema& schema = result.generalized.schema();
  std::vector<PredicateRef> terms;
  for (size_t a = 0; a < shared.size(); ++a) {
    if (!shared[a].has_value()) continue;
    const Attribute& attr = schema.attribute(a);
    if (shared[a]->lo <= attr.MinValue() && shared[a]->hi >= attr.MaxValue()) {
      continue;  // suppressed: constrains nothing
    }
    terms.push_back(
        MakeAttributeRange(a, shared[a]->lo, shared[a]->hi, attr.name()));
  }
  return MakeAnd(std::move(terms));
}

// Exact weight of a shared-cells box under a product distribution.
double SharedCellsWeight(const ProductDistribution& dist,
                         const std::vector<std::optional<GenCell>>& shared) {
  double w = 1.0;
  for (size_t a = 0; a < shared.size(); ++a) {
    if (!shared[a].has_value()) continue;
    w *= dist.marginal(a).MassInRange(shared[a]->lo, shared[a]->hi);
  }
  return w;
}

}  // namespace

PredicateRef EquivalenceClassPredicate(const AnonymizationResult& result,
                                       size_t class_idx) {
  PSO_CHECK(class_idx < result.classes.size());
  const auto& cls = result.classes[class_idx];
  PSO_CHECK(!cls.empty());
  return SharedCellsPredicate(result, SharedCells(result, cls));
}

std::optional<AttackPredicate> HashIsolationPredicate(
    const AnonymizationResult& result, const ProductDistribution& dist,
    double weight_budget, Rng& rng) {
  // For a class of k' records whose box has mass w_box, a hash of range
  // R >= k' gives predicate weight w_box / R and isolation probability
  // k' (1/R) (1 - 1/R)^{k'-1} (1/e when R = k'). The attacker chooses the
  // smallest R meeting the weight budget per class and plays the class
  // with the best predicted success.
  constexpr uint64_t kMaxRange = 1ULL << 40;

  std::optional<size_t> best;
  double best_success = 0.0;
  double best_weight = 0.0;
  uint64_t best_range = 0;
  std::vector<std::optional<GenCell>> best_shared;
  for (size_t c = 0; c < result.classes.size(); ++c) {
    const auto& cls = result.classes[c];
    if (!ClassEligible(result, cls)) continue;
    auto shared = SharedCells(result, cls);
    double w_box = SharedCellsWeight(dist, shared);
    double k_prime = static_cast<double>(cls.size());

    double needed = w_box / weight_budget;  // smallest admissible range
    if (needed > static_cast<double>(kMaxRange)) continue;  // hopeless
    uint64_t range = static_cast<uint64_t>(
        std::max(k_prime, std::ceil(needed)));
    double p = 1.0 / static_cast<double>(range);
    double success =
        k_prime * p * std::pow(1.0 - p, k_prime - 1.0);
    if (!best.has_value() || success > best_success) {
      best = c;
      best_success = success;
      best_weight = w_box / static_cast<double>(range);
      best_range = range;
      best_shared = std::move(shared);
    }
  }
  if (!best.has_value()) return std::nullopt;

  UniversalHash h(rng, best_range);
  PredicateRef class_pred = SharedCellsPredicate(result, best_shared);
  PredicateRef hash_pred =
      MakeHashPredicate(result.generalized.schema(), h, /*bucket=*/0);

  AttackPredicate out;
  out.predicate = MakeAnd({class_pred, hash_pred});
  out.class_index = *best;
  out.predicted_weight = best_weight;
  out.predicted_success = best_success;
  return out;
}

std::optional<AttackPredicate> MinimalityIsolationPredicate(
    const AnonymizationResult& result, const ProductDistribution& dist,
    double weight_budget) {
  const Schema& schema = result.generalized.schema();

  std::optional<AttackPredicate> best;
  for (size_t c = 0; c < result.classes.size(); ++c) {
    const auto& cls = result.classes[c];
    if (!ClassEligible(result, cls)) continue;
    auto shared = SharedCells(result, cls);
    const double box_weight = SharedCellsWeight(dist, shared);
    const double k_prime = static_cast<double>(cls.size());

    for (size_t a = 0; a < shared.size(); ++a) {
      if (!shared[a].has_value() || shared[a]->Width() <= 1) continue;
      const GenCell& cell = *shared[a];
      double cell_mass = dist.marginal(a).MassInRange(cell.lo, cell.hi);
      if (cell_mass <= 0.0) continue;

      for (int64_t edge : {cell.lo, cell.hi}) {
        // Probability a class member sits on the edge, conditioned on
        // being inside the cell.
        double p = dist.marginal(a).Probability(edge) / cell_mass;
        if (p <= 0.0 || p >= 1.0) continue;
        // Tight ranges guarantee >= 1 record on the edge; success iff
        // exactly one: Binomial(k', p) conditioned on >= 1.
        double none = std::pow(1.0 - p, k_prime);
        double exactly_one = k_prime * p * std::pow(1.0 - p, k_prime - 1.0);
        double success = exactly_one / (1.0 - none);
        // Weight of "box AND attr == edge".
        double weight =
            box_weight * dist.marginal(a).Probability(edge) / cell_mass;
        if (weight > weight_budget) continue;
        if (!best.has_value() || success > best->predicted_success) {
          // Replace the attr-a range with equality on the edge.
          std::vector<PredicateRef> terms;
          for (size_t b = 0; b < shared.size(); ++b) {
            if (!shared[b].has_value()) continue;
            const Attribute& attr = schema.attribute(b);
            if (shared[b]->lo <= attr.MinValue() &&
                shared[b]->hi >= attr.MaxValue()) {
              continue;
            }
            if (b == a) {
              terms.push_back(MakeAttributeEquals(b, edge, attr.name()));
            } else {
              terms.push_back(MakeAttributeRange(b, shared[b]->lo,
                                                 shared[b]->hi, attr.name()));
            }
          }
          AttackPredicate cand;
          cand.predicate = MakeAnd(std::move(terms));
          cand.class_index = c;
          cand.predicted_weight = weight;
          cand.predicted_success = success;
          best = std::move(cand);
        }
      }
    }
  }
  return best;
}

IntersectionAttackResult IntersectionAttack(const Dataset& data,
                                            const AnonymizationResult& a,
                                            const AnonymizationResult& b,
                                            size_t sensitive_attr) {
  PSO_CHECK(sensitive_attr < data.schema().NumAttributes());
  PSO_CHECK(a.generalized.size() == data.size());
  PSO_CHECK(b.generalized.size() == data.size());

  // Row -> class index maps.
  auto class_of = [](const AnonymizationResult& r, size_t n) {
    std::vector<size_t> map(n, 0);
    for (size_t c = 0; c < r.classes.size(); ++c) {
      for (size_t i : r.classes[c]) map[i] = c;
    }
    return map;
  };
  std::vector<size_t> in_a = class_of(a, data.size());
  std::vector<size_t> in_b = class_of(b, data.size());

  // Sensitive-value multisets per class.
  auto values_of = [&](const AnonymizationResult& r) {
    std::vector<std::set<int64_t>> vals(r.classes.size());
    for (size_t c = 0; c < r.classes.size(); ++c) {
      for (size_t i : r.classes[c]) {
        vals[c].insert(data.At(i, sensitive_attr));
      }
    }
    return vals;
  };
  std::vector<std::set<int64_t>> vals_a = values_of(a);
  std::vector<std::set<int64_t>> vals_b = values_of(b);

  IntersectionAttackResult out;
  out.rows = data.size();
  for (size_t i = 0; i < data.size(); ++i) {
    const std::set<int64_t>& sa = vals_a[in_a[i]];
    const std::set<int64_t>& sb = vals_b[in_b[i]];
    size_t common = 0;
    for (int64_t v : sa) {
      if (sb.count(v) > 0) ++common;
    }
    if (common == 1) ++out.sensitive_pinned;
    if (common < std::min(sa.size(), sb.size())) ++out.candidates_shrunk;
  }
  if (!data.empty()) {
    double n = static_cast<double>(data.size());
    out.pinned_fraction = static_cast<double>(out.sensitive_pinned) / n;
    out.shrunk_fraction = static_cast<double>(out.candidates_shrunk) / n;
  }
  return out;
}

}  // namespace pso::kanon
