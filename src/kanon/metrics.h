// Information-content metrics for anonymized releases.
//
// k-anonymizers "attempt to retain as much as possible information"
// (Section 2.3.4); these metrics quantify how much a release kept, so the
// attack benches can show the privacy/utility trade-off.

#ifndef PSO_KANON_METRICS_H_
#define PSO_KANON_METRICS_H_

#include <cstddef>
#include <vector>

#include "kanon/generalized.h"

namespace pso::kanon {

/// Discernibility metric: sum over classes of |class|^2 (suppressed rows
/// counted as |dataset| each). Lower is better.
double DiscernibilityMetric(const AnonymizationResult& result);

/// Normalized generalized information loss in [0,1]: the mean over all
/// cells of (cell width - 1) / (domain size - 1). 0 = exact data,
/// 1 = everything suppressed.
double GeneralizedInformationLoss(const GeneralizedDataset& gds);

/// Average equivalence-class size (C_avg = n / #classes).
double AverageClassSize(const AnonymizationResult& result);

}  // namespace pso::kanon

#endif  // PSO_KANON_METRICS_H_
