// Generalized datasets: the output x' of a k-anonymizer (Section 1.1).
//
// Each row is a vector of GenCells covering the corresponding input record.
// Equivalence classes are rows with identical cell vectors; k-anonymity
// (over a quasi-identifier set) means every class has size >= k.

#ifndef PSO_KANON_GENERALIZED_H_
#define PSO_KANON_GENERALIZED_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "kanon/hierarchy.h"
#include "predicate/predicate.h"

namespace pso::kanon {

/// A k-anonymized (generalized) view of a dataset.
class GeneralizedDataset {
 public:
  /// Creates an empty generalized dataset over `hierarchies`.
  explicit GeneralizedDataset(HierarchySet hierarchies);

  const HierarchySet& hierarchies() const { return hierarchies_; }
  const Schema& schema() const { return hierarchies_.schema(); }

  size_t size() const { return rows_.size(); }

  /// Appends a generalized row (one cell per attribute).
  void Append(std::vector<GenCell> row);

  const std::vector<GenCell>& row(size_t i) const;

  /// True if generalized row `i` covers `record` on every attribute.
  bool Covers(size_t i, const Record& record) const;

  /// Predicate matching exactly the records covered by row `i`.
  PredicateRef RowPredicate(size_t i) const;

  /// Groups row indices by identical cell vectors (equivalence classes).
  std::vector<std::vector<size_t>> EquivalenceClasses() const;

  /// Renders the first `max_rows` generalized rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  HierarchySet hierarchies_;
  std::vector<std::vector<GenCell>> rows_;
};

/// Output of an anonymizer: the generalized view plus bookkeeping tying
/// generalized rows back to input rows (row i of `generalized` covers row
/// i of the input) and the equivalence-class structure.
struct AnonymizationResult {
  GeneralizedDataset generalized;
  std::vector<std::vector<size_t>> classes;  ///< Row-index groups.
  size_t suppressed_rows = 0;  ///< Rows fully suppressed (all-domain cells).
};

/// True if every equivalence class over the attributes in `qi` has at
/// least k rows. Empty `qi` means all attributes.
bool IsKAnonymous(const GeneralizedDataset& gds, size_t k,
                  const std::vector<size_t>& qi = {});

}  // namespace pso::kanon

#endif  // PSO_KANON_GENERALIZED_H_
