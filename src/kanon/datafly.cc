#include "kanon/datafly.h"

#include <map>
#include <set>

#include "common/check.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace pso::kanon {

namespace {

using QiKey = std::vector<std::pair<int64_t, int64_t>>;

QiKey MakeKey(const Record& r, const HierarchySet& hs,
              const std::vector<size_t>& qi,
              const std::vector<size_t>& levels) {
  QiKey key;
  key.reserve(qi.size());
  for (size_t j = 0; j < qi.size(); ++j) {
    GenCell c = hs.hierarchy(qi[j]).Generalize(r[qi[j]], levels[j]);
    key.emplace_back(c.lo, c.hi);
  }
  return key;
}

}  // namespace

Result<AnonymizationResult> DataflyAnonymize(const Dataset& data,
                                             const HierarchySet& hierarchies,
                                             const DataflyOptions& options) {
  metrics::GetCounter("kanon.datafly_runs").Add(1);
  metrics::GetCounter("kanon.records_anonymized").Add(data.size());
  metrics::ScopedSpan span("kanon.anonymize");
  PSO_TRACE_SPAN("kanon.anonymize");
  if (data.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.qi_attrs.empty()) {
    return Status::InvalidArgument("no quasi-identifier attributes given");
  }
  for (size_t a : options.qi_attrs) {
    if (a >= data.schema().NumAttributes()) {
      return Status::InvalidArgument("QI attribute index out of range");
    }
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");

  const std::vector<size_t>& qi = options.qi_attrs;
  std::vector<size_t> levels(qi.size(), 0);
  const size_t n = data.size();
  const size_t max_suppress =
      static_cast<size_t>(options.max_suppression * static_cast<double>(n));

  for (;;) {
    // Bucket rows by their generalized QI key.
    std::map<QiKey, std::vector<size_t>> buckets;
    for (size_t i = 0; i < n; ++i) {
      buckets[MakeKey(data.record(i), hierarchies, qi, levels)].push_back(i);
    }
    size_t outliers = 0;
    for (const auto& [key, rows] : buckets) {
      if (rows.size() < options.k) outliers += rows.size();
    }

    if (outliers <= max_suppress) {
      // Done: emit generalized rows, suppressing the outliers.
      GeneralizedDataset gds(hierarchies);
      std::vector<bool> suppress(n, false);
      for (const auto& [key, rows] : buckets) {
        if (rows.size() < options.k) {
          for (size_t i : rows) suppress[i] = true;
        }
      }
      const Schema& schema = data.schema();
      for (size_t i = 0; i < n; ++i) {
        std::vector<GenCell> cells(schema.NumAttributes());
        for (size_t a = 0; a < schema.NumAttributes(); ++a) {
          const Attribute& attr = schema.attribute(a);
          if (suppress[i]) {
            cells[a] = GenCell{attr.MinValue(), attr.MaxValue()};
            continue;
          }
          cells[a] = GenCell{data.At(i, a), data.At(i, a)};
        }
        if (!suppress[i]) {
          for (size_t j = 0; j < qi.size(); ++j) {
            cells[qi[j]] =
                hierarchies.hierarchy(qi[j]).Generalize(data.At(i, qi[j]),
                                                        levels[j]);
          }
        }
        gds.Append(std::move(cells));
      }

      AnonymizationResult result{std::move(gds), {}, outliers};
      // Classes follow the QI buckets (k-anonymity is over the QI cells);
      // suppressed outliers form one catch-all class.
      std::vector<size_t> suppressed_class;
      for (const auto& [key, rows] : buckets) {
        if (rows.size() < options.k) {
          suppressed_class.insert(suppressed_class.end(), rows.begin(),
                                  rows.end());
        } else {
          result.classes.push_back(rows);
        }
      }
      if (!suppressed_class.empty()) {
        result.classes.push_back(std::move(suppressed_class));
      }
      return result;
    }

    // Generalize the QI attribute with the most distinct generalized
    // values, if any can still be generalized.
    size_t best_attr = qi.size();
    size_t best_distinct = 0;
    for (size_t j = 0; j < qi.size(); ++j) {
      const ValueHierarchy& h = hierarchies.hierarchy(qi[j]);
      if (levels[j] + 1 >= h.NumLevels()) continue;
      std::set<int64_t> distinct;
      for (size_t i = 0; i < n; ++i) {
        distinct.insert(h.Generalize(data.At(i, qi[j]), levels[j]).lo);
      }
      if (distinct.size() > best_distinct) {
        best_distinct = distinct.size();
        best_attr = j;
      }
    }
    if (best_attr == qi.size()) {
      return Status::Infeasible(StrFormat(
          "cannot reach %zu-anonymity within suppression budget "
          "(outliers=%zu, budget=%zu) even at maximal generalization",
          options.k, outliers, max_suppress));
    }
    ++levels[best_attr];
  }
}

}  // namespace pso::kanon
