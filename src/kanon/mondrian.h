// Mondrian multidimensional k-anonymization (LeFevre–DeWitt–Ramakrishnan).
//
// Local recoding: the QI space is recursively split at medians while both
// sides keep >= k rows; each leaf partition becomes an equivalence class
// whose cells are the partition's tight [min, max] attribute ranges.
//
// The tight (data-dependent) ranges are exactly what makes minimality /
// downcoding attacks possible (Cohen [12], strengthening Theorem 2.10):
// the cell boundary values are guaranteed to be attained by some record.

#ifndef PSO_KANON_MONDRIAN_H_
#define PSO_KANON_MONDRIAN_H_

#include <vector>

#include "common/result.h"
#include "kanon/generalized.h"

namespace pso::kanon {

/// Configuration for the Mondrian anonymizer.
struct MondrianOptions {
  size_t k = 5;                  ///< Minimum equivalence-class size.
  std::vector<size_t> qi_attrs;  ///< Quasi-identifier attribute indices.
  /// If true, leaf cells are the tight [min,max] of the partition (the
  /// standard, information-maximizing choice). If false, leaf cells are
  /// snapped outward to the full attribute domain fractions chosen by the
  /// split path (coarser, less leaky).
  bool tight_ranges = true;

  /// When l_diversity >= 2, a cut is allowable only if both sides keep at
  /// least l distinct values of `sensitive_attr` (footnote 3's variant;
  /// the PSO attacks of attacks.h go through regardless, see E8).
  size_t l_diversity = 0;
  size_t sensitive_attr = 0;
};

/// Runs Mondrian on `data`. Non-QI attributes are kept exact.
[[nodiscard]] Result<AnonymizationResult> MondrianAnonymize(const Dataset& data,
                                              const HierarchySet& hierarchies,
                                              const MondrianOptions& options);

}  // namespace pso::kanon

#endif  // PSO_KANON_MONDRIAN_H_
