// Deterministic load generator + attacker-as-client decoding: the
// demand side of the Cohen–Nissim end-to-end loop.
//
// RunLoad simulates `num_clients` independent clients. Client c draws
// its queries from the counter-based stream Rng::StreamAt(query_seed, c)
// — uniformly random subset queries, each index included w.p. 1/2 — and
// issues them in pipelined batches through a QueryTransport. Because the
// query streams and the service's noise streams are both counter-based,
// the full (query, answer) transcript is a pure function of the seeds:
// bit-identical at any thread count and across in-process vs. socket
// transports.
//
// The recorded transcript then feeds the existing LP / least-squares
// decoders AS A CLIENT (recon::LpDecodeRecorded): DecodeTranscript keeps
// only the answered entries (over-budget rejections carry no signal) and
// reconstructs the secret from what the service actually released. With
// exact answers the reconstruction is perfect; under per-query DP noise
// it measurably degrades — the paper's trade-off, end to end.

#ifndef PSO_SERVICE_LOADGEN_H_
#define PSO_SERVICE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "recon/attacks.h"
#include "recon/oracle.h"
#include "service/query_service.h"
#include "service/wire.h"

namespace pso::service {

/// How one client of a live query service observes its answers —
/// implemented in-process (InProcessTransport) and over TCP
/// (SocketTransport in client.h). One transport serves one client's
/// connection; RunLoad creates them through a factory.
class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  /// Probes the service parameters (dataset size, DP settings).
  [[nodiscard]] virtual Result<ServiceInfo> Info() = 0;

  /// Issues `queries` for `client` as one pipelined batch and returns
  /// the per-query outcomes in order. The outer Result is a transport
  /// failure; inner outcomes carry per-query service refusals.
  [[nodiscard]] virtual Result<std::vector<QueryOutcome>> IssueBatch(
      uint64_t client, const std::vector<recon::SubsetQuery>& queries) = 0;
};

/// Calls the QueryService directly — the zero-transport baseline the
/// socket path must match bit-for-bit.
class InProcessTransport final : public QueryTransport {
 public:
  explicit InProcessTransport(QueryService* service) : service_(service) {}

  [[nodiscard]] Result<ServiceInfo> Info() override;
  [[nodiscard]] Result<std::vector<QueryOutcome>> IssueBatch(
      uint64_t client, const std::vector<recon::SubsetQuery>& queries) override;

 private:
  QueryService* service_;
};

/// Creates the transport client `client` will use for its whole run (for
/// sockets: one connection per client). Returning null aborts the run
/// with the factory's failure reported as kInternal.
using TransportFactory =
    std::function<std::unique_ptr<QueryTransport>(uint64_t client)>;

/// Load shape knobs.
struct LoadGenOptions {
  /// Dataset size; every query is an indicator vector of this length.
  size_t n = 48;
  /// Simulated clients (ids 0 .. num_clients-1).
  size_t num_clients = 64;
  /// Queries each client issues.
  size_t queries_per_client = 10;
  /// Queries per pipelined IssueBatch call (capped to queries remaining).
  size_t batch_size = 8;
  /// Master seed for the per-client query streams.
  uint64_t query_seed = 1;
  /// Client-level parallelism (null = serial).
  ThreadPool* pool = nullptr;
};

/// One recorded (query, outcome) pair as the client observed it.
struct TranscriptEntry {
  recon::SubsetQuery query;
  double answer = 0.0;
  bool answered = false;
  /// Refusal category when !answered (kResourceExhausted = over budget).
  StatusCode error = StatusCode::kOk;
};

/// Everything the attack loop observed: client-major, entry
/// [c * queries_per_client + k] is client c's k-th query.
struct Transcript {
  size_t n = 0;
  size_t num_clients = 0;
  size_t queries_per_client = 0;
  uint64_t query_seed = 0;
  std::vector<TranscriptEntry> entries;

  /// The client id owning entry `index`.
  uint64_t ClientOf(size_t index) const { return index / queries_per_client; }
  uint64_t answered() const;
  uint64_t rejected() const;
};

/// Runs the load: every client draws its queries from
/// Rng::StreamAt(query_seed, client) and issues them in batches through
/// a transport from `factory`. Clients run in parallel on options.pool;
/// the transcript layout is client-major so the result is identical at
/// any thread count. kInternal when the factory or a transport fails.
[[nodiscard]] Result<Transcript> RunLoad(const LoadGenOptions& options,
                                         const TransportFactory& factory);

/// Which recorded-transcript decoder DecodeTranscript runs.
enum class Decoder {
  kLp,            ///< Residual-splitting L1 fit (LpDecodeRecorded).
  kLeastSquares,  ///< Projected-gradient (LeastSquaresDecodeRecorded).
};

/// Feeds the transcript's ANSWERED entries to the chosen decoder and
/// returns its reconstruction. kFailedPrecondition when the transcript
/// holds no answered entries at all.
[[nodiscard]] Result<recon::Reconstruction> DecodeTranscript(
    const Transcript& transcript, Decoder decoder,
    const recon::LpDecodeOptions& lp_options = recon::LpDecodeOptions{},
    size_t lsq_iterations = 400);

/// Writes the transcript as wire-format line pairs (`Q ...` then the
/// matching `A`/`E` line) — replayable and diffable; the CI smoke lane
/// uploads it as the failure artifact.
[[nodiscard]] Status WriteTranscript(const Transcript& transcript,
                                     const std::string& path);

}  // namespace pso::service

#endif  // PSO_SERVICE_LOADGEN_H_
