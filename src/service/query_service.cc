#include "service/query_service.h"

#include <utility>

#include "common/hash.h"
#include "common/rng.h"
#include "common/trace.h"

namespace pso::service {

QueryService::QueryService(std::vector<uint8_t> secret,
                           const QueryServiceOptions& options)
    : secret_(std::move(secret)),
      options_(options),
      ledger_(options.eps_per_query > 0.0 ? options.client_budget_eps : 0.0),
      queries_counter_(metrics::GetCounter("service.queries")),
      rejections_counter_(metrics::GetCounter("service.budget_rejections")),
      answer_timer_(metrics::GetTimer("service.answer")),
      answer_hist_(metrics::GetHistogram("service.answer")),
      batch_size_hist_(metrics::GetHistogram("service.batch_size")) {}

uint64_t QueryService::ClientSeed(uint64_t noise_seed, uint64_t client) {
  // Pure mixing of (noise_seed, client): consecutive client ids must land
  // in uncorrelated noise streams, so whiten both through the SplitMix64
  // finalizer before combining.
  return HashCombine(MixUint64(noise_seed), MixUint64(client));
}

QueryOutcome QueryService::Answer(uint64_t client,
                                  const recon::SubsetQuery& query) {
  metrics::ScopedSpan span(answer_timer_, answer_hist_);
  if (query.size() != secret_.size()) {
    return Status::InvalidArgument("query length != dataset size");
  }
  const double eps = options_.eps_per_query;
  Result<uint64_t> ordinal = ledger_.Charge(client, eps > 0.0 ? eps : 0.0);
  if (!ordinal.ok()) {
    rejections_counter_.Add(1);
    return ordinal.status();
  }
  queries_counter_.Add(1);
  double sum = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    if (query[i] != 0) sum += static_cast<double>(secret_[i]);
  }
  if (eps > 0.0) {
    // The k-th answered query of this client always draws from stream k,
    // regardless of which thread served it: bit-identical replay.
    Rng noise = Rng::StreamAt(ClientSeed(options_.noise_seed, client),
                              *ordinal);
    sum += noise.Laplace(1.0 / eps);
  }
  return sum;
}

std::vector<QueryOutcome> QueryService::AnswerBatch(
    uint64_t client, const std::vector<recon::SubsetQuery>& queries) {
  PSO_TRACE_SPAN("service.batch");
  metrics::GetCounter("service.batches").Add(1);
  batch_size_hist_.Record(static_cast<double>(queries.size()));
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(queries.size());
  for (const recon::SubsetQuery& q : queries) {
    outcomes.push_back(Answer(client, q));
  }
  return outcomes;
}

void AsyncBatchExecutor::Submit(uint64_t client,
                                std::vector<recon::SubsetQuery> queries,
                                BatchCallback done) {
  auto batch =
      std::make_shared<std::vector<recon::SubsetQuery>>(std::move(queries));
  auto callback = std::make_shared<BatchCallback>(std::move(done));
  group_.Submit([this, client, batch, callback] {
    std::vector<QueryOutcome> outcomes =
        service_->AnswerBatch(client, *batch);
    if (*callback) (*callback)(std::move(outcomes));
  });
}

}  // namespace pso::service
