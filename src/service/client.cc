#include "service/client.h"

#if defined(__unix__) || defined(__APPLE__)
#define PSO_SERVICE_HAVE_SOCKETS 1
#else
#define PSO_SERVICE_HAVE_SOCKETS 0
#endif

#if PSO_SERVICE_HAVE_SOCKETS
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <utility>

#include "common/str_util.h"

namespace pso::service {

#if PSO_SERVICE_HAVE_SOCKETS

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket: %s", ErrnoMessage(errno).c_str()));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("connect 127.0.0.1:%d: %s", port, ErrnoMessage(err).c_str()));
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status SocketTransport::WriteAll(const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t sent =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("send: %s", ErrnoMessage(errno).c_str()));
    }
    off += static_cast<size_t>(sent);
  }
  return Status::Ok();
}

Result<std::string> SocketTransport::ReadLine() {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("read: %s", ErrnoMessage(errno).c_str()));
    }
    if (got == 0) {
      return Status::Internal("connection closed by server mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

Result<ServiceInfo> SocketTransport::Info() {
  Status sent = WriteAll("INFO\n");
  if (!sent.ok()) return sent;
  Result<std::string> line = ReadLine();
  if (!line.ok()) return line.status();
  return ParseInfoLine(*line);
}

Result<std::vector<QueryOutcome>> SocketTransport::IssueBatch(
    uint64_t client, const std::vector<recon::SubsetQuery>& queries) {
  // Pipelined: one send carrying every Q line, then one response line
  // per query — the server batches what arrives together.
  std::string request;
  for (const recon::SubsetQuery& query : queries) {
    request += FormatQueryLine(client, query);
    request += '\n';
  }
  Status sent = WriteAll(request);
  if (!sent.ok()) return sent;
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<std::string> line = ReadLine();
    if (!line.ok()) return line.status();
    Result<Result<double>> outcome = ParseAnswerLine(*line);
    if (!outcome.ok()) return outcome.status();
    outcomes.push_back(std::move(*outcome));
  }
  return outcomes;
}

#else  // !PSO_SERVICE_HAVE_SOCKETS

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(int) {
  return Status::Unimplemented("sockets are unavailable on this platform");
}
SocketTransport::~SocketTransport() = default;
Status SocketTransport::WriteAll(const std::string&) {
  return Status::Unimplemented("sockets are unavailable on this platform");
}
Result<std::string> SocketTransport::ReadLine() {
  return Status::Unimplemented("sockets are unavailable on this platform");
}
Result<ServiceInfo> SocketTransport::Info() {
  return Status::Unimplemented("sockets are unavailable on this platform");
}
Result<std::vector<QueryOutcome>> SocketTransport::IssueBatch(
    uint64_t, const std::vector<recon::SubsetQuery>&) {
  return Status::Unimplemented("sockets are unavailable on this platform");
}

#endif  // PSO_SERVICE_HAVE_SOCKETS

}  // namespace pso::service
