#include "service/wire.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <system_error>

#include "common/str_util.h"

namespace pso::service {

namespace {

// Parses a non-negative decimal integer, rejecting trailing garbage.
bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

// "key=value" fields of the I line; returns false on shape mismatch.
bool FieldValue(const std::string& token, const char* key, std::string* out) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *out = token.substr(prefix.size());
  return true;
}

StatusCode CodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kInfeasible, StatusCode::kUnbounded,
        StatusCode::kResourceExhausted}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

std::string FormatQueryLine(uint64_t client,
                            const recon::SubsetQuery& query) {
  std::string line = StrFormat("Q %llu ",
                               static_cast<unsigned long long>(client));
  line.reserve(line.size() + query.size());
  for (uint8_t bit : query) line.push_back(bit != 0 ? '1' : '0');
  return line;
}

Result<WireQuery> ParseQueryLine(const std::string& line) {
  std::vector<std::string> parts = Split(line, ' ');
  if (parts.size() != 3 || parts[0] != "Q") {
    return Status::InvalidArgument("malformed query line");
  }
  WireQuery out;
  if (!ParseUint64(parts[1], &out.client)) {
    return Status::InvalidArgument("malformed client id");
  }
  out.query.reserve(parts[2].size());
  for (char c : parts[2]) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("query bits must be 0/1");
    }
    out.query.push_back(c == '1' ? 1 : 0);
  }
  if (out.query.empty()) {
    return Status::InvalidArgument("empty query bits");
  }
  return out;
}

std::string FormatAnswerLine(uint64_t client, const Result<double>& outcome) {
  if (outcome.ok()) {
    return StrFormat("A %llu %.17g",
                     static_cast<unsigned long long>(client), *outcome);
  }
  return StrFormat("E %llu %s %s",
                   static_cast<unsigned long long>(client),
                   StatusCodeName(outcome.status().code()),
                   outcome.status().message().c_str());
}

Result<Result<double>> ParseAnswerLine(const std::string& line) {
  std::vector<std::string> parts = Split(line, ' ');
  uint64_t client = 0;
  if (parts.size() >= 3 && parts[0] == "A") {
    double value = 0.0;
    if (parts.size() != 3 || !ParseUint64(parts[1], &client) ||
        !ParseDouble(parts[2], &value)) {
      return Status::InvalidArgument("malformed answer line");
    }
    return Result<double>(value);
  }
  if (parts.size() >= 3 && parts[0] == "E") {
    if (!ParseUint64(parts[1], &client)) {
      return Status::InvalidArgument("malformed error line");
    }
    std::string message;
    for (size_t i = 3; i < parts.size(); ++i) {
      if (i > 3) message += ' ';
      message += parts[i];
    }
    return Result<double>(Status(CodeFromName(parts[2]), message));
  }
  return Status::InvalidArgument("response line is neither A nor E");
}

std::string FormatInfoLine(const ServiceInfo& info) {
  return StrFormat("I n=%zu eps=%.17g budget=%.17g batch=%zu", info.n,
                   info.eps_per_query, info.client_budget_eps,
                   info.max_batch);
}

Result<ServiceInfo> ParseInfoLine(const std::string& line) {
  std::vector<std::string> parts = Split(line, ' ');
  if (parts.size() != 5 || parts[0] != "I") {
    return Status::InvalidArgument("malformed info line");
  }
  ServiceInfo info;
  std::string value;
  uint64_t n = 0;
  uint64_t batch = 0;
  if (!FieldValue(parts[1], "n", &value) || !ParseUint64(value, &n) ||
      !FieldValue(parts[2], "eps", &value) ||
      !ParseDouble(value, &info.eps_per_query) ||
      !FieldValue(parts[3], "budget", &value) ||
      !ParseDouble(value, &info.client_budget_eps) ||
      !FieldValue(parts[4], "batch", &value) || !ParseUint64(value, &batch)) {
    return Status::InvalidArgument("malformed info fields");
  }
  info.n = static_cast<size_t>(n);
  info.max_batch = static_cast<size_t>(batch);
  return info;
}

std::string ErrnoMessage(int err) {
  // std::strerror writes into a static buffer, which races when several
  // transport threads report socket errors at once; error_category
  // returns an owned string from a thread-safe lookup.
  return std::generic_category().message(err);
}

}  // namespace pso::service
