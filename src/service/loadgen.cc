#include "service/loadgen.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace pso::service {

Result<ServiceInfo> InProcessTransport::Info() {
  ServiceInfo info;
  info.n = service_->n();
  info.eps_per_query = service_->options().eps_per_query;
  info.client_budget_eps = service_->options().client_budget_eps;
  info.max_batch = service_->options().max_batch;
  return info;
}

Result<std::vector<QueryOutcome>> InProcessTransport::IssueBatch(
    uint64_t client, const std::vector<recon::SubsetQuery>& queries) {
  return service_->AnswerBatch(client, queries);
}

uint64_t Transcript::answered() const {
  uint64_t count = 0;
  for (const TranscriptEntry& e : entries) count += e.answered ? 1 : 0;
  return count;
}

uint64_t Transcript::rejected() const {
  uint64_t count = 0;
  for (const TranscriptEntry& e : entries) {
    count += (!e.answered && e.error == StatusCode::kResourceExhausted) ? 1 : 0;
  }
  return count;
}

Result<Transcript> RunLoad(const LoadGenOptions& options,
                           const TransportFactory& factory) {
  PSO_TRACE_SPAN("loadgen.run");
  if (options.n == 0) return Status::InvalidArgument("loadgen: n must be > 0");
  if (options.num_clients == 0 || options.queries_per_client == 0) {
    return Status::InvalidArgument(
        "loadgen: num_clients and queries_per_client must be > 0");
  }
  const size_t qpc = options.queries_per_client;
  const size_t batch = options.batch_size == 0 ? 1 : options.batch_size;
  Transcript transcript;
  transcript.n = options.n;
  transcript.num_clients = options.num_clients;
  transcript.queries_per_client = qpc;
  transcript.query_seed = options.query_seed;
  transcript.entries.resize(options.num_clients * qpc);
  // Per-client failure slots: the parallel body never returns, it records;
  // the lowest-numbered failing client wins deterministically below.
  std::vector<std::string> failures(options.num_clients);
  ParallelFor(options.pool, options.num_clients, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      std::unique_ptr<QueryTransport> transport = factory(c);
      if (transport == nullptr) {
        failures[c] = "transport factory returned null";
        continue;
      }
      // The whole query sequence is drawn before any I/O: client c's
      // queries depend only on (query_seed, c).
      Rng qrng = Rng::StreamAt(options.query_seed, c);
      std::vector<recon::SubsetQuery> queries(qpc);
      for (recon::SubsetQuery& q : queries) {
        q = recon::RandomBits(options.n, qrng);
      }
      size_t k = 0;
      while (k < qpc) {
        const size_t take = std::min(batch, qpc - k);
        std::vector<recon::SubsetQuery> slice(
            queries.begin() + static_cast<ptrdiff_t>(k),
            queries.begin() + static_cast<ptrdiff_t>(k + take));
        Result<std::vector<QueryOutcome>> outcomes =
            transport->IssueBatch(c, slice);
        if (!outcomes.ok()) {
          failures[c] = outcomes.status().ToString();
          break;
        }
        if (outcomes->size() != take) {
          failures[c] = StrFormat("short batch response: %zu of %zu",
                                  outcomes->size(), take);
          break;
        }
        for (size_t j = 0; j < take; ++j) {
          TranscriptEntry& entry = transcript.entries[c * qpc + k + j];
          entry.query = std::move(slice[j]);
          const QueryOutcome& outcome = (*outcomes)[j];
          if (outcome.ok()) {
            entry.answered = true;
            entry.answer = *outcome;
          } else {
            entry.error = outcome.status().code();
          }
        }
        k += take;
      }
    }
  });
  for (size_t c = 0; c < options.num_clients; ++c) {
    if (!failures[c].empty()) {
      return Status::Internal(
          StrFormat("loadgen client %zu: %s", c, failures[c].c_str()));
    }
  }
  metrics::GetCounter("loadgen.clients").Add(options.num_clients);
  metrics::GetCounter("loadgen.answered").Add(transcript.answered());
  metrics::GetCounter("loadgen.rejected").Add(transcript.rejected());
  return transcript;
}

Result<recon::Reconstruction> DecodeTranscript(
    const Transcript& transcript, Decoder decoder,
    const recon::LpDecodeOptions& lp_options, size_t lsq_iterations) {
  PSO_TRACE_SPAN("loadgen.decode");
  std::vector<recon::SubsetQuery> queries;
  std::vector<double> answers;
  queries.reserve(transcript.entries.size());
  answers.reserve(transcript.entries.size());
  for (const TranscriptEntry& entry : transcript.entries) {
    if (!entry.answered) continue;  // rejections carry no signal
    queries.push_back(entry.query);
    answers.push_back(entry.answer);
  }
  if (queries.empty()) {
    return Status::FailedPrecondition(
        "transcript has no answered queries to decode");
  }
  if (decoder == Decoder::kLp) {
    return recon::LpDecodeRecorded(transcript.n, queries, answers, lp_options);
  }
  return recon::LeastSquaresDecodeRecorded(transcript.n, queries, answers,
                                           lsq_iterations);
}

Status WriteTranscript(const Transcript& transcript, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(StrFormat("open %s failed", path.c_str()));
  }
  for (size_t i = 0; i < transcript.entries.size(); ++i) {
    const TranscriptEntry& entry = transcript.entries[i];
    const uint64_t client = transcript.ClientOf(i);
    std::fprintf(f, "%s\n", FormatQueryLine(client, entry.query).c_str());
    const Result<double> outcome =
        entry.answered ? Result<double>(entry.answer)
                       : Result<double>(Status(entry.error, "recorded"));
    std::fprintf(f, "%s\n", FormatAnswerLine(client, outcome).c_str());
  }
  if (std::fclose(f) != 0) {
    return Status::Internal(StrFormat("write %s failed", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace pso::service
