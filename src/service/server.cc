#include "service/server.h"

#if defined(__unix__) || defined(__APPLE__)
#define PSO_SERVICE_HAVE_SOCKETS 1
#else
#define PSO_SERVICE_HAVE_SOCKETS 0
#endif

#if PSO_SERVICE_HAVE_SOCKETS
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "service/wire.h"

namespace pso::service {

QueryServer::QueryServer(QueryService* service,
                         const QueryServerOptions& options)
    : service_(service), options_(options), group_(options.pool) {}

QueryServer::~QueryServer() {
#if PSO_SERVICE_HAVE_SOCKETS
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
#endif
}

#if PSO_SERVICE_HAVE_SOCKETS

namespace {

// Writes the whole string, retrying on EINTR. MSG_NOSIGNAL: a client
// that hung up must surface as a send error, not a SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t sent =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace

Status QueryServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket: %s", ErrnoMessage(errno).c_str()));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("bind: %s", ErrnoMessage(err).c_str()));
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("listen: %s", ErrnoMessage(err).c_str()));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("getsockname: %s", ErrnoMessage(err).c_str()));
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_.store(fd, std::memory_order_release);
  if (!options_.port_file.empty()) {
    const std::string tmp = options_.port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      return Status::Internal(
          StrFormat("open %s: %s", tmp.c_str(), ErrnoMessage(errno).c_str()));
    }
    std::fprintf(f, "%d\n", port_);
    std::fclose(f);
    if (std::rename(tmp.c_str(), options_.port_file.c_str()) != 0) {
      return Status::Internal(StrFormat("rename %s: %s",
                                        options_.port_file.c_str(),
                                        ErrnoMessage(errno).c_str()));
    }
  }
  PSO_LOG(INFO).Field("port", port_) << "query service listening";
  return Status::Ok();
}

void QueryServer::Run() {
  metrics::Counter& conn_counter = metrics::GetCounter("service.connections");
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      PSO_LOG(WARN).Field("errno", errno) << "accept failed";
      break;
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Receive timeout so an idle connection cannot pin its handler in
    // read() past shutdown: the handler wakes on EAGAIN, observes
    // stop_, and exits. Keeps RequestShutdown async-signal-safe — no
    // per-connection fd registry to lock from the signal handler.
    timeval tv{};
    tv.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    connections_.fetch_add(1, std::memory_order_relaxed);
    conn_counter.Add(1);
    group_.Submit([this, fd] { HandleConnection(fd); });
  }
  group_.Wait();
  PSO_LOG(INFO).Field("connections", connections())
      << "query service stopped";
}

void QueryServer::RequestShutdown() {
  // Async-signal-safe: atomic store + shutdown(2), both on the POSIX
  // safe list. The accept loop wakes with an error and observes stop_.
  stop_.store(true, std::memory_order_release);
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void QueryServer::HandleConnection(int fd) {
  PSO_TRACE_SPAN("service.connection");
  const size_t max_batch = service_->options().max_batch;
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired on an idle connection; only exit if a
        // shutdown has been requested, else keep waiting for the client.
        if (stop_.load(std::memory_order_acquire)) break;
        continue;
      }
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    buffer.append(chunk, static_cast<size_t>(got));
    // Peel off every complete line; a partial tail stays buffered.
    std::vector<std::string> ready;
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      ready.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    std::string out;
    size_t i = 0;
    while (i < ready.size()) {
      const std::string& line = ready[i];
      if (line == "INFO") {
        ServiceInfo info;
        info.n = service_->n();
        info.eps_per_query = service_->options().eps_per_query;
        info.client_budget_eps = service_->options().client_budget_eps;
        info.max_batch = max_batch;
        out += FormatInfoLine(info);
        out += '\n';
        ++i;
        continue;
      }
      Result<WireQuery> parsed = ParseQueryLine(line);
      if (!parsed.ok()) {
        out += FormatAnswerLine(0, Result<double>(parsed.status()));
        out += '\n';
        ++i;
        continue;
      }
      // Group consecutive already-buffered queries from the same client
      // into one batch — this is where pipelining pays off.
      const uint64_t client = parsed->client;
      std::vector<recon::SubsetQuery> batch;
      batch.push_back(std::move(parsed->query));
      size_t j = i + 1;
      while (j < ready.size() && batch.size() < max_batch) {
        Result<WireQuery> follow = ParseQueryLine(ready[j]);
        if (!follow.ok() || follow->client != client) break;
        batch.push_back(std::move(follow->query));
        ++j;
      }
      // Lock audit (see common/lock_rank.h): the handler holds no mutex
      // here, so AnswerBatch starts the ranked chain itself — budget
      // ledger, then metrics/trace/log — from the top.
      const std::vector<QueryOutcome> outcomes =
          service_->AnswerBatch(client, batch);
      for (const QueryOutcome& outcome : outcomes) {
        out += FormatAnswerLine(client, outcome);
        out += '\n';
      }
      i = j;
    }
    if (!out.empty() && !SendAll(fd, out)) alive = false;
  }
  ::close(fd);
}

#else  // !PSO_SERVICE_HAVE_SOCKETS

Status QueryServer::Start() {
  return Status::Unimplemented("sockets are unavailable on this platform");
}
void QueryServer::Run() {}
void QueryServer::RequestShutdown() {
  stop_.store(true, std::memory_order_release);
}
void QueryServer::HandleConnection(int) {}

#endif  // PSO_SERVICE_HAVE_SOCKETS

}  // namespace pso::service
