// The attacking client's TCP transport: one SocketTransport is one
// connection to a running `psoctl serve` on 127.0.0.1. Batches are
// pipelined — all Q lines are written in one send, then exactly one
// response line is read back per query — which is what lets the server
// group them into a single AnswerBatch call.

#ifndef PSO_SERVICE_CLIENT_H_
#define PSO_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/loadgen.h"
#include "service/wire.h"

namespace pso::service {

/// QueryTransport over a loopback TCP connection.
class SocketTransport final : public QueryTransport {
 public:
  /// Connects to 127.0.0.1:`port`. kUnimplemented on non-POSIX
  /// platforms, kInternal when the connection is refused.
  [[nodiscard]] static Result<std::unique_ptr<SocketTransport>> Connect(
      int port);

  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] Result<ServiceInfo> Info() override;
  [[nodiscard]] Result<std::vector<QueryOutcome>> IssueBatch(
      uint64_t client, const std::vector<recon::SubsetQuery>& queries) override;

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  /// Reads the next newline-terminated line (without the newline);
  /// kInternal on EOF or a read error.
  [[nodiscard]] Result<std::string> ReadLine();
  [[nodiscard]] Status WriteAll(const std::string& data);

  int fd_;
  std::string buffer_;
};

}  // namespace pso::service

#endif  // PSO_SERVICE_CLIENT_H_
