// The query service's newline-delimited wire protocol, shared by the
// server (server.h) and the attacking client (client.h) and unit-tested
// without sockets.
//
// Requests (one per line):
//   INFO                      — service parameters probe
//   Q <client> <bits>         — subset counting query; <bits> is the
//                               indicator vector as a 0/1 string of
//                               length n
// Responses (one per request line, in order):
//   I n=<n> eps=<g> budget=<g> batch=<zu>
//   A <client> <value>        — released answer (%.17g round-trips the
//                               double exactly, so a recorded transcript
//                               replays bit-identically)
//   E <client> <code> <msg>   — refused query; <code> is the StatusCode
//                               name (ResourceExhausted for an
//                               over-budget client, InvalidArgument for
//                               a malformed query)
//
// Clients may pipeline: the server groups consecutive buffered Q lines
// (up to the service's max_batch) into one AnswerBatch call and writes
// the responses back in request order.

#ifndef PSO_SERVICE_WIRE_H_
#define PSO_SERVICE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "recon/oracle.h"

namespace pso::service {

/// Parameters the INFO probe reports.
struct ServiceInfo {
  size_t n = 0;
  double eps_per_query = 0.0;
  double client_budget_eps = 0.0;
  size_t max_batch = 0;
};

/// A parsed `Q` request line.
struct WireQuery {
  uint64_t client = 0;
  recon::SubsetQuery query;
};

/// Formats a query request line (no trailing newline).
std::string FormatQueryLine(uint64_t client, const recon::SubsetQuery& query);

/// Parses a `Q` line. kInvalidArgument on anything malformed.
[[nodiscard]] Result<WireQuery> ParseQueryLine(const std::string& line);

/// Formats the response line for one query outcome (no trailing newline):
/// an `A` line for an OK value, an `E` line otherwise.
std::string FormatAnswerLine(uint64_t client, const Result<double>& outcome);

/// Parses an `A`/`E` response line into the outcome it encodes (the `E`
/// code is mapped back to a Status of the same code). kInvalidArgument —
/// as the PARSE result — on a line that is neither.
[[nodiscard]] Result<Result<double>> ParseAnswerLine(const std::string& line);

/// Formats the `I` response to an INFO probe (no trailing newline).
std::string FormatInfoLine(const ServiceInfo& info);

/// The strerror-style message for `err` as an owned string. Unlike
/// std::strerror (static buffer, flagged by concurrency-mt-unsafe) this
/// is safe from concurrent transport threads.
std::string ErrnoMessage(int err);

/// Parses an `I` line.
[[nodiscard]] Result<ServiceInfo> ParseInfoLine(const std::string& line);

}  // namespace pso::service

#endif  // PSO_SERVICE_WIRE_H_
