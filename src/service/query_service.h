// A long-running statistical-query service over a private bit-vector
// dataset — the system side of the Cohen–Nissim "Linear Program
// Reconstruction in Practice" loop.
//
// The service answers subset counting queries (recon::SubsetQuery) about
// a fixed secret x in {0,1}^n. Per-client DP budget accounting runs
// through a dp::BudgetLedger: when `eps_per_query` > 0 every answered
// query charges its epsilon against the issuing client's cap and the
// released value carries Laplace(1/eps) noise; an over-budget client is
// refused with kResourceExhausted before any answer is computed. With
// `eps_per_query` == 0 answers are exact and unmetered — the blatantly
// non-private baseline the reconstruction attack destroys.
//
// Determinism contract (the transcript-replay tests pin this): the noise
// on a client's k-th ANSWERED query is drawn from the counter-based
// stream Rng::StreamAt(client_seed, k), where client_seed is a pure
// function of (noise_seed, client id) and k is the ordinal the budget
// ledger assigned under its mutex. Answers therefore depend only on
// (secret, noise_seed, client id, per-client query order) — never on the
// thread count, connection interleaving, or wall clock — so the same
// load replays bit-identically at any parallelism.
//
// Thread safety: Answer/AnswerBatch are safe to call concurrently for
// any mix of clients. AsyncBatchExecutor runs batches on a ThreadPool
// via common/parallel's TaskGroup and is the in-process analogue of the
// socket server's per-connection handlers.

#ifndef PSO_SERVICE_QUERY_SERVICE_H_
#define PSO_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/result.h"
#include "dp/budget.h"
#include "recon/oracle.h"

namespace pso::service {

/// Tuning knobs for one QueryService instance.
struct QueryServiceOptions {
  /// Epsilon charged (and Laplace(1/eps) noise added) per answered
  /// query; 0 = exact answers, no charging.
  double eps_per_query = 0.0;
  /// Per-client cumulative epsilon cap (<= 0 = unlimited). Only charged
  /// when eps_per_query > 0.
  double client_budget_eps = 0.0;
  /// Master seed for the per-client noise streams.
  uint64_t noise_seed = 1;
  /// Upper bound on the queries one wire-level batch may carry; the
  /// socket server groups at most this many pipelined requests per
  /// AnswerBatch call.
  size_t max_batch = 64;
};

/// One answered-or-rejected query as the service released it.
using QueryOutcome = Result<double>;

/// Counting-query service over a secret bit vector.
class QueryService {
 public:
  /// Takes ownership of the secret dataset.
  QueryService(std::vector<uint8_t> secret, const QueryServiceOptions& options);

  size_t n() const { return secret_.size(); }
  const QueryServiceOptions& options() const { return options_; }
  const dp::BudgetLedger& ledger() const { return ledger_; }

  /// The private dataset — exposed for experiment scoring only (the
  /// attacker never calls this; the loadgen regenerates it from the
  /// shared seed to measure reconstruction accuracy).
  const std::vector<uint8_t>& secret() const { return secret_; }

  /// Answers one query for `client`: charges the ledger, computes the
  /// subset sum, and (in DP mode) adds Laplace(1/eps) noise from the
  /// client's counter-based stream. kInvalidArgument on a query of the
  /// wrong length; kResourceExhausted when the client is over budget.
  QueryOutcome Answer(uint64_t client, const recon::SubsetQuery& query);

  /// Answers a batch of queries for one client, in order. Each query is
  /// charged individually, so a batch straddling the budget boundary
  /// gets answers up to the cap and kResourceExhausted afterwards.
  std::vector<QueryOutcome> AnswerBatch(
      uint64_t client, const std::vector<recon::SubsetQuery>& queries);

  /// Queries answered / rejected so far (ledger totals; in exact mode
  /// rejections are always 0).
  uint64_t queries_answered() const { return ledger_.TotalAnswered(); }
  uint64_t queries_rejected() const { return ledger_.TotalRejected(); }

  /// The pure per-client noise-stream seed derivation (exposed so tests
  /// can predict released values exactly).
  static uint64_t ClientSeed(uint64_t noise_seed, uint64_t client);

 private:
  const std::vector<uint8_t> secret_;
  const QueryServiceOptions options_;
  dp::BudgetLedger ledger_;
  // Hot-path metric handles, resolved once (GetCounter locks per lookup).
  metrics::Counter& queries_counter_;
  metrics::Counter& rejections_counter_;
  metrics::Timer& answer_timer_;
  metrics::Histogram& answer_hist_;
  metrics::Histogram& batch_size_hist_;
};

/// Runs request batches for many clients asynchronously on a ThreadPool
/// — the service's async executor. Submit() enqueues one (client, batch)
/// unit of work; `done` (optional) runs on the worker with the batch's
/// outcomes. Drain() blocks until every submitted batch has completed.
/// With a null pool everything runs inline on the calling thread, in
/// submission order — the exact serial behavior.
class AsyncBatchExecutor {
 public:
  using BatchCallback = std::function<void(std::vector<QueryOutcome>)>;

  AsyncBatchExecutor(QueryService* service, ThreadPool* pool)
      : service_(service), group_(pool) {}

  /// Executes `queries` for `client` on a worker; `done` may be empty.
  void Submit(uint64_t client, std::vector<recon::SubsetQuery> queries,
              BatchCallback done = nullptr);

  /// Blocks until all submitted batches have finished.
  void Drain() { group_.Wait(); }

 private:
  QueryService* service_;
  TaskGroup group_;
};

}  // namespace pso::service

#endif  // PSO_SERVICE_QUERY_SERVICE_H_
