// Loopback TCP front-end for QueryService: the live daemon `psoctl
// serve` runs and the CI service-smoke lane attacks.
//
// One QueryServer owns a listening socket on 127.0.0.1 and an accept
// loop (Run(), on the caller's thread). Each accepted connection is
// handled as one task on the service ThreadPool via TaskGroup — the
// async executor — or inline when no pool was given. A connection
// handler reads newline-delimited requests (wire.h), groups consecutive
// pipelined queries from the same client into batches of at most
// options().max_batch, answers them through QueryService::AnswerBatch,
// and writes the responses back in request order.
//
// Shutdown: RequestShutdown() is async-signal-safe (an atomic store plus
// shutdown(2) on the listening socket), so `psoctl serve` calls it
// straight from its SIGTERM/SIGINT handler. The accept loop then exits
// and Run() drains in-flight connection handlers before returning —
// clean shutdown means every accepted client got its responses.
//
// POSIX-only: on platforms without BSD sockets Start() returns
// kUnimplemented (the library still builds; only the daemon is gated).

#ifndef PSO_SERVICE_SERVER_H_
#define PSO_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/parallel.h"
#include "common/status.h"
#include "service/query_service.h"

namespace pso::service {

/// Configuration for one QueryServer.
struct QueryServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  int port = 0;
  /// When non-empty, the bound port is published to this file (written
  /// via rename, so a poller never sees a partial write).
  std::string port_file;
  /// Worker pool for connection handlers (null = handle serially on the
  /// accept thread).
  ThreadPool* pool = nullptr;
};

/// Accept loop + connection handlers around one QueryService.
class QueryServer {
 public:
  QueryServer(QueryService* service, const QueryServerOptions& options);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds and listens; publishes the port file. kUnimplemented on
  /// non-POSIX platforms, kInternal on socket errors.
  [[nodiscard]] Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Runs the accept loop on the calling thread until RequestShutdown,
  /// then drains in-flight connection handlers. Requires a successful
  /// Start.
  void Run();

  /// Stops the accept loop. Async-signal-safe: callable from a signal
  /// handler.
  void RequestShutdown();

  /// Connections accepted so far.
  uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void HandleConnection(int fd);

  QueryService* service_;
  QueryServerOptions options_;
  TaskGroup group_;
  int port_ = 0;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_{0};
};

}  // namespace pso::service

#endif  // PSO_SERVICE_SERVER_H_
