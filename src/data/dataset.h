// Dataset: an ordered collection of records sharing a schema.
//
// This is the "x = (x_1, ..., x_n) in X^n" of the paper. Order matters only
// for bookkeeping; the attacks never isolate by position (Definition 2.1
// forbids it), but the experiment harnesses need stable indices to score
// reconstruction accuracy.

#ifndef PSO_DATA_DATASET_H_
#define PSO_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace pso {

/// A row-oriented table of records with a shared schema.
class Dataset {
 public:
  /// Creates an empty dataset over `schema`.
  explicit Dataset(Schema schema);

  /// Creates a dataset from `records` (each validated against `schema`).
  Dataset(Schema schema, std::vector<Record> records);

  const Schema& schema() const { return schema_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& record(size_t i) const;
  const std::vector<Record>& records() const { return records_; }

  /// Appends a record; aborts if it does not match the schema.
  void Append(Record record);

  /// Value of attribute `attr` in row `row`.
  int64_t At(size_t row, size_t attr) const;

  /// Returns a dataset containing only the given attribute columns,
  /// in the given order.
  Dataset Project(const std::vector<size_t>& attr_indices) const;

  /// Returns the rows whose index is in `rows`, in the given order.
  Dataset Select(const std::vector<size_t>& rows) const;

  /// Number of records exactly equal to `target`.
  size_t CountEqual(const Record& target) const;

  /// Groups rows by full-record equality; returns groups of row indices.
  /// Used for equivalence-class analysis and uniqueness statistics.
  std::vector<std::vector<size_t>> GroupIdentical() const;

  /// Fraction of records that appear exactly once (population uniqueness).
  double FractionUnique() const;

  /// Renders the first `max_rows` rows for debugging/examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace pso

#endif  // PSO_DATA_DATASET_H_
