// CSV import/export for datasets (decoded through the schema's labels).

#ifndef PSO_DATA_CSV_H_
#define PSO_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace pso {

/// Serializes `dataset` as CSV with a header row of attribute names.
std::string DatasetToCsv(const Dataset& dataset);

/// Parses CSV text (header row required, columns matched to `schema` by
/// name) into a dataset. LF, CRLF, and lone-CR line endings are all
/// accepted. The dialect is quote-free: a line containing '"' (RFC 4180
/// quoted cells, e.g. embedded commas) fails with InvalidArgument rather
/// than mis-splitting. Also fails on unknown columns, missing columns, or
/// out-of-domain values.
[[nodiscard]] Result<Dataset> DatasetFromCsv(const Schema& schema, const std::string& csv);

/// Writes `dataset` to `path`.
[[nodiscard]] Status WriteCsvFile(const Dataset& dataset, const std::string& path);

/// Reads a dataset from the CSV file at `path`.
[[nodiscard]] Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path);

}  // namespace pso

#endif  // PSO_DATA_CSV_H_
