#include "data/schema.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/hash.h"
#include "common/str_util.h"

namespace pso {

Attribute Attribute::Categorical(std::string name,
                                 std::vector<std::string> labels) {
  PSO_CHECK_MSG(!labels.empty(), "categorical attribute needs labels");
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kCategorical;
  a.labels_ = std::move(labels);
  a.min_value_ = 0;
  a.max_value_ = static_cast<int64_t>(a.labels_.size()) - 1;
  return a;
}

Attribute Attribute::Integer(std::string name, int64_t min_value,
                             int64_t max_value) {
  PSO_CHECK_MSG(min_value <= max_value, "empty integer domain");
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kInteger;
  a.min_value_ = min_value;
  a.max_value_ = max_value;
  return a;
}

int64_t Attribute::DomainSize() const { return max_value_ - min_value_ + 1; }

int64_t Attribute::MinValue() const { return min_value_; }

int64_t Attribute::MaxValue() const { return max_value_; }

bool Attribute::IsValid(int64_t code) const {
  return code >= min_value_ && code <= max_value_;
}

std::string Attribute::ValueToString(int64_t code) const {
  if (type_ == AttributeType::kCategorical) {
    if (!IsValid(code)) return StrFormat("<invalid:%lld>", (long long)code);
    return labels_[static_cast<size_t>(code)];
  }
  return StrFormat("%lld", (long long)code);
}

Result<int64_t> Attribute::ValueFromString(const std::string& text) const {
  if (type_ == AttributeType::kCategorical) {
    for (size_t i = 0; i < labels_.size(); ++i) {
      if (labels_[i] == text) return static_cast<int64_t>(i);
    }
    return Status::NotFound("no label '" + text + "' in attribute " + name_);
  }
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  if (!IsValid(v)) {
    return Status::OutOfRange(StrFormat("%lld outside [%lld, %lld] for %s",
                                        v, (long long)min_value_,
                                        (long long)max_value_,
                                        name_.c_str()));
  }
  return static_cast<int64_t>(v);
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    auto [it, inserted] = index_.emplace(attributes_[i].name(), i);
    PSO_CHECK_MSG(inserted, "duplicate attribute name");
  }
}

const Attribute& Schema::attribute(size_t index) const {
  PSO_CHECK(index < attributes_.size());
  return attributes_[index];
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return it->second;
}

bool Schema::IsValidRecord(const Record& record) const {
  if (record.size() != attributes_.size()) return false;
  for (size_t i = 0; i < record.size(); ++i) {
    if (!attributes_[i].IsValid(record[i])) return false;
  }
  return true;
}

std::string Schema::RecordToString(const Record& record) const {
  std::vector<std::string> parts;
  parts.reserve(record.size());
  for (size_t i = 0; i < record.size() && i < attributes_.size(); ++i) {
    parts.push_back(attributes_[i].name() + "=" +
                    attributes_[i].ValueToString(record[i]));
  }
  return Join(parts, ", ");
}

uint64_t Schema::RecordKey(const Record& record) const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (int64_t v : record) h = HashCombine(h, static_cast<uint64_t>(v));
  return h;
}

double Schema::Log2DomainSize() const {
  double total = 0.0;
  for (const auto& a : attributes_) {
    total += std::log2(static_cast<double>(a.DomainSize()));
  }
  return total;
}

}  // namespace pso
