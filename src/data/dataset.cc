#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace pso {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {}

Dataset::Dataset(Schema schema, std::vector<Record> records)
    : schema_(std::move(schema)), records_(std::move(records)) {
  for (const Record& r : records_) {
    PSO_CHECK_MSG(schema_.IsValidRecord(r), "record does not match schema");
  }
}

const Record& Dataset::record(size_t i) const {
  PSO_CHECK(i < records_.size());
  return records_[i];
}

void Dataset::Append(Record record) {
  PSO_CHECK_MSG(schema_.IsValidRecord(record), "record does not match schema");
  records_.push_back(std::move(record));
}

int64_t Dataset::At(size_t row, size_t attr) const {
  PSO_CHECK(row < records_.size());
  PSO_CHECK(attr < schema_.NumAttributes());
  return records_[row][attr];
}

Dataset Dataset::Project(const std::vector<size_t>& attr_indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(attr_indices.size());
  for (size_t idx : attr_indices) attrs.push_back(schema_.attribute(idx));
  Dataset out((Schema(std::move(attrs))));
  for (const Record& r : records_) {
    Record projected;
    projected.reserve(attr_indices.size());
    for (size_t idx : attr_indices) projected.push_back(r[idx]);
    out.Append(std::move(projected));
  }
  return out;
}

Dataset Dataset::Select(const std::vector<size_t>& rows) const {
  Dataset out(schema_);
  for (size_t row : rows) {
    PSO_CHECK(row < records_.size());
    out.Append(records_[row]);
  }
  return out;
}

size_t Dataset::CountEqual(const Record& target) const {
  size_t count = 0;
  for (const Record& r : records_) {
    if (r == target) ++count;
  }
  return count;
}

std::vector<std::vector<size_t>> Dataset::GroupIdentical() const {
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < records_.size(); ++i) {
    buckets[schema_.RecordKey(records_[i])].push_back(i);
  }
  // Drain buckets in first-row order, not hash-iteration order: the
  // group sequence feeds reconstruction/linkage output, so it must be a
  // pure function of the records (pso_lint rule `unordered-iteration`).
  std::vector<uint64_t> keys_by_first_row;
  keys_by_first_row.reserve(buckets.size());
  {
    std::vector<std::pair<size_t, uint64_t>> order;
    order.reserve(buckets.size());
    for (auto& [key, rows] : buckets) {  // pso-lint: allow(unordered-iteration)
      order.emplace_back(rows.front(), key);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [row, key] : order) keys_by_first_row.push_back(key);
  }

  std::vector<std::vector<size_t>> groups;
  groups.reserve(buckets.size());
  for (uint64_t key : keys_by_first_row) {
    std::vector<size_t>& rows = buckets[key];
    // Hash buckets may (very rarely) merge distinct records; split exactly.
    while (!rows.empty()) {
      std::vector<size_t> group;
      const Record& rep = records_[rows.front()];
      std::vector<size_t> rest;
      for (size_t row : rows) {
        if (records_[row] == rep) {
          group.push_back(row);
        } else {
          rest.push_back(row);
        }
      }
      rows = std::move(rest);
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

double Dataset::FractionUnique() const {
  if (records_.empty()) return 0.0;
  size_t unique = 0;
  for (const auto& g : GroupIdentical()) {
    if (g.size() == 1) ++unique;
  }
  return static_cast<double>(unique) / static_cast<double>(records_.size());
}

std::string Dataset::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < records_.size() && i < max_rows; ++i) {
    out += schema_.RecordToString(records_[i]);
    out += "\n";
  }
  if (records_.size() > max_rows) out += "...\n";
  return out;
}

}  // namespace pso
