#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace pso {

std::string DatasetToCsv(const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  std::string out;
  std::vector<std::string> headers;
  headers.reserve(schema.NumAttributes());
  for (size_t i = 0; i < schema.NumAttributes(); ++i) {
    headers.push_back(schema.attribute(i).name());
  }
  out += Join(headers, ",");
  out += "\n";
  for (size_t r = 0; r < dataset.size(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(schema.NumAttributes());
    for (size_t c = 0; c < schema.NumAttributes(); ++c) {
      cells.push_back(schema.attribute(c).ValueToString(dataset.At(r, c)));
    }
    out += Join(cells, ",");
    out += "\n";
  }
  return out;
}

namespace {

// Splits `csv` into record lines, accepting LF, CRLF, and lone-CR line
// endings uniformly (a CRLF file must not leave '\r' glued onto the last
// cell of every row).
std::vector<std::string> SplitCsvLines(const std::string& csv) {
  std::vector<std::string> lines;
  std::string current;
  for (size_t i = 0; i < csv.size(); ++i) {
    char c = csv[i];
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      lines.push_back(std::move(current));
      current.clear();
      if (i + 1 < csv.size() && csv[i + 1] == '\n') ++i;  // CRLF pair
    } else {
      current += c;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

// Splits one record line into cells. The dialect is deliberately minimal
// (no quoting): a '"' anywhere means the producer expected RFC 4180
// quoted-cell semantics — splitting such a line on ',' would silently
// shear a quoted cell apart, so reject it loudly instead.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                size_t line_number) {
  if (line.find('"') != std::string::npos) {
    return Status::InvalidArgument(StrFormat(
        "line %zu contains a double quote: quoted cells (e.g. embedded "
        "commas) are not supported by this CSV dialect",
        line_number));
  }
  return Split(line, ',');
}

}  // namespace

Result<Dataset> DatasetFromCsv(const Schema& schema, const std::string& csv) {
  std::vector<std::string> lines = SplitCsvLines(csv);
  if (lines.empty() || Trim(lines[0]).empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  Result<std::vector<std::string>> header_cells =
      SplitCsvRecord(Trim(lines[0]), 1);
  if (!header_cells.ok()) return header_cells.status();
  std::vector<std::string> header = std::move(header_cells).value();
  if (header.size() != schema.NumAttributes()) {
    return Status::InvalidArgument(
        StrFormat("CSV has %zu columns, schema has %zu", header.size(),
                  schema.NumAttributes()));
  }
  // Map CSV column position -> schema attribute index.
  std::vector<size_t> col_to_attr(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    Result<size_t> idx = schema.IndexOf(Trim(header[c]));
    if (!idx.ok()) return idx.status();
    col_to_attr[c] = *idx;
  }

  Dataset out{schema};
  for (size_t li = 1; li < lines.size(); ++li) {
    std::string line = Trim(lines[li]);
    if (line.empty()) continue;
    Result<std::vector<std::string>> split = SplitCsvRecord(line, li + 1);
    if (!split.ok()) return split.status();
    std::vector<std::string> cells = std::move(split).value();
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu cells, expected %zu", li + 1,
                    cells.size(), header.size()));
    }
    Record record(schema.NumAttributes());
    for (size_t c = 0; c < cells.size(); ++c) {
      const Attribute& attr = schema.attribute(col_to_attr[c]);
      Result<int64_t> v = attr.ValueFromString(Trim(cells[c]));
      if (!v.ok()) return v.status();
      record[col_to_attr[c]] = *v;
    }
    out.Append(std::move(record));
  }
  return out;
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open '" + path + "' for writing");
  f << DatasetToCsv(dataset);
  if (!f) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return DatasetFromCsv(schema, ss.str());
}

}  // namespace pso
