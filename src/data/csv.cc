#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace pso {

std::string DatasetToCsv(const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  std::string out;
  std::vector<std::string> headers;
  headers.reserve(schema.NumAttributes());
  for (size_t i = 0; i < schema.NumAttributes(); ++i) {
    headers.push_back(schema.attribute(i).name());
  }
  out += Join(headers, ",");
  out += "\n";
  for (size_t r = 0; r < dataset.size(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(schema.NumAttributes());
    for (size_t c = 0; c < schema.NumAttributes(); ++c) {
      cells.push_back(schema.attribute(c).ValueToString(dataset.At(r, c)));
    }
    out += Join(cells, ",");
    out += "\n";
  }
  return out;
}

Result<Dataset> DatasetFromCsv(const Schema& schema, const std::string& csv) {
  std::vector<std::string> lines = Split(csv, '\n');
  if (lines.empty() || Trim(lines[0]).empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  std::vector<std::string> header = Split(Trim(lines[0]), ',');
  if (header.size() != schema.NumAttributes()) {
    return Status::InvalidArgument(
        StrFormat("CSV has %zu columns, schema has %zu", header.size(),
                  schema.NumAttributes()));
  }
  // Map CSV column position -> schema attribute index.
  std::vector<size_t> col_to_attr(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    Result<size_t> idx = schema.IndexOf(Trim(header[c]));
    if (!idx.ok()) return idx.status();
    col_to_attr[c] = *idx;
  }

  Dataset out{schema};
  for (size_t li = 1; li < lines.size(); ++li) {
    std::string line = Trim(lines[li]);
    if (line.empty()) continue;
    std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu cells, expected %zu", li + 1,
                    cells.size(), header.size()));
    }
    Record record(schema.NumAttributes());
    for (size_t c = 0; c < cells.size(); ++c) {
      const Attribute& attr = schema.attribute(col_to_attr[c]);
      Result<int64_t> v = attr.ValueFromString(Trim(cells[c]));
      if (!v.ok()) return v.status();
      record[col_to_attr[c]] = *v;
    }
    out.Append(std::move(record));
  }
  return out;
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open '" + path + "' for writing");
  f << DatasetToCsv(dataset);
  if (!f) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return DatasetFromCsv(schema, ss.str());
}

}  // namespace pso
