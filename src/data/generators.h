// Prebuilt universes (schema + distribution) for the paper's scenarios.
//
// Each generator returns the schema and product distribution that a paper
// experiment samples from:
//   * Birthday universe    — the 365-day example of Section 2.2.
//   * GIC medical universe — Sweeney's Massachusetts GIC scenario (Section
//     1): ZIP, birth date, sex, plus clinical attributes. Synthetic stand-in
//     for the real GIC data (see DESIGN.md substitutions).
//   * Census person universe — the per-person schema tabulated by the 2010
//     Decennial Census reconstruction narrative: age, sex, race, ethnicity.
//   * Binary trait universe — x in {0,1}^n for Dinur–Nissim reconstruction.

#ifndef PSO_DATA_GENERATORS_H_
#define PSO_DATA_GENERATORS_H_

#include <cstdint>

#include "data/distribution.h"
#include "data/schema.h"

namespace pso {

/// A schema together with the data-generating distribution over it.
struct Universe {
  Schema schema;
  ProductDistribution distribution;
};

/// 365 equally likely birthdays, one attribute "birthday" in [0, 365).
Universe MakeBirthdayUniverse();

/// GIC-style medical records. Attributes:
///   zip (integer, `num_zips` codes with Zipf(1.1) popularity),
///   birth_year (integer, 1910..2004, census-shaped),
///   birth_day (integer 0..365, uniform day-of-year),
///   sex (categorical F/M),
///   diagnosis (categorical, 40 ICD-style codes, Zipf(1.05)),
///   blood_type (8 categories, realistic frequencies),
///   marital_status (5 categories),
///   admission_month (1..12).
/// The product of the quasi-identifier domains far exceeds any realistic n,
/// so equivalence-class predicates have negligible weight (Theorem 2.10's
/// precondition).
Universe MakeGicMedicalUniverse(int64_t num_zips = 200);

/// Census person schema: age 0..115 (piecewise census-shaped), sex,
/// race (6 OMB categories, skewed), hispanic (2, ~16%).
Universe MakeCensusPersonUniverse();

/// Single binary attribute "trait" with Pr[1] = p.
Universe MakeBinaryTraitUniverse(double p = 0.5);

/// High-dimensional sparse-ratings universe for the Netflix-style linkage
/// experiment: `num_movies` binary "rated_i" attributes, each 1 with
/// probability `density` (independent). A handful of rated movies makes a
/// subscriber unique, mirroring Narayanan–Shmatikov.
Universe MakeRatingsUniverse(int64_t num_movies = 64, double density = 0.08);

/// Genotype-like universe for the Homer-style membership attack: `num_snps`
/// binary allele attributes with independent frequencies drawn uniformly
/// from [min_freq, max_freq] (seeded by `freq_seed` so the reference
/// frequencies are reproducible public knowledge).
Universe MakeGenotypeUniverse(int64_t num_snps, uint64_t freq_seed,
                              double min_freq = 0.05, double max_freq = 0.5);

}  // namespace pso

#endif  // PSO_DATA_GENERATORS_H_
