#include "data/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pso {

Dataset Distribution::SampleDataset(size_t n, Rng& rng) const {
  Dataset out(schema());
  for (size_t i = 0; i < n; ++i) out.Append(Sample(rng));
  return out;
}

Marginal::Marginal(int64_t min_value, std::vector<double> weights)
    : min_value_(min_value) {
  PSO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PSO_CHECK(w >= 0.0);
    total += w;
  }
  PSO_CHECK(total > 0.0);
  probs_.reserve(weights.size());
  for (double w : weights) probs_.push_back(w / total);
  cumulative_.resize(probs_.size());
  double acc = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    cumulative_[i] = acc;
  }
  sampler_ = std::make_shared<const DiscreteSampler>(probs_);
}

Marginal Marginal::Uniform(int64_t min_value, int64_t max_value) {
  PSO_CHECK(min_value <= max_value);
  size_t count = static_cast<size_t>(max_value - min_value + 1);
  return Marginal(min_value, std::vector<double>(count, 1.0));
}

Marginal Marginal::Zipf(int64_t min_value, int64_t count, double s) {
  PSO_CHECK(count > 0);
  std::vector<double> w(static_cast<size_t>(count));
  for (int64_t r = 0; r < count; ++r) {
    w[static_cast<size_t>(r)] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  return Marginal(min_value, std::move(w));
}

int64_t Marginal::Sample(Rng& rng) const {
  return min_value_ + static_cast<int64_t>(sampler_->Sample(rng));
}

double Marginal::Probability(int64_t v) const {
  int64_t idx = v - min_value_;
  if (idx < 0 || idx >= static_cast<int64_t>(probs_.size())) return 0.0;
  return probs_[static_cast<size_t>(idx)];
}

double Marginal::MassInRange(int64_t lo, int64_t hi) const {
  if (hi < lo) return 0.0;
  int64_t a = std::max(lo, min_value_) - min_value_;
  int64_t b = std::min(hi, max_value()) - min_value_;
  if (b < a) return 0.0;
  double upper = cumulative_[static_cast<size_t>(b)];
  double lower = (a == 0) ? 0.0 : cumulative_[static_cast<size_t>(a - 1)];
  return upper - lower;
}

double Marginal::MaxProbability() const {
  return *std::max_element(probs_.begin(), probs_.end());
}

ProductDistribution::ProductDistribution(Schema schema,
                                         std::vector<Marginal> marginals)
    : schema_(std::move(schema)), marginals_(std::move(marginals)) {
  PSO_CHECK(marginals_.size() == schema_.NumAttributes());
  for (size_t i = 0; i < marginals_.size(); ++i) {
    const Attribute& a = schema_.attribute(i);
    PSO_CHECK_MSG(marginals_[i].min_value() >= a.MinValue() &&
                      marginals_[i].max_value() <= a.MaxValue(),
                  "marginal support exceeds attribute domain");
  }
}

ProductDistribution ProductDistribution::UniformOver(const Schema& schema) {
  std::vector<Marginal> ms;
  ms.reserve(schema.NumAttributes());
  for (size_t i = 0; i < schema.NumAttributes(); ++i) {
    const Attribute& a = schema.attribute(i);
    ms.push_back(Marginal::Uniform(a.MinValue(), a.MaxValue()));
  }
  return ProductDistribution(schema, std::move(ms));
}

Record ProductDistribution::Sample(Rng& rng) const {
  Record r;
  r.reserve(marginals_.size());
  for (const Marginal& m : marginals_) r.push_back(m.Sample(rng));
  return r;
}

double ProductDistribution::RecordProbability(const Record& record) const {
  if (record.size() != marginals_.size()) return 0.0;
  double p = 1.0;
  for (size_t i = 0; i < marginals_.size(); ++i) {
    p *= marginals_[i].Probability(record[i]);
    if (p == 0.0) return 0.0;
  }
  return p;
}

double ProductDistribution::MinEntropyBits() const {
  double bits = 0.0;
  for (const Marginal& m : marginals_) {
    bits += -std::log2(m.MaxProbability());
  }
  return bits;
}

const Marginal& ProductDistribution::marginal(size_t attr) const {
  PSO_CHECK(attr < marginals_.size());
  return marginals_[attr];
}

EmpiricalDistribution::EmpiricalDistribution(Dataset reference)
    : reference_(std::move(reference)) {
  PSO_CHECK_MSG(!reference_.empty(), "empty reference dataset");
}

Record EmpiricalDistribution::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(rng.UniformUint64(reference_.size()));
  return reference_.record(i);
}

double EmpiricalDistribution::RecordProbability(const Record& record) const {
  size_t count = reference_.CountEqual(record);
  return static_cast<double>(count) / static_cast<double>(reference_.size());
}

}  // namespace pso
