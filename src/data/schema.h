// Schema: typed attribute metadata for micro-data datasets.
//
// All attribute values are stored as int64_t codes. Categorical attributes
// carry label strings (decoded for display); integer attributes carry an
// inclusive [min, max] range. This encoding keeps records flat and fast for
// the statistical attacks while retaining human-readable output.

#ifndef PSO_DATA_SCHEMA_H_
#define PSO_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace pso {

/// A single record: one encoded value per schema attribute.
using Record = std::vector<int64_t>;

/// Kind of an attribute's domain.
enum class AttributeType {
  kCategorical,  ///< Finite labelled categories; codes are [0, labels.size()).
  kInteger,      ///< Integer range [min_value, max_value], inclusive.
};

/// Metadata for one attribute.
class Attribute {
 public:
  /// Creates a categorical attribute with the given labels (codes are the
  /// label indices).
  static Attribute Categorical(std::string name,
                               std::vector<std::string> labels);

  /// Creates an integer attribute over [min_value, max_value].
  static Attribute Integer(std::string name, int64_t min_value,
                           int64_t max_value);

  const std::string& name() const { return name_; }
  AttributeType type() const { return type_; }

  /// Number of distinct values in the domain.
  int64_t DomainSize() const;

  /// Smallest/largest valid code.
  int64_t MinValue() const;
  int64_t MaxValue() const;

  /// True if `code` is a valid value for this attribute.
  bool IsValid(int64_t code) const;

  /// Human-readable rendering of `code` (label or number).
  std::string ValueToString(int64_t code) const;

  /// Inverse of ValueToString for categorical labels / integer parsing.
  [[nodiscard]] Result<int64_t> ValueFromString(const std::string& text) const;

  /// Labels (empty for integer attributes).
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  Attribute() = default;

  std::string name_;
  AttributeType type_ = AttributeType::kInteger;
  std::vector<std::string> labels_;
  int64_t min_value_ = 0;
  int64_t max_value_ = 0;
};

/// An ordered list of attributes with name lookup.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from `attributes`; names must be unique.
  explicit Schema(std::vector<Attribute> attributes);

  size_t NumAttributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t index) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  [[nodiscard]] Result<size_t> IndexOf(const std::string& name) const;

  /// True if `record` has the right arity and every value is in-domain.
  bool IsValidRecord(const Record& record) const;

  /// Renders a record as "name=value, ...".
  std::string RecordToString(const Record& record) const;

  /// Packs `record` into a 64-bit key by hash-combining all attribute
  /// values. Distinct records collide with probability ~2^-64; used as the
  /// input to universal-hash predicates.
  uint64_t RecordKey(const Record& record) const;

  /// Total log2 domain size (sum of per-attribute log2 sizes).
  double Log2DomainSize() const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace pso

#endif  // PSO_DATA_SCHEMA_H_
