#include "data/generators.h"

#include "common/check.h"
#include "common/str_util.h"

namespace pso {

namespace {

// Rough single-year-of-age weights shaped like the US pyramid: near-flat
// through middle age with a taper after 65 and a tail to 115.
std::vector<double> CensusAgeWeights(int64_t max_age) {
  std::vector<double> w(static_cast<size_t>(max_age) + 1);
  for (int64_t a = 0; a <= max_age; ++a) {
    double weight;
    if (a < 20) {
      weight = 1.25;
    } else if (a < 55) {
      weight = 1.35;
    } else if (a < 65) {
      weight = 1.2;
    } else if (a < 75) {
      weight = 0.85;
    } else if (a < 85) {
      weight = 0.45;
    } else if (a < 100) {
      weight = 0.12;
    } else {
      weight = 0.005;
    }
    w[static_cast<size_t>(a)] = weight;
  }
  return w;
}

}  // namespace

Universe MakeBirthdayUniverse() {
  Schema schema({Attribute::Integer("birthday", 0, 364)});
  return {schema, ProductDistribution::UniformOver(schema)};
}

Universe MakeGicMedicalUniverse(int64_t num_zips) {
  PSO_CHECK(num_zips >= 2);
  std::vector<std::string> diagnoses;
  for (int i = 0; i < 40; ++i) diagnoses.push_back(StrFormat("ICD%02d", i));

  Schema schema({
      Attribute::Integer("zip", 0, num_zips - 1),
      Attribute::Integer("birth_year", 1910, 2004),
      Attribute::Integer("birth_day", 0, 365),
      Attribute::Categorical("sex", {"F", "M"}),
      Attribute::Categorical("diagnosis", std::move(diagnoses)),
      Attribute::Categorical(
          "blood_type", {"O+", "A+", "B+", "AB+", "O-", "A-", "B-", "AB-"}),
      Attribute::Categorical(
          "marital_status",
          {"single", "married", "divorced", "widowed", "separated"}),
      Attribute::Integer("admission_month", 1, 12),
  });

  std::vector<double> year_weights(95);
  for (size_t i = 0; i < year_weights.size(); ++i) {
    // More patients among 1940-1985 cohorts.
    int64_t year = 1910 + static_cast<int64_t>(i);
    year_weights[i] = (year >= 1940 && year <= 1985) ? 1.5 : 0.6;
  }

  std::vector<Marginal> marginals;
  marginals.push_back(Marginal::Zipf(0, num_zips, 1.1));
  marginals.push_back(Marginal(1910, std::move(year_weights)));
  marginals.push_back(Marginal::Uniform(0, 365));
  marginals.push_back(Marginal(0, {0.52, 0.48}));
  marginals.push_back(Marginal::Zipf(0, 40, 1.05));
  marginals.push_back(
      Marginal(0, {0.374, 0.357, 0.085, 0.034, 0.066, 0.063, 0.015, 0.006}));
  marginals.push_back(Marginal(0, {0.34, 0.48, 0.10, 0.06, 0.02}));
  marginals.push_back(Marginal::Uniform(1, 12));

  return {schema, ProductDistribution(schema, std::move(marginals))};
}

Universe MakeCensusPersonUniverse() {
  Schema schema({
      Attribute::Integer("age", 0, 115),
      Attribute::Categorical("sex", {"F", "M"}),
      Attribute::Categorical("race", {"white", "black", "aian", "asian",
                                      "nhpi", "other"}),
      Attribute::Categorical("hispanic", {"no", "yes"}),
  });

  std::vector<Marginal> marginals;
  marginals.push_back(Marginal(0, CensusAgeWeights(115)));
  marginals.push_back(Marginal(0, {0.508, 0.492}));
  marginals.push_back(
      Marginal(0, {0.724, 0.127, 0.009, 0.048, 0.002, 0.09}));
  marginals.push_back(Marginal(0, {0.837, 0.163}));

  return {schema, ProductDistribution(schema, std::move(marginals))};
}

Universe MakeBinaryTraitUniverse(double p) {
  PSO_CHECK(p > 0.0 && p < 1.0);
  Schema schema({Attribute::Integer("trait", 0, 1)});
  std::vector<Marginal> marginals;
  marginals.push_back(Marginal(0, {1.0 - p, p}));
  return {schema, ProductDistribution(schema, std::move(marginals))};
}

Universe MakeRatingsUniverse(int64_t num_movies, double density) {
  PSO_CHECK(num_movies >= 1);
  PSO_CHECK(density > 0.0 && density < 1.0);
  std::vector<Attribute> attrs;
  std::vector<Marginal> marginals;
  attrs.reserve(static_cast<size_t>(num_movies));
  for (int64_t i = 0; i < num_movies; ++i) {
    attrs.push_back(
        Attribute::Integer(StrFormat("rated_%03d", (int)i), 0, 1));
    // Popularity decays across the catalogue (head movies rated often).
    double pi = density * 4.0 / (1.0 + 3.0 * static_cast<double>(i) /
                                           static_cast<double>(num_movies));
    if (pi >= 0.95) pi = 0.95;
    marginals.push_back(Marginal(0, {1.0 - pi, pi}));
  }
  Schema schema(std::move(attrs));
  return {schema, ProductDistribution(schema, std::move(marginals))};
}

Universe MakeGenotypeUniverse(int64_t num_snps, uint64_t freq_seed,
                              double min_freq, double max_freq) {
  PSO_CHECK(num_snps >= 1);
  PSO_CHECK(0.0 < min_freq && min_freq <= max_freq && max_freq < 1.0);
  Rng rng(freq_seed);
  std::vector<Attribute> attrs;
  std::vector<Marginal> marginals;
  attrs.reserve(static_cast<size_t>(num_snps));
  for (int64_t i = 0; i < num_snps; ++i) {
    attrs.push_back(Attribute::Integer(StrFormat("snp_%04d", (int)i), 0, 1));
    double p = min_freq + rng.UniformDouble() * (max_freq - min_freq);
    marginals.push_back(Marginal(0, {1.0 - p, p}));
  }
  Schema schema(std::move(attrs));
  return {schema, ProductDistribution(schema, std::move(marginals))};
}

}  // namespace pso
