// Data-generating distributions D over the record universe X.
//
// The PSO game (Section 2.2 of the paper) models records as i.i.d. draws
// from a distribution D that may be unknown to the attacker. We provide:
//   * Distribution       — abstract sampling + exact pointwise probability
//   * ProductDistribution — independent per-attribute marginals (the
//     workhorse; supports exact predicate weights for per-attribute
//     predicates and exact min-entropy)
//   * EmpiricalDistribution — resampling from a reference dataset.

#ifndef PSO_DATA_DISTRIBUTION_H_
#define PSO_DATA_DISTRIBUTION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace pso {

/// A distribution over records of a fixed schema.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Schema of the records this distribution produces.
  virtual const Schema& schema() const = 0;

  /// Draws one record.
  virtual Record Sample(Rng& rng) const = 0;

  /// Exact probability mass of `record` (0 if out of support).
  virtual double RecordProbability(const Record& record) const = 0;

  /// Draws an i.i.d. dataset of `n` records.
  Dataset SampleDataset(size_t n, Rng& rng) const;

  /// Min-entropy H_inf(D) = -log2 max_x Pr[x], if computable; derived
  /// classes override when an exact value is available. Default: -1
  /// (unknown).
  virtual double MinEntropyBits() const { return -1.0; }
};

/// Marginal distribution of a single attribute.
class Marginal {
 public:
  /// Categorical/integer marginal with explicit weights over the attribute
  /// domain codes [min_value, min_value + weights.size()).
  Marginal(int64_t min_value, std::vector<double> weights);

  /// Uniform marginal over [min_value, max_value].
  static Marginal Uniform(int64_t min_value, int64_t max_value);

  /// Zipf(s) marginal over `count` values starting at `min_value`
  /// (probability of rank r proportional to 1/r^s).
  static Marginal Zipf(int64_t min_value, int64_t count, double s);

  /// Draws a value code.
  int64_t Sample(Rng& rng) const;

  /// Probability of value code `v` (0 outside the support).
  double Probability(int64_t v) const;

  /// Total mass of codes in [lo, hi] intersected with the support.
  double MassInRange(int64_t lo, int64_t hi) const;

  /// Largest single-value probability.
  double MaxProbability() const;

  int64_t min_value() const { return min_value_; }
  int64_t max_value() const {
    return min_value_ + static_cast<int64_t>(probs_.size()) - 1;
  }
  const std::vector<double>& probabilities() const { return probs_; }

 private:
  int64_t min_value_;
  std::vector<double> probs_;  // normalized
  std::vector<double> cumulative_;
  // Shared, immutable alias table; makes Marginal cheaply copyable.
  std::shared_ptr<const DiscreteSampler> sampler_;
};

/// Independent product of per-attribute marginals.
class ProductDistribution : public Distribution {
 public:
  /// One marginal per schema attribute; marginal supports must lie inside
  /// the attribute domains.
  ProductDistribution(Schema schema, std::vector<Marginal> marginals);

  /// Uniform product distribution over the whole schema domain.
  static ProductDistribution UniformOver(const Schema& schema);

  const Schema& schema() const override { return schema_; }
  Record Sample(Rng& rng) const override;
  double RecordProbability(const Record& record) const override;
  double MinEntropyBits() const override;

  const Marginal& marginal(size_t attr) const;

 private:
  Schema schema_;
  std::vector<Marginal> marginals_;
};

/// Uniform resampling from a fixed reference dataset (with replacement).
class EmpiricalDistribution : public Distribution {
 public:
  explicit EmpiricalDistribution(Dataset reference);

  const Schema& schema() const override { return reference_.schema(); }
  Record Sample(Rng& rng) const override;
  double RecordProbability(const Record& record) const override;

 private:
  Dataset reference_;
};

}  // namespace pso

#endif  // PSO_DATA_DISTRIBUTION_H_
