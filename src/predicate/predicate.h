// Predicates p : X -> {0,1} over records, the objects a singling-out
// attacker produces (Definition 2.1 of the paper).
//
// A predicate must be a function of the record *values* only — isolation by
// position ("the first record") is ruled out by construction since Eval sees
// a Record, not an index.

#ifndef PSO_PREDICATE_PREDICATE_H_
#define PSO_PREDICATE_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "data/distribution.h"
#include "data/schema.h"

namespace pso {

/// A boolean function of a record.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates the predicate on one record.
  virtual bool Eval(const Record& record) const = 0;

  /// Human-readable rendering (for reports and debugging).
  virtual std::string Description() const = 0;

  /// Schema attribute indices this predicate reads; empty means "possibly
  /// all" (e.g. hash predicates read the whole record).
  virtual std::vector<size_t> AttributesTouched() const { return {}; }

  /// Exact weight w_D(p) = Pr_{x~D}[p(x)=1] under a product distribution,
  /// when analytically computable; std::nullopt otherwise (callers fall
  /// back to Monte-Carlo estimation, see weight.h).
  virtual std::optional<double> ExactWeight(
      const ProductDistribution& dist) const {
    (void)dist;
    return std::nullopt;
  }
};

/// Shared-ownership handle to an immutable predicate.
using PredicateRef = std::shared_ptr<const Predicate>;

/// Constant predicates.
PredicateRef MakeTrue();
PredicateRef MakeFalse();

/// p(x) = 1 iff x[attr] == value.
PredicateRef MakeAttributeEquals(size_t attr, int64_t value,
                                 std::string attr_name = "");

/// p(x) = 1 iff x[attr] is in `values`.
PredicateRef MakeAttributeIn(size_t attr, std::vector<int64_t> values,
                             std::string attr_name = "");

/// p(x) = 1 iff lo <= x[attr] <= hi.
PredicateRef MakeAttributeRange(size_t attr, int64_t lo, int64_t hi,
                                std::string attr_name = "");

/// Conjunction of `terms` (empty conjunction is TRUE).
PredicateRef MakeAnd(std::vector<PredicateRef> terms);

/// Disjunction of `terms` (empty disjunction is FALSE).
PredicateRef MakeOr(std::vector<PredicateRef> terms);

/// Negation.
PredicateRef MakeNot(PredicateRef inner);

/// p(x) = 1 iff x == target exactly (every attribute).
PredicateRef MakeRecordEquals(const Schema& schema, Record target);

/// Leftover-Hash-Lemma-style predicate of design weight ~1/range:
/// p(x) = 1 iff h(key(x)) == bucket, where h is a random member of a
/// strongly universal family and key packs the record (or the selected
/// attributes) into 64 bits.
///
/// Under any distribution whose min-entropy (restricted to the selected
/// attributes) is well above log2(range), the realized weight concentrates
/// near 1/range — this is the construction the paper uses both for the
/// trivial attacker and inside the Theorem 2.10 attack.
///
/// If `attrs` is empty the whole record is hashed.
PredicateRef MakeHashPredicate(const Schema& schema, const UniversalHash& h,
                               uint64_t bucket = 0,
                               std::vector<size_t> attrs = {});

/// Interval variant used by the adaptive composition attack (Theorem 2.8):
/// p(x) = 1 iff lo <= h(key(x)) < hi. Design weight (hi - lo) / h.range();
/// halving [lo, hi) halves the weight, which is how ~log n count queries
/// binary-search their way down to an isolating, negligible-weight
/// predicate.
PredicateRef MakeHashIntervalPredicate(const Schema& schema,
                                       const UniversalHash& h, uint64_t lo,
                                       uint64_t hi);

/// --- Dataset-level helpers (Definition 2.1) ---

/// Number of records in `dataset` satisfying `pred`.
size_t CountMatches(const Predicate& pred, const Dataset& dataset);

/// True iff `pred` isolates in `dataset`: exactly one matching record.
bool Isolates(const Predicate& pred, const Dataset& dataset);

/// Index of the unique matching record if `pred` isolates, else nullopt.
std::optional<size_t> IsolatedIndex(const Predicate& pred,
                                    const Dataset& dataset);

}  // namespace pso

#endif  // PSO_PREDICATE_PREDICATE_H_
