// Predicate weight w_D(p) = Pr_{x~D}[p(x) = 1] (Section 2.2).
//
// The PSO game needs the weight of attacker-produced predicates to decide
// whether an isolation "counts" (only negligible-weight predicates do,
// Definition 2.4). Exact weights are used when the predicate supports them
// under a product distribution; otherwise a Monte-Carlo estimate with a
// Wilson interval is returned.

#ifndef PSO_PREDICATE_WEIGHT_H_
#define PSO_PREDICATE_WEIGHT_H_

#include <cstddef>

#include "common/rng.h"
#include "common/stats.h"
#include "data/distribution.h"
#include "predicate/predicate.h"

namespace pso {

/// Result of a weight computation.
struct WeightEstimate {
  double value = 0.0;      ///< Point estimate of w_D(p).
  Interval interval;       ///< 95% interval ([value,value] when exact).
  bool exact = false;      ///< True if analytically computed.
  size_t samples = 0;      ///< Monte-Carlo sample count (0 when exact).
};

class ThreadPool;

/// Monte-Carlo estimate of w_D(p) from `samples` fresh draws of D. Sample
/// i is drawn from its own counter-derived stream (seeded from one draw of
/// `rng`), so passing a `pool` parallelizes the estimate without changing
/// the result: any thread count produces the same estimate bit-for-bit.
WeightEstimate EstimateWeightMonteCarlo(const Predicate& pred,
                                        const Distribution& dist, Rng& rng,
                                        size_t samples,
                                        ThreadPool* pool = nullptr);

/// Best-available weight: exact if `pred` supports it under `dist` (when
/// `dist` is a ProductDistribution), otherwise Monte-Carlo with `samples`
/// (optionally parallel on `pool`; deterministic either way).
WeightEstimate ComputeWeight(const Predicate& pred, const Distribution& dist,
                             Rng& rng, size_t samples = 100000,
                             ThreadPool* pool = nullptr);

/// The weight threshold below which the PSO game treats a predicate as
/// "negligible weight" at dataset size n. The paper requires w = negl(n);
/// at finite n we use the natural scale w <= threshold_factor / n^2,
/// comfortably below the 1/n weight at which trivial isolation peaks while
/// remaining reachable by the attacks the paper describes.
double NegligibleWeightThreshold(size_t n, double threshold_factor = 1.0);

}  // namespace pso

#endif  // PSO_PREDICATE_WEIGHT_H_
