#include "predicate/weight.h"

#include "common/check.h"

namespace pso {

WeightEstimate EstimateWeightMonteCarlo(const Predicate& pred,
                                        const Distribution& dist, Rng& rng,
                                        size_t samples) {
  PSO_CHECK(samples > 0);
  BernoulliEstimator est;
  for (size_t i = 0; i < samples; ++i) {
    est.Add(pred.Eval(dist.Sample(rng)));
  }
  WeightEstimate out;
  out.value = est.rate();
  out.interval = est.WilsonInterval();
  out.exact = false;
  out.samples = samples;
  return out;
}

WeightEstimate ComputeWeight(const Predicate& pred, const Distribution& dist,
                             Rng& rng, size_t samples) {
  if (const auto* product = dynamic_cast<const ProductDistribution*>(&dist)) {
    auto exact = pred.ExactWeight(*product);
    if (exact.has_value()) {
      WeightEstimate out;
      out.value = *exact;
      out.interval = {*exact, *exact};
      out.exact = true;
      out.samples = 0;
      return out;
    }
  }
  return EstimateWeightMonteCarlo(pred, dist, rng, samples);
}

double NegligibleWeightThreshold(size_t n, double threshold_factor) {
  PSO_CHECK(n > 0);
  double nn = static_cast<double>(n);
  return threshold_factor / (nn * nn);
}

}  // namespace pso
