#include "predicate/weight.h"

#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace pso {

WeightEstimate EstimateWeightMonteCarlo(const Predicate& pred,
                                        const Distribution& dist, Rng& rng,
                                        size_t samples, ThreadPool* pool) {
  PSO_CHECK(samples > 0);
  // One master seed from the caller's stream; each sample then uses its
  // own counter-derived stream, making the estimate independent of thread
  // count and chunk execution order.
  const uint64_t master = rng.NextUint64();
  const size_t chunk = DefaultChunkSize(samples);
  std::vector<BernoulliEstimator> chunks(NumChunks(samples, chunk));
  ParallelFor(
      pool, samples,
      [&](size_t begin, size_t end) {
        BernoulliEstimator& est = chunks[begin / chunk];
        for (size_t i = begin; i < end; ++i) {
          Rng sample_rng = Rng::StreamAt(master, i);
          est.Add(pred.Eval(dist.Sample(sample_rng)));
        }
      },
      chunk);
  BernoulliEstimator est;
  for (const BernoulliEstimator& c : chunks) est.Merge(c);
  WeightEstimate out;
  out.value = est.rate();
  out.interval = est.WilsonInterval();
  out.exact = false;
  out.samples = samples;
  return out;
}

WeightEstimate ComputeWeight(const Predicate& pred, const Distribution& dist,
                             Rng& rng, size_t samples, ThreadPool* pool) {
  if (const auto* product = dynamic_cast<const ProductDistribution*>(&dist)) {
    auto exact = pred.ExactWeight(*product);
    if (exact.has_value()) {
      WeightEstimate out;
      out.value = *exact;
      out.interval = {*exact, *exact};
      out.exact = true;
      out.samples = 0;
      return out;
    }
  }
  return EstimateWeightMonteCarlo(pred, dist, rng, samples, pool);
}

double NegligibleWeightThreshold(size_t n, double threshold_factor) {
  PSO_CHECK(n > 0);
  double nn = static_cast<double>(n);
  return threshold_factor / (nn * nn);
}

}  // namespace pso
