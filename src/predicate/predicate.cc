#include "predicate/predicate.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"
#include "common/str_util.h"

namespace pso {

namespace {

std::string AttrLabel(size_t attr, const std::string& name) {
  return name.empty() ? StrFormat("attr[%zu]", attr) : name;
}

class TruePredicate final : public Predicate {
 public:
  bool Eval(const Record&) const override { return true; }
  std::string Description() const override { return "TRUE"; }
  std::optional<double> ExactWeight(
      const ProductDistribution&) const override {
    return 1.0;
  }
  std::vector<size_t> AttributesTouched() const override { return {}; }
};

class FalsePredicate final : public Predicate {
 public:
  bool Eval(const Record&) const override { return false; }
  std::string Description() const override { return "FALSE"; }
  std::optional<double> ExactWeight(
      const ProductDistribution&) const override {
    return 0.0;
  }
  std::vector<size_t> AttributesTouched() const override { return {}; }
};

class AttributeEqualsPredicate final : public Predicate {
 public:
  AttributeEqualsPredicate(size_t attr, int64_t value, std::string name)
      : attr_(attr), value_(value), name_(std::move(name)) {}

  bool Eval(const Record& r) const override {
    return attr_ < r.size() && r[attr_] == value_;
  }
  std::string Description() const override {
    return StrFormat("%s == %lld", AttrLabel(attr_, name_).c_str(),
                     (long long)value_);
  }
  std::vector<size_t> AttributesTouched() const override { return {attr_}; }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    if (attr_ >= dist.schema().NumAttributes()) return 0.0;
    return dist.marginal(attr_).Probability(value_);
  }

 private:
  size_t attr_;
  int64_t value_;
  std::string name_;
};

class AttributeInPredicate final : public Predicate {
 public:
  AttributeInPredicate(size_t attr, std::vector<int64_t> values,
                       std::string name)
      : attr_(attr),
        values_(values.begin(), values.end()),
        name_(std::move(name)) {}

  bool Eval(const Record& r) const override {
    return attr_ < r.size() && values_.count(r[attr_]) > 0;
  }
  std::string Description() const override {
    std::vector<int64_t> sorted(values_.begin(), values_.end());
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::string> parts;
    for (int64_t v : sorted) parts.push_back(StrFormat("%lld", (long long)v));
    return AttrLabel(attr_, name_) + " in {" + Join(parts, ",") + "}";
  }
  std::vector<size_t> AttributesTouched() const override { return {attr_}; }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    if (attr_ >= dist.schema().NumAttributes()) return 0.0;
    // Sum in sorted value order, not unordered_set iteration order:
    // float addition is order-sensitive, and this weight feeds pinned
    // regression numbers (pso_lint rule `unordered-iteration`).
    std::vector<int64_t> sorted(values_.begin(), values_.end());
    std::sort(sorted.begin(), sorted.end());
    double mass = 0.0;
    for (int64_t v : sorted) mass += dist.marginal(attr_).Probability(v);
    return mass;
  }

 private:
  size_t attr_;
  std::unordered_set<int64_t> values_;
  std::string name_;
};

class AttributeRangePredicate final : public Predicate {
 public:
  AttributeRangePredicate(size_t attr, int64_t lo, int64_t hi,
                          std::string name)
      : attr_(attr), lo_(lo), hi_(hi), name_(std::move(name)) {}

  bool Eval(const Record& r) const override {
    return attr_ < r.size() && r[attr_] >= lo_ && r[attr_] <= hi_;
  }
  std::string Description() const override {
    return StrFormat("%lld <= %s <= %lld", (long long)lo_,
                     AttrLabel(attr_, name_).c_str(), (long long)hi_);
  }
  std::vector<size_t> AttributesTouched() const override { return {attr_}; }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    if (attr_ >= dist.schema().NumAttributes()) return 0.0;
    return dist.marginal(attr_).MassInRange(lo_, hi_);
  }

 private:
  size_t attr_;
  int64_t lo_;
  int64_t hi_;
  std::string name_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicateRef> terms)
      : terms_(std::move(terms)) {
    for (const auto& t : terms_) PSO_CHECK(t != nullptr);
  }

  bool Eval(const Record& r) const override {
    for (const auto& t : terms_) {
      if (!t->Eval(r)) return false;
    }
    return true;
  }
  std::string Description() const override {
    if (terms_.empty()) return "TRUE";
    std::vector<std::string> parts;
    for (const auto& t : terms_) parts.push_back("(" + t->Description() + ")");
    return Join(parts, " AND ");
  }
  std::vector<size_t> AttributesTouched() const override {
    std::vector<size_t> all;
    for (const auto& t : terms_) {
      auto a = t->AttributesTouched();
      all.insert(all.end(), a.begin(), a.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
  }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    // Exact only when the conjuncts read pairwise-disjoint attribute sets
    // (then independence under the product distribution gives the product
    // rule). A term with an unknown attribute set blocks exactness.
    std::unordered_set<size_t> seen;
    double w = 1.0;
    for (const auto& t : terms_) {
      auto attrs = t->AttributesTouched();
      auto ew = t->ExactWeight(dist);
      if (!ew.has_value()) return std::nullopt;
      if (attrs.empty() && !terms_.empty() &&
          dynamic_cast<const TruePredicate*>(t.get()) == nullptr &&
          dynamic_cast<const FalsePredicate*>(t.get()) == nullptr) {
        return std::nullopt;  // unknown footprint (e.g. a hash predicate)
      }
      for (size_t a : attrs) {
        if (!seen.insert(a).second) return std::nullopt;  // overlap
      }
      w *= *ew;
    }
    return w;
  }

 private:
  std::vector<PredicateRef> terms_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicateRef> terms)
      : terms_(std::move(terms)) {
    for (const auto& t : terms_) PSO_CHECK(t != nullptr);
  }

  bool Eval(const Record& r) const override {
    for (const auto& t : terms_) {
      if (t->Eval(r)) return true;
    }
    return false;
  }
  std::string Description() const override {
    if (terms_.empty()) return "FALSE";
    std::vector<std::string> parts;
    for (const auto& t : terms_) parts.push_back("(" + t->Description() + ")");
    return Join(parts, " OR ");
  }
  std::vector<size_t> AttributesTouched() const override {
    std::vector<size_t> all;
    for (const auto& t : terms_) {
      auto a = t->AttributesTouched();
      all.insert(all.end(), a.begin(), a.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
  }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    // De Morgan dual of the conjunction rule: exact when the disjuncts
    // read pairwise-disjoint attribute sets, since then
    // Pr[any fires] = 1 - prod_i (1 - w_i) under the product measure.
    std::unordered_set<size_t> seen;
    double none = 1.0;
    for (const auto& t : terms_) {
      auto attrs = t->AttributesTouched();
      auto ew = t->ExactWeight(dist);
      if (!ew.has_value()) return std::nullopt;
      if (attrs.empty() &&
          dynamic_cast<const TruePredicate*>(t.get()) == nullptr &&
          dynamic_cast<const FalsePredicate*>(t.get()) == nullptr) {
        return std::nullopt;  // unknown footprint (e.g. a hash predicate)
      }
      for (size_t a : attrs) {
        if (!seen.insert(a).second) return std::nullopt;  // overlap
      }
      none *= 1.0 - *ew;
    }
    return 1.0 - none;
  }

 private:
  std::vector<PredicateRef> terms_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicateRef inner) : inner_(std::move(inner)) {
    PSO_CHECK(inner_ != nullptr);
  }

  bool Eval(const Record& r) const override { return !inner_->Eval(r); }
  std::string Description() const override {
    return "NOT (" + inner_->Description() + ")";
  }
  std::vector<size_t> AttributesTouched() const override {
    return inner_->AttributesTouched();
  }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    auto w = inner_->ExactWeight(dist);
    if (!w.has_value()) return std::nullopt;
    return 1.0 - *w;
  }

 private:
  PredicateRef inner_;
};

class RecordEqualsPredicate final : public Predicate {
 public:
  RecordEqualsPredicate(const Schema& schema, Record target)
      : schema_(schema), target_(std::move(target)) {
    PSO_CHECK_MSG(schema_.IsValidRecord(target_),
                  "target record does not match schema");
  }

  bool Eval(const Record& r) const override { return r == target_; }
  std::string Description() const override {
    return "record == {" + schema_.RecordToString(target_) + "}";
  }
  std::vector<size_t> AttributesTouched() const override {
    std::vector<size_t> all(schema_.NumAttributes());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  std::optional<double> ExactWeight(
      const ProductDistribution& dist) const override {
    return dist.RecordProbability(target_);
  }

 private:
  Schema schema_;
  Record target_;
};

class HashPredicate final : public Predicate {
 public:
  HashPredicate(const Schema& schema, const UniversalHash& h, uint64_t bucket,
                std::vector<size_t> attrs)
      : schema_(schema), hash_(h), bucket_(bucket), attrs_(std::move(attrs)) {
    PSO_CHECK(bucket < h.range());
    for (size_t a : attrs_) PSO_CHECK(a < schema_.NumAttributes());
  }

  bool Eval(const Record& r) const override {
    uint64_t key;
    if (attrs_.empty()) {
      key = schema_.RecordKey(r);
    } else {
      uint64_t k = 0x9ae16a3b2f90404fULL;
      for (size_t a : attrs_) {
        if (a >= r.size()) return false;
        k = HashCombine(k, static_cast<uint64_t>(r[a]));
      }
      key = k;
    }
    return hash_.Eval(key) == bucket_;
  }
  std::string Description() const override {
    return StrFormat("hash_{a=%llu,b=%llu}(x%s) == %llu  (design weight 1/%llu)",
                     (unsigned long long)hash_.a(),
                     (unsigned long long)hash_.b(),
                     attrs_.empty() ? "" : "|restricted",
                     (unsigned long long)bucket_,
                     (unsigned long long)hash_.range());
  }

 private:
  Schema schema_;
  UniversalHash hash_;
  uint64_t bucket_;
  std::vector<size_t> attrs_;
};

class HashIntervalPredicate final : public Predicate {
 public:
  HashIntervalPredicate(const Schema& schema, const UniversalHash& h,
                        uint64_t lo, uint64_t hi)
      : schema_(schema), hash_(h), lo_(lo), hi_(hi) {
    PSO_CHECK(lo < hi && hi <= h.range());
  }

  bool Eval(const Record& r) const override {
    uint64_t v = hash_.Eval(schema_.RecordKey(r));
    return v >= lo_ && v < hi_;
  }
  std::string Description() const override {
    return StrFormat(
        "hash(x) in [%llu, %llu)  (design weight %llu/%llu)",
        (unsigned long long)lo_, (unsigned long long)hi_,
        (unsigned long long)(hi_ - lo_), (unsigned long long)hash_.range());
  }

 private:
  Schema schema_;
  UniversalHash hash_;
  uint64_t lo_;
  uint64_t hi_;
};

}  // namespace

PredicateRef MakeHashIntervalPredicate(const Schema& schema,
                                       const UniversalHash& h, uint64_t lo,
                                       uint64_t hi) {
  return std::make_shared<HashIntervalPredicate>(schema, h, lo, hi);
}

PredicateRef MakeTrue() { return std::make_shared<TruePredicate>(); }

PredicateRef MakeFalse() { return std::make_shared<FalsePredicate>(); }

PredicateRef MakeAttributeEquals(size_t attr, int64_t value,
                                 std::string attr_name) {
  return std::make_shared<AttributeEqualsPredicate>(attr, value,
                                                    std::move(attr_name));
}

PredicateRef MakeAttributeIn(size_t attr, std::vector<int64_t> values,
                             std::string attr_name) {
  return std::make_shared<AttributeInPredicate>(attr, std::move(values),
                                                std::move(attr_name));
}

PredicateRef MakeAttributeRange(size_t attr, int64_t lo, int64_t hi,
                                std::string attr_name) {
  return std::make_shared<AttributeRangePredicate>(attr, lo, hi,
                                                   std::move(attr_name));
}

PredicateRef MakeAnd(std::vector<PredicateRef> terms) {
  return std::make_shared<AndPredicate>(std::move(terms));
}

PredicateRef MakeOr(std::vector<PredicateRef> terms) {
  return std::make_shared<OrPredicate>(std::move(terms));
}

PredicateRef MakeNot(PredicateRef inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}

PredicateRef MakeRecordEquals(const Schema& schema, Record target) {
  return std::make_shared<RecordEqualsPredicate>(schema, std::move(target));
}

PredicateRef MakeHashPredicate(const Schema& schema, const UniversalHash& h,
                               uint64_t bucket, std::vector<size_t> attrs) {
  return std::make_shared<HashPredicate>(schema, h, bucket, std::move(attrs));
}

size_t CountMatches(const Predicate& pred, const Dataset& dataset) {
  size_t count = 0;
  for (const Record& r : dataset.records()) {
    if (pred.Eval(r)) ++count;
  }
  return count;
}

bool Isolates(const Predicate& pred, const Dataset& dataset) {
  metrics::GetCounter("predicate.isolation_checks").Add(1);
  size_t count = 0;
  for (const Record& r : dataset.records()) {
    if (pred.Eval(r)) {
      if (++count > 1) return false;
    }
  }
  return count == 1;
}

std::optional<size_t> IsolatedIndex(const Predicate& pred,
                                    const Dataset& dataset) {
  std::optional<size_t> found;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (pred.Eval(dataset.record(i))) {
      if (found.has_value()) return std::nullopt;
      found = i;
    }
  }
  return found;
}

}  // namespace pso
