// Sweeney's GIC linkage attack (Section 1).
//
// A "de-identified" medical release (direct identifiers removed, quasi-
// identifiers kept) is joined with an identified public file (the
// Cambridge voter registration) on the shared quasi-identifiers. A unique
// join re-attaches a name to a medical record.

#ifndef PSO_LINKAGE_JOIN_ATTACK_H_
#define PSO_LINKAGE_JOIN_ATTACK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "kanon/generalized.h"

namespace pso::linkage {

/// A population with ground-truth identities (rows parallel to `ids`).
struct IdentifiedPopulation {
  Dataset records;
  std::vector<uint64_t> ids;
};

/// Samples `n` identified persons from `universe`.
IdentifiedPopulation SamplePopulation(const Universe& universe, size_t n,
                                      Rng& rng);

/// One identified row of the public (voter) file: identity plus the
/// quasi-identifier values.
struct VoterEntry {
  uint64_t id = 0;
  Record qi_values;  ///< Parallel to the attack's qi_attrs.
};

/// Builds the public file covering a `coverage` fraction of the population
/// (voter rolls never cover everyone).
std::vector<VoterEntry> BuildVoterFile(const IdentifiedPopulation& pop,
                                       const std::vector<size_t>& qi_attrs,
                                       double coverage, Rng& rng);

/// Linkage outcome.
struct LinkageReport {
  size_t released_records = 0;
  size_t voter_entries = 0;
  size_t claims = 0;     ///< Released records with a unique voter match.
  size_t confirmed = 0;  ///< Claims naming the true person.

  double claim_rate() const;      ///< claims / released_records.
  double confirmed_rate() const;  ///< confirmed / released_records.
};

/// Joins the de-identified release (the population's records, names
/// dropped) with the voter file on `qi_attrs`. A release row is claimed
/// when exactly one voter entry shares its QI values AND it is the only
/// release row matching that entry (unique both ways).
LinkageReport JoinAttack(const IdentifiedPopulation& pop,
                         const std::vector<VoterEntry>& voter_file,
                         const std::vector<size_t>& qi_attrs);

/// The same join run against a k-anonymized release: a voter entry matches
/// a generalized row when its QI values fall inside the row's cells.
/// Shows the attack k-anonymity was designed to stop (and does stop).
LinkageReport JoinAttackGeneralized(
    const IdentifiedPopulation& pop,
    const kanon::GeneralizedDataset& release,
    const std::vector<VoterEntry>& voter_file,
    const std::vector<size_t>& qi_attrs);

}  // namespace pso::linkage

#endif  // PSO_LINKAGE_JOIN_ATTACK_H_
