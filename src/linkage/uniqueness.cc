#include "linkage/uniqueness.h"

#include "common/check.h"

namespace pso::linkage {

double UniquenessReport::unique_fraction() const {
  return records == 0 ? 0.0
                      : static_cast<double>(unique) /
                            static_cast<double>(records);
}

UniquenessReport AnalyzeUniqueness(const Dataset& data,
                                   const std::vector<size_t>& qi_attrs) {
  PSO_CHECK(!qi_attrs.empty());
  Dataset projected = data.Project(qi_attrs);
  UniquenessReport report;
  report.records = data.size();
  for (const auto& group : projected.GroupIdentical()) {
    ++report.groups;
    if (group.size() == 1) {
      ++report.unique;
    } else if (group.size() <= 5) {
      report.in_small_groups += group.size();
    }
  }
  return report;
}

double PartialKnowledgeUniqueness(const Dataset& data, size_t known_attrs,
                                  size_t trials, Rng& rng) {
  PSO_CHECK(!data.empty());
  PSO_CHECK(trials > 0);
  const size_t num_attrs = data.schema().NumAttributes();
  size_t unique = 0;
  for (size_t t = 0; t < trials; ++t) {
    size_t target = static_cast<size_t>(rng.UniformUint64(data.size()));
    const Record& r = data.record(target);
    // Attributes where the target has a nonzero value (movies it rated).
    std::vector<size_t> nonzero;
    for (size_t a = 0; a < num_attrs; ++a) {
      if (r[a] != 0) nonzero.push_back(a);
    }
    std::vector<size_t> known;
    if (nonzero.size() <= known_attrs) {
      known = nonzero;
    } else {
      rng.Shuffle(nonzero);
      known.assign(nonzero.begin(),
                   nonzero.begin() + static_cast<long>(known_attrs));
    }
    if (known.empty()) continue;  // target rated nothing: no knowledge
    size_t matches = 0;
    for (const Record& cand : data.records()) {
      bool all = true;
      for (size_t a : known) {
        if (cand[a] != r[a]) {
          all = false;
          break;
        }
      }
      if (all && ++matches > 1) break;
    }
    if (matches == 1) ++unique;
  }
  return static_cast<double>(unique) / static_cast<double>(trials);
}

}  // namespace pso::linkage
