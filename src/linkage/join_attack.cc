#include "linkage/join_attack.h"

#include <map>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace pso::linkage {

IdentifiedPopulation SamplePopulation(const Universe& universe, size_t n,
                                      Rng& rng) {
  IdentifiedPopulation pop{universe.distribution.SampleDataset(n, rng), {}};
  pop.ids.reserve(n);
  for (size_t i = 0; i < n; ++i) pop.ids.push_back(i + 1);
  return pop;
}

std::vector<VoterEntry> BuildVoterFile(const IdentifiedPopulation& pop,
                                       const std::vector<size_t>& qi_attrs,
                                       double coverage, Rng& rng) {
  PSO_CHECK(coverage >= 0.0 && coverage <= 1.0);
  std::vector<VoterEntry> file;
  for (size_t i = 0; i < pop.records.size(); ++i) {
    if (!rng.Bernoulli(coverage)) continue;
    VoterEntry e;
    e.id = pop.ids[i];
    e.qi_values.reserve(qi_attrs.size());
    for (size_t a : qi_attrs) e.qi_values.push_back(pop.records.At(i, a));
    file.push_back(std::move(e));
  }
  return file;
}

double LinkageReport::claim_rate() const {
  return released_records == 0 ? 0.0
                               : static_cast<double>(claims) /
                                     static_cast<double>(released_records);
}

double LinkageReport::confirmed_rate() const {
  return released_records == 0 ? 0.0
                               : static_cast<double>(confirmed) /
                                     static_cast<double>(released_records);
}

LinkageReport JoinAttack(const IdentifiedPopulation& pop,
                         const std::vector<VoterEntry>& voter_file,
                         const std::vector<size_t>& qi_attrs) {
  metrics::GetCounter("linkage.join_attacks").Add(1);
  metrics::GetCounter("linkage.released_records").Add(pop.records.size());
  metrics::ScopedSpan span("linkage.join_attack");
  PSO_TRACE_SPAN("linkage.join_attack");
  LinkageReport report;
  report.released_records = pop.records.size();
  report.voter_entries = voter_file.size();

  // Index voter entries by QI tuple.
  std::map<Record, std::vector<const VoterEntry*>> by_qi;
  for (const VoterEntry& e : voter_file) by_qi[e.qi_values].push_back(&e);

  // Count release rows per QI tuple (for the both-ways uniqueness check).
  std::map<Record, std::vector<size_t>> release_by_qi;
  for (size_t i = 0; i < pop.records.size(); ++i) {
    Record qi;
    qi.reserve(qi_attrs.size());
    for (size_t a : qi_attrs) qi.push_back(pop.records.At(i, a));
    release_by_qi[std::move(qi)].push_back(i);
  }

  for (const auto& [qi, rows] : release_by_qi) {
    if (rows.size() != 1) continue;  // release side must be unique
    auto it = by_qi.find(qi);
    if (it == by_qi.end() || it->second.size() != 1) continue;
    ++report.claims;
    if (it->second.front()->id == pop.ids[rows.front()]) ++report.confirmed;
  }
  return report;
}

LinkageReport JoinAttackGeneralized(
    const IdentifiedPopulation& pop,
    const kanon::GeneralizedDataset& release,
    const std::vector<VoterEntry>& voter_file,
    const std::vector<size_t>& qi_attrs) {
  PSO_CHECK(release.size() == pop.records.size());
  metrics::GetCounter("linkage.join_attacks").Add(1);
  metrics::GetCounter("linkage.released_records").Add(release.size());
  metrics::ScopedSpan span("linkage.join_attack");
  PSO_TRACE_SPAN("linkage.join_attack");
  LinkageReport report;
  report.released_records = release.size();
  report.voter_entries = voter_file.size();

  for (size_t i = 0; i < release.size(); ++i) {
    // Voter entries compatible with row i's generalized QI cells.
    const VoterEntry* match = nullptr;
    size_t matches = 0;
    for (const VoterEntry& e : voter_file) {
      bool compatible = true;
      for (size_t j = 0; j < qi_attrs.size(); ++j) {
        if (!release.row(i)[qi_attrs[j]].Contains(e.qi_values[j])) {
          compatible = false;
          break;
        }
      }
      if (compatible) {
        ++matches;
        match = &e;
        if (matches > 1) break;
      }
    }
    if (matches != 1) continue;
    // Also require the release row to be the only one compatible with that
    // voter entry.
    size_t reverse_matches = 0;
    for (size_t i2 = 0; i2 < release.size(); ++i2) {
      bool compatible = true;
      for (size_t j = 0; j < qi_attrs.size(); ++j) {
        if (!release.row(i2)[qi_attrs[j]].Contains(match->qi_values[j])) {
          compatible = false;
          break;
        }
      }
      if (compatible && ++reverse_matches > 1) break;
    }
    if (reverse_matches != 1) continue;
    ++report.claims;
    if (match->id == pop.ids[i]) ++report.confirmed;
  }
  return report;
}

}  // namespace pso::linkage
