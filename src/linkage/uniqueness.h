// Quasi-identifier uniqueness analysis (Section 1).
//
// Sweeney's observation: ZIP x birth date x sex is unique for the vast
// majority of the population. These helpers measure, for any attribute
// subset, how identifying the combination is in a dataset, and the
// Narayanan–Shmatikov variant: how few *known values* (rated movies) make
// a record unique in a sparse dataset.

#ifndef PSO_LINKAGE_UNIQUENESS_H_
#define PSO_LINKAGE_UNIQUENESS_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pso::linkage {

/// Distribution of group sizes under a QI projection.
struct UniquenessReport {
  size_t records = 0;
  size_t unique = 0;        ///< Records alone in their QI group.
  size_t in_small_groups = 0;  ///< Records in groups of size 2..5.
  size_t groups = 0;

  double unique_fraction() const;
};

/// Groups `data` by the projection onto `qi_attrs` and reports uniqueness.
UniquenessReport AnalyzeUniqueness(const Dataset& data,
                                   const std::vector<size_t>& qi_attrs);

/// Narayanan–Shmatikov style: for `trials` random targets, the attacker
/// learns `known_attrs` random attributes *where the target's value is
/// nonzero* (e.g. movies the target rated); returns the fraction of
/// trials where that partial knowledge matches the target uniquely.
double PartialKnowledgeUniqueness(const Dataset& data, size_t known_attrs,
                                  size_t trials, Rng& rng);

}  // namespace pso::linkage

#endif  // PSO_LINKAGE_UNIQUENESS_H_
