#include "census/population.h"

#include "common/check.h"

namespace pso::census {

Universe MakeCensusBlockUniverse() {
  Universe base = MakeCensusPersonUniverse();
  // Rebuild with age capped at kMaxAge (keeps the CSP domain compact).
  Schema schema({
      Attribute::Integer("age", 0, kMaxAge),
      base.schema.attribute(kSex),
      base.schema.attribute(kRace),
      base.schema.attribute(kHispanic),
  });
  std::vector<double> age_weights(static_cast<size_t>(kMaxAge) + 1);
  for (int64_t a = 0; a <= kMaxAge; ++a) {
    age_weights[static_cast<size_t>(a)] =
        base.distribution.marginal(kAge).Probability(a);
  }
  std::vector<Marginal> marginals;
  marginals.push_back(Marginal(0, std::move(age_weights)));
  marginals.push_back(base.distribution.marginal(kSex));
  marginals.push_back(base.distribution.marginal(kRace));
  marginals.push_back(base.distribution.marginal(kHispanic));
  return {schema, ProductDistribution(schema, std::move(marginals))};
}

Population GeneratePopulation(const PopulationOptions& options, Rng& rng) {
  PSO_CHECK(options.num_blocks > 0);
  PSO_CHECK(options.min_block_size >= 1);
  PSO_CHECK(options.min_block_size <= options.max_block_size);

  Population pop{MakeCensusBlockUniverse(), {}, 0};
  uint64_t next_person_id = 1;
  pop.blocks.reserve(options.num_blocks);
  for (size_t b = 0; b < options.num_blocks; ++b) {
    size_t size = options.min_block_size +
                  static_cast<size_t>(rng.UniformUint64(
                      options.max_block_size - options.min_block_size + 1));
    std::vector<uint64_t> ids;
    ids.reserve(size);
    for (size_t i = 0; i < size; ++i) ids.push_back(next_person_id++);
    Block block{b, pop.universe.distribution.SampleDataset(size, rng),
                std::move(ids)};
    pop.total_persons += size;
    pop.blocks.push_back(std::move(block));
  }
  return pop;
}

size_t EncodePerson(const Record& r) {
  PSO_CHECK(r.size() == 4);
  PSO_CHECK(r[kAge] >= 0 && r[kAge] <= kMaxAge);
  size_t idx = static_cast<size_t>(r[kAge]);
  idx = idx * 2 + static_cast<size_t>(r[kSex]);
  idx = idx * 6 + static_cast<size_t>(r[kRace]);
  idx = idx * 2 + static_cast<size_t>(r[kHispanic]);
  return idx;
}

Record DecodePerson(size_t index) {
  PSO_CHECK(index < kPersonDomain);
  Record r(4);
  r[kHispanic] = static_cast<int64_t>(index % 2);
  index /= 2;
  r[kRace] = static_cast<int64_t>(index % 6);
  index /= 6;
  r[kSex] = static_cast<int64_t>(index % 2);
  index /= 2;
  r[kAge] = static_cast<int64_t>(index);
  return r;
}

}  // namespace pso::census
