#include "census/sat_reconstruct.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "solver/sat.h"

namespace pso::census {

namespace {

// Candidate person-values consistent with the zero cells of the tables
// (mirrors the CSP engine's candidate filter).
std::vector<size_t> FeasibleValues(const BlockTables& t) {
  std::vector<size_t> candidates;
  const int64_t slack = t.noise_slack;
  for (size_t v = 0; v < kPersonDomain; ++v) {
    Record r = DecodePerson(v);
    size_t age = static_cast<size_t>(r[kAge]);
    size_t sex = static_cast<size_t>(r[kSex]);
    size_t bucket = age / 5;
    bool ok = t.by_age[age] + slack > 0 &&
              t.by_sex_age_bucket[sex * kAgeBuckets + bucket] + slack > 0 &&
              t.by_race[static_cast<size_t>(r[kRace])] + slack > 0 &&
              t.by_hispanic[static_cast<size_t>(r[kHispanic])] + slack > 0;
    if (ok) candidates.push_back(v);
  }
  return candidates;
}

}  // namespace

Result<SatReconstruction> ReconstructBlockSat(const BlockTables& tables,
                                              size_t max_decisions,
                                              const std::string& backend) {
  const size_t n = static_cast<size_t>(tables.total);
  trace::Span block_span("census.sat_block");
  if (block_span.active()) {
    block_span.Arg("persons", std::to_string(n));
  }
  SatReconstruction out;
  if (n == 0) {
    out.satisfiable = true;
    return out;
  }

  std::vector<size_t> candidates = FeasibleValues(tables);
  if (candidates.empty()) {
    out.satisfiable = false;
    return out;
  }
  const size_t m = candidates.size();

  // y[p][c]: person p takes candidate c.
  SatSolver solver(static_cast<uint32_t>(n * m));
  auto y = [m](size_t p, size_t c) {
    return MakeLit(static_cast<uint32_t>(p * m + c), true);
  };
  for (size_t p = 0; p < n; ++p) {
    std::vector<Lit> row;
    row.reserve(m);
    for (size_t c = 0; c < m; ++c) row.push_back(y(p, c));
    solver.AddExactlyOne(row);
  }
  // Permutation symmetry breaking: person p's candidate index is
  // non-decreasing in p. Encode with prefix variables per person:
  // ge[p][c] = "person p's candidate index >= c".
  // Cheaper approximation: order only via the first candidate... For the
  // small blocks here the cardinality constraints prune enough; skip.

  // Cardinality constraint helper: count over persons of membership in a
  // candidate subset.
  auto add_count = [&](const std::vector<bool>& match, int64_t count) {
    std::vector<Lit> lits;
    for (size_t p = 0; p < n; ++p) {
      for (size_t c = 0; c < m; ++c) {
        if (match[c]) lits.push_back(y(p, c));
      }
    }
    int64_t lo = std::max<int64_t>(0, count - tables.noise_slack);
    int64_t hi = count + tables.noise_slack;
    if (lits.empty()) {
      // No candidate matches: satisfiable only if lo == 0.
      if (lo > 0) solver.AddClause({});  // empty clause: unsat
      return;
    }
    solver.AddAtMostK(lits, static_cast<size_t>(
                                std::min<int64_t>(hi, (int64_t)lits.size())));
    solver.AddAtLeastK(lits,
                       static_cast<size_t>(
                           std::min<int64_t>(lo, (int64_t)lits.size())));
  };
  auto match_mask = [&](auto&& pred) {
    std::vector<bool> mask(m, false);
    for (size_t c = 0; c < m; ++c) {
      mask[c] = pred(DecodePerson(candidates[c]));
    }
    return mask;
  };

  for (int64_t age = 0; age <= kMaxAge; ++age) {
    add_count(match_mask([age](const Record& r) { return r[kAge] == age; }),
              tables.by_age[static_cast<size_t>(age)]);
  }
  for (int64_t sex = 0; sex < 2; ++sex) {
    for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
      add_count(match_mask([sex, bucket](const Record& r) {
                  return r[kSex] == sex &&
                         static_cast<size_t>(r[kAge]) / 5 == bucket;
                }),
                tables.by_sex_age_bucket[static_cast<size_t>(sex) *
                                             kAgeBuckets +
                                         bucket]);
    }
  }
  for (int64_t race = 0; race < 6; ++race) {
    add_count(
        match_mask([race](const Record& r) { return r[kRace] == race; }),
        tables.by_race[static_cast<size_t>(race)]);
    for (int64_t sex = 0; sex < 2; ++sex) {
      for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
        add_count(match_mask([race, sex, bucket](const Record& r) {
                    return r[kRace] == race && r[kSex] == sex &&
                           static_cast<size_t>(r[kAge]) / 5 == bucket;
                  }),
                  tables.by_race_sex_age_bucket
                      [(static_cast<size_t>(race) * 2 +
                        static_cast<size_t>(sex)) *
                           kAgeBuckets +
                       bucket]);
      }
    }
  }
  for (int64_t h = 0; h < 2; ++h) {
    add_count(
        match_mask([h](const Record& r) { return r[kHispanic] == h; }),
        tables.by_hispanic[static_cast<size_t>(h)]);
    for (int64_t sex = 0; sex < 2; ++sex) {
      for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
        add_count(match_mask([h, sex, bucket](const Record& r) {
                    return r[kHispanic] == h && r[kSex] == sex &&
                           static_cast<size_t>(r[kAge]) / 5 == bucket;
                  }),
                  tables.by_hispanic_sex_age_bucket
                      [(static_cast<size_t>(h) * 2 +
                        static_cast<size_t>(sex)) *
                           kAgeBuckets +
                       bucket]);
      }
    }
  }

  // Median age (lower median), same widened one-sided bounds as the CSP.
  if (tables.median_age.has_value()) {
    int64_t med = *tables.median_age;
    auto add_at_least = [&](const std::vector<bool>& match, int64_t lo) {
      std::vector<Lit> lits;
      for (size_t p = 0; p < n; ++p) {
        for (size_t c = 0; c < m; ++c) {
          if (match[c]) lits.push_back(y(p, c));
        }
      }
      lo = std::max<int64_t>(0, lo - tables.noise_slack);
      if (static_cast<size_t>(lo) > lits.size()) {
        solver.AddClause({});  // unsatisfiable bound
        return;
      }
      solver.AddAtLeastK(lits, static_cast<size_t>(lo));
    };
    add_at_least(
        match_mask([med](const Record& r) { return r[kAge] <= med; }),
        static_cast<int64_t>((n + 1) / 2));
    add_at_least(
        match_mask([med](const Record& r) { return r[kAge] >= med; }),
        static_cast<int64_t>(n / 2 + 1));
  }

  Result<SatSolution> solved = [&]() -> Result<SatSolution> {
    if (backend.empty()) return solver.Solve(max_decisions);
    Result<std::unique_ptr<SatBackend>> engine = MakeSatBackend(backend);
    if (!engine.ok()) return engine.status();
    SatSolveOptions options;
    options.max_decisions = max_decisions;
    return solver.SolveWith(**engine, options);
  }();
  if (!solved.ok()) {
    if (solved.status().code() == StatusCode::kResourceExhausted) {
      // Budget ran out: a first-class outcome, not an error. The solver
      // is healthy; the block just needs more decisions than allowed.
      metrics::GetCounter("census.sat_budget_exhausted").Add(1);
      out.budget_exhausted = true;
      out.decisions = max_decisions;
      out.variables = solver.num_vars();
      return out;
    }
    return solved.status();
  }

  out.satisfiable = solved->satisfiable;
  out.decisions = solved->decisions;
  out.conflicts = solved->conflicts;
  out.variables = solver.num_vars();
  if (solved->satisfiable) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t c = 0; c < m; ++c) {
        if (solved->assignment[p * m + c]) {
          out.reconstructed.push_back(DecodePerson(candidates[c]));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace pso::census
