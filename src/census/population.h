// Synthetic block-level population for the Census reconstruction
// experiment (Section 1's 2010 Decennial narrative).
//
// Substitution note (DESIGN.md): the real experiment ran on the 2010
// Census edited file; we generate a population with census-shaped
// marginals, organized into small geographic blocks like the real
// tabulation geography. Block sizes follow the small-block regime where
// the published reconstruction was most effective.

#ifndef PSO_CENSUS_POPULATION_H_
#define PSO_CENSUS_POPULATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/generators.h"

namespace pso::census {

/// Attribute order of the census person schema.
enum PersonAttr : size_t {
  kAge = 0,
  kSex = 1,
  kRace = 2,
  kHispanic = 3,
};

/// Maximum age modeled (the CSP domain is (kMaxAge+1) * 2 * 6 * 2).
constexpr int64_t kMaxAge = 99;

/// The person schema used by the census pipeline (age capped at kMaxAge).
Universe MakeCensusBlockUniverse();

/// One tabulation block.
struct Block {
  size_t id = 0;
  Dataset persons;
  /// Stable synthetic person identifiers, parallel to `persons` rows
  /// (ground truth for scoring re-identification).
  std::vector<uint64_t> person_ids;
};

/// A collection of blocks plus the generating universe.
struct Population {
  Universe universe;
  std::vector<Block> blocks;
  size_t total_persons = 0;
};

/// Options for population generation.
struct PopulationOptions {
  size_t num_blocks = 100;
  size_t min_block_size = 2;
  size_t max_block_size = 12;
};

/// Draws a population: block sizes uniform in [min, max], persons i.i.d.
/// from the census universe.
Population GeneratePopulation(const PopulationOptions& options, Rng& rng);

/// Encodes a person record as a CSP domain index and back.
size_t EncodePerson(const Record& r);
Record DecodePerson(size_t index);

/// Size of the person-combination domain.
constexpr size_t kPersonDomain =
    static_cast<size_t>(kMaxAge + 1) * 2 * 6 * 2;

}  // namespace pso::census

#endif  // PSO_CENSUS_POPULATION_H_
