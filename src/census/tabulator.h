// SF1-style block tabulation.
//
// Mirrors (in miniature) the 2010 Summary File 1 tables the published
// reconstruction consumed: total population, single-year-of-age counts,
// sex by 5-year age bucket, race, Hispanic origin, and median age. The DP
// variant releases the same cells through the geometric mechanism — the
// post-2020 disclosure-avoidance posture — and is what defeats the
// reconstruction in the benches.

#ifndef PSO_CENSUS_TABULATOR_H_
#define PSO_CENSUS_TABULATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "census/population.h"
#include "common/rng.h"

namespace pso::census {

/// Number of 5-year age buckets covering [0, kMaxAge].
constexpr size_t kAgeBuckets = static_cast<size_t>(kMaxAge) / 5 + 1;

/// The published tables for one block.
struct BlockTables {
  size_t block_id = 0;
  int64_t total = 0;
  /// Single year of age: counts[age], age in [0, kMaxAge].
  std::vector<int64_t> by_age;
  /// Sex by age bucket: counts[sex * kAgeBuckets + bucket].
  std::vector<int64_t> by_sex_age_bucket;
  /// Race counts (6 cells).
  std::vector<int64_t> by_race;
  /// Hispanic-origin counts (2 cells).
  std::vector<int64_t> by_hispanic;
  /// P12A-I style: sex by age bucket iterated by race:
  /// counts[(race * 2 + sex) * kAgeBuckets + bucket] (240 cells).
  std::vector<int64_t> by_race_sex_age_bucket;
  /// P12H style: sex by age bucket iterated by Hispanic origin:
  /// counts[(hispanic * 2 + sex) * kAgeBuckets + bucket] (80 cells).
  std::vector<int64_t> by_hispanic_sex_age_bucket;
  /// Lower median age (absent for empty blocks or DP releases).
  std::optional<int64_t> median_age;
  /// Slack applied to every count when reconstructing: 0 for exact tables,
  /// > 0 for DP tables (uncertainty interval half-width).
  int64_t noise_slack = 0;
};

/// Exact tabulation of a block.
BlockTables Tabulate(const Block& block);

/// eps-DP tabulation: every cell goes through the geometric mechanism.
/// With `dp_median` false (default) the budget is split eps/6 across the
/// six count families (each record touches one cell per family, so
/// parallel composition applies within a family) and the median is
/// withheld; with `dp_median` true the split is eps/7 and the median is
/// released through the exponential mechanism (dp::DpMedian).
/// Negative noisy counts are clamped to 0. `noise_slack` is set so the
/// true count lies inside the interval with probability ~0.95 per cell.
BlockTables TabulateDp(const Block& block, double eps, Rng& rng,
                       bool dp_median = false);

}  // namespace pso::census

#endif  // PSO_CENSUS_TABULATOR_H_
