#include "census/reidentify.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace pso::census {

std::vector<CommercialEntry> SimulateCommercialDatabase(
    const Population& population, const CommercialOptions& options,
    Rng& rng) {
  PSO_CHECK(options.coverage >= 0.0 && options.coverage <= 1.0);
  std::vector<CommercialEntry> db;
  for (const Block& block : population.blocks) {
    for (size_t i = 0; i < block.persons.size(); ++i) {
      if (!rng.Bernoulli(options.coverage)) continue;
      CommercialEntry e;
      e.person_id = block.person_ids[i];
      e.block_id = block.id;
      e.sex = block.persons.At(i, kSex);
      e.age = block.persons.At(i, kAge);
      if (options.age_error_rate > 0.0 && options.max_age_error >= 1 &&
          rng.Bernoulli(options.age_error_rate)) {
        int64_t delta = 1 + rng.UniformInt(0, options.max_age_error - 1);
        if (rng.Bernoulli(0.5)) delta = -delta;
        e.age = std::clamp<int64_t>(e.age + delta, 0, kMaxAge);
      }
      db.push_back(e);
    }
  }
  return db;
}

double ReidentificationReport::putative_rate() const {
  return population == 0 ? 0.0
                         : static_cast<double>(putative) /
                               static_cast<double>(population);
}

double ReidentificationReport::confirmed_rate() const {
  return population == 0 ? 0.0
                         : static_cast<double>(confirmed) /
                               static_cast<double>(population);
}

double ReidentificationReport::precision() const {
  return putative == 0 ? 0.0
                       : static_cast<double>(confirmed) /
                             static_cast<double>(putative);
}

ReidentificationReport Reidentify(
    const Population& population,
    const std::vector<BlockReconstruction>& reconstructions,
    const std::vector<CommercialEntry>& commercial, int64_t age_tolerance,
    ThreadPool* pool) {
  PSO_CHECK(reconstructions.size() == population.blocks.size());
  PSO_TRACE_SPAN("census.reidentify");

  // Index reconstructions and truth by block id (read-only during the
  // parallel linkage below).
  std::map<size_t, const BlockReconstruction*> recon_by_block;
  for (const auto& r : reconstructions) recon_by_block[r.block_id] = &r;
  std::map<size_t, const Block*> block_by_id;
  for (const Block& b : population.blocks) block_by_id[b.id] = &b;

  ReidentificationReport report;
  report.population = population.total_persons;
  report.commercial_entries = commercial.size();

  struct LinkageCounts {
    size_t putative = 0;
    size_t confirmed = 0;
  };
  const size_t chunk = DefaultChunkSize(commercial.size());
  std::vector<LinkageCounts> counts(NumChunks(commercial.size(), chunk));

  ParallelFor(
      pool, commercial.size(),
      [&](size_t begin, size_t end) {
        LinkageCounts& c = counts[begin / chunk];
        for (size_t idx = begin; idx < end; ++idx) {
          const CommercialEntry& entry = commercial[idx];
          auto rit = recon_by_block.find(entry.block_id);
          if (rit == recon_by_block.end()) continue;
          const BlockReconstruction& recon = *rit->second;
          if (recon.reconstructed.empty()) continue;

          // Find reconstructed records matching (sex, age within
          // tolerance).
          const Record* match = nullptr;
          size_t matches = 0;
          for (const Record& r : recon.reconstructed) {
            if (r[kSex] == entry.sex &&
                std::llabs(r[kAge] - entry.age) <= age_tolerance) {
              ++matches;
              match = &r;
            }
          }
          if (matches != 1) continue;  // ambiguous or no match: no claim
          ++c.putative;

          // Confirmed iff the claimed record equals the true person's.
          const Block& block = *block_by_id.at(entry.block_id);
          for (size_t i = 0; i < block.person_ids.size(); ++i) {
            if (block.person_ids[i] == entry.person_id) {
              if (block.persons.record(i) == *match) ++c.confirmed;
              break;
            }
          }
        }
      },
      chunk);

  for (const LinkageCounts& c : counts) {
    report.putative += c.putative;
    report.confirmed += c.confirmed;
  }
  return report;
}

}  // namespace pso::census
