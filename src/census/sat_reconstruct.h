// SAT-based block reconstruction: the alternative back-end the published
// reconstruction literature used (the Census Bureau's experiments ran on
// commercial MIP solvers; academic reproductions commonly use SAT with
// cardinality encodings). Cross-validates the CSP engine: both must agree
// on satisfiability, and on uniquely-determined blocks both must return
// the ground truth.
//
// Encoding: one boolean y_{p,v} per (person p, candidate value v) with
// exactly-one per person; every table cell "count of persons matching S
// is in [lo, hi]" becomes at-least/at-most cardinality constraints (Sinz
// sequential counters) over { y_{p,v} : v in S }.

#ifndef PSO_CENSUS_SAT_RECONSTRUCT_H_
#define PSO_CENSUS_SAT_RECONSTRUCT_H_

#include <string>
#include <vector>

#include "census/tabulator.h"
#include "common/result.h"

namespace pso::census {

/// Outcome of the SAT reconstruction of one block.
struct SatReconstruction {
  bool satisfiable = false;
  /// The decision budget ran out before the solver reached an answer:
  /// a first-class outcome (the block is neither SAT nor UNSAT as far as
  /// this run can tell), not a solver failure. `satisfiable` is
  /// meaningless when set and `reconstructed` is empty.
  bool budget_exhausted = false;
  std::vector<Record> reconstructed;  ///< One consistent solution.
  size_t decisions = 0;               ///< Solver decisions used.
  size_t conflicts = 0;               ///< Conflicts hit during the search.
  size_t variables = 0;               ///< Total SAT variables (incl. aux).
};

/// Encodes `tables` as CNF and solves it. `max_decisions` bounds the
/// search (0 = unlimited); when it runs out the call still succeeds, with
/// `budget_exhausted` set on the result. `backend` names a registered
/// SatBackend ("dpll", "cdcl"); empty uses the process default
/// (DefaultSatBackendName(), steered by --sat-backend).
[[nodiscard]] Result<SatReconstruction> ReconstructBlockSat(
    const BlockTables& tables, size_t max_decisions = 0,
    const std::string& backend = "");

}  // namespace pso::census

#endif  // PSO_CENSUS_SAT_RECONSTRUCT_H_
