#include "census/tabulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dp/exponential.h"
#include "dp/mechanisms.h"

namespace pso::census {

BlockTables Tabulate(const Block& block) {
  BlockTables t;
  t.block_id = block.id;
  t.total = static_cast<int64_t>(block.persons.size());
  t.by_age.assign(static_cast<size_t>(kMaxAge) + 1, 0);
  t.by_sex_age_bucket.assign(2 * kAgeBuckets, 0);
  t.by_race.assign(6, 0);
  t.by_hispanic.assign(2, 0);
  t.by_race_sex_age_bucket.assign(6 * 2 * kAgeBuckets, 0);
  t.by_hispanic_sex_age_bucket.assign(2 * 2 * kAgeBuckets, 0);

  std::vector<int64_t> ages;
  for (const Record& r : block.persons.records()) {
    ++t.by_age[static_cast<size_t>(r[kAge])];
    size_t bucket = static_cast<size_t>(r[kAge]) / 5;
    size_t sex = static_cast<size_t>(r[kSex]);
    ++t.by_sex_age_bucket[sex * kAgeBuckets + bucket];
    ++t.by_race[static_cast<size_t>(r[kRace])];
    ++t.by_hispanic[static_cast<size_t>(r[kHispanic])];
    ++t.by_race_sex_age_bucket[(static_cast<size_t>(r[kRace]) * 2 + sex) *
                                   kAgeBuckets +
                               bucket];
    ++t.by_hispanic_sex_age_bucket
        [(static_cast<size_t>(r[kHispanic]) * 2 + sex) * kAgeBuckets +
         bucket];
    ages.push_back(r[kAge]);
  }
  if (!ages.empty()) {
    size_t mid = (ages.size() - 1) / 2;
    std::nth_element(ages.begin(), ages.begin() + mid, ages.end());
    t.median_age = ages[mid];
  }
  t.noise_slack = 0;
  return t;
}

BlockTables TabulateDp(const Block& block, double eps, Rng& rng,
                       bool dp_median) {
  PSO_CHECK(eps > 0.0);
  BlockTables t = Tabulate(block);
  const double eps_per_family = eps / (dp_median ? 7.0 : 6.0);

  auto noise = [&](std::vector<int64_t>& cells) {
    for (int64_t& c : cells) {
      c = std::max<int64_t>(0, dp::GeometricValue(c, eps_per_family, rng));
    }
  };
  noise(t.by_age);
  noise(t.by_sex_age_bucket);
  noise(t.by_race);
  noise(t.by_hispanic);
  noise(t.by_race_sex_age_bucket);
  noise(t.by_hispanic_sex_age_bucket);
  t.total = std::max<int64_t>(
      0, dp::GeometricValue(t.total, eps_per_family, rng));
  if (dp_median && !block.persons.empty()) {
    t.median_age = dp::DpMedian(block.persons, kAge, eps_per_family, rng);
  } else {
    t.median_age.reset();  // withheld under DP release
  }

  // 95% two-sided geometric quantile: P(|X| > s) = alpha^{s+1} ... solve
  // alpha^s <= 0.05 with alpha = e^{-eps'}.
  double alpha = std::exp(-eps_per_family);
  t.noise_slack = static_cast<int64_t>(
      std::ceil(std::log(0.05) / std::log(alpha)));
  if (t.noise_slack < 1) t.noise_slack = 1;
  return t;
}

}  // namespace pso::census
