// Table-to-microdata reconstruction (Garfinkel–Abowd–Martindale pipeline).
//
// Each block's published tables become count constraints over the person
// domain; the CountCsp solver enumerates consistent person multisets. A
// unique solution reconstructs the block exactly; with noisy (DP) tables
// the constraints widen and the solution space blows up, destroying
// accuracy — the two regimes of the E9 bench.

#ifndef PSO_CENSUS_RECONSTRUCT_H_
#define PSO_CENSUS_RECONSTRUCT_H_

#include <vector>

#include "census/tabulator.h"
#include "solver/csp.h"

namespace pso {
class ThreadPool;
}

namespace pso::census {

/// Outcome of reconstructing one block.
struct BlockReconstruction {
  size_t block_id = 0;
  size_t block_size = 0;
  size_t solutions_found = 0;  ///< Capped at the enumeration limit.
  bool unique = false;         ///< Exactly one solution, search exhaustive.
  bool exhausted = true;       ///< Search completed within node budget.
  /// A representative solution (the first found), decoded to records.
  std::vector<Record> reconstructed;
  /// How many reconstructed records exactly match ground truth, as a
  /// multiset intersection (order-free).
  size_t exact_matches = 0;
  /// True iff the ground-truth multiset appears among the enumerated
  /// solutions (always true when the search was exhaustive and the tables
  /// were exact).
  bool truth_found = false;
};

/// Options for reconstruction.
struct ReconstructOptions {
  size_t max_solutions = 64;    ///< Stop after this many solutions.
  size_t max_nodes = 2000000;   ///< Search budget per block.
  /// Worker pool for ReconstructPopulation (null = serial). Blocks are
  /// independent CSPs and carry no randomness, so results are identical
  /// at any thread count.
  ThreadPool* pool = nullptr;
};

/// Builds the CSP from `tables` and enumerates solutions. `truth` is used
/// only for scoring (exact_matches); pass the block's own records.
BlockReconstruction ReconstructBlock(const BlockTables& tables,
                                     const Dataset& truth,
                                     const ReconstructOptions& options = {});

/// Aggregate results over a population.
struct ReconstructionReport {
  size_t blocks = 0;
  size_t blocks_unique = 0;
  size_t blocks_exhausted = 0;
  size_t persons = 0;
  size_t persons_exactly_reconstructed = 0;

  double block_unique_fraction() const;
  double person_exact_fraction() const;
};

/// Reconstructs every block of `population` from `tables` (parallel
/// vectors) and aggregates.
ReconstructionReport ReconstructPopulation(
    const Population& population, const std::vector<BlockTables>& tables,
    const ReconstructOptions& options,
    std::vector<BlockReconstruction>* per_block = nullptr);

}  // namespace pso::census

#endif  // PSO_CENSUS_RECONSTRUCT_H_
