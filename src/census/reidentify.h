// Reconstruction-abetted re-identification (Section 1).
//
// The published attack matched reconstructed block records against 2010-era
// commercial databases carrying (name, address/block, age, sex). We
// simulate the commercial file: a fraction of the population appears in it
// (with its true identity), ages carry occasional errors, and coverage is
// incomplete — the documented quality of such data. Linkage:
// a commercial entry and a reconstructed record in the same block match on
// sex and age (within a tolerance); a unique match yields a *putative*
// re-identification, confirmed when the linked record equals the true
// person's. The headline numbers this regenerates: exact reconstruction
// for most of the population, confirmed re-identification orders of
// magnitude above the 0.003% prior disclosure-risk estimate.

#ifndef PSO_CENSUS_REIDENTIFY_H_
#define PSO_CENSUS_REIDENTIFY_H_

#include <vector>

#include "census/reconstruct.h"

namespace pso::census {

/// One row of the simulated commercial database.
struct CommercialEntry {
  uint64_t person_id = 0;  ///< True identity (name/address surrogate).
  size_t block_id = 0;
  int64_t age = 0;  ///< Possibly erroneous.
  int64_t sex = 0;
};

/// Commercial-data simulation parameters.
struct CommercialOptions {
  double coverage = 0.6;    ///< Fraction of persons present in the file.
  double age_error_rate = 0.10;  ///< P(entry's age is off).
  int64_t max_age_error = 3;     ///< Error magnitude, uniform in [1, max].
};

/// Samples a commercial database from the ground-truth population.
std::vector<CommercialEntry> SimulateCommercialDatabase(
    const Population& population, const CommercialOptions& options,
    Rng& rng);

/// Outcome of the linkage step.
struct ReidentificationReport {
  size_t commercial_entries = 0;
  size_t putative = 0;   ///< Unique (block, sex, age±tol) matches claimed.
  size_t confirmed = 0;  ///< Putative matches that hit the true person.
  size_t population = 0;

  double putative_rate() const;   ///< Putative / population.
  double confirmed_rate() const;  ///< Confirmed / population.
  double precision() const;       ///< Confirmed / putative.
};

/// Links `commercial` against per-block reconstructions. `age_tolerance`
/// mirrors the published attack's +/-1 year matching. The linkage is
/// read-only over the reconstructions, so a non-null `pool` splits the
/// commercial file across workers; per-chunk counts merge in index order
/// and the report is identical at any thread count.
ReidentificationReport Reidentify(
    const Population& population,
    const std::vector<BlockReconstruction>& reconstructions,
    const std::vector<CommercialEntry>& commercial,
    int64_t age_tolerance = 1, ThreadPool* pool = nullptr);

}  // namespace pso::census

#endif  // PSO_CENSUS_REIDENTIFY_H_
