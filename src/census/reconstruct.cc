#include "census/reconstruct.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace pso::census {

namespace {

// Adds "count of persons matching `match` lies in [c - slack, c + slack]"
// (clamped at 0).
void AddTableConstraint(CountCsp& csp, std::vector<bool> match, int64_t c,
                        int64_t slack) {
  int64_t lo = std::max<int64_t>(0, c - slack);
  int64_t hi = c + slack;
  csp.AddCountConstraint(std::move(match), lo, hi);
}

std::vector<bool> MaskWhere(
    const std::function<bool(const Record&)>& pred) {
  std::vector<bool> mask(kPersonDomain, false);
  for (size_t v = 0; v < kPersonDomain; ++v) {
    mask[v] = pred(DecodePerson(v));
  }
  return mask;
}

}  // namespace

BlockReconstruction ReconstructBlock(const BlockTables& tables,
                                     const Dataset& truth,
                                     const ReconstructOptions& options) {
  BlockReconstruction out;
  out.block_id = tables.block_id;
  const size_t n = static_cast<size_t>(tables.total);
  out.block_size = truth.size();

  if (n == 0) {
    out.unique = truth.size() == 0;
    out.solutions_found = 1;
    return out;
  }

  CountCsp csp(n, kPersonDomain);
  const int64_t slack = tables.noise_slack;

  // Single year of age.
  for (int64_t age = 0; age <= kMaxAge; ++age) {
    AddTableConstraint(
        csp, MaskWhere([age](const Record& r) { return r[kAge] == age; }),
        tables.by_age[static_cast<size_t>(age)], slack);
  }
  // Sex by age bucket.
  for (int64_t sex = 0; sex < 2; ++sex) {
    for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
      AddTableConstraint(
          csp,
          MaskWhere([sex, bucket](const Record& r) {
            return r[kSex] == sex &&
                   static_cast<size_t>(r[kAge]) / 5 == bucket;
          }),
          tables.by_sex_age_bucket[static_cast<size_t>(sex) * kAgeBuckets +
                                   bucket],
          slack);
    }
  }
  // Sex by age bucket iterated by race (P12A-I).
  for (int64_t race = 0; race < 6; ++race) {
    for (int64_t sex = 0; sex < 2; ++sex) {
      for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
        AddTableConstraint(
            csp,
            MaskWhere([race, sex, bucket](const Record& r) {
              return r[kRace] == race && r[kSex] == sex &&
                     static_cast<size_t>(r[kAge]) / 5 == bucket;
            }),
            tables.by_race_sex_age_bucket
                [(static_cast<size_t>(race) * 2 + static_cast<size_t>(sex)) *
                     kAgeBuckets +
                 bucket],
            slack);
      }
    }
  }
  // Sex by age bucket iterated by Hispanic origin (P12H-style).
  for (int64_t hisp = 0; hisp < 2; ++hisp) {
    for (int64_t sex = 0; sex < 2; ++sex) {
      for (size_t bucket = 0; bucket < kAgeBuckets; ++bucket) {
        AddTableConstraint(
            csp,
            MaskWhere([hisp, sex, bucket](const Record& r) {
              return r[kHispanic] == hisp && r[kSex] == sex &&
                     static_cast<size_t>(r[kAge]) / 5 == bucket;
            }),
            tables.by_hispanic_sex_age_bucket
                [(static_cast<size_t>(hisp) * 2 + static_cast<size_t>(sex)) *
                     kAgeBuckets +
                 bucket],
            slack);
      }
    }
  }
  // Race.
  for (int64_t race = 0; race < 6; ++race) {
    AddTableConstraint(
        csp, MaskWhere([race](const Record& r) { return r[kRace] == race; }),
        tables.by_race[static_cast<size_t>(race)], slack);
  }
  // Hispanic origin.
  for (int64_t h = 0; h < 2; ++h) {
    AddTableConstraint(
        csp, MaskWhere([h](const Record& r) { return r[kHispanic] == h; }),
        tables.by_hispanic[static_cast<size_t>(h)], slack);
  }
  // Median age: at least ceil(n/2) persons at or below it, and at least
  // floor(n/2)+1 at or above it (lower median). A noisy (DP) median only
  // supports the widened version of these bounds.
  if (tables.median_age.has_value()) {
    int64_t m = *tables.median_age;
    int64_t at_most =
        std::max<int64_t>(0, static_cast<int64_t>((n + 1) / 2) - slack);
    csp.AddCountConstraint(
        MaskWhere([m](const Record& r) { return r[kAge] <= m; }), at_most,
        static_cast<int64_t>(n));
    int64_t at_least =
        std::max<int64_t>(0, static_cast<int64_t>(n / 2 + 1) - slack);
    csp.AddCountConstraint(
        MaskWhere([m](const Record& r) { return r[kAge] >= m; }), at_least,
        static_cast<int64_t>(n));
  }

  CspStats stats;
  std::vector<std::vector<size_t>> solutions =
      csp.Enumerate(options.max_solutions, options.max_nodes, &stats);
  out.solutions_found = solutions.size();
  out.exhausted = stats.complete;
  out.unique = stats.complete && solutions.size() == 1;

  if (!solutions.empty()) {
    out.reconstructed.reserve(solutions.front().size());
    for (size_t v : solutions.front()) {
      out.reconstructed.push_back(DecodePerson(v));
    }
    // Multiset intersection with ground truth.
    std::map<Record, int64_t> truth_counts;
    for (const Record& r : truth.records()) ++truth_counts[r];
    for (const Record& r : out.reconstructed) {
      auto it = truth_counts.find(r);
      if (it != truth_counts.end() && it->second > 0) {
        --it->second;
        ++out.exact_matches;
      }
    }
    // Truth containment: encode truth as a sorted value multiset and look
    // for it among the solutions.
    std::vector<size_t> truth_encoded;
    truth_encoded.reserve(truth.size());
    for (const Record& r : truth.records()) {
      truth_encoded.push_back(EncodePerson(r));
    }
    std::sort(truth_encoded.begin(), truth_encoded.end());
    for (const auto& sol : solutions) {
      if (sol == truth_encoded) {
        out.truth_found = true;
        break;
      }
    }
  }
  return out;
}

double ReconstructionReport::block_unique_fraction() const {
  return blocks == 0 ? 0.0
                     : static_cast<double>(blocks_unique) /
                           static_cast<double>(blocks);
}

double ReconstructionReport::person_exact_fraction() const {
  return persons == 0 ? 0.0
                      : static_cast<double>(persons_exactly_reconstructed) /
                            static_cast<double>(persons);
}

ReconstructionReport ReconstructPopulation(
    const Population& population, const std::vector<BlockTables>& tables,
    const ReconstructOptions& options,
    std::vector<BlockReconstruction>* per_block) {
  PSO_CHECK(tables.size() == population.blocks.size());
  // Blocks are independent constraint problems: solve them in parallel
  // into index-addressed slots, then aggregate serially in block order.
  const size_t num_blocks = population.blocks.size();
  std::vector<BlockReconstruction> results(num_blocks);
  metrics::GetCounter("census.blocks_reconstructed").Add(num_blocks);
  metrics::ScopedSpan span("census.reconstruct_population");
  trace::Span trace_span("census.reconstruct_population");
  if (trace_span.active()) {
    trace_span.Arg("blocks", std::to_string(num_blocks));
  }
  ParallelFor(options.pool, num_blocks, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      trace::Span block_span("census.block");
      if (block_span.active()) {
        block_span.Arg("block", std::to_string(b));
      }
      results[b] =
          ReconstructBlock(tables[b], population.blocks[b].persons, options);
    }
  });

  ReconstructionReport report;
  for (size_t b = 0; b < num_blocks; ++b) {
    const BlockReconstruction& r = results[b];
    report.blocks += 1;
    report.blocks_unique += r.unique ? 1 : 0;
    report.blocks_exhausted += r.exhausted ? 1 : 0;
    report.persons += population.blocks[b].persons.size();
    report.persons_exactly_reconstructed += r.exact_matches;
  }
  if (per_block != nullptr) {
    per_block->insert(per_block->end(),
                      std::make_move_iterator(results.begin()),
                      std::make_move_iterator(results.end()));
  }
  return report;
}

}  // namespace pso::census
