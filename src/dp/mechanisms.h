// Differentially private primitives (Definition 1.2, Theorem 1.3).
//
// Each mechanism here satisfies eps-DP for the stated sensitivity; the
// accountant (accountant.h) composes privacy budgets and audit.h verifies
// the guarantees empirically.

#ifndef PSO_DP_MECHANISMS_H_
#define PSO_DP_MECHANISMS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "predicate/predicate.h"

namespace pso::dp {

/// The Laplace mechanism for a counting query (Theorem 1.3): returns
/// sum_i q(x_i) + Lap(1/eps). Counting queries have sensitivity 1, so the
/// output is eps-differentially private.
double LaplaceCount(const Dataset& data, const Predicate& query, double eps,
                    Rng& rng);

/// Laplace mechanism for an arbitrary real statistic with known L1
/// `sensitivity`: value + Lap(sensitivity / eps).
double LaplaceValue(double value, double sensitivity, double eps, Rng& rng);

/// Discrete (two-sided geometric) mechanism for an integer count:
/// count + Geom(alpha = e^{-eps}). eps-DP for sensitivity-1 counts and
/// integer-valued, which the census tabulator prefers.
int64_t GeometricCount(const Dataset& data, const Predicate& query,
                       double eps, Rng& rng);

/// Adds two-sided geometric noise with parameter alpha = e^{-eps} to an
/// integer value of sensitivity 1.
int64_t GeometricValue(int64_t value, double eps, Rng& rng);

/// eps-DP noisy histogram of attribute `attr`: one geometric-noised count
/// per domain value. A record affects exactly one bucket, so by parallel
/// composition the whole histogram is eps-DP.
std::vector<int64_t> NoisyHistogram(const Dataset& data, size_t attr,
                                    double eps, Rng& rng);

/// Randomized response on a binary attribute: each reported bit is kept
/// with probability e^eps/(1+e^eps) and flipped otherwise; the vector of
/// reports is eps-DP per record (local DP).
std::vector<int64_t> RandomizedResponse(const Dataset& data, size_t attr,
                                        double eps, Rng& rng);

/// Unbiased estimate of the true count of 1s from randomized-response
/// reports produced with the same eps.
double RandomizedResponseEstimate(const std::vector<int64_t>& reports,
                                  double eps);

}  // namespace pso::dp

#endif  // PSO_DP_MECHANISMS_H_
