#include "dp/mechanisms.h"

#include <cmath>

#include "common/check.h"

namespace pso::dp {

double LaplaceCount(const Dataset& data, const Predicate& query, double eps,
                    Rng& rng) {
  PSO_CHECK(eps > 0.0);
  double count = static_cast<double>(CountMatches(query, data));
  return count + rng.Laplace(1.0 / eps);
}

double LaplaceValue(double value, double sensitivity, double eps, Rng& rng) {
  PSO_CHECK(eps > 0.0);
  PSO_CHECK(sensitivity > 0.0);
  return value + rng.Laplace(sensitivity / eps);
}

int64_t GeometricCount(const Dataset& data, const Predicate& query,
                       double eps, Rng& rng) {
  int64_t count = static_cast<int64_t>(CountMatches(query, data));
  return GeometricValue(count, eps, rng);
}

int64_t GeometricValue(int64_t value, double eps, Rng& rng) {
  PSO_CHECK(eps > 0.0);
  return value + rng.TwoSidedGeometric(std::exp(-eps));
}

std::vector<int64_t> NoisyHistogram(const Dataset& data, size_t attr,
                                    double eps, Rng& rng) {
  PSO_CHECK(attr < data.schema().NumAttributes());
  const Attribute& a = data.schema().attribute(attr);
  std::vector<int64_t> counts(static_cast<size_t>(a.DomainSize()), 0);
  for (const Record& r : data.records()) {
    ++counts[static_cast<size_t>(r[attr] - a.MinValue())];
  }
  for (int64_t& c : counts) c = GeometricValue(c, eps, rng);
  return counts;
}

std::vector<int64_t> RandomizedResponse(const Dataset& data, size_t attr,
                                        double eps, Rng& rng) {
  PSO_CHECK(eps > 0.0);
  PSO_CHECK(attr < data.schema().NumAttributes());
  const Attribute& a = data.schema().attribute(attr);
  PSO_CHECK_MSG(a.MinValue() == 0 && a.MaxValue() == 1,
                "randomized response needs a binary attribute");
  double keep = std::exp(eps) / (1.0 + std::exp(eps));
  std::vector<int64_t> reports;
  reports.reserve(data.size());
  for (const Record& r : data.records()) {
    int64_t bit = r[attr];
    reports.push_back(rng.Bernoulli(keep) ? bit : 1 - bit);
  }
  return reports;
}

double RandomizedResponseEstimate(const std::vector<int64_t>& reports,
                                  double eps) {
  PSO_CHECK(eps > 0.0);
  double keep = std::exp(eps) / (1.0 + std::exp(eps));
  double ones = 0.0;
  for (int64_t b : reports) ones += static_cast<double>(b);
  double n = static_cast<double>(reports.size());
  // E[reported ones] = keep * true + (1-keep) * (n - true).
  return (ones - (1.0 - keep) * n) / (2.0 * keep - 1.0);
}

}  // namespace pso::dp
