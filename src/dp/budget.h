// Per-client differential-privacy budget accounting for a live query
// service.
//
// The accountant (accountant.h) reasons about one analyst's composed
// guarantee after the fact; the ledger enforces a budget *online*: every
// answered query charges its epsilon against the issuing client's
// remaining budget under basic composition, and a query that would push
// the client past the cap is rejected with kResourceExhausted before any
// answer is computed. This is the mechanism side of the Fundamental Law —
// "overly accurate answers to too many questions" is exactly what the cap
// refuses to hand out.
//
// Thread safety: all operations are safe to call concurrently (the query
// service answers batches on a worker pool). Charges to one client are
// serialized by the ledger mutex, so a client racing itself over the last
// epsilon sees exactly one success and one rejection — in either order,
// but never two of either — which the service tests pin under TSan.

#ifndef PSO_DP_BUDGET_H_
#define PSO_DP_BUDGET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace pso::dp {

/// One client's ledger entry at a point in time.
struct BudgetClientState {
  double spent_eps = 0.0;   ///< Epsilon consumed by answered queries.
  uint64_t answered = 0;    ///< Queries charged successfully.
  uint64_t rejected = 0;    ///< Queries refused with kResourceExhausted.
};

/// Thread-safe per-client epsilon ledger under basic composition.
class BudgetLedger {
 public:
  /// `budget_eps` caps each client's cumulative epsilon; <= 0 means
  /// unlimited (every charge succeeds — the exact-answer service mode).
  explicit BudgetLedger(double budget_eps);

  /// Atomically charges `eps` (>= 0) to `client`. On success returns the
  /// client's query ordinal (0-based count of previously answered
  /// queries), which the service uses as the per-client noise-stream
  /// counter. When the charge would exceed the budget, records a
  /// rejection and returns kResourceExhausted naming the client and its
  /// remaining budget.
  [[nodiscard]] Result<uint64_t> Charge(uint64_t client, double eps)
      PSO_EXCLUDES(mu_);

  /// The cap every client is held to (<= 0 = unlimited).
  double budget_eps() const { return budget_eps_; }

  /// Snapshot of one client's state (zeros for a never-seen client).
  BudgetClientState ClientState(uint64_t client) const PSO_EXCLUDES(mu_);

  /// Number of distinct clients that have issued at least one charge.
  size_t NumClients() const PSO_EXCLUDES(mu_);

  /// Totals across all clients.
  uint64_t TotalAnswered() const PSO_EXCLUDES(mu_);
  uint64_t TotalRejected() const PSO_EXCLUDES(mu_);

  /// Client ids with at least one rejected charge, ascending (std::map
  /// iteration: deterministic reporting order).
  std::vector<uint64_t> RejectedClients() const PSO_EXCLUDES(mu_);

 private:
  const double budget_eps_;
  mutable Mutex mu_ PSO_LOCK_ORDER(kBudget){LockRank::kBudget,
                                            "dp.budget_ledger"};
  std::map<uint64_t, BudgetClientState> clients_ PSO_GUARDED_BY(mu_);
};

}  // namespace pso::dp

#endif  // PSO_DP_BUDGET_H_
