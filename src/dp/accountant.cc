#include "dp/accountant.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pso::dp {

void PrivacyAccountant::Spend(double eps, double delta, std::string label) {
  PSO_CHECK(eps >= 0.0);
  PSO_CHECK(delta >= 0.0 && delta < 1.0);
  spends_.push_back(PrivacySpend{eps, delta, std::move(label)});
}

PrivacyGuarantee PrivacyAccountant::BasicComposition() const {
  PrivacyGuarantee g;
  for (const auto& s : spends_) {
    g.eps += s.eps;
    g.delta += s.delta;
  }
  return g;
}

PrivacyGuarantee PrivacyAccountant::AdvancedComposition(
    double delta_slack) const {
  PSO_CHECK(delta_slack > 0.0 && delta_slack < 1.0);
  if (spends_.empty()) return {0.0, 0.0};
  double max_eps = 0.0;
  double sum_delta = 0.0;
  for (const auto& s : spends_) {
    max_eps = std::max(max_eps, s.eps);
    sum_delta += s.delta;
  }
  double k = static_cast<double>(spends_.size());
  double eps = std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) * max_eps +
               k * max_eps * (std::exp(max_eps) - 1.0);
  return {eps, sum_delta + delta_slack};
}

PrivacyGuarantee PrivacyAccountant::BestBound(double delta_slack) const {
  PrivacyGuarantee basic = BasicComposition();
  PrivacyGuarantee advanced = AdvancedComposition(delta_slack);
  return (advanced.eps < basic.eps) ? advanced : basic;
}

}  // namespace pso::dp
