// Privacy-loss accounting.
//
// The paper highlights that differential privacy is closed under
// composition "albeit with worse privacy loss parameter" (Section 1.1).
// The accountant makes that degradation concrete: it tracks a sequence of
// (eps, delta) releases and reports the composed guarantee under basic and
// advanced composition.

#ifndef PSO_DP_ACCOUNTANT_H_
#define PSO_DP_ACCOUNTANT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pso::dp {

/// A single differentially private release.
struct PrivacySpend {
  double eps = 0.0;
  double delta = 0.0;
  std::string label;  ///< What was released (for the ledger).
};

/// A composed (eps, delta) guarantee.
struct PrivacyGuarantee {
  double eps = 0.0;
  double delta = 0.0;
};

/// Tracks cumulative privacy loss across releases on the same data.
class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;

  /// Records a release of `eps`-DP (optionally with `delta`).
  void Spend(double eps, double delta = 0.0, std::string label = "");

  size_t num_releases() const { return spends_.size(); }
  const std::vector<PrivacySpend>& ledger() const { return spends_; }

  /// Basic (sequential) composition: eps and delta add up.
  PrivacyGuarantee BasicComposition() const;

  /// Advanced composition (Dwork–Rothblum–Vadhan): for k releases of the
  /// same eps, the composition is (eps', k*delta + delta_slack)-DP with
  /// eps' = sqrt(2k ln(1/delta_slack)) * eps + k * eps * (e^eps - 1).
  /// Heterogeneous ledgers are bounded using the max eps.
  PrivacyGuarantee AdvancedComposition(double delta_slack) const;

  /// The tighter of basic and advanced at the given slack.
  PrivacyGuarantee BestBound(double delta_slack) const;

 private:
  std::vector<PrivacySpend> spends_;
};

}  // namespace pso::dp

#endif  // PSO_DP_ACCOUNTANT_H_
