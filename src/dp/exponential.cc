#include "dp/exponential.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pso::dp {

size_t ExponentialMechanism(const std::vector<double>& scores, double eps,
                            double sensitivity, Rng& rng) {
  PSO_CHECK(!scores.empty());
  PSO_CHECK(eps > 0.0);
  PSO_CHECK(sensitivity > 0.0);
  double best = *std::max_element(scores.begin(), scores.end());
  std::vector<double> weights(scores.size());
  const double scale = eps / (2.0 * sensitivity);
  for (size_t i = 0; i < scores.size(); ++i) {
    weights[i] = std::exp(scale * (scores[i] - best));
  }
  return rng.Discrete(weights);
}

int64_t DpQuantile(const Dataset& data, size_t attr, double q, double eps,
                   Rng& rng) {
  PSO_CHECK(attr < data.schema().NumAttributes());
  PSO_CHECK(q >= 0.0 && q <= 1.0);
  PSO_CHECK(!data.empty());
  const Attribute& a = data.schema().attribute(attr);
  const int64_t lo = a.MinValue();
  const int64_t hi = a.MaxValue();

  // Rank of each domain value: #records strictly below it. Computed by a
  // counting pass so the whole utility vector costs O(n + domain).
  std::vector<int64_t> counts(static_cast<size_t>(hi - lo + 1), 0);
  for (const Record& r : data.records()) {
    ++counts[static_cast<size_t>(r[attr] - lo)];
  }
  const double target = q * static_cast<double>(data.size());
  std::vector<double> scores(counts.size());
  int64_t below = 0;
  for (size_t v = 0; v < counts.size(); ++v) {
    // The rank interval occupied by value v is [below, below + count(v)];
    // utility is the distance from q*n to that interval (0 if inside), so
    // values carrying the quantile get the top score.
    double lo_rank = static_cast<double>(below);
    double hi_rank = static_cast<double>(below + counts[v]);
    if (target < lo_rank) {
      scores[v] = -(lo_rank - target);
    } else if (target > hi_rank) {
      scores[v] = -(target - hi_rank);
    } else {
      scores[v] = 0.0;
    }
    below += counts[v];
  }
  size_t idx = ExponentialMechanism(scores, eps, /*sensitivity=*/1.0, rng);
  return lo + static_cast<int64_t>(idx);
}

int64_t DpMedian(const Dataset& data, size_t attr, double eps, Rng& rng) {
  return DpQuantile(data, attr, 0.5, eps, rng);
}

int64_t DpMode(const Dataset& data, size_t attr, double eps, Rng& rng) {
  PSO_CHECK(attr < data.schema().NumAttributes());
  PSO_CHECK(!data.empty());
  const Attribute& a = data.schema().attribute(attr);
  std::vector<double> scores(static_cast<size_t>(a.DomainSize()), 0.0);
  for (const Record& r : data.records()) {
    scores[static_cast<size_t>(r[attr] - a.MinValue())] += 1.0;
  }
  size_t idx = ExponentialMechanism(scores, eps, /*sensitivity=*/1.0, rng);
  return a.MinValue() + static_cast<int64_t>(idx);
}

}  // namespace pso::dp
