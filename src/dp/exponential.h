// The exponential mechanism and DP selection/quantile estimation.
//
// The paper notes that "differentially private computations were developed
// for a large variety of tasks, including the computation of statistical
// estimates" (Section 1.1). This module provides the selection workhorse
// behind many of them: McSherry–Talwar's exponential mechanism, plus the
// derived DP median/quantile used by the census tabulator's DP mode.

#ifndef PSO_DP_EXPONENTIAL_H_
#define PSO_DP_EXPONENTIAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pso::dp {

/// Samples an index from `scores` with probability proportional to
/// exp(eps * score / (2 * sensitivity)). eps-DP when each score's
/// sensitivity to one record change is at most `sensitivity`.
/// Numerically stable (max-shifted). Requires non-empty scores.
size_t ExponentialMechanism(const std::vector<double>& scores, double eps,
                            double sensitivity, Rng& rng);

/// eps-DP q-quantile of attribute `attr` over its domain, via the
/// exponential mechanism with the standard utility
///   u(v) = -| #{i : x_i[attr] < v} - q * n |
/// (sensitivity 1). Returns a domain value.
int64_t DpQuantile(const Dataset& data, size_t attr, double q, double eps,
                   Rng& rng);

/// eps-DP median (DpQuantile at q = 0.5).
int64_t DpMedian(const Dataset& data, size_t attr, double eps, Rng& rng);

/// eps-DP mode: the most frequent value of `attr` via exponential
/// selection with u(v) = count(v) (sensitivity 1).
int64_t DpMode(const Dataset& data, size_t attr, double eps, Rng& rng);

}  // namespace pso::dp

#endif  // PSO_DP_EXPONENTIAL_H_
