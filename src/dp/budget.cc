#include "dp/budget.h"

#include "common/str_util.h"

namespace pso::dp {

namespace {

// Absolute slack for the budget comparison: repeated floating-point
// charges (k * eps) can land a hair above the cap they should exactly
// meet; a nano-epsilon of grace keeps "10 charges of 0.1 against a budget
// of 1.0" admitting all ten on every platform.
constexpr double kBudgetSlack = 1e-9;

}  // namespace

BudgetLedger::BudgetLedger(double budget_eps) : budget_eps_(budget_eps) {}

Result<uint64_t> BudgetLedger::Charge(uint64_t client, double eps) {
  if (eps < 0.0) {
    return Status::InvalidArgument(
        StrFormat("negative epsilon charge %.6f", eps));
  }
  double spent = 0.0;
  {
    MutexLock lock(mu_);
    BudgetClientState& state = clients_[client];
    if (budget_eps_ <= 0.0 ||
        state.spent_eps + eps <= budget_eps_ + kBudgetSlack) {
      state.spent_eps += eps;
      return state.answered++;
    }
    ++state.rejected;
    spent = state.spent_eps;
  }
  // Format the rejection off the ledger lock: StrFormat allocates, and a
  // burst of over-budget clients must not serialize the admission path
  // behind message rendering (dp.budget_ledger outranks every
  // observability lock — see common/lock_rank.h).
  return Status::ResourceExhausted(StrFormat(
      "client %llu over budget: spent %.6f + query %.6f > cap %.6f",
      static_cast<unsigned long long>(client), spent, eps, budget_eps_));
}

BudgetClientState BudgetLedger::ClientState(uint64_t client) const {
  MutexLock lock(mu_);
  auto it = clients_.find(client);
  return it == clients_.end() ? BudgetClientState{} : it->second;
}

size_t BudgetLedger::NumClients() const {
  MutexLock lock(mu_);
  return clients_.size();
}

uint64_t BudgetLedger::TotalAnswered() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, state] : clients_) total += state.answered;
  return total;
}

uint64_t BudgetLedger::TotalRejected() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, state] : clients_) total += state.rejected;
  return total;
}

std::vector<uint64_t> BudgetLedger::RejectedClients() const {
  MutexLock lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(clients_.size());
  for (const auto& [id, state] : clients_) {
    if (state.rejected > 0) out.push_back(id);
  }
  return out;
}

}  // namespace pso::dp
