#include "dp/audit.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace pso::dp {

AuditResult AuditPrivacyLoss(const BucketizedMechanism& mechanism,
                             size_t trials, Rng& rng, size_t min_support) {
  PSO_CHECK(trials > 0);
  metrics::GetCounter("dp.audit_trials").Add(2 * trials);  // both inputs
  metrics::ScopedSpan span("dp.audit");
  PSO_TRACE_SPAN("dp.audit");
  std::map<int64_t, std::pair<size_t, size_t>> histogram;
  for (size_t t = 0; t < trials; ++t) {
    ++histogram[mechanism(0, rng)].first;
    ++histogram[mechanism(1, rng)].second;
  }

  AuditResult out;
  out.trials_per_input = trials;
  double n = static_cast<double>(trials);
  for (const auto& [bucket, counts] : histogram) {
    if (counts.first < min_support || counts.second < min_support) continue;
    double p = static_cast<double>(counts.first) / n;
    double q = static_cast<double>(counts.second) / n;
    double loss = std::fabs(std::log(p / q));
    if (loss > out.empirical_eps) out.empirical_eps = loss;
    ++out.buckets_compared;
  }
  return out;
}

}  // namespace pso::dp
