// Empirical differential-privacy audit.
//
// Definition 1.2 bounds Pr[M(x) in T] <= e^eps Pr[M(x') in T] for all
// neighboring x, x' and all events T. The audit estimates the realized
// privacy loss of a black-box mechanism on a chosen worst-case neighboring
// pair by histogramming many runs on each input and taking the maximum
// log-ratio over output buckets with adequate support. The estimate is a
// statistical *lower bound* on the true eps: an audit value far above the
// claimed eps falsifies the claim (we use it to validate Theorem 1.3 and to
// show that the *non*-private exact count has unbounded loss).

#ifndef PSO_DP_AUDIT_H_
#define PSO_DP_AUDIT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace pso::dp {

/// A randomized mechanism under audit: maps (input selector, rng) to a
/// discrete output bucket. The audit calls it with selector 0 for x and
/// 1 for the neighboring x'.
using BucketizedMechanism = std::function<int64_t(int which, Rng& rng)>;

/// Result of an audit.
struct AuditResult {
  double empirical_eps = 0.0;  ///< Max observed |log ratio| over buckets.
  size_t buckets_compared = 0;
  size_t trials_per_input = 0;
};

/// Runs `trials` executions on each of the two neighboring inputs and
/// returns the maximal absolute log-probability-ratio over all buckets
/// where both inputs have at least `min_support` observations.
///
/// Finite-sample note: maximizing over B buckets inflates the estimate by
/// roughly sqrt(2 ln(B) * 2 / min_support); callers comparing eps-hat to a
/// declared eps should allow that bias (or raise min_support).
AuditResult AuditPrivacyLoss(const BucketizedMechanism& mechanism,
                             size_t trials, Rng& rng,
                             size_t min_support = 20);

}  // namespace pso::dp

#endif  // PSO_DP_AUDIT_H_
