#include "common/metrics.h"

#include <algorithm>

#include "common/str_util.h"

namespace pso::metrics {

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& Registry::GetTimer(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

void Registry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

Snapshot Registry::TakeSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers[name] = Snapshot::TimerValue{timer->seconds(), timer->count()};
  }
  snap.gauges = gauges_;
  return snap;
}

void Registry::MergeFrom(const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) GetCounter(name).Add(value);
  for (const auto& [name, tv] : snap.timers) {
    Timer& t = GetTimer(name);
    // Record() bumps count by one; reproduce the source's interval count.
    if (tv.count > 0) {
      t.Record(tv.seconds);
      for (uint64_t i = 1; i < tv.count; ++i) t.Record(0.0);
    }
  }
  MutexLock lock(mu_);
  for (const auto& [name, value] : snap.gauges) gauges_[name] = value;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
  gauges_.clear();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Trims trailing zeros off a %.9f rendering so JSON numbers stay tidy
// ("0.25" not "0.250000000") while keeping nanosecond resolution.
std::string FormatDouble(double v) {
  std::string s = StrFormat("%.9f", v);
  size_t last = s.find_last_not_of('0');
  if (last != std::string::npos) {
    if (s[last] == '.') ++last;  // keep one digit after the point
    s.erase(last + 1);
  }
  return s;
}

}  // namespace

std::string SnapshotToJson(const Snapshot& snap) {
  std::string out = "{";
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "}, \"timers\": {";
  first = true;
  for (const auto& [name, tv] : snap.timers) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": {\"seconds\": %s, \"count\": %llu}",
                     JsonEscape(name).c_str(),
                     FormatDouble(tv.seconds).c_str(),
                     static_cast<unsigned long long>(tv.count));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %s", JsonEscape(name).c_str(),
                     FormatDouble(value).c_str());
  }
  out += "}}";
  return out;
}

std::string SnapshotToText(const Snapshot& snap) {
  if (snap.empty()) return "(no metrics recorded)\n";
  size_t width = 0;
  for (const auto& [name, v] : snap.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.timers) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.gauges) width = std::max(width, name.size());
  const int w = static_cast<int>(width);

  std::string out;
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      out += StrFormat("  %-*s %llu\n", w, name.c_str(),
                       static_cast<unsigned long long>(value));
    }
  }
  if (!snap.timers.empty()) {
    out += "timers:\n";
    for (const auto& [name, tv] : snap.timers) {
      out += StrFormat("  %-*s %.6fs over %llu span(s)\n", w, name.c_str(),
                       tv.seconds, static_cast<unsigned long long>(tv.count));
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      out += StrFormat("  %-*s %.6g\n", w, name.c_str(), value);
    }
  }
  return out;
}

}  // namespace pso::metrics
