#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/str_util.h"

namespace pso::metrics {

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0) || std::isnan(v)) return 0;  // zero, negative, NaN
  // frexp leaves the exponent unspecified for infinities, so route +inf
  // to the overflow bucket before touching it.
  if (std::isinf(v)) return kNumBuckets - 1;
  int exp = 0;
  // frexp: v = frac * 2^exp with frac in [0.5, 1), so the octave
  // containing v is [2^(exp-1), 2^exp). This is exact double-bit
  // arithmetic — no log() rounding to disagree across platforms.
  const double frac = std::frexp(v, &exp);
  const int octave = exp - 1;
  if (octave < kMinExponent) return 0;
  if (octave > kMaxExponent - 1) return kNumBuckets - 1;
  // frac-0.5 in [0, 0.5); scale to a sub-bucket in [0, kSubBuckets).
  const int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  return 1 + (octave - kMinExponent) * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0.0;
  if (i >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExponent);
  const int rel = i - 1;
  const int octave = kMinExponent + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::BucketUpperBound(int i) {
  if (i < 0) return 0.0;
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(i + 1);
}

void Histogram::Record(double v) {
  buckets_[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point accumulation: integer adds commute, so the merged sum is
  // bit-identical at any thread count (double adds would not be).
  // Negative and non-finite values contribute 0 to the sum.
  if (v > 0.0 && std::isfinite(v)) {
    sum_fp_.fetch_add(static_cast<uint64_t>(v * kSumScale),
                      std::memory_order_relaxed);
  }
  if (!std::isnan(v)) {
    uint64_t cur = min_bits_.load(std::memory_order_relaxed);
    while (v < std::bit_cast<double>(cur) &&
           !min_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(v),
                                            std::memory_order_relaxed)) {
    }
    cur = max_bits_.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(cur) &&
           !max_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(v),
                                            std::memory_order_relaxed)) {
    }
  }
}

void Histogram::MergeParts(uint64_t count, uint64_t sum_fp, double mn,
                           double mx, const std::map<int, uint64_t>& buckets) {
  if (count == 0) return;
  for (const auto& [idx, n] : buckets) {
    if (idx >= 0 && idx < kNumBuckets) {
      buckets_[static_cast<size_t>(idx)].fetch_add(n,
                                                   std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_fp_.fetch_add(sum_fp, std::memory_order_relaxed);
  uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (mn < std::bit_cast<double>(cur) &&
         !min_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(mn),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (mx > std::bit_cast<double>(cur) &&
         !max_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(mx),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  if (count() == 0) return 0.0;
  const double m =
      std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  return std::isinf(m) ? 0.0 : m;  // only NaNs were recorded
}

double Histogram::max() const {
  if (count() == 0) return 0.0;
  const double m =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return std::isinf(m) ? 0.0 : m;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_fp_.store(0, std::memory_order_relaxed);
  min_bits_.store(0x7FF0000000000000ull, std::memory_order_relaxed);
  max_bits_.store(0xFFF0000000000000ull, std::memory_order_relaxed);
}

int Snapshot::HistogramValue::BucketAtQuantile(double q) const {
  if (count == 0) return -1;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile under the empirical CDF, 1-based: the
  // smallest bucket whose cumulative tally reaches it.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cum = 0;
  for (const auto& [idx, n] : buckets) {
    cum += n;
    if (cum >= rank) return idx;
  }
  return buckets.empty() ? -1 : buckets.rbegin()->first;
}

double Snapshot::HistogramValue::ValueAtQuantile(double q) const {
  const int idx = BucketAtQuantile(q);
  if (idx < 0) return 0.0;
  const double upper = Histogram::BucketUpperBound(idx);
  // Clamp to the observed range: the overflow bucket's upper bound is
  // +inf, and the true p100 can never exceed max (nor p0 undercut min).
  return std::clamp(upper, min, max);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& Registry::GetTimer(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

Snapshot Registry::TakeSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers[name] = Snapshot::TimerValue{timer->seconds(), timer->count()};
  }
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramValue hv;
    hv.count = hist->count();
    hv.sum_fp = hist->sum_fp();
    hv.min = hist->min();
    hv.max = hist->max();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->bucket(i);
      if (n != 0) hv.buckets[i] = n;
    }
    snap.histograms[name] = std::move(hv);
  }
  snap.gauges = gauges_;
  return snap;
}

void Registry::MergeFrom(const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) GetCounter(name).Add(value);
  for (const auto& [name, tv] : snap.timers) {
    Timer& t = GetTimer(name);
    // Record() bumps count by one; reproduce the source's interval count.
    if (tv.count > 0) {
      t.Record(tv.seconds);
      for (uint64_t i = 1; i < tv.count; ++i) t.Record(0.0);
    }
  }
  for (const auto& [name, hv] : snap.histograms) {
    GetHistogram(name).MergeParts(hv.count, hv.sum_fp, hv.min, hv.max,
                                  hv.buckets);
  }
  MutexLock lock(mu_);
  for (const auto& [name, value] : snap.gauges) gauges_[name] = value;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  gauges_.clear();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Trims trailing zeros off a %.9f rendering so JSON numbers stay tidy
// ("0.25" not "0.250000000") while keeping nanosecond resolution.
// Non-finite values render as null: JSON has no nan/inf literal, and
// "%.9f" would otherwise emit one and corrupt the whole document.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  std::string s = StrFormat("%.9f", v);
  size_t last = s.find_last_not_of('0');
  if (last != std::string::npos) {
    if (s[last] == '.') ++last;  // keep one digit after the point
    s.erase(last + 1);
  }
  return s;
}

// The quantiles every summary renders, in display order.
constexpr struct {
  const char* key;
  double q;
} kQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95},
    {"p99", 0.99}, {"p999", 0.999},
};

std::string HistogramValueToJson(const Snapshot::HistogramValue& hv) {
  std::string out = StrFormat(
      "{\"count\": %llu, \"sum\": %s, \"sum_fp\": %llu, \"mean\": %s, "
      "\"min\": %s, \"max\": %s",
      static_cast<unsigned long long>(hv.count),
      FormatDouble(hv.sum()).c_str(),
      static_cast<unsigned long long>(hv.sum_fp),
      FormatDouble(hv.mean()).c_str(), FormatDouble(hv.min).c_str(),
      FormatDouble(hv.max).c_str());
  for (const auto& [key, q] : kQuantiles) {
    out += StrFormat(", \"%s\": %s", key,
                     FormatDouble(hv.ValueAtQuantile(q)).c_str());
  }
  out += ", \"buckets\": {";
  bool first = true;
  for (const auto& [idx, n] : hv.buckets) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%d\": %llu", idx, static_cast<unsigned long long>(n));
  }
  out += "}}";
  return out;
}

}  // namespace

std::string SnapshotToJson(const Snapshot& snap) {
  std::string out = "{";
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "}, \"timers\": {";
  first = true;
  for (const auto& [name, tv] : snap.timers) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": {\"seconds\": %s, \"count\": %llu}",
                     JsonEscape(name).c_str(),
                     FormatDouble(tv.seconds).c_str(),
                     static_cast<unsigned long long>(tv.count));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %s", JsonEscape(name).c_str(),
                     FormatDouble(value).c_str());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hv] : snap.histograms) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %s", JsonEscape(name).c_str(),
                     HistogramValueToJson(hv).c_str());
  }
  out += "}}";
  return out;
}

std::string SnapshotToText(const Snapshot& snap) {
  if (snap.empty()) return "(no metrics recorded)\n";
  size_t width = 0;
  for (const auto& [name, v] : snap.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.timers) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.gauges) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.histograms) {
    width = std::max(width, name.size());
  }
  const int w = static_cast<int>(width);

  std::string out;
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      out += StrFormat("  %-*s %llu\n", w, name.c_str(),
                       static_cast<unsigned long long>(value));
    }
  }
  if (!snap.timers.empty()) {
    out += "timers:\n";
    for (const auto& [name, tv] : snap.timers) {
      out += StrFormat("  %-*s %.6fs over %llu span(s)\n", w, name.c_str(),
                       tv.seconds, static_cast<unsigned long long>(tv.count));
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      out += StrFormat("  %-*s %.6g\n", w, name.c_str(), value);
    }
  }
  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, hv] : snap.histograms) {
      out += StrFormat(
          "  %-*s n=%llu mean=%.3gs p50=%.3gs p90=%.3gs p95=%.3gs "
          "p99=%.3gs p999=%.3gs max=%.3gs\n",
          w, name.c_str(), static_cast<unsigned long long>(hv.count),
          hv.mean(), hv.ValueAtQuantile(0.50), hv.ValueAtQuantile(0.90),
          hv.ValueAtQuantile(0.95), hv.ValueAtQuantile(0.99),
          hv.ValueAtQuantile(0.999), hv.max);
    }
  }
  return out;
}

namespace {

// Prometheus metric names may only contain [a-zA-Z0-9_:] and must not
// start with a digit. Everything else (the registry's dots included)
// maps to '_'.
std::string PromName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// Prometheus sample values are free-form floats; "+Inf"/"-Inf"/"NaN" are
// the format's spellings for non-finite values.
std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return FormatDouble(v);
}

}  // namespace

std::string ExpositionToProm(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = PromName(name) + "_total";
    out += StrFormat("# HELP %s Event total (pso counter %s)\n", n.c_str(),
                     PromName(name).c_str());
    out += StrFormat("# TYPE %s counter\n", n.c_str());
    out += StrFormat("%s %llu\n", n.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = PromName(name);
    out += StrFormat("# HELP %s Point-in-time observation (pso gauge)\n",
                     n.c_str());
    out += StrFormat("# TYPE %s gauge\n", n.c_str());
    out += StrFormat("%s %s\n", n.c_str(), PromDouble(value).c_str());
  }
  for (const auto& [name, tv] : snap.timers) {
    // A same-named histogram (the ScopedSpan dual-record case) exposes
    // _sum/_count itself; emitting the summary too would publish the
    // metric under two conflicting TYPEs, which scrapers reject.
    if (snap.histograms.count(name)) continue;
    // A pso timer is (total seconds, interval count) — expose it as a
    // quantile-less summary, the Prometheus type with that exact shape.
    const std::string n = PromName(name) + "_seconds";
    out += StrFormat("# HELP %s Accumulated wall-clock time (pso timer)\n",
                     n.c_str());
    out += StrFormat("# TYPE %s summary\n", n.c_str());
    out += StrFormat("%s_sum %s\n", n.c_str(),
                     PromDouble(tv.seconds).c_str());
    out += StrFormat("%s_count %llu\n", n.c_str(),
                     static_cast<unsigned long long>(tv.count));
  }
  for (const auto& [name, hv] : snap.histograms) {
    const std::string n = PromName(name) + "_seconds";
    out += StrFormat("# HELP %s Latency distribution (pso histogram)\n",
                     n.c_str());
    out += StrFormat("# TYPE %s histogram\n", n.c_str());
    // Prometheus buckets are CUMULATIVE and keyed by inclusive upper
    // bound; the series must end with le="+Inf" equal to _count.
    uint64_t cum = 0;
    for (const auto& [idx, count] : hv.buckets) {
      cum += count;
      const double ub = Histogram::BucketUpperBound(idx);
      if (std::isinf(ub)) continue;  // folded into +Inf below
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", n.c_str(),
                       PromDouble(ub).c_str(),
                       static_cast<unsigned long long>(cum));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", n.c_str(),
                     static_cast<unsigned long long>(hv.count));
    out += StrFormat("%s_sum %s\n", n.c_str(), PromDouble(hv.sum()).c_str());
    out += StrFormat("%s_count %llu\n", n.c_str(),
                     static_cast<unsigned long long>(hv.count));
  }
  return out;
}

}  // namespace pso::metrics
