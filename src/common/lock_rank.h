// Global lock-rank table: a total order over every pso::Mutex in the
// tree that makes "can this ever deadlock?" a local question.
//
// Rule: a thread may only acquire a mutex of STRICTLY LOWER rank than
// every mutex it already holds. Outermost locks carry the highest rank
// (kService), leaf locks the lowest (kParallel). The motivating nesting
// is a service handler charging the budget ledger, which in turn bumps a
// metrics counter: service > budget > metrics, so that chain is legal in
// exactly one direction. Two mutexes of the SAME rank must never nest.
//
// The order is enforced three ways:
//   1. Statically: PSO_LOCK_ORDER(rank) chains every ranked mutex into a
//      global acquired_before/acquired_after order that clang's
//      -Wthread-safety-beta analysis checks at compile time (the
//      negcompile gate keeps the diagnostic alive).
//   2. Dynamically: with -DPSO_DEADLOCK_CHECK=ON, pso::Mutex verifies
//      each acquisition against a per-thread held-lock stack and a
//      global observed-pair graph (common/mutex.h).
//   3. Lint: tools/pso_lint.py rule `mutex-rank` rejects any pso::Mutex
//      declaration in src/ that does not name a rank.
//
// Adding a rank: insert the enumerator at its level, extend
// LockRankName(), and add the boundary-sentinel pair below, keeping the
// chain in strictly descending rank order.

#ifndef PSO_COMMON_LOCK_RANK_H_
#define PSO_COMMON_LOCK_RANK_H_

#include <cstdint>

#include "common/thread_annotations.h"

namespace pso {

/// Rank of a mutex in the global acquisition order. Higher rank =
/// acquired earlier (outermost). A thread holding a mutex of rank r may
/// only acquire mutexes of rank strictly less than r.
enum class LockRank : int8_t {
  kUnranked = -1,  ///< Default-constructed Mutex (tests, scratch locks).
  kParallel = 0,   ///< ThreadPool / TaskGroup / ParallelFor state. Leaf.
  kMetrics = 1,    ///< metrics::Registry.
  kTrace = 2,      ///< trace::Collector.
  kLog = 3,        ///< log sink core.
  kProgress = 4,   ///< progress::Watchdog (may log under its lock).
  kBudget = 5,     ///< dp::BudgetLedger.
  kService = 6,    ///< Service / process-config registries. Outermost.
};

/// Human-readable rank name for verifier witnesses and docs.
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "unranked";
    case LockRank::kParallel: return "parallel";
    case LockRank::kMetrics: return "metrics";
    case LockRank::kTrace: return "trace";
    case LockRank::kLog: return "log";
    case LockRank::kProgress: return "progress";
    case LockRank::kBudget: return "budget";
    case LockRank::kService: return "service";
  }
  return "invalid";
}

namespace lock_order {

/// Zero-size sentinel capability used only inside thread-safety
/// attributes. Never locked at runtime; exists so clang can thread every
/// ranked mutex into one global acquired-before chain.
class PSO_CAPABILITY("mutex") LockRankBoundary {};

// One above/below sentinel pair per rank, chained in acquisition order
// (descending rank). A mutex of rank r sits between above_<r> and
// below_<r>, so any rank-r mutex is transitively acquired_before every
// mutex of rank < r — across modules that never include each other.
inline LockRankBoundary above_kService;
inline LockRankBoundary below_kService PSO_ACQUIRED_AFTER(above_kService);
inline LockRankBoundary above_kBudget PSO_ACQUIRED_AFTER(below_kService);
inline LockRankBoundary below_kBudget PSO_ACQUIRED_AFTER(above_kBudget);
inline LockRankBoundary above_kProgress PSO_ACQUIRED_AFTER(below_kBudget);
inline LockRankBoundary below_kProgress PSO_ACQUIRED_AFTER(above_kProgress);
inline LockRankBoundary above_kLog PSO_ACQUIRED_AFTER(below_kProgress);
inline LockRankBoundary below_kLog PSO_ACQUIRED_AFTER(above_kLog);
inline LockRankBoundary above_kTrace PSO_ACQUIRED_AFTER(below_kLog);
inline LockRankBoundary below_kTrace PSO_ACQUIRED_AFTER(above_kTrace);
inline LockRankBoundary above_kMetrics PSO_ACQUIRED_AFTER(below_kTrace);
inline LockRankBoundary below_kMetrics PSO_ACQUIRED_AFTER(above_kMetrics);
inline LockRankBoundary above_kParallel PSO_ACQUIRED_AFTER(below_kMetrics);
inline LockRankBoundary below_kParallel PSO_ACQUIRED_AFTER(above_kParallel);

}  // namespace lock_order

}  // namespace pso

/// Declares a mutex's position in the global lock order. Attach to the
/// declaration, before the initializer:
///
///   mutable Mutex mu_ PSO_LOCK_ORDER(kMetrics){LockRank::kMetrics,
///                                              "metrics.registry"};
///
/// The token must be a LockRank enumerator name (kService .. kParallel).
#define PSO_LOCK_ORDER(rank_token)                              \
  PSO_ACQUIRED_AFTER(::pso::lock_order::above_##rank_token)     \
  PSO_ACQUIRED_BEFORE(::pso::lock_order::below_##rank_token)

#endif  // PSO_COMMON_LOCK_RANK_H_
