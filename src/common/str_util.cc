#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace pso {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace pso
