#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "common/metrics.h"  // JsonEscape
#include "common/str_util.h"

namespace pso::trace {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread tracing state: the stack of open spans, the parent inherited
// from a parallel region, and this thread's display track id.
struct ThreadState {
  std::vector<uint64_t> span_stack;
  uint64_t inherited_parent = 0;
  uint32_t track = 0;  // 0 = not yet assigned
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

std::atomic<uint32_t> g_next_track{1};

uint32_t CurrentTrack() {
  ThreadState& s = State();
  if (s.track == 0) {
    s.track = g_next_track.fetch_add(1, std::memory_order_relaxed);
  }
  return s.track;
}

uint64_t ParentForNewEvent() {
  const ThreadState& s = State();
  return s.span_stack.empty() ? s.inherited_parent : s.span_stack.back();
}

}  // namespace

Collector& Collector::Global() {
  static Collector* instance = new Collector();  // never destroyed
  return *instance;
}

void Collector::Enable(size_t capacity) {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
  capacity_ = capacity == 0 ? 1 : capacity;
  epoch_ns_ = SteadyNowNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Collector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Collector::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
  epoch_ns_ = SteadyNowNs();
}

uint64_t Collector::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<Event> Collector::TakeEvents() const {
  MutexLock lock(mu_);
  return events_;
}

uint64_t Collector::NowNs() const {
  if (!enabled()) return 0;
  uint64_t epoch;
  {
    MutexLock lock(mu_);
    epoch = epoch_ns_;
  }
  uint64_t now = SteadyNowNs();
  return now > epoch ? now - epoch : 0;
}

void Collector::Record(Event event) {
  MutexLock lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

uint64_t Collector::NextSpanId() {
  return next_span_id_.fetch_add(1, std::memory_order_relaxed);
}

void Collector::SetFlushPath(const std::string& path) {
  MutexLock lock(mu_);
  flush_path_ = path;
}

void Collector::FlushToConfiguredPath() const {
  std::string path;
  bool have_events;
  {
    MutexLock lock(mu_);
    path = flush_path_;
    have_events = !events_.empty();
  }
  if (path.empty() || !have_events) return;
  WriteChromeJson(path);
}

uint64_t CurrentSpanId() { return ParentForNewEvent(); }

ContextScope::ContextScope(uint64_t parent_span_id) {
  ThreadState& s = State();
  saved_ = s.inherited_parent;
  s.inherited_parent = parent_span_id;
}

ContextScope::~ContextScope() { State().inherited_parent = saved_; }

Span::Span(const char* name) : active_(Enabled()), name_(name) {
  if (!active_) return;
  Collector& c = Collector::Global();
  id_ = c.NextSpanId();
  parent_ = ParentForNewEvent();
  start_ns_ = c.NowNs();
  State().span_stack.push_back(id_);
}

void Span::Arg(const char* key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

Span::~Span() {
  if (!active_) return;
  ThreadState& s = State();
  // Pop our frame. Scoped construction order guarantees we are on top of
  // this thread's stack.
  if (!s.span_stack.empty() && s.span_stack.back() == id_) {
    s.span_stack.pop_back();
  }
  Collector& c = Collector::Global();
  Event e;
  e.kind = Event::Kind::kSpan;
  e.name = name_;
  e.id = id_;
  e.parent = parent_;
  e.track = CurrentTrack();
  e.start_ns = start_ns_;
  uint64_t end = c.NowNs();
  e.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
  e.args = std::move(args_);
  c.Record(std::move(e));
}

void Instant(const char* name,
             std::vector<std::pair<std::string, std::string>> args) {
  if (!Enabled()) return;
  Collector& c = Collector::Global();
  Event e;
  e.kind = Event::Kind::kInstant;
  e.name = name;
  e.parent = ParentForNewEvent();
  e.track = CurrentTrack();
  e.start_ns = c.NowNs();
  e.args = std::move(args);
  c.Record(std::move(e));
}

void CounterSample(const char* name, double value) {
  if (!Enabled()) return;
  Collector& c = Collector::Global();
  Event e;
  e.kind = Event::Kind::kCounter;
  e.name = name;
  e.parent = ParentForNewEvent();
  e.track = CurrentTrack();
  e.start_ns = c.NowNs();
  e.value = value;
  c.Record(std::move(e));
}

namespace {

std::string FormatMicros(uint64_t ns) {
  // Chrome expects microseconds; keep nanosecond resolution as a decimal.
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(ns / 1000),
                   static_cast<unsigned long long>(ns % 1000));
}

void AppendArgsJson(std::string& out, const Event& e) {
  out += "\"args\":{";
  bool first = true;
  if (e.kind == Event::Kind::kSpan) {
    out += StrFormat("\"id\":\"%llx\",\"parent\":\"%llx\"",
                     static_cast<unsigned long long>(e.id),
                     static_cast<unsigned long long>(e.parent));
    first = false;
  } else if (e.kind == Event::Kind::kCounter) {
    out += StrFormat("\"value\":%.9g", e.value);
    first = false;
  }
  for (const auto& [key, value] : e.args) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":\"%s\"", metrics::JsonEscape(key).c_str(),
                     metrics::JsonEscape(value).c_str());
  }
  out += "}";
}

}  // namespace

std::string Collector::ChromeJson() const {
  std::vector<Event> events = TakeEvents();
  uint64_t dropped_events = dropped();

  std::string out = "{\n\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"pso\"}}";
  for (const Event& e : events) {
    out += ",\n{";
    out += StrFormat("\"name\":\"%s\",", metrics::JsonEscape(e.name).c_str());
    switch (e.kind) {
      case Event::Kind::kSpan:
        out += StrFormat("\"ph\":\"X\",\"ts\":%s,\"dur\":%s,",
                         FormatMicros(e.start_ns).c_str(),
                         FormatMicros(e.dur_ns).c_str());
        break;
      case Event::Kind::kInstant:
        out += StrFormat("\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,",
                         FormatMicros(e.start_ns).c_str());
        break;
      case Event::Kind::kCounter:
        out += StrFormat("\"ph\":\"C\",\"ts\":%s,",
                         FormatMicros(e.start_ns).c_str());
        break;
    }
    out += StrFormat("\"pid\":1,\"tid\":%u,", e.track);
    AppendArgsJson(out, e);
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n";
  out += StrFormat("\"otherData\":{\"dropped_events\":\"%llu\"}\n}\n",
                   static_cast<unsigned long long>(dropped_events));
  return out;
}

namespace {

// Aggregation node for the deterministic text tree: all events with the
// same name under the same (aggregated) parent merge into one node.
struct TreeNode {
  uint64_t span_count = 0;
  uint64_t instant_count = 0;
  uint64_t counter_count = 0;
  std::map<std::string, TreeNode> children;  // ordered => stable output
};

void RenderTree(const TreeNode& node, const std::string& indent,
                std::string& out) {
  for (const auto& [name, child] : node.children) {
    std::string counts;
    if (child.span_count > 0) {
      counts += StrFormat("- %s x%llu", name.c_str(),
                          static_cast<unsigned long long>(child.span_count));
    }
    if (child.instant_count > 0) {
      counts += StrFormat("%s! %s x%llu", counts.empty() ? "" : "  ",
                          name.c_str(),
                          static_cast<unsigned long long>(
                              child.instant_count));
    }
    if (child.counter_count > 0) {
      counts += StrFormat("%s# %s x%llu", counts.empty() ? "" : "  ",
                          name.c_str(),
                          static_cast<unsigned long long>(
                              child.counter_count));
    }
    out += indent + counts + "\n";
    RenderTree(child, indent + "  ", out);
  }
}

}  // namespace

std::string Collector::TextTree() const {
  std::vector<Event> events = TakeEvents();

  // Resolve each span id to its chain of ancestor NAMES (ids and tracks
  // are run-dependent; names are not). Events whose parent span was
  // dropped or is still open aggregate at the root.
  std::map<uint64_t, const Event*> span_by_id;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kSpan) span_by_id[e.id] = &e;
  }
  auto path_of = [&](const Event& e) {
    std::vector<const std::string*> path;  // leaf..root, reversed below
    path.push_back(&e.name);
    uint64_t p = e.parent;
    while (p != 0) {
      auto it = span_by_id.find(p);
      if (it == span_by_id.end()) break;
      path.push_back(&it->second->name);
      p = it->second->parent;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  TreeNode root;
  for (const Event& e : events) {
    std::vector<const std::string*> path = path_of(e);
    TreeNode* node = &root;
    for (const std::string* name : path) node = &node->children[*name];
    switch (e.kind) {
      case Event::Kind::kSpan:
        ++node->span_count;
        break;
      case Event::Kind::kInstant:
        ++node->instant_count;
        break;
      case Event::Kind::kCounter:
        ++node->counter_count;
        break;
    }
  }

  std::string out = "trace-tree v1\n";
  RenderTree(root, "", out);
  return out;
}

bool Collector::WriteChromeJson(const std::string& path) const {
  std::string json = ChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
    std::fprintf(stderr, "cannot write trace to '%s'\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    return false;
  }
  std::fclose(f);
  return true;
}

}  // namespace pso::trace
