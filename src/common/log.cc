#include "common/log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"  // JsonEscape
#include "common/mutex.h"
#include "common/str_util.h"
#include "common/thread_annotations.h"

namespace pso::log {

namespace {

std::atomic<int> g_min_level{static_cast<int>(Level::kWarn)};
std::atomic<bool> g_deterministic{false};
std::atomic<bool> g_initialized{false};

// Sink + deterministic buffer state, guarded by one mutex: logging is a
// diagnostics path, not a throughput path. A class (not loose statics)
// so every member carries PSO_GUARDED_BY and the thread-safety analysis
// checks each access against mu_.
class SinkCore {
 public:
  /// The never-destroyed singleton (log statements may run from static
  /// destructors; heap allocation sidesteps destruction-order issues).
  static SinkCore& Get() {
    static SinkCore* s = new SinkCore();
    return *s;
  }

  bool SetFile(const std::string& path) PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (owns_file_ && file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
    owns_file_ = false;
    if (!path.empty()) {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open log sink '%s'\n", path.c_str());
        return false;
      }
      file_ = f;
      owns_file_ = true;
    }
    return true;
  }

  void SetCapture(bool on) PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    capture_ = on;
    if (!on) captured_.clear();
  }

  std::string TakeCaptured() PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::string out = std::move(captured_);
    captured_.clear();
    return out;
  }

  /// Writes one already-rendered line straight to the sink.
  void Emit(const std::string& line) PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    WriteLineLocked(line);
  }

  /// Queues a deterministic-mode line under its rank key.
  void Buffer(std::vector<uint64_t> key, std::string line) PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    buffer_.push_back({std::move(key), std::move(line)});
  }

  /// Sorts and writes everything queued by Buffer().
  void Flush() PSO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    FlushLocked();
  }

 private:
  SinkCore() = default;

  void WriteLineLocked(const std::string& line) PSO_REQUIRES(mu_) {
    if (capture_) {
      captured_ += line;
      captured_ += '\n';
      return;
    }
    std::FILE* f = file_ != nullptr ? file_ : stderr;
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
    std::fflush(f);
  }

  void FlushLocked() PSO_REQUIRES(mu_) {
    std::stable_sort(buffer_.begin(), buffer_.end(),
                     [](const Buffered& a, const Buffered& b) {
                       return a.key < b.key;
                     });
    for (const auto& m : buffer_) WriteLineLocked(m.line);
    buffer_.clear();
  }

  struct Buffered {
    std::vector<uint64_t> key;
    std::string line;
  };

  Mutex mu_ PSO_LOCK_ORDER(kLog){LockRank::kLog, "log.sink"};
  std::FILE* file_ PSO_GUARDED_BY(mu_) = nullptr;  // null => stderr
  bool owns_file_ PSO_GUARDED_BY(mu_) = false;
  bool capture_ PSO_GUARDED_BY(mu_) = false;
  std::string captured_ PSO_GUARDED_BY(mu_);
  /// Deterministic-mode messages awaiting rank-ordered flush.
  std::vector<Buffered> buffer_ PSO_GUARDED_BY(mu_);
};

// Logger time origin: first use of Now(). Log timestamps are display
// metadata, not measurements — they stay out of the metrics facade.
uint64_t NowMicros() {
  static const auto epoch =
      std::chrono::steady_clock::now();  // pso-lint: allow(wall-clock)
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() -  // pso-lint: allow(wall-clock)
          epoch)
          .count());
}

// Small per-thread display id, assigned on first log from a thread.
std::atomic<uint32_t> g_next_thread_id{1};
uint32_t ThreadId() {
  thread_local uint32_t id = 0;
  if (id == 0) id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Deterministic-mode rank state: the hierarchical key prefix for this
// thread plus the next sequence number within it. Top-level (empty
// prefix) keys come from a global program-order counter.
struct RankState {
  std::vector<uint64_t> prefix;
  uint64_t seq = 0;
};
RankState& Rank() {
  thread_local RankState state;
  return state;
}
std::atomic<uint64_t> g_serial_order{0};

std::vector<uint64_t> NextKey() {
  RankState& r = Rank();
  if (r.prefix.empty()) {
    return {g_serial_order.fetch_add(1, std::memory_order_relaxed)};
  }
  std::vector<uint64_t> key = r.prefix;
  key.push_back(r.seq++);
  return key;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_initialized.store(true, std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(g_min_level.load(std::memory_order_relaxed));
}

bool ShouldLog(Level level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

bool ParseLevel(const std::string& name, Level* out) {
  if (name == "debug") *out = Level::kDebug;
  else if (name == "info") *out = Level::kInfo;
  else if (name == "warn") *out = Level::kWarn;
  else if (name == "error") *out = Level::kError;
  else return false;
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "unknown";
}

bool SetFileSink(const std::string& path) {
  bool ok = SinkCore::Get().SetFile(path);
  g_initialized.store(true, std::memory_order_relaxed);
  return ok;
}

void CaptureToString(bool on) {
  SinkCore::Get().SetCapture(on);
  g_initialized.store(true, std::memory_order_relaxed);
}

std::string TakeCaptured() { return SinkCore::Get().TakeCaptured(); }

void SetDeterministic(bool on) {
  if (!on) SinkCore::Get().Flush();
  g_deterministic.store(on, std::memory_order_relaxed);
  g_initialized.store(true, std::memory_order_relaxed);
}

bool DeterministicMode() {
  return g_deterministic.load(std::memory_order_relaxed);
}

void Flush() { SinkCore::Get().Flush(); }

bool Initialized() {
  return g_initialized.load(std::memory_order_relaxed);
}

RankScope::RankScope(const std::vector<uint64_t>& region_key, uint64_t rank) {
  RankState& r = Rank();
  saved_prefix_ = std::move(r.prefix);
  saved_seq_ = r.seq;
  r.prefix = region_key;
  r.prefix.push_back(rank);
  r.seq = 0;
}

RankScope::~RankScope() {
  RankState& r = Rank();
  r.prefix = std::move(saved_prefix_);
  r.seq = saved_seq_;
}

std::vector<uint64_t> AllocateRegionKey() { return NextKey(); }

LogMessage::LogMessage(Level level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage& LogMessage::Field(const char* key, const std::string& value) {
  fields_.emplace_back(key, value);
  return *this;
}
LogMessage& LogMessage::Field(const char* key, const char* value) {
  fields_.emplace_back(key, value);
  return *this;
}
LogMessage& LogMessage::FieldInt(const char* key, long long value) {
  fields_.emplace_back(key, StrFormat("%lld", value));
  return *this;
}
LogMessage& LogMessage::FieldUint(const char* key, unsigned long long value) {
  fields_.emplace_back(key, StrFormat("%llu", value));
  return *this;
}
LogMessage& LogMessage::Field(const char* key, double value) {
  fields_.emplace_back(key, StrFormat("%.9g", value));
  return *this;
}
LogMessage& LogMessage::Field(const char* key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

LogMessage& LogMessage::operator<<(const std::string& text) {
  msg_ += text;
  return *this;
}
LogMessage& LogMessage::operator<<(const char* text) {
  msg_ += text;
  return *this;
}
LogMessage& LogMessage::AppendInt(long long v) {
  msg_ += StrFormat("%lld", v);
  return *this;
}
LogMessage& LogMessage::AppendUint(unsigned long long v) {
  msg_ += StrFormat("%llu", v);
  return *this;
}
LogMessage& LogMessage::operator<<(double v) {
  msg_ += StrFormat("%.9g", v);
  return *this;
}
LogMessage& LogMessage::operator<<(bool v) {
  msg_ += v ? "true" : "false";
  return *this;
}

LogMessage::~LogMessage() {
  const bool deterministic = DeterministicMode();
  std::string line = "{";
  line += StrFormat("\"level\":\"%s\"", LevelName(level_));
  if (!deterministic) {
    // Wall-clock and scheduling detail are exactly what deterministic
    // mode must omit to stay byte-identical across thread counts.
    line += StrFormat(",\"ts_us\":%llu,\"thread\":%u",
                      static_cast<unsigned long long>(NowMicros()),
                      ThreadId());
  }
  line += StrFormat(",\"src\":\"%s:%d\"",
                    metrics::JsonEscape(Basename(file_)).c_str(), line_);
  line += StrFormat(",\"msg\":\"%s\"", metrics::JsonEscape(msg_).c_str());
  if (!fields_.empty()) {
    line += ",\"fields\":{";
    bool first = true;
    for (const auto& [key, value] : fields_) {
      if (!first) line += ",";
      first = false;
      line += StrFormat("\"%s\":\"%s\"", metrics::JsonEscape(key).c_str(),
                        metrics::JsonEscape(value).c_str());
    }
    line += "}";
  }
  line += "}";

  if (deterministic) {
    SinkCore::Get().Buffer(NextKey(), std::move(line));
    return;
  }
  SinkCore::Get().Emit(line);
}

}  // namespace pso::log
