#include "common/log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/metrics.h"  // JsonEscape
#include "common/str_util.h"

namespace pso::log {

namespace {

std::atomic<int> g_min_level{static_cast<int>(Level::kWarn)};
std::atomic<bool> g_deterministic{false};
std::atomic<bool> g_initialized{false};

// Sink + deterministic buffer state, guarded by one mutex: logging is a
// diagnostics path, not a throughput path.
struct SinkState {
  std::FILE* file = nullptr;  // null => stderr
  bool owns_file = false;
  bool capture = false;
  std::string captured;
  struct Buffered {
    std::vector<uint64_t> key;
    std::string line;
  };
  std::vector<Buffered> buffer;  // deterministic-mode messages
};

std::mutex& Mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

SinkState& Sink() {
  static SinkState* s = new SinkState();  // never destroyed
  return *s;
}

// Logger time origin: first use of Now().
uint64_t NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// Small per-thread display id, assigned on first log from a thread.
std::atomic<uint32_t> g_next_thread_id{1};
uint32_t ThreadId() {
  thread_local uint32_t id = 0;
  if (id == 0) id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Deterministic-mode rank state: the hierarchical key prefix for this
// thread plus the next sequence number within it. Top-level (empty
// prefix) keys come from a global program-order counter.
struct RankState {
  std::vector<uint64_t> prefix;
  uint64_t seq = 0;
};
RankState& Rank() {
  thread_local RankState state;
  return state;
}
std::atomic<uint64_t> g_serial_order{0};

std::vector<uint64_t> NextKey() {
  RankState& r = Rank();
  if (r.prefix.empty()) {
    return {g_serial_order.fetch_add(1, std::memory_order_relaxed)};
  }
  std::vector<uint64_t> key = r.prefix;
  key.push_back(r.seq++);
  return key;
}

// Writes one already-rendered line to the active sink. Caller holds Mu().
void WriteLineLocked(const std::string& line) {
  SinkState& s = Sink();
  if (s.capture) {
    s.captured += line;
    s.captured += '\n';
    return;
  }
  std::FILE* f = s.file != nullptr ? s.file : stderr;
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  std::fflush(f);
}

void FlushLocked() {
  SinkState& s = Sink();
  std::stable_sort(s.buffer.begin(), s.buffer.end(),
                   [](const SinkState::Buffered& a,
                      const SinkState::Buffered& b) { return a.key < b.key; });
  for (const auto& m : s.buffer) WriteLineLocked(m.line);
  s.buffer.clear();
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_initialized.store(true, std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(g_min_level.load(std::memory_order_relaxed));
}

bool ShouldLog(Level level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

bool ParseLevel(const std::string& name, Level* out) {
  if (name == "debug") *out = Level::kDebug;
  else if (name == "info") *out = Level::kInfo;
  else if (name == "warn") *out = Level::kWarn;
  else if (name == "error") *out = Level::kError;
  else return false;
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "unknown";
}

bool SetFileSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(Mu());
  SinkState& s = Sink();
  if (s.owns_file && s.file != nullptr) std::fclose(s.file);
  s.file = nullptr;
  s.owns_file = false;
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open log sink '%s'\n", path.c_str());
      return false;
    }
    s.file = f;
    s.owns_file = true;
  }
  g_initialized.store(true, std::memory_order_relaxed);
  return true;
}

void CaptureToString(bool on) {
  std::lock_guard<std::mutex> lock(Mu());
  SinkState& s = Sink();
  s.capture = on;
  if (!on) s.captured.clear();
  g_initialized.store(true, std::memory_order_relaxed);
}

std::string TakeCaptured() {
  std::lock_guard<std::mutex> lock(Mu());
  std::string out = std::move(Sink().captured);
  Sink().captured.clear();
  return out;
}

void SetDeterministic(bool on) {
  {
    std::lock_guard<std::mutex> lock(Mu());
    if (!on) FlushLocked();
  }
  g_deterministic.store(on, std::memory_order_relaxed);
  g_initialized.store(true, std::memory_order_relaxed);
}

bool DeterministicMode() {
  return g_deterministic.load(std::memory_order_relaxed);
}

void Flush() {
  std::lock_guard<std::mutex> lock(Mu());
  FlushLocked();
}

bool Initialized() {
  return g_initialized.load(std::memory_order_relaxed);
}

RankScope::RankScope(const std::vector<uint64_t>& region_key, uint64_t rank) {
  RankState& r = Rank();
  saved_prefix_ = std::move(r.prefix);
  saved_seq_ = r.seq;
  r.prefix = region_key;
  r.prefix.push_back(rank);
  r.seq = 0;
}

RankScope::~RankScope() {
  RankState& r = Rank();
  r.prefix = std::move(saved_prefix_);
  r.seq = saved_seq_;
}

std::vector<uint64_t> AllocateRegionKey() { return NextKey(); }

LogMessage::LogMessage(Level level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage& LogMessage::Field(const char* key, const std::string& value) {
  fields_.emplace_back(key, value);
  return *this;
}
LogMessage& LogMessage::Field(const char* key, const char* value) {
  fields_.emplace_back(key, value);
  return *this;
}
LogMessage& LogMessage::FieldInt(const char* key, long long value) {
  fields_.emplace_back(key, StrFormat("%lld", value));
  return *this;
}
LogMessage& LogMessage::FieldUint(const char* key, unsigned long long value) {
  fields_.emplace_back(key, StrFormat("%llu", value));
  return *this;
}
LogMessage& LogMessage::Field(const char* key, double value) {
  fields_.emplace_back(key, StrFormat("%.9g", value));
  return *this;
}
LogMessage& LogMessage::Field(const char* key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

LogMessage& LogMessage::operator<<(const std::string& text) {
  msg_ += text;
  return *this;
}
LogMessage& LogMessage::operator<<(const char* text) {
  msg_ += text;
  return *this;
}
LogMessage& LogMessage::AppendInt(long long v) {
  msg_ += StrFormat("%lld", v);
  return *this;
}
LogMessage& LogMessage::AppendUint(unsigned long long v) {
  msg_ += StrFormat("%llu", v);
  return *this;
}
LogMessage& LogMessage::operator<<(double v) {
  msg_ += StrFormat("%.9g", v);
  return *this;
}
LogMessage& LogMessage::operator<<(bool v) {
  msg_ += v ? "true" : "false";
  return *this;
}

LogMessage::~LogMessage() {
  const bool deterministic = DeterministicMode();
  std::string line = "{";
  line += StrFormat("\"level\":\"%s\"", LevelName(level_));
  if (!deterministic) {
    // Wall-clock and scheduling detail are exactly what deterministic
    // mode must omit to stay byte-identical across thread counts.
    line += StrFormat(",\"ts_us\":%llu,\"thread\":%u",
                      static_cast<unsigned long long>(NowMicros()),
                      ThreadId());
  }
  line += StrFormat(",\"src\":\"%s:%d\"",
                    metrics::JsonEscape(Basename(file_)).c_str(), line_);
  line += StrFormat(",\"msg\":\"%s\"", metrics::JsonEscape(msg_).c_str());
  if (!fields_.empty()) {
    line += ",\"fields\":{";
    bool first = true;
    for (const auto& [key, value] : fields_) {
      if (!first) line += ",";
      first = false;
      line += StrFormat("\"%s\":\"%s\"", metrics::JsonEscape(key).c_str(),
                        metrics::JsonEscape(value).c_str());
    }
    line += "}";
  }
  line += "}";

  if (deterministic) {
    std::vector<uint64_t> key = NextKey();
    std::lock_guard<std::mutex> lock(Mu());
    Sink().buffer.push_back({std::move(key), std::move(line)});
    return;
  }
  std::lock_guard<std::mutex> lock(Mu());
  WriteLineLocked(line);
}

}  // namespace pso::log
