#include "common/progress.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace pso::progress {

namespace {

// Renders a stat value compactly: integers without a fraction (work
// counters), everything else with enough digits for objectives.
std::string StatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

}  // namespace

ProgressReporter::ProgressReporter(const char* name, uint64_t every)
    : name_(name), every_(std::max<uint64_t>(1, every)), next_at_(every_) {
  Watchdog::Global().NotifyProgress();  // construction is progress
}

ProgressReporter::~ProgressReporter() {
  // Final beat: even a solve killed before its first cadence boundary
  // (tiny decision budget) leaves heartbeat evidence behind.
  if (last_work_ > 0) {
    Emit("final", last_work_, last_stats_, num_last_stats_);
  }
  Watchdog::Global().NotifyProgress();
}

void ProgressReporter::Tick(uint64_t work, std::initializer_list<Stat> stats) {
  last_work_ = work;
  num_last_stats_ = std::min<int>(kMaxStats, static_cast<int>(stats.size()));
  std::copy_n(stats.begin(), num_last_stats_, last_stats_);
  if (work < next_at_) return;
  // Next boundary strictly after `work`, so bursty work counters (a
  // backjump skipping many levels) emit one beat, not a backlog.
  next_at_ = (work / every_ + 1) * every_;
  ++heartbeats_;
  Emit("tick", work, last_stats_, num_last_stats_);
}

void ProgressReporter::Emit(const char* phase, uint64_t work,
                            const Stat* stats, int num_stats) {
  metrics::GetCounter("progress.heartbeats").Add(1);
  Watchdog::Global().NotifyProgress();
  if (trace::Enabled()) {
    std::vector<std::pair<std::string, std::string>> args;
    args.reserve(static_cast<size_t>(num_stats) + 3);
    args.emplace_back("engine", name_);
    args.emplace_back("phase", phase);
    args.emplace_back("work", StrFormat("%llu",
                                        static_cast<unsigned long long>(work)));
    for (int i = 0; i < num_stats; ++i) {
      args.emplace_back(stats[i].key, StatValue(stats[i].value));
    }
    trace::Instant("progress.heartbeat", std::move(args));
  }
  // PSO_LOG is statement-shaped; build the message directly so the
  // variable-length stat list can attach as fields.
  if (log::ShouldLog(log::kDEBUG)) {
    log::LogMessage msg(log::kDEBUG, __FILE__, __LINE__);
    msg.Field("engine", name_).Field("phase", phase).Field("work", work);
    for (int i = 0; i < num_stats; ++i) {
      msg.Field(stats[i].key, stats[i].value);
    }
    msg << "progress heartbeat";
  }
}

Watchdog& Watchdog::Global() {
  static Watchdog* instance = new Watchdog();  // never destroyed
  return *instance;
}

void Watchdog::Start(int64_t interval_ms) {
  if (interval_ms <= 0) {
    Stop();
    return;
  }
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    stalls_.store(0, std::memory_order_relaxed);
    progress_marks_.store(0, std::memory_order_relaxed);
    thread_ = std::thread([this, interval_ms] { Run(interval_ms); });
  }
  // Log after release (like Stop): the sink serializes on its own lock,
  // and mu_ protects thread state, not the announcement.
  PSO_LOG(INFO).Field("interval_ms", interval_ms) << "solver watchdog armed";
}

void Watchdog::Stop() {
  std::thread joinable;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.NotifyAll();
    joinable = std::move(thread_);
    running_ = false;
  }
  joinable.join();
  PSO_LOG(INFO).Field("stalls", stalls())
      << "solver watchdog disarmed";
}

bool Watchdog::armed() const {
  MutexLock lock(mu_);
  return running_;
}

void Watchdog::Run(int64_t interval_ms) {
  uint64_t last_marks = progress_marks_.load(std::memory_order_relaxed);
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!stop_requested_) {
        cv_.WaitFor(mu_, std::chrono::milliseconds(interval_ms));
      }
      if (stop_requested_) return;
    }
    const uint64_t marks = progress_marks_.load(std::memory_order_relaxed);
    const uint64_t active = active_solves_.load(std::memory_order_relaxed);
    if (active > 0 && marks == last_marks) {
      // An interval elapsed with solves in flight and zero heartbeats:
      // the diagnostic a silent hang would otherwise swallow. Mirrors
      // StatusCode::kResourceExhausted phrasing but never interrupts.
      stalls_.fetch_add(1, std::memory_order_relaxed);
      metrics::GetCounter("watchdog.stalls").Add(1);
      PSO_LOG(WARN)
              .Field("interval_ms", interval_ms)
              .Field("active_solves", static_cast<uint64_t>(active))
          << "RESOURCE_EXHAUSTED: solver made no progress within the "
             "watchdog interval (possible stall)";
      if (trace::Enabled()) {
        trace::Instant(
            "watchdog.stall",
            {{"interval_ms",
              StrFormat("%lld", static_cast<long long>(interval_ms))},
             {"active_solves",
              StrFormat("%llu", static_cast<unsigned long long>(active))}});
      }
    }
    last_marks = marks;
  }
}

}  // namespace pso::progress
