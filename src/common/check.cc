#include "common/check.h"

#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "common/trace.h"

namespace pso::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* msg) {
  // Raw fallback first: it must appear even if the logger deadlocks or
  // was never configured (format kept identical to the historical one).
  if (msg != nullptr) {
    std::fprintf(stderr, "PSO_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 expr, msg);
  } else {
    std::fprintf(stderr, "PSO_CHECK failed at %s:%d: %s\n", file, line,
                 expr);
  }

  if (log::Initialized()) {
    {
      log::LogMessage m(log::Level::kError, file, line);
      m.Field("check", expr);
      m << "PSO_CHECK failed";
      if (msg != nullptr) m.Field("detail", msg);
    }
    log::Flush();
  }
  // Best-effort partial trace so the audit record of a crashed solve
  // survives (no-op unless a --trace path was registered).
  trace::Collector::Global().FlushToConfiguredPath();

  std::abort();
}

}  // namespace pso::internal
