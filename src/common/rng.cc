#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace pso {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::StreamAt(uint64_t master_seed, uint64_t index) {
  uint64_t s = master_seed;
  uint64_t whitened = SplitMix64(s);
  // SplitMix64's output function is a strong finalizer designed for
  // counter inputs; whitened + index walks it through distinct counters.
  uint64_t t = whitened + index;
  return Rng(SplitMix64(t));
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  PSO_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PSO_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDoublePositive() {
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Laplace(double scale) {
  PSO_CHECK(scale > 0.0);
  // Inverse CDF: u uniform in (-1/2, 1/2], x = -b * sgn(u) * ln(1 - 2|u|).
  double u = UniformDoublePositive() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  double mag = std::fabs(u);
  // 1 - 2*mag is in [0, 1); guard against log(0).
  double t = 1.0 - 2.0 * mag;
  if (t <= 0.0) t = 0x1.0p-53;
  return -scale * sign * std::log(t);
}

double Rng::Exponential(double rate) {
  PSO_CHECK(rate > 0.0);
  return -std::log(UniformDoublePositive()) / rate;
}

double Rng::Gaussian(double mean, double stddev) {
  double u1 = UniformDoublePositive();
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

int64_t Rng::TwoSidedGeometric(double alpha) {
  PSO_CHECK(alpha > 0.0 && alpha < 1.0);
  // Sample magnitude from one-sided geometric Pr[K = k] = (1-alpha) alpha^k
  // via inversion, then a symmetric sign; resolve double-counting of 0 by
  // rejecting (sign = -1, k = 0).
  for (;;) {
    double u = UniformDoublePositive();
    int64_t k = static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
    if (k < 0) k = 0;
    bool negative = Bernoulli(0.5);
    if (negative && k == 0) continue;
    return negative ? -k : k;
  }
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  PSO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PSO_CHECK(w >= 0.0);
    total += w;
  }
  PSO_CHECK(total > 0.0);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical edge
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PSO_CHECK(k <= n);
  // Partial Fisher–Yates on an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  PSO_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    PSO_CHECK(w >= 0.0);
    total += w;
  }
  PSO_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<size_t> small;
  std::vector<size_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(rng.UniformUint64(prob_.size()));
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace pso
