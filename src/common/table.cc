#include "common/table.h"

#include <cstdio>

#include "common/check.h"
#include "common/str_util.h"

namespace pso {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PSO_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  PSO_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace pso
