// Pairwise-independent hash families.
//
// The paper's negligible-weight isolating predicates are built "by applying
// the Leftover Hash Lemma" (Section 2.2) — i.e., from a universal hash
// family applied to records. This module provides the family: random
// multiply-add hashing over a 61-bit Mersenne-prime field, which is strongly
// 2-universal, plus a mixer for reducing structured records to 64-bit keys.

#ifndef PSO_COMMON_HASH_H_
#define PSO_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pso {

class Rng;

/// Mixes a 64-bit value (SplitMix64 finalizer); good avalanche behaviour.
uint64_t MixUint64(uint64_t x);

/// Combines a hash with another value (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// FNV-1a over a byte string.
uint64_t HashBytes(const void* data, size_t len);

/// FNV-1a over a std::string.
uint64_t HashString(const std::string& s);

/// A random member of the strongly 2-universal family
///   h_{a,b}(x) = ((a*x + b) mod p) mod m,   p = 2^61 - 1.
///
/// For any x != y, Pr over (a,b) of a collision is <= 1/m + o(1/m). Such a
/// function restricted to range m = 1/w produces a predicate of weight ~w
/// on any distribution with enough min-entropy (the Leftover Hash Lemma
/// argument the paper invokes).
class UniversalHash {
 public:
  /// Draws random coefficients (a in [1, p), b in [0, p)) from `rng`.
  UniversalHash(Rng& rng, uint64_t range);

  /// Constructs with explicit coefficients (for tests).
  UniversalHash(uint64_t a, uint64_t b, uint64_t range);

  /// Evaluates h(x) in [0, range).
  uint64_t Eval(uint64_t x) const;

  uint64_t range() const { return range_; }
  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t range_;
};

}  // namespace pso

#endif  // PSO_COMMON_HASH_H_
