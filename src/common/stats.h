// Summary statistics and confidence intervals for Monte-Carlo experiments.
//
// Every empirical claim in the benches (attack success probabilities,
// reconstruction accuracies) is reported with a Wilson confidence interval
// so "negligible" vs "constant" success can be distinguished rigorously.

#ifndef PSO_COMMON_STATS_H_
#define PSO_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace pso {

/// A [lo, hi] interval around a point estimate.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// True if `x` lies inside the interval (inclusive).
  bool Contains(double x) const { return lo <= x && x <= hi; }
};

/// Online accumulator for mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Folds `other`'s observations into this accumulator (Chan et al.'s
  /// pairwise update). Merging per-chunk accumulators in chunk-index
  /// order reproduces the single-stream mean/variance to floating-point
  /// accuracy, deterministically for a fixed chunking.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bernoulli success counter with Wilson-score confidence intervals.
///
/// The Wilson interval behaves sensibly at 0 and k/n extremes, which matters
/// when measuring attack probabilities expected to be negligible.
class BernoulliEstimator {
 public:
  /// Records one trial.
  void Add(bool success);

  /// Records `successes` out of `trials` at once.
  void AddBatch(size_t successes, size_t trials);

  /// Folds `other`'s counts into this estimator (exact; order-free).
  void Merge(const BernoulliEstimator& other);

  size_t trials() const { return trials_; }
  size_t successes() const { return successes_; }

  /// Point estimate k/n (0 when no trials).
  double rate() const;

  /// Wilson score interval at confidence z (default z = 1.96 for 95%).
  Interval WilsonInterval(double z = 1.96) const;

 private:
  size_t trials_ = 0;
  size_t successes_ = 0;
};

/// Exact binomial probability that a weight-`w` predicate isolates in an
/// i.i.d. sample of size `n`: n * w * (1-w)^(n-1). This is the paper's
/// baseline curve for trivial (output-ignoring) attackers (Section 2.2).
double BaselineIsolationProbability(size_t n, double w);

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& xs);

/// Population median (averaging the middle pair for even sizes).
double Median(std::vector<double> xs);

/// Quantile in [0,1] by linear interpolation of the sorted sample.
double Quantile(std::vector<double> xs, double q);

}  // namespace pso

#endif  // PSO_COMMON_STATS_H_
