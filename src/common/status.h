// Status: recoverable-error handling without exceptions (RocksDB/Arrow
// idiom). Library entry points that can fail on bad input return Status or
// Result<T>; contract violations use PSO_CHECK.

#ifndef PSO_COMMON_STATUS_H_
#define PSO_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace pso {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kInfeasible,  ///< An optimization/search problem has no feasible solution.
  kUnbounded,   ///< An optimization problem's objective is unbounded.
  /// A caller-imposed resource budget (decision limit, node cap) ran out
  /// before the operation reached an answer. Distinct from kInternal: the
  /// solver is healthy, the budget was just too small.
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail: a code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the
/// OK case (empty message).
///
/// Class-level [[nodiscard]]: silently dropping a returned Status hides
/// the failure it reports, so every by-value return must be consumed
/// (checked, propagated, or explicitly cast to void with a comment).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for the common error categories.
  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  [[nodiscard]] static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace pso

#endif  // PSO_COMMON_STATUS_H_
