// Result<T>: a value or a Status (StatusOr/arrow::Result idiom).

#ifndef PSO_COMMON_RESULT_H_
#define PSO_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace pso {

/// Holds either a T (on success) or a non-OK Status (on failure).
///
/// Accessing the value of a failed Result is a contract violation and
/// aborts; callers must test `ok()` first or propagate the status.
///
/// [[nodiscard]] like Status: a dropped Result silently discards both
/// the computed value and the error explaining why there isn't one.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`. Intentionally implicit
  /// so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK `status`. Intentionally
  /// implicit so functions can `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PSO_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The held value; requires `ok()`.
  const T& value() const& {
    PSO_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    PSO_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    PSO_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pso

#endif  // PSO_COMMON_RESULT_H_
