// Clang thread-safety annotation macros (abseil idiom, PSO_ prefix).
//
// Annotating which mutex guards which member turns the locking discipline
// into a compile-time contract: clang's -Wthread-safety analysis rejects
// any access to a PSO_GUARDED_BY member outside its mutex, any call to a
// PSO_REQUIRES function without the lock held, and any double-acquire of
// a PSO_EXCLUDES mutex. The CI `static-analysis` job builds tier-1 with
// clang and -Wthread-safety -Werror; under GCC (the default local
// toolchain) every macro expands to nothing and the code is unchanged.
//
// Use these together with pso::Mutex / pso::MutexLock (common/mutex.h) —
// a bare std::mutex carries no capability attribute, so the analysis
// cannot see it (and tools/pso_lint.py bans bare std::mutex outside
// src/common/ for exactly that reason).

#ifndef PSO_COMMON_THREAD_ANNOTATIONS_H_
#define PSO_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PSO_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PSO_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a data member readable/writable only while `x` is held.
#define PSO_GUARDED_BY(x) PSO_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares a pointer member whose POINTEE is guarded by `x` (the pointer
/// itself may be read freely).
#define PSO_PT_GUARDED_BY(x) PSO_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that callers must hold every listed capability exclusively
/// before calling (checked at every call site).
#define PSO_REQUIRES(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the listed capabilities (guards
/// against self-deadlock on non-reentrant mutexes).
#define PSO_EXCLUDES(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (a mutex Lock() method, or a scoped
/// lock constructor taking the mutex as argument).
#define PSO_ACQUIRE(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PSO_RELEASE(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts to acquire; returns `result` on success.
#define PSO_TRY_ACQUIRE(result, ...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

/// Marks a class as a lockable capability ("mutex" names it in
/// diagnostics).
#define PSO_CAPABILITY(name) PSO_THREAD_ANNOTATION_ATTRIBUTE(capability(name))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define PSO_SCOPED_CAPABILITY \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares `func` returns a reference to the mutex guarding this object.
#define PSO_RETURN_CAPABILITY(x) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Declares an ordering: this mutex must be acquired after `...`.
#define PSO_ACQUIRED_AFTER(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Declares an ordering: this mutex must be acquired before `...`.
#define PSO_ACQUIRED_BEFORE(...) \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

/// Opts a function out of the analysis. Use sparingly, with a comment
/// explaining why the locking cannot be expressed (e.g. lock handoff).
#define PSO_NO_THREAD_SAFETY_ANALYSIS \
  PSO_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PSO_COMMON_THREAD_ANNOTATIONS_H_
