// Deterministic random number generation for all randomized components.
//
// Every mechanism, attacker, and generator in libpso takes an explicit Rng
// so that experiments are exactly reproducible from a seed. The core
// generator is xoshiro256++ seeded via SplitMix64; sampling routines cover
// the distributions the paper's constructions need (uniform, Bernoulli,
// Laplace, two-sided geometric, exponential, Gaussian, discrete/alias).

#ifndef PSO_COMMON_RNG_H_
#define PSO_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pso {

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Not cryptographically secure; used for simulation only. Distinct streams
/// for sub-components should be derived with `Fork()`.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns an independent generator derived from this one's stream,
  /// for handing to sub-components without correlating their draws.
  ///
  /// CAUTION: Fork() advances this generator, so the forked stream depends
  /// on how many draws preceded it — inside a trial loop that makes trial
  /// results depend on iteration order. Parallel/deterministic trial loops
  /// must use StreamAt(master_seed, trial_index) instead.
  Rng Fork();

  /// Counter-based stream derivation: returns the generator for logical
  /// stream `index` under `master_seed`. The mapping is pure — trial i
  /// gets the same generator regardless of thread count, execution order,
  /// or any other draws — which is what makes parallel Monte-Carlo loops
  /// bit-for-bit reproducible. Derivation: the master seed is whitened
  /// through SplitMix64, the counter is folded in, and the result is
  /// passed through SplitMix64's finalizer again before seeding
  /// xoshiro256++ (so consecutive indices land in uncorrelated states).
  static Rng StreamAt(uint64_t master_seed, uint64_t index);

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (rejection sampling).
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Uniform double in (0, 1] (never returns 0; safe for log()).
  double UniformDoublePositive();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Laplace(b) sample: density (1/2b) e^{-|x|/b}. Requires b > 0.
  double Laplace(double scale);

  /// Exponential(rate) sample. Requires rate > 0.
  double Exponential(double rate);

  /// Standard normal sample (Box–Muller).
  double Gaussian(double mean, double stddev);

  /// Two-sided geometric sample with parameter alpha in (0,1):
  /// Pr[X = k] proportional to alpha^{|k|}. This is the discrete analogue of
  /// the Laplace distribution used by integer-valued DP mechanisms.
  int64_t TwoSidedGeometric(double alpha);

  /// Samples an index i with probability weights[i] / sum(weights).
  /// Requires a non-empty vector of non-negative weights with positive sum.
  /// O(n) per draw; use DiscreteSampler for repeated draws.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

/// Walker alias-method sampler: O(n) setup, O(1) per draw from a fixed
/// discrete distribution. Used by the data generators, which draw millions
/// of records from the same attribute marginals.
class DiscreteSampler {
 public:
  /// Builds the alias table for `weights` (non-negative, positive sum).
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  size_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace pso

#endif  // PSO_COMMON_RNG_H_
