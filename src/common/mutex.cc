// Runtime lock-order verifier behind -DPSO_DEADLOCK_CHECK=ON
// (common/mutex.h). Two complementary checks run on every acquisition:
//
//  1. Rank check (per-thread): a blocking Lock() of a ranked mutex must
//     take a rank strictly below every ranked mutex the thread already
//     holds. This catches an inversion on its first occurrence, in one
//     thread, before the lock is even contended.
//  2. Pair-graph check (global): every (held, acquired) name pair ever
//     observed — including try-acquisitions, which skip the rank check —
//     is an edge in a directed graph; a cycle means two code paths
//     disagree about the order and could deadlock under the right
//     interleaving, even if neither run ever blocked.
//
// Violations abort via PSO_CHECK machinery with a witness chain: the
// offending acquisition site, the cycle path (if any), and the file:line
// of every lock the thread holds.

#include "common/mutex.h"

#if PSO_DEADLOCK_CHECK

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"

namespace pso::deadlock {

namespace {

struct HeldLock {
  const Mutex* mu;
  LockRank rank;
  const char* name;  // nullptr for unranked scratch locks
  const char* file;
  int line;
};

struct ThreadState {
  std::vector<HeldLock> held;
  // Set (permanently) once this thread is reporting a violation:
  // CheckFailed flushes the log and trace sinks, which acquire ranked
  // locks of their own, and those acquisitions must not re-enter the
  // verifier.
  bool reporting = false;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

const char* NameOrPlaceholder(const char* name) {
  return name != nullptr ? name : "<unranked>";
}

struct EdgeSite {
  const char* file;
  int line;
};

// held-name -> acquired-name -> site of the first observed acquisition.
// Keyed by name, not address: instances come and go (stack-local state,
// per-request groups) but the code paths that order them do not.
using PairGraph = std::map<std::string, std::map<std::string, EdgeSite>>;

// Raw std::mutex (never a pso::Mutex: the verifier must not verify
// itself); leaked so lock releases during process exit stay safe.
std::mutex& GraphMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

PairGraph& Graph() {
  static PairGraph* graph = new PairGraph;
  return *graph;
}

// Depth-first search for a path `from` -> ... -> `to`; on success fills
// `path` with the names visited, `from` first.
bool FindPath(const PairGraph& graph, const std::string& from,
              const std::string& to, std::set<std::string>& visited,
              std::vector<std::string>& path) {
  path.push_back(from);
  if (from == to) return true;
  if (visited.insert(from).second) {
    auto it = graph.find(from);
    if (it != graph.end()) {
      for (const auto& edge : it->second) {
        if (FindPath(graph, edge.first, to, visited, path)) return true;
      }
    }
  }
  path.pop_back();
  return false;
}

std::string DescribeHeld(const ThreadState& state) {
  std::string out;
  for (size_t i = 0; i < state.held.size(); ++i) {
    const HeldLock& h = state.held[i];
    out += StrFormat("\n  held[%zu]: '%s' (rank %s) acquired at %s:%d",
                     i, NameOrPlaceholder(h.name), LockRankName(h.rank),
                     h.file, h.line);
  }
  return out;
}

[[noreturn]] void Die(const char* file, int line, std::string msg) {
  State().reporting = true;
  internal::CheckFailed(file, line, "lock-order verifier", msg.c_str());
}

}  // namespace

void OnAcquire(const Mutex& mu, bool blocking, const char* file, int line) {
  ThreadState& state = State();
  if (state.reporting) return;

  for (const HeldLock& h : state.held) {
    if (h.mu == &mu) {
      Die(file, line,
          StrFormat("recursive acquisition: '%s' is already held by this "
                    "thread (acquired at %s:%d)",
                    NameOrPlaceholder(mu.name()), h.file, h.line) +
              DescribeHeld(state));
    }
  }

  if (blocking && mu.rank() != LockRank::kUnranked) {
    const HeldLock* innermost = nullptr;
    for (const HeldLock& h : state.held) {
      if (h.rank == LockRank::kUnranked) continue;
      if (innermost == nullptr || h.rank < innermost->rank) innermost = &h;
    }
    if (innermost != nullptr && mu.rank() >= innermost->rank) {
      Die(file, line,
          StrFormat("lock-rank inversion: acquiring '%s' (rank %s) while "
                    "holding '%s' (rank %s); acquisition order must be "
                    "strictly decreasing rank",
                    NameOrPlaceholder(mu.name()), LockRankName(mu.rank()),
                    NameOrPlaceholder(innermost->name),
                    LockRankName(innermost->rank)) +
              DescribeHeld(state));
    }
  }

  if (mu.name() != nullptr) {
    std::lock_guard<std::mutex> graph_lock(GraphMu());
    PairGraph& graph = Graph();
    for (const HeldLock& h : state.held) {
      if (h.name == nullptr) continue;
      auto& successors = graph[h.name];
      if (successors.find(mu.name()) != successors.end()) continue;
      // Inserting h.name -> mu.name closes a cycle iff mu.name already
      // reaches h.name; report before poisoning the graph.
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (FindPath(graph, mu.name(), h.name, visited, path)) {
        std::string msg = StrFormat(
            "lock-order cycle: acquiring '%s' while holding '%s' "
            "contradicts the previously observed order",
            mu.name(), h.name);
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const EdgeSite& site = graph[path[i]][path[i + 1]];
          msg += StrFormat("\n  observed: '%s' then '%s' (at %s:%d)",
                           path[i].c_str(), path[i + 1].c_str(), site.file,
                           site.line);
        }
        msg += StrFormat("\n  now: '%s' then '%s' (at %s:%d)", h.name,
                         mu.name(), file, line);
        Die(file, line, msg + DescribeHeld(state));
      }
      successors.emplace(mu.name(), EdgeSite{file, line});
    }
  }

  state.held.push_back(HeldLock{&mu, mu.rank(), mu.name(), file, line});
}

void OnRelease(const Mutex& mu) {
  ThreadState& state = State();
  if (state.reporting) return;
  for (auto it = state.held.rbegin(); it != state.held.rend(); ++it) {
    if (it->mu == &mu) {
      state.held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the lock was acquired before this thread started
  // reporting a violation, or handed across threads — ignore.
}

int HeldCount() { return static_cast<int>(State().held.size()); }

}  // namespace pso::deadlock

#endif  // PSO_DEADLOCK_CHECK
