// Small string helpers (no std::format on this toolchain).

#ifndef PSO_COMMON_STR_UTIL_H_
#define PSO_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace pso {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep` (keeps empty fields).
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace pso

#endif  // PSO_COMMON_STR_UTIL_H_
