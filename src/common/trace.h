// Hierarchical tracing, layered on top of (not replacing) the metrics
// registry: where metrics.h answers "how much, in total", this module
// answers "where inside one run, and in what order".
//
// The model is a tree of spans. Each thread keeps a stack of open spans;
// a new span's parent is the top of that stack. ParallelFor propagates
// the calling thread's current span to its workers (trace::ContextScope),
// so chunk work running on a pool thread still nests under the pipeline
// span that launched it — the logical tree is the same at any thread
// count. Instant events and counter samples attach to the current span
// the same way.
//
// Two exports:
//  - Chrome trace-event JSON (ChromeJson / WriteChromeJson): loadable in
//    Perfetto (ui.perfetto.dev) or chrome://tracing. Events carry wall
//    timestamps and per-thread track ids; every span's args include its
//    "id"/"parent" so cross-thread nesting stays auditable even though
//    the timeline renders per track.
//  - A deterministic text tree (TextTree): timestamps and track ids are
//    stripped and sibling subtrees are aggregated by name, so for a
//    deterministic workload the output is byte-identical at 1 or N
//    threads (asserted in trace_test.cc). This is the diffable form.
//
// Cost contract: collection is off by default and every entry point
// checks one relaxed atomic first, so instrumented code paths pay a
// single predictable branch when tracing is disabled. When enabled,
// events are appended under a mutex into a bounded buffer (drops are
// counted, never blocking) — tracing is a debugging/audit mode, not a
// hot-path facility.

#ifndef PSO_COMMON_TRACE_H_
#define PSO_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pso::trace {

/// One recorded trace event. Span events are recorded at close (complete
/// spans); instants and counter samples are points.
struct Event {
  enum class Kind : uint8_t { kSpan, kInstant, kCounter };

  Kind kind = Kind::kInstant;
  std::string name;
  uint64_t id = 0;        ///< Span id (nonzero for kSpan only).
  uint64_t parent = 0;    ///< Enclosing span id; 0 = root.
  uint32_t track = 0;     ///< Per-thread track id (Chrome "tid").
  uint64_t start_ns = 0;  ///< Monotonic ns since Enable().
  uint64_t dur_ns = 0;    ///< kSpan only.
  double value = 0.0;     ///< kCounter only.
  /// Key/value annotations ("n" -> "64"). Rendered as Chrome args.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Bounded FIFO keeping the most recent `capacity` entries — the solver
/// introspection buffers (LP pivots, SAT steps). Single-threaded; each
/// solve owns its own ring.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : capacity_(capacity) {
    items_.reserve(capacity);
  }

  void Push(T item) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[head_] = std::move(item);
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Number of pushes ever seen (>= size() when the ring wrapped).
  uint64_t total() const { return total_; }
  size_t size() const { return items_.size(); }

  /// The retained entries, oldest first.
  std::vector<T> Drain() const {
    std::vector<T> out;
    out.reserve(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) {
      out.push_back(items_[(head_ + i) % items_.size()]);
    }
    return out;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;
  uint64_t total_ = 0;
  std::vector<T> items_;
};

/// The process-wide event sink. Thread-safe; all spans/instants record
/// here. Tests drive it through Enable/Clear/TakeEvents.
class Collector {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  /// The collector every trace::Span records into.
  static Collector& Global();

  /// Clears any previous events, re-anchors the time origin, and starts
  /// collecting. At most `capacity` events are kept; later events are
  /// dropped and counted.
  void Enable(size_t capacity = kDefaultCapacity) PSO_EXCLUDES(mu_);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events (collection state unchanged).
  void Clear() PSO_EXCLUDES(mu_);

  /// Events dropped because the buffer was full.
  uint64_t dropped() const PSO_EXCLUDES(mu_);

  /// Copy of every recorded event, in record order.
  std::vector<Event> TakeEvents() const PSO_EXCLUDES(mu_);

  /// Renders all events as a Chrome trace-event JSON document.
  std::string ChromeJson() const PSO_EXCLUDES(mu_);

  /// Renders the deterministic text tree (see file comment).
  std::string TextTree() const PSO_EXCLUDES(mu_);

  /// Writes ChromeJson() to `path`; false (with a stderr diagnostic) on
  /// I/O failure.
  bool WriteChromeJson(const std::string& path) const PSO_EXCLUDES(mu_);

  /// Remembers `path` so an aborting PSO_CHECK can flush a partial trace
  /// there (see check.h). Empty clears.
  void SetFlushPath(const std::string& path) PSO_EXCLUDES(mu_);

  /// Writes the trace to the SetFlushPath() destination, if one is set
  /// and any events were recorded. Called from the PSO_CHECK failure
  /// handler; best-effort.
  void FlushToConfiguredPath() const PSO_EXCLUDES(mu_);

  /// Monotonic nanoseconds since Enable() (0 when disabled).
  uint64_t NowNs() const PSO_EXCLUDES(mu_);

  // Internals used by Span/Instant/CounterSample.
  void Record(Event event) PSO_EXCLUDES(mu_);
  uint64_t NextSpanId();

 private:
  Collector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  mutable Mutex mu_ PSO_LOCK_ORDER(kTrace){LockRank::kTrace,
                                           "trace.collector"};
  size_t capacity_ PSO_GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t dropped_ PSO_GUARDED_BY(mu_) = 0;
  std::vector<Event> events_ PSO_GUARDED_BY(mu_);
  std::string flush_path_ PSO_GUARDED_BY(mu_);
  /// steady_clock anchor, set by Enable.
  uint64_t epoch_ns_ PSO_GUARDED_BY(mu_) = 0;
};

/// True when the global collector is recording. The one branch
/// instrumented code pays when tracing is off.
inline bool Enabled() { return Collector::Global().enabled(); }

/// The innermost open span on this thread (the inherited parallel-region
/// span when the thread's own stack is empty); 0 when none.
uint64_t CurrentSpanId();

/// Sets the parent that spans opened on THIS thread fall back to while
/// their own stack is empty. ParallelFor wraps chunk execution in one of
/// these so worker-thread spans nest under the launching pipeline span.
class ContextScope {
 public:
  explicit ContextScope(uint64_t parent_span_id);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span: records a kSpan event covering construction..destruction.
/// Near-free when tracing is disabled (one relaxed load, no allocation).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation, rendered into the span's Chrome
  /// args. No-op when the span is inactive (tracing was off at open).
  void Arg(const char* key, std::string value);

  /// This span's id (0 when inactive) — parent for manual child events.
  uint64_t id() const { return id_; }
  bool active() const { return active_; }

 private:
  bool active_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ns_ = 0;
  const char* name_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Records an instant event under the current span.
void Instant(const char* name,
             std::vector<std::pair<std::string, std::string>> args = {});

/// Records a counter sample (rendered as a Chrome "C" event) under the
/// current span.
void CounterSample(const char* name, double value);

}  // namespace pso::trace

// Span-with-unique-local-name convenience: PSO_TRACE_SPAN("lp.solve");
#define PSO_TRACE_CONCAT_INNER(a, b) a##b
#define PSO_TRACE_CONCAT(a, b) PSO_TRACE_CONCAT_INNER(a, b)
#define PSO_TRACE_SPAN(name) \
  ::pso::trace::Span PSO_TRACE_CONCAT(pso_trace_span_, __LINE__)(name)

#endif  // PSO_COMMON_TRACE_H_
