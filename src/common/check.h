// Lightweight assertion macros used throughout libpso.
//
// PSO_CHECK aborts on contract violations (programming errors); recoverable
// conditions use pso::Status / pso::Result instead.

#ifndef PSO_COMMON_CHECK_H_
#define PSO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `cond` is false. Always enabled (the library
/// is correctness-critical; the cost of the branch is negligible relative to
/// the statistical workloads it guards).
#define PSO_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PSO_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// PSO_CHECK with an explanatory message.
#define PSO_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PSO_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // PSO_COMMON_CHECK_H_
