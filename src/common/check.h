// Lightweight assertion macros used throughout libpso.
//
// PSO_CHECK aborts on contract violations (programming errors); recoverable
// conditions use pso::Status / pso::Result instead.
//
// Failures always print the classic raw-stderr diagnostic first (it must
// survive even if the logger itself is broken). When the structured
// logger has been configured, the failure is additionally emitted as a
// JSON log line carrying timestamp + thread id, and any buffered
// deterministic-mode log lines and the in-flight trace (if a --trace
// destination was registered) are flushed before abort — so a crashing
// run still leaves its audit trail on disk.

#ifndef PSO_COMMON_CHECK_H_
#define PSO_COMMON_CHECK_H_

namespace pso::internal {

/// Prints the diagnostic, routes it through the structured logger when
/// one is configured, flushes pending log/trace buffers, and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);

}  // namespace pso::internal

/// Aborts with a diagnostic if `cond` is false. Always enabled (the library
/// is correctness-critical; the cost of the branch is negligible relative to
/// the statistical workloads it guards).
#define PSO_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pso::internal::CheckFailed(__FILE__, __LINE__, #cond, nullptr);     \
    }                                                                       \
  } while (0)

/// PSO_CHECK with an explanatory message.
#define PSO_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pso::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);         \
    }                                                                       \
  } while (0)

#endif  // PSO_COMMON_CHECK_H_
