// Leveled, thread-safe, structured JSON-lines logging.
//
//   PSO_LOG(INFO) << "lp solved";
//   PSO_LOG(WARN).Field("block", b).Field("decisions", d) << "sat exhausted";
//
// Each statement emits one JSON object per line to the sink (stderr by
// default, or a file / in-memory capture):
//
//   {"level":"warn","ts_us":182034,"thread":3,"src":"sat.cc:241",
//    "msg":"sat exhausted","fields":{"block":"17","decisions":"500000"}}
//
// The default minimum level is WARN so instrumented libraries stay silent
// unless a tool opts in (--log-level on psoctl and every bench binary).
// Disabled levels cost one relaxed atomic load — the message object is
// never constructed.
//
// Deterministic mode (SetDeterministic(true)): messages are buffered and
// flushed in RANK order instead of wall-clock arrival order, with the
// run-dependent fields (ts_us, thread) omitted. Ranks are hierarchical
// keys that depend only on program structure: serial code takes keys in
// program order, and ParallelFor gives each chunk the key
// <region key>.<chunk index>, nesting arbitrarily. Because chunk
// boundaries depend only on n (never the thread count), a fixed seed
// yields byte-identical log output at 1 or 64 threads (log_test.cc).

#ifndef PSO_COMMON_LOG_H_
#define PSO_COMMON_LOG_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace pso::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Macro-friendly aliases: PSO_LOG(INFO) expands to pso::log::kINFO.
inline constexpr Level kDEBUG = Level::kDebug;
inline constexpr Level kINFO = Level::kInfo;
inline constexpr Level kWARN = Level::kWarn;
inline constexpr Level kERROR = Level::kError;

/// Messages below `level` are discarded (default kWarn).
void SetMinLevel(Level level);
Level MinLevel();

/// The cheap front gate: one relaxed atomic load.
bool ShouldLog(Level level);

/// Parses "debug"/"info"/"warn"/"error" (case-sensitive). Returns false
/// and leaves `out` untouched on anything else.
bool ParseLevel(const std::string& name, Level* out);
const char* LevelName(Level level);

/// Routes output to a file (created/truncated at `path`); false on open
/// failure. Passing an empty path restores the default stderr sink.
bool SetFileSink(const std::string& path);

/// Routes output to an in-memory buffer (tests). TakeCaptured() returns
/// and clears it.
void CaptureToString(bool on);
std::string TakeCaptured();

/// Deterministic rank-ordered buffering (see file comment). Turning it
/// off flushes anything buffered.
void SetDeterministic(bool on);
bool DeterministicMode();

/// Writes buffered deterministic-mode messages (rank order) and fsyncs
/// nothing; safe to call at any time, from any mode.
void Flush();

/// True once any sink configuration ran — the PSO_CHECK handler uses
/// this to decide between structured output and the raw-fprintf
/// fallback.
bool Initialized();

/// One log statement under construction; emits on destruction.
class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Structured key/value annotations (kept separate from the text).
  LogMessage& Field(const char* key, const std::string& value);
  LogMessage& Field(const char* key, const char* value);
  LogMessage& Field(const char* key, double value);
  LogMessage& Field(const char* key, bool value);
  /// One template per integer family instead of fixed-width overloads:
  /// int64_t/long/size_t alias differently across platforms and would
  /// collide as distinct overloads.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogMessage& Field(const char* key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return FieldInt(key, static_cast<long long>(value));
    } else {
      return FieldUint(key, static_cast<unsigned long long>(value));
    }
  }

  /// Free-text message body.
  LogMessage& operator<<(const std::string& text);
  LogMessage& operator<<(const char* text);
  LogMessage& operator<<(double v);
  LogMessage& operator<<(bool v);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogMessage& operator<<(T v) {
    if constexpr (std::is_signed_v<T>) {
      return AppendInt(static_cast<long long>(v));
    } else {
      return AppendUint(static_cast<unsigned long long>(v));
    }
  }

 private:
  LogMessage& FieldInt(const char* key, long long value);
  LogMessage& FieldUint(const char* key, unsigned long long value);
  LogMessage& AppendInt(long long v);
  LogMessage& AppendUint(unsigned long long v);

  Level level_;
  const char* file_;
  int line_;
  std::string msg_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Deterministic-mode rank scoping. ParallelFor allocates one region key
/// on the calling thread (AllocateRegionKey) and wraps each chunk body in
/// RankScope(region_key, chunk_index); messages inside take hierarchical
/// keys under it. Nesting composes: an inner ParallelFor inside a chunk
/// extends the chunk's key.
class RankScope {
 public:
  RankScope(const std::vector<uint64_t>& region_key, uint64_t rank);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  std::vector<uint64_t> saved_prefix_;
  uint64_t saved_seq_;
};

/// Claims the sort key for a parallel region at the current scope. Must
/// be called on the thread launching the region (the key consumes one
/// slot in that scope's program order).
std::vector<uint64_t> AllocateRegionKey();

}  // namespace pso::log

// Statement-shaped level gate: when the level is disabled the LogMessage
// is never constructed. The for(;;) makes PSO_LOG(X) << ... a single
// statement with no dangling-else hazard.
#define PSO_LOG(severity)                                                  \
  for (bool pso_log_once =                                                 \
           ::pso::log::ShouldLog(::pso::log::k##severity);                 \
       pso_log_once; pso_log_once = false)                                 \
  ::pso::log::LogMessage(::pso::log::k##severity, __FILE__, __LINE__)

#endif  // PSO_COMMON_LOG_H_
