// Solver liveness: deterministic progress heartbeats plus an optional
// wall-clock stall watchdog.
//
// Long-running engines (CDCL search, revised simplex) call
// ProgressReporter::Tick at a WORK-COUNT cadence — every N conflicts or
// pivots — never on a timer. Heartbeats therefore replay byte-identically
// with the rest of the trace: same instance + same seed => the same
// heartbeat instants with the same work-stat args, at any thread count
// and on any machine speed. (DESIGN.md §7 explains why this matters for
// the deterministic trace contract.)
//
// The watchdog is the only wall-clock component, and it is strictly
// additive diagnostics: when armed (psoctl/bench --solver-watchdog-ms N),
// a background thread checks every N ms whether ANY reporter has ticked
// since the last check and, if not, emits a kResourceExhausted-style
// stall diagnostic (WARN log + trace instant + watchdog.stalls counter)
// instead of letting a wedged solve hang silently. It never interrupts
// the solve and writes nothing when the process is making progress, so
// deterministic outputs stay deterministic.

#ifndef PSO_COMMON_PROGRESS_H_
#define PSO_COMMON_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pso::progress {

/// One named work statistic attached to a heartbeat (e.g. "conflicts").
struct Stat {
  const char* key = nullptr;
  double value = 0.0;
};

/// Emits heartbeats for one long-running solve at a deterministic
/// work-count cadence. Stack-allocate one per solve; not thread-safe
/// (each solve runs on one thread). The destructor emits a final
/// heartbeat if any work was reported, so even a solve that dies before
/// its first cadence boundary (tiny decision budget) leaves heartbeat
/// evidence in the trace and log.
///
///   ProgressReporter progress("cdcl", /*every=*/64);
///   while (...) {
///     ...one conflict...
///     progress.Tick(stats.conflicts, {{"conflicts", ...}, ...});
///   }
class ProgressReporter {
 public:
  /// `name` labels the engine in instants/logs ("cdcl", "simplex");
  /// `every` is the work-count cadence (heartbeat when `work` crosses a
  /// multiple of `every`; must be >= 1).
  ProgressReporter(const char* name, uint64_t every);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Reports the solve's monotone work counter (conflicts, pivots, ...).
  /// Cheap when no heartbeat is due (one comparison). When `work` has
  /// crossed the next cadence boundary, emits a heartbeat carrying
  /// `stats` (at most kMaxStats are kept) and notifies the watchdog.
  void Tick(uint64_t work, std::initializer_list<Stat> stats);

  /// Heartbeats emitted so far (final destructor beat not included).
  uint64_t heartbeats() const { return heartbeats_; }

  static constexpr int kMaxStats = 8;

 private:
  void Emit(const char* phase, uint64_t work,
            const Stat* stats, int num_stats);

  const char* name_;
  uint64_t every_;
  uint64_t next_at_;
  uint64_t heartbeats_ = 0;
  uint64_t last_work_ = 0;
  Stat last_stats_[kMaxStats];
  int num_last_stats_ = 0;
};

/// Process-wide wall-clock stall detector, armed by --solver-watchdog-ms.
/// All methods are thread-safe. Heartbeats from any ProgressReporter
/// count as progress; a poll interval with active solves and no progress
/// is flagged as a stall.
class Watchdog {
 public:
  static Watchdog& Global();

  /// Arms the watchdog with the given poll interval, starting the
  /// background thread. No-op if already armed. `interval_ms` <= 0
  /// disarms instead.
  void Start(int64_t interval_ms) PSO_EXCLUDES(mu_);

  /// Stops the background thread (joins it) and logs a summary with the
  /// stall count. Safe to call when not armed.
  void Stop() PSO_EXCLUDES(mu_);

  /// True between Start and Stop.
  bool armed() const PSO_EXCLUDES(mu_);

  /// Called by ProgressReporter on every heartbeat (and on reporter
  /// construction/destruction) — any call marks the interval live.
  void NotifyProgress() { progress_marks_.fetch_add(1, std::memory_order_relaxed); }

  /// Tracks how many solves are in flight; intervals with zero active
  /// solves are idle, not stalled.
  void SolveBegin() { active_solves_.fetch_add(1, std::memory_order_relaxed); }
  void SolveEnd() { active_solves_.fetch_sub(1, std::memory_order_relaxed); }

  /// Stalls flagged since Start (for tests and the Stop summary).
  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

 private:
  Watchdog() = default;
  void Run(int64_t interval_ms) PSO_EXCLUDES(mu_);

  std::atomic<uint64_t> progress_marks_{0};
  std::atomic<uint64_t> active_solves_{0};
  std::atomic<uint64_t> stalls_{0};

  mutable Mutex mu_ PSO_LOCK_ORDER(kProgress){LockRank::kProgress,
                                              "progress.watchdog"};
  CondVar cv_;
  bool running_ PSO_GUARDED_BY(mu_) = false;
  bool stop_requested_ PSO_GUARDED_BY(mu_) = false;
  std::thread thread_ PSO_GUARDED_BY(mu_);
};

/// RAII guard a solve wraps around its run so the watchdog knows when
/// solves are in flight (idle process != stalled process).
class ScopedSolve {
 public:
  ScopedSolve() { Watchdog::Global().SolveBegin(); }
  ~ScopedSolve() { Watchdog::Global().SolveEnd(); }
  ScopedSolve(const ScopedSolve&) = delete;
  ScopedSolve& operator=(const ScopedSolve&) = delete;
};

}  // namespace pso::progress

#endif  // PSO_COMMON_PROGRESS_H_
