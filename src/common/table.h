// Aligned ASCII table rendering for the benchmark harnesses.
//
// Every experiment binary prints its series/rows as a table like the ones a
// paper's evaluation section would carry, so the harness output can be
// compared to the paper's claims by eye.

#ifndef PSO_COMMON_TABLE_H_
#define PSO_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace pso {

/// Builds and renders an aligned text table with a header row.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `%.*f` at `precision`.
  void AddNumericRow(const std::vector<double>& row, int precision = 4);

  /// Renders the table with a separator under the header.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pso

#endif  // PSO_COMMON_TABLE_H_
