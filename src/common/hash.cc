#include "common/hash.h"

#include "common/check.h"
#include "common/rng.h"

namespace pso {

namespace {

constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

// (x * y) mod (2^61 - 1) using 128-bit intermediate.
uint64_t MulMod61(uint64_t x, uint64_t y) {
  unsigned __int128 z = static_cast<unsigned __int128>(x) * y;
  uint64_t lo = static_cast<uint64_t>(z & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(z >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

}  // namespace

uint64_t MixUint64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (MixUint64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

UniversalHash::UniversalHash(Rng& rng, uint64_t range) : range_(range) {
  PSO_CHECK(range > 0);
  a_ = 1 + rng.UniformUint64(kMersenne61 - 1);
  b_ = rng.UniformUint64(kMersenne61);
}

UniversalHash::UniversalHash(uint64_t a, uint64_t b, uint64_t range)
    : a_(a), b_(b), range_(range) {
  PSO_CHECK(range > 0);
  PSO_CHECK(a >= 1 && a < kMersenne61);
  PSO_CHECK(b < kMersenne61);
}

uint64_t UniversalHash::Eval(uint64_t x) const {
  // Reduce x into the field first (loses nothing for x < 2^61; for larger x
  // we pre-mix, which keeps the family's collision behaviour in practice).
  uint64_t xr = x % kMersenne61;
  uint64_t v = MulMod61(a_, xr);
  v += b_;
  if (v >= kMersenne61) v -= kMersenne61;
  return v % range_;
}

}  // namespace pso
