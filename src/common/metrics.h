// Process-wide observability: named counters, wall-clock timers, and
// scoped spans, collected in a registry that benches and psoctl snapshot
// into BENCH_*.json / --metrics dumps.
//
// Determinism contract (matters because BENCH_*.json files are diffed
// across runs to detect perf and behavior regressions):
//
//  - Counters hold event totals (simplex pivots, SAT decisions, trials).
//    They are atomic and only ever summed, so concurrent increments from
//    ParallelFor workers commute: same seed + same thread count => the
//    same counter values on every run, at any interleaving.
//  - Timers and gauges hold wall-clock durations and point-in-time
//    observations (worker-queue imbalance). These are inherently
//    run-dependent and are reported in separate JSON sections so tooling
//    can diff the deterministic "counters" object exactly.
//
// Hot-path usage: look the handle up once and keep the reference —
// Registry::GetCounter takes a lock for the name lookup, but the returned
// Counter/Timer lives for the registry's lifetime and its operations are
// lock-free atomics.

#ifndef PSO_COMMON_METRICS_H_
#define PSO_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pso::metrics {

/// Monotonically increasing event count. Thread-safe; increments commute.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Accumulated wall-clock time plus the number of recorded intervals.
/// Thread-safe. Durations are run-dependent — never diff them for
/// determinism checks; that is what counters are for.
class Timer {
 public:
  /// Adds one interval of `seconds` wall-clock time.
  void Record(double seconds) {
    nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> nanos_{0};
  std::atomic<uint64_t> count_{0};
};

/// Everything the registry knows at one instant. Counters/timers from a
/// snapshot can be merged back into another registry (worker-local
/// collection), and the maps are ordered so rendering is stable.
struct Snapshot {
  struct TimerValue {
    double seconds = 0.0;
    uint64_t count = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, TimerValue> timers;
  std::map<std::string, double> gauges;

  bool empty() const {
    return counters.empty() && timers.empty() && gauges.empty();
  }
};

/// Named metric store. A process-wide instance (Global()) backs the
/// solvers and runners; tests build private instances and merge them to
/// validate worker-local collection.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented module records into.
  static Registry& Global();

  /// Returns the counter/timer registered under `name`, creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name) PSO_EXCLUDES(mu_);
  Timer& GetTimer(const std::string& name) PSO_EXCLUDES(mu_);

  /// Sets (overwrites) a point-in-time observation.
  void SetGauge(const std::string& name, double value) PSO_EXCLUDES(mu_);

  /// Copies every metric's current value. Safe to call concurrently with
  /// updates; each value is read atomically (the snapshot as a whole is
  /// not a consistent cut, which is fine for monotone counters).
  Snapshot TakeSnapshot() const PSO_EXCLUDES(mu_);

  /// Adds `snap`'s counters and timers into this registry and overwrites
  /// its gauges — the merge step for worker-local registries. Merging is
  /// associative and commutative over counters/timers, so merge order
  /// cannot change totals.
  void MergeFrom(const Snapshot& snap) PSO_EXCLUDES(mu_);

  /// Zeroes every counter and timer and drops all gauges. Handles remain
  /// valid. Intended for tests and for psoctl between subcommands.
  void ResetAll() PSO_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // unique_ptr gives handles stable addresses across map rehash/insert.
  // The maps are guarded; the Counter/Timer objects they point to are
  // internally atomic and deliberately updated lock-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PSO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>> timers_ PSO_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ PSO_GUARDED_BY(mu_);
};

/// Shorthands for the global registry.
inline Counter& GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
inline Timer& GetTimer(const std::string& name) {
  return Registry::Global().GetTimer(name);
}
inline void SetGauge(const std::string& name, double value) {
  Registry::Global().SetGauge(name, value);
}

/// Records the wall-clock time between construction and destruction into
/// a Timer. Non-copyable; stack-allocate one per measured scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  /// Span over the global registry's timer `name`.
  explicit ScopedSpan(const std::string& name) : ScopedSpan(GetTimer(name)) {}
  ~ScopedSpan() {
    timer_.Record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// JSON-escapes `s` (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Renders `snap` as a JSON object with "counters", "timers", and
/// "gauges" members (each an object keyed by metric name, keys sorted).
std::string SnapshotToJson(const Snapshot& snap);

/// Renders `snap` as an aligned human-readable listing (psoctl --metrics).
std::string SnapshotToText(const Snapshot& snap);

}  // namespace pso::metrics

#endif  // PSO_COMMON_METRICS_H_
