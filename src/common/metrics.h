// Process-wide observability: named counters, wall-clock timers,
// mergeable latency histograms, and scoped spans, collected in a registry
// that benches and psoctl snapshot into BENCH_*.json / --metrics dumps.
//
// Determinism contract (matters because BENCH_*.json files are diffed
// across runs to detect perf and behavior regressions):
//
//  - Counters hold event totals (simplex pivots, SAT decisions, trials).
//    They are atomic and only ever summed, so concurrent increments from
//    ParallelFor workers commute: same seed + same thread count => the
//    same counter values on every run, at any interleaving.
//  - Timers and gauges hold wall-clock durations and point-in-time
//    observations (worker-queue imbalance). These are inherently
//    run-dependent and are reported in separate JSON sections so tooling
//    can diff the deterministic "counters" object exactly.
//  - Histograms hold per-event value distributions over FIXED log-scale
//    bucket boundaries (see Histogram). Every internal accumulator is an
//    integer (bucket tallies, fixed-point sum) or an order-free extremum
//    (min/max), so concurrent recording commutes and MergeFrom is exact:
//    merging N per-shard histograms reproduces the single-thread
//    histogram bit for bit, like RunningStats::Merge. When the recorded
//    values themselves are deterministic (work counts), the whole
//    snapshot is; when they are wall-clock latencies, only the event
//    *count* is — tools/bench_diff.py gates exactly that split.
//
// Hot-path usage: look the handle up once and keep the reference —
// Registry::GetCounter takes a lock for the name lookup, but the returned
// Counter/Timer/Histogram lives for the registry's lifetime and its
// operations are lock-free atomics.

#ifndef PSO_COMMON_METRICS_H_
#define PSO_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pso::metrics {

/// Monotonically increasing event count. Thread-safe; increments commute.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Accumulated wall-clock time plus the number of recorded intervals.
/// Thread-safe. Durations are run-dependent — never diff them for
/// determinism checks; that is what counters are for.
class Timer {
 public:
  /// Adds one interval of `seconds` wall-clock time.
  void Record(double seconds) {
    nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> nanos_{0};
  std::atomic<uint64_t> count_{0};
};

/// Log-bucketed value distribution with FIXED bucket boundaries, so two
/// histograms recorded independently (per worker, per shard, per process)
/// merge exactly: the merged bucket tallies, count, sum, min, and max are
/// bit-identical to recording every value into one histogram, regardless
/// of thread count or interleaving.
///
/// Bucket scheme (HdrHistogram-style base-2 sub-bucketed log scale):
/// each power-of-two octave [2^e, 2^(e+1)) is split into kSubBuckets
/// equal-width sub-buckets, giving a worst-case relative quantile error
/// of 1/kSubBuckets = 12.5% across ~19 decades (2^-32 .. 2^31 — for
/// latencies in seconds that spans fractions of a nanosecond to decades).
/// Values below the first octave (including zero and negatives) land in
/// bucket 0; values at or above the last octave land in the final
/// overflow bucket. Boundaries are compile-time constants: no
/// configuration to disagree on, so MergeFrom never needs rebinning.
///
/// Every accumulator commutes: bucket tallies and count are atomic
/// integer adds, sum is an atomic fixed-point integer (nano-units; adds
/// commute where floating-point addition would not), min/max are CAS
/// loops. See the determinism contract at the top of this header.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMinExponent = -32;  // first octave [2^-32, 2^-31)
  static constexpr int kMaxExponent = 31;   // last octave [2^30, 2^31)
  // Bucket 0 = underflow (v < 2^kMinExponent, incl. zero/negative);
  // buckets 1 .. kNumBuckets-2 = the sub-bucketed octaves;
  // bucket kNumBuckets-1 = overflow (v >= 2^kMaxExponent).
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kSubBuckets + 2;
  // Fixed-point scale for the exact sum: 1e9 units per 1.0 (nano-units).
  static constexpr double kSumScale = 1e9;

  /// Maps a value to its bucket index in [0, kNumBuckets). Pure: the
  /// mapping is a compile-time-fixed function of the double's bits.
  static int BucketIndex(double v);
  /// Inclusive lower bound of bucket `i` (-inf conceptually for bucket 0,
  /// reported as 0.0; +2^kMaxExponent for the overflow bucket).
  static double BucketLowerBound(int i);
  /// Exclusive upper bound of bucket `i` (+inf for the overflow bucket).
  static double BucketUpperBound(int i);

  /// Records one observation. Thread-safe; concurrent records commute.
  void Record(double v);

  /// Folds a snapshotted histogram state into this one exactly: bucket
  /// tallies, count, and fixed-point sum add; min/max fold by CAS. Used
  /// by Registry::MergeFrom. `count == 0` is a no-op (the min/max seeds
  /// of an empty snapshot must not participate).
  void MergeParts(uint64_t count, uint64_t sum_fp, double mn, double mx,
                  const std::map<int, uint64_t>& buckets);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Exact fixed-point sum in nano-units (kSumScale per 1.0).
  uint64_t sum_fp() const { return sum_fp_.load(std::memory_order_relaxed); }
  double sum() const { return static_cast<double>(sum_fp()) / kSumScale; }
  /// Smallest/largest recorded value; 0.0 when count() == 0.
  double min() const;
  double max() const;
  uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_fp_{0};
  // Raw double bits, updated by CAS loops (commutative folds). Seeded
  // with +inf/-inf so the first Record wins unconditionally; reported as
  // 0.0 while count_ == 0.
  std::atomic<uint64_t> min_bits_{0x7FF0000000000000ull};  // +inf
  std::atomic<uint64_t> max_bits_{0xFFF0000000000000ull};  // -inf
};

/// Everything the registry knows at one instant. Counters/timers/
/// histograms from a snapshot can be merged back into another registry
/// (worker-local collection), and the maps are ordered so rendering is
/// stable.
struct Snapshot {
  struct TimerValue {
    double seconds = 0.0;
    uint64_t count = 0;
  };
  /// A histogram's state at one instant. `buckets` is sparse: only
  /// non-zero tallies, keyed by bucket index. `sum_fp` is the exact
  /// fixed-point sum (Histogram::kSumScale units) so merging snapshots
  /// stays exact.
  struct HistogramValue {
    uint64_t count = 0;
    uint64_t sum_fp = 0;
    double min = 0.0;
    double max = 0.0;
    std::map<int, uint64_t> buckets;

    double sum() const {
      return static_cast<double>(sum_fp) / Histogram::kSumScale;
    }
    double mean() const { return count == 0 ? 0.0 : sum() / count; }
    /// Index of the bucket containing the q-quantile (0 <= q <= 1) under
    /// the empirical distribution, or -1 when empty.
    int BucketAtQuantile(double q) const;
    /// Quantile estimate: the upper bound of the bucket containing the
    /// q-quantile (so the estimate never under-reports a tail), clamped
    /// to [min, max]. 0.0 when empty.
    double ValueAtQuantile(double q) const;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, TimerValue> timers;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && timers.empty() && gauges.empty() &&
           histograms.empty();
  }
};

/// Named metric store. A process-wide instance (Global()) backs the
/// solvers and runners; tests build private instances and merge them to
/// validate worker-local collection.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented module records into.
  static Registry& Global();

  /// Returns the counter/timer/histogram registered under `name`,
  /// creating it on first use. The reference stays valid for the
  /// registry's lifetime.
  Counter& GetCounter(const std::string& name) PSO_EXCLUDES(mu_);
  Timer& GetTimer(const std::string& name) PSO_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) PSO_EXCLUDES(mu_);

  /// Sets (overwrites) a point-in-time observation.
  void SetGauge(const std::string& name, double value) PSO_EXCLUDES(mu_);

  /// Copies every metric's current value. Safe to call concurrently with
  /// updates; each value is read atomically (the snapshot as a whole is
  /// not a consistent cut, which is fine for monotone counters).
  Snapshot TakeSnapshot() const PSO_EXCLUDES(mu_);

  /// Adds `snap`'s counters, timers, and histograms into this registry
  /// and overwrites its gauges — the merge step for worker-local
  /// registries. Merging is associative and commutative over counters/
  /// timers/histograms (integer adds + extremum folds), so merge order
  /// cannot change totals, and merging N shards is bit-identical to
  /// recording everything into one registry.
  void MergeFrom(const Snapshot& snap) PSO_EXCLUDES(mu_);

  /// Zeroes every counter and timer and drops all gauges. Handles remain
  /// valid. Intended for tests and for psoctl between subcommands.
  void ResetAll() PSO_EXCLUDES(mu_);

 private:
  mutable Mutex mu_ PSO_LOCK_ORDER(kMetrics){LockRank::kMetrics,
                                             "metrics.registry"};
  // unique_ptr gives handles stable addresses across map rehash/insert.
  // The maps are guarded; the Counter/Timer objects they point to are
  // internally atomic and deliberately updated lock-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PSO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>> timers_ PSO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PSO_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ PSO_GUARDED_BY(mu_);
};

/// Shorthands for the global registry.
inline Counter& GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
inline Timer& GetTimer(const std::string& name) {
  return Registry::Global().GetTimer(name);
}
inline Histogram& GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}
inline void SetGauge(const std::string& name, double value) {
  Registry::Global().SetGauge(name, value);
}

/// Records the wall-clock time between construction and destruction into
/// a Timer, and (for named spans) the same interval into a same-named
/// Histogram — so every instrumented hot path gets a per-call latency
/// distribution (p50..p999) next to its aggregate timer, for free.
/// Non-copyable; stack-allocate one per measured scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(Timer& timer)
      : timer_(timer), hist_(nullptr),
        start_(std::chrono::steady_clock::now()) {}
  ScopedSpan(Timer& timer, Histogram& hist)
      : timer_(timer), hist_(&hist),
        start_(std::chrono::steady_clock::now()) {}
  /// Span over the global registry's timer `name` plus the histogram of
  /// the same name.
  explicit ScopedSpan(const std::string& name)
      : ScopedSpan(GetTimer(name), GetHistogram(name)) {}
  ~ScopedSpan() {
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    timer_.Record(seconds);
    if (hist_ != nullptr) hist_->Record(seconds);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Timer& timer_;
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// JSON-escapes `s` (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Renders `snap` as a JSON object with "counters", "timers", "gauges",
/// and "histograms" members (each an object keyed by metric name, keys
/// sorted). Names and string values are JSON-escaped; non-finite numbers
/// render as null (both would otherwise produce invalid JSON).
std::string SnapshotToJson(const Snapshot& snap);

/// Renders `snap` as an aligned human-readable listing (psoctl --metrics).
std::string SnapshotToText(const Snapshot& snap);

/// Renders `snap` in the Prometheus text exposition format (version
/// 0.0.4): counters as `<name>_total`, gauges as gauges, timers as
/// (sum, count) summaries, histograms as cumulative `_bucket{le="..."}`
/// series ending in `le="+Inf"` plus `_sum`/`_count`. Metric names are
/// sanitized to [a-zA-Z0-9_:] as the format requires.
std::string ExpositionToProm(const Snapshot& snap);

}  // namespace pso::metrics

#endif  // PSO_COMMON_METRICS_H_
