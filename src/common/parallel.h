// Deterministic parallel execution for Monte-Carlo trial loops.
//
// The repo's reproducibility contract is "same seed => same numbers"; this
// module extends it to "same seed => same numbers at ANY thread count".
// Two ingredients make that hold:
//
//  1. Counter-based RNG streams (Rng::StreamAt): trial i derives its
//     generator from (master_seed, i) alone, never from which thread runs
//     it or in what order.
//  2. Thread-count-independent chunking: ParallelFor splits [0, n) into
//     chunks whose boundaries depend only on n (and an optional explicit
//     chunk size). Call sites accumulate into per-chunk estimators and
//     merge them in chunk-index order, so floating-point reductions are
//     bit-for-bit identical whether 1 or 64 threads ran the chunks.
//
// The pool is deliberately simple: a fixed set of workers draining a
// mutex-guarded queue — no work stealing, no task priorities. ParallelFor
// is deadlock-free under nesting because the calling thread participates
// in executing chunks: if every worker is busy (or the pool has none), the
// caller just runs all chunks itself.

#ifndef PSO_COMMON_PARALLEL_H_
#define PSO_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pso {

/// Fixed-size thread pool. Threads are started in the constructor and
/// joined in the destructor; tasks submitted after shutdown are dropped.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means HardwareThreads().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: joins after finishing all queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) PSO_EXCLUDES(mu_);

  /// Tasks each worker has executed so far, indexed by worker. Which
  /// worker dequeues a given task is scheduler-dependent, so these are
  /// observability gauges (load-imbalance reports), never inputs to any
  /// deterministic computation.
  std::vector<uint64_t> WorkerTaskCounts() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop(size_t worker_index) PSO_EXCLUDES(mu_);

  Mutex mu_ PSO_LOCK_ORDER(kParallel){LockRank::kParallel, "parallel.pool"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ PSO_GUARDED_BY(mu_);
  bool shutdown_ PSO_GUARDED_BY(mu_) = false;
  std::vector<std::atomic<uint64_t>> task_counts_;  // sized in constructor
  std::vector<std::thread> threads_;
};

/// Chunk size used by ParallelFor when none is given: a pure function of
/// `n` (never of the thread count), so reductions over per-chunk
/// accumulators are reproducible at any parallelism.
size_t DefaultChunkSize(size_t n);

/// Number of chunks ParallelFor will use for (`n`, `chunk_size`);
/// `chunk_size` 0 means DefaultChunkSize(n). Size per-chunk accumulator
/// vectors with this, and index them by `begin / chunk_size`.
size_t NumChunks(size_t n, size_t chunk_size = 0);

/// Runs `body(begin, end)` over disjoint chunks covering [0, n), blocking
/// until every chunk has finished. Chunks may run concurrently on `pool`'s
/// workers and on the calling thread; with a null pool (or n small enough
/// for one chunk) everything runs inline on the caller — the exact legacy
/// serial behavior.
///
/// Exceptions thrown by `body` are captured and the one from the
/// lowest-indexed failing chunk is rethrown on the calling thread after
/// all chunks have completed (deterministic even when several chunks
/// throw).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t begin, size_t end)>& body,
                 size_t chunk_size = 0);

/// Publishes `pool`'s per-worker task distribution into the global metric
/// registry as gauges (pool.workers, pool.tasks_total, pool.tasks_max,
/// pool.tasks_min, pool.imbalance). Gauges are run-dependent: task-to-
/// worker assignment is a scheduler accident. No-op for a null pool.
void RecordPoolGauges(const ThreadPool* pool);

/// Tracks a set of independent tasks submitted to a pool and lets the
/// owner block until all of them have finished — the completion-tracking
/// layer ThreadPool itself deliberately lacks (its queue drains only at
/// destruction). Long-running services use one TaskGroup per logical
/// stream of async work (a request batch executor, a connection handler
/// set) so they can drain in-flight work without tearing the pool down.
///
/// With a null pool, Submit runs the task inline on the calling thread —
/// the exact serial behavior, mirroring ParallelFor's contract. Tasks may
/// Submit further tasks onto the same group. Wait() returns once every
/// submitted task (including ones submitted while waiting) has finished.
/// Not a barrier for reuse: Wait() may be called repeatedly, and Submit
/// stays valid after a Wait.
///
/// Exceptions thrown by tasks are swallowed after being counted (the
/// failed() count); services must report failures through their own
/// Status plumbing, not by unwinding a worker.
class TaskGroup {
 public:
  /// Binds the group to `pool` (null = run every task inline).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Waits for stragglers so task captures never dangle.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `task` on the pool (or inline when the pool is null).
  void Submit(std::function<void()> task) PSO_EXCLUDES(mu_);

  /// Blocks until every submitted task has completed.
  void Wait() PSO_EXCLUDES(mu_);

  /// Tasks currently submitted-but-unfinished (racy snapshot; for tests
  /// and gauges).
  size_t pending() const PSO_EXCLUDES(mu_);

  /// Tasks that terminated by throwing (their exceptions are dropped).
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  void RunOne(const std::function<void()>& task) PSO_EXCLUDES(mu_);

  ThreadPool* pool_;
  mutable Mutex mu_ PSO_LOCK_ORDER(kParallel){LockRank::kParallel,
                                              "parallel.task_group"};
  CondVar idle_cv_;
  size_t pending_ PSO_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> failed_{0};
};

}  // namespace pso

#endif  // PSO_COMMON_PARALLEL_H_
