// pso::Mutex / pso::MutexLock / pso::CondVar: thin wrappers over the
// standard primitives that carry Clang thread-safety capability
// attributes (common/thread_annotations.h), so -Wthread-safety can check
// the locking discipline at compile time. Under GCC the attributes
// vanish and these are zero-cost aliases for std::mutex et al.
//
// Every long-lived mutex additionally names its position in the global
// lock-rank table (common/lock_rank.h): pass a LockRank and a stable
// name to the constructor and attach PSO_LOCK_ORDER(rank) to the
// declaration. Building with -DPSO_DEADLOCK_CHECK=ON arms a runtime
// verifier: each acquisition is checked against the calling thread's
// held-lock stack (rank must strictly decrease) and against a global
// graph of every acquisition pair ever observed (a cycle means two
// threads disagree about the order). Violations PSO_CHECK with a witness
// chain naming each mutex and the file:line of every held acquisition.
// When the option is off the hooks compile away entirely.
//
// All concurrent code in this repo uses these wrappers; bare std::mutex /
// std::condition_variable / std::thread outside src/common/ are rejected
// by tools/pso_lint.py (rule `bare-mutex`).

#ifndef PSO_COMMON_MUTEX_H_
#define PSO_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

#ifndef PSO_DEADLOCK_CHECK
#define PSO_DEADLOCK_CHECK 0
#endif

namespace pso {

class Mutex;

namespace deadlock {
#if PSO_DEADLOCK_CHECK
/// Verifier hooks called by Mutex; not for direct use. `blocking` is
/// false for try-acquisitions, which skip the rank-inversion check (a
/// failed try_lock cannot deadlock) but still feed the pair graph.
void OnAcquire(const Mutex& mu, bool blocking, const char* file, int line);
void OnRelease(const Mutex& mu);

/// Number of locks the calling thread currently holds (test hook).
int HeldCount();
#endif
}  // namespace deadlock

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock.
///
/// Long-lived mutexes must be constructed with a LockRank and a stable
/// dotted name ("metrics.registry"); the default constructor is reserved
/// for short-lived scratch locks (rank checks are skipped, but recursive
/// acquisition is still caught under PSO_DEADLOCK_CHECK).
class PSO_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if PSO_DEADLOCK_CHECK
  explicit constexpr Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) PSO_ACQUIRE() {
    // Check before blocking: a true deadlock would otherwise hang the
    // process before the witness could be reported.
    deadlock::OnAcquire(*this, /*blocking=*/true, file, line);
    mu_.lock();
  }
  void Unlock() PSO_RELEASE() {
    deadlock::OnRelease(*this);
    mu_.unlock();
  }
  bool TryLock(const char* file = __builtin_FILE(),
               int line = __builtin_LINE()) PSO_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    deadlock::OnAcquire(*this, /*blocking=*/false, file, line);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }  // nullptr when unranked
#else
  explicit constexpr Mutex(LockRank /*rank*/, const char* /*name*/) {}

  void Lock() PSO_ACQUIRE() { mu_.lock(); }
  void Unlock() PSO_RELEASE() { mu_.unlock(); }
  bool TryLock() PSO_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#if PSO_DEADLOCK_CHECK
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = nullptr;
#endif
};

/// RAII scoped lock (lock_guard shape: held for the full scope).
class PSO_SCOPED_CAPABILITY MutexLock {
 public:
#if PSO_DEADLOCK_CHECK
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) PSO_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(file, line);
  }
#else
  explicit MutexLock(Mutex& mu) PSO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
#endif
  ~MutexLock() PSO_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with pso::Mutex. Wait() atomically releases
/// and reacquires the mutex, which the annotations model as "requires
/// `mu` held across the call". Write predicate loops inline so the
/// analysis sees the guarded reads under the lock:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !shutdown_) cv_.Wait(mu_);
///
/// Under PSO_DEADLOCK_CHECK the mutex stays on the waiter's held-lock
/// stack across the wait (the release/reacquire pair inside the CV is
/// invisible to the verifier, and by the time Wait returns the stack is
/// accurate again).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is released while
  /// blocked and reacquired before returning.
  void Wait(Mutex& mu) PSO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller's MutexLock still owns the mutex
  }

  /// Blocks until notified or `timeout` elapses. Returns true if
  /// notified, false on timeout. Same locking contract as Wait(); like
  /// Wait(), callers must re-check their predicate either way (spurious
  /// wakeups). Powers periodic pollers (the stall watchdog) that must
  /// still shut down promptly on notify.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      PSO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // caller's MutexLock still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pso

#endif  // PSO_COMMON_MUTEX_H_
