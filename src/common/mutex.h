// pso::Mutex / pso::MutexLock / pso::CondVar: thin wrappers over the
// standard primitives that carry Clang thread-safety capability
// attributes (common/thread_annotations.h), so -Wthread-safety can check
// the locking discipline at compile time. Under GCC the attributes
// vanish and these are zero-cost aliases for std::mutex et al.
//
// All concurrent code in this repo uses these wrappers; bare std::mutex /
// std::condition_variable / std::thread outside src/common/ are rejected
// by tools/pso_lint.py (rule `bare-mutex`).

#ifndef PSO_COMMON_MUTEX_H_
#define PSO_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace pso {

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock.
class PSO_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PSO_ACQUIRE() { mu_.lock(); }
  void Unlock() PSO_RELEASE() { mu_.unlock(); }
  bool TryLock() PSO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock (lock_guard shape: held for the full scope).
class PSO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PSO_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with pso::Mutex. Wait() atomically releases
/// and reacquires the mutex, which the annotations model as "requires
/// `mu` held across the call". Write predicate loops inline so the
/// analysis sees the guarded reads under the lock:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !shutdown_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is released while
  /// blocked and reacquired before returning.
  void Wait(Mutex& mu) PSO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller's MutexLock still owns the mutex
  }

  /// Blocks until notified or `timeout` elapses. Returns true if
  /// notified, false on timeout. Same locking contract as Wait(); like
  /// Wait(), callers must re-check their predicate either way (spurious
  /// wakeups). Powers periodic pollers (the stall watchdog) that must
  /// still shut down promptly on notify.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      PSO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // caller's MutexLock still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pso

#endif  // PSO_COMMON_MUTEX_H_
