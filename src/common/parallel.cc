#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace pso {

namespace {

// Chunks per ParallelFor when no explicit chunk size is given. Small
// enough that per-chunk bookkeeping is negligible, large enough that up
// to ~64 workers all find work. Must stay a constant: chunk boundaries
// may depend only on n.
constexpr size_t kDefaultChunks = 64;

// Shared state of one ParallelFor invocation. Worker tasks hold it via
// shared_ptr so late-dequeued helpers (whose chunks were already claimed
// by others) outlive the call safely: they observe next_chunk >= num_chunks
// and exit without touching `body`.
struct ForState {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t chunk_size = 0;
  size_t num_chunks = 0;

  // Observability plumbing: the launching thread's trace span (worker
  // chunk spans nest under it) and the deterministic-log region key
  // (chunk c logs under rank <region_key>.<c>). Both are fixed before
  // any task is submitted.
  uint64_t trace_parent = 0;
  bool det_log = false;
  std::vector<uint64_t> log_region_key;

  std::atomic<size_t> next_chunk{0};
  Mutex mu PSO_LOCK_ORDER(kParallel){LockRank::kParallel,
                                     "parallel.for_state"};
  CondVar done_cv;
  size_t done_chunks PSO_GUARDED_BY(mu) = 0;
  std::exception_ptr error PSO_GUARDED_BY(mu);
  size_t error_chunk PSO_GUARDED_BY(mu) = 0;

  // Claims and runs chunks until none remain. Returns once this thread
  // can take no more work (other threads may still be running chunks).
  void RunChunks() {
    for (;;) {
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t begin = c * chunk_size;
      size_t end = std::min(n, begin + chunk_size);
      std::exception_ptr err;
      try {
        trace::ContextScope trace_ctx(trace_parent);
        std::optional<log::RankScope> rank;
        if (det_log) rank.emplace(log_region_key, c);
        (*body)(begin, end);
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(mu);
      if (err && (!error || c < error_chunk)) {
        error = err;
        error_chunk = c;
      }
      if (++done_chunks == num_chunks) done_cv.NotifyAll();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  task_counts_ = std::vector<std::atomic<uint64_t>>(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

size_t ThreadPool::HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Predicate loop written inline (not as a lambda) so the analysis
      // sees the guarded reads happen under mu_.
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task_counts_[worker_index].fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

std::vector<uint64_t> ThreadPool::WorkerTaskCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(task_counts_.size());
  for (const auto& c : task_counts_) {
    counts.push_back(c.load(std::memory_order_relaxed));
  }
  return counts;
}

size_t DefaultChunkSize(size_t n) {
  if (n == 0) return 1;
  return std::max<size_t>(1, (n + kDefaultChunks - 1) / kDefaultChunks);
}

size_t NumChunks(size_t n, size_t chunk_size) {
  if (n == 0) return 0;
  if (chunk_size == 0) chunk_size = DefaultChunkSize(n);
  return (n + chunk_size - 1) / chunk_size;
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 size_t chunk_size) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = DefaultChunkSize(n);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  // Both totals depend only on the call sites' (n, chunk_size) sequence,
  // never on the thread count, so they land in the deterministic section
  // of metric snapshots.
  metrics::GetCounter("parallel.for_calls").Add(1);
  metrics::GetCounter("parallel.chunks").Add(num_chunks);
  metrics::GetCounter("parallel.items").Add(n);

  // Region-level observability context. The span/rank key depend only on
  // the call-site sequence and (n, chunk_size), never on the thread
  // count, so the logical trace tree and the deterministic log order are
  // identical on the serial and pooled paths.
  trace::Span region_span("parallel.for");
  if (region_span.active()) {
    region_span.Arg("n", std::to_string(n));
    region_span.Arg("chunks", std::to_string(num_chunks));
  }
  const bool det_log = log::DeterministicMode();
  std::vector<uint64_t> log_region_key;
  if (det_log) log_region_key = log::AllocateRegionKey();

  if (pool == nullptr || pool->num_threads() == 0 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      std::optional<log::RankScope> rank;
      if (det_log) rank.emplace(log_region_key, c);
      size_t begin = c * chunk_size;
      body(begin, std::min(n, begin + chunk_size));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->body = &body;
  state->n = n;
  state->chunk_size = chunk_size;
  state->num_chunks = num_chunks;
  state->trace_parent =
      region_span.active() ? region_span.id() : trace::CurrentSpanId();
  state->det_log = det_log;
  state->log_region_key = std::move(log_region_key);

  // One helper per worker (capped by the chunk count); the caller also
  // claims chunks, so completion never depends on a helper being
  // scheduled — nested ParallelFor on a saturated pool cannot deadlock.
  const size_t helpers = std::min(pool->num_threads(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  MutexLock lock(state->mu);
  while (state->done_chunks != state->num_chunks) state->done_cv.Wait(state->mu);
  if (state->error) std::rethrow_exception(state->error);
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  if (pool_ == nullptr || pool_->num_threads() == 0) {
    RunOne(task);
    return;
  }
  auto shared = std::make_shared<std::function<void()>>(std::move(task));
  pool_->Submit([this, shared] { RunOne(*shared); });
}

void TaskGroup::RunOne(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  MutexLock lock(mu_);
  if (--pending_ == 0) idle_cv_.NotifyAll();
}

void TaskGroup::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) idle_cv_.Wait(mu_);
}

size_t TaskGroup::pending() const {
  MutexLock lock(mu_);
  return pending_;
}

void RecordPoolGauges(const ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 0) return;
  std::vector<uint64_t> counts = pool->WorkerTaskCounts();
  uint64_t total = 0;
  uint64_t max = 0;
  uint64_t min = counts.empty() ? 0 : counts[0];
  for (uint64_t c : counts) {
    total += c;
    max = std::max(max, c);
    min = std::min(min, c);
  }
  metrics::SetGauge("pool.workers", static_cast<double>(counts.size()));
  metrics::SetGauge("pool.tasks_total", static_cast<double>(total));
  metrics::SetGauge("pool.tasks_max", static_cast<double>(max));
  metrics::SetGauge("pool.tasks_min", static_cast<double>(min));
  metrics::SetGauge("pool.imbalance", static_cast<double>(max - min));
}

}  // namespace pso
