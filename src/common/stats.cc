#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pso {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double total = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void BernoulliEstimator::Add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void BernoulliEstimator::AddBatch(size_t successes, size_t trials) {
  PSO_CHECK(successes <= trials);
  trials_ += trials;
  successes_ += successes;
}

void BernoulliEstimator::Merge(const BernoulliEstimator& other) {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

double BernoulliEstimator::rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

Interval BernoulliEstimator::WilsonInterval(double z) const {
  if (trials_ == 0) return {0.0, 1.0};
  double n = static_cast<double>(trials_);
  double p = rate();
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double BaselineIsolationProbability(size_t n, double w) {
  if (n == 0 || w <= 0.0 || w >= 1.0) return 0.0;
  double nn = static_cast<double>(n);
  // Compute in log space to survive large n and tiny w.
  double log_p = std::log(nn) + std::log(w) + (nn - 1.0) * std::log1p(-w);
  return std::exp(log_p);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  PSO_CHECK(!xs.empty());
  PSO_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace pso
