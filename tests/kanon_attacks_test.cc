// Tests for the k-anonymity attacks (Theorem 2.10, Cohen downcoding, Ganta
// composition).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "kanon/attacks.h"
#include "kanon/datafly.h"
#include "kanon/mondrian.h"

namespace pso::kanon {
namespace {

struct Fixture {
  Universe universe = MakeGicMedicalUniverse(100);
  Dataset data;
  HierarchySet hierarchies;
  std::vector<size_t> qi = {0, 1, 2, 3};

  explicit Fixture(uint64_t seed, size_t n = 500)
      : data(SampleData(universe, seed, n)),
        hierarchies(HierarchySet::Defaults(universe.schema)) {}

  static Dataset SampleData(const Universe& u, uint64_t seed, size_t n) {
    Rng rng(seed);
    return u.distribution.SampleDataset(n, rng);
  }

  AnonymizationResult Mondrian(size_t k) const {
    MondrianOptions opts;
    opts.k = k;
    opts.qi_attrs = qi;
    auto r = MondrianAnonymize(data, hierarchies, opts);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }
};

TEST(ClassPredicateTest, MatchesExactlyClassMembers) {
  Fixture f(1);
  AnonymizationResult result = f.Mondrian(5);
  for (size_t c = 0; c < std::min<size_t>(result.classes.size(), 10); ++c) {
    auto pred = EquivalenceClassPredicate(result, c);
    // Every class member satisfies the class predicate.
    for (size_t i : result.classes[c]) {
      EXPECT_TRUE(pred->Eval(f.data.record(i)));
    }
  }
}

TEST(HashIsolationTest, PredictedSuccessNearOneOverE) {
  Fixture f(2);
  AnonymizationResult result = f.Mondrian(5);
  Rng rng(3);
  auto attack = HashIsolationPredicate(result, f.universe.distribution,
                                       /*weight_budget=*/1e-3, rng);
  ASSERT_TRUE(attack.has_value());
  EXPECT_NEAR(attack->predicted_success, std::exp(-1.0), 0.08);
  EXPECT_LE(attack->predicted_weight, 1e-3);
}

TEST(HashIsolationTest, EmpiricalSuccessNearOneOverE) {
  // Over many fresh datasets, the Theorem 2.10 attack isolates ~ 37% of
  // the time.
  Universe u = MakeGicMedicalUniverse(100);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  Rng rng(5);
  int isolated = 0;
  const int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    Dataset data = u.distribution.SampleDataset(300, rng);
    MondrianOptions opts;
    opts.k = 5;
    opts.qi_attrs = {0, 1, 2, 3};
    auto result = MondrianAnonymize(data, hs, opts);
    ASSERT_TRUE(result.ok());
    auto attack =
        HashIsolationPredicate(*result, u.distribution, 1e-2, rng);
    ASSERT_TRUE(attack.has_value());
    if (Isolates(*attack->predicate, data)) ++isolated;
  }
  double rate = isolated / static_cast<double>(kTrials);
  EXPECT_GT(rate, 0.22);
  EXPECT_LT(rate, 0.55);
}

TEST(HashIsolationTest, RespectsWeightBudget) {
  Fixture f(7);
  AnonymizationResult result = f.Mondrian(5);
  Rng rng(8);
  // Impossible budget: no class has weight below 1e-30.
  auto attack =
      HashIsolationPredicate(result, f.universe.distribution, 1e-30, rng);
  EXPECT_FALSE(attack.has_value());
}

TEST(MinimalityTest, BeatsHashAttack) {
  // The downcoding/minimality attack on tight-range Mondrian should
  // predict higher success than 1/e.
  Fixture f(9);
  AnonymizationResult result = f.Mondrian(5);
  auto attack =
      MinimalityIsolationPredicate(result, f.universe.distribution, 1e-3);
  ASSERT_TRUE(attack.has_value());
  EXPECT_GT(attack->predicted_success, 0.6);
}

TEST(MinimalityTest, EmpiricalSuccessHigh) {
  Universe u = MakeGicMedicalUniverse(100);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  Rng rng(11);
  int isolated = 0;
  const int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    Dataset data = u.distribution.SampleDataset(300, rng);
    MondrianOptions opts;
    opts.k = 5;
    opts.qi_attrs = {0, 1, 2, 3};
    auto result = MondrianAnonymize(data, hs, opts);
    ASSERT_TRUE(result.ok());
    auto attack =
        MinimalityIsolationPredicate(*result, u.distribution, 1e-2);
    ASSERT_TRUE(attack.has_value());
    if (Isolates(*attack->predicate, data)) ++isolated;
  }
  // Cohen: success approaching 100%; allow sampling slack.
  EXPECT_GT(isolated / static_cast<double>(kTrials), 0.7);
}

TEST(MinimalityTest, PredicateWeightIsNegligible) {
  Fixture f(13, 800);
  AnonymizationResult result = f.Mondrian(5);
  auto attack =
      MinimalityIsolationPredicate(result, f.universe.distribution, 1e-4);
  if (attack.has_value()) {
    EXPECT_LE(attack->predicted_weight, 1e-4);
  }
}

TEST(IntersectionTest, TwoReleasesLeakMoreThanEither) {
  // Two independent 3-anonymous releases of the same data (different
  // algorithms -> different partitions). Intersecting a row's sensitive
  // candidates across releases pins values a single release never would,
  // and shrinks the candidate sets for a large fraction of rows — the
  // composition failure of [23].
  Fixture f(15, 400);
  AnonymizationResult a = f.Mondrian(3);

  DataflyOptions dopts;
  dopts.k = 3;
  dopts.qi_attrs = f.qi;
  dopts.max_suppression = 0.1;
  auto b = DataflyAnonymize(f.data, f.hierarchies, dopts);
  ASSERT_TRUE(b.ok());

  size_t diagnosis = 4;  // sensitive attribute
  auto two = IntersectionAttack(f.data, a, *b, diagnosis);
  auto self = IntersectionAttack(f.data, a, a, diagnosis);
  EXPECT_EQ(two.rows, 400u);
  // Composition pins strictly more rows than one release alone, ...
  EXPECT_GT(two.sensitive_pinned, self.sensitive_pinned);
  EXPECT_GT(two.pinned_fraction, 0.02);
  // ... and leaks extra candidates for many rows.
  EXPECT_GT(two.shrunk_fraction, 0.3);
  EXPECT_DOUBLE_EQ(self.shrunk_fraction, 0.0);
}

TEST(IntersectionTest, SameReleaseTwiceOnlyPinsHomogeneousClasses) {
  Fixture f(17, 300);
  AnonymizationResult a = f.Mondrian(5);
  size_t diagnosis = 4;
  auto twice = IntersectionAttack(f.data, a, a, diagnosis);
  // Self-intersection pins exactly the rows whose class has one distinct
  // sensitive value (the l-diversity failure mode), typically few.
  size_t homogeneous = 0;
  for (const auto& cls : a.classes) {
    std::set<int64_t> vals;
    for (size_t i : cls) vals.insert(f.data.At(i, diagnosis));
    if (vals.size() == 1) homogeneous += cls.size();
  }
  EXPECT_EQ(twice.sensitive_pinned, homogeneous);
}

}  // namespace
}  // namespace pso::kanon
