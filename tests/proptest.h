// Minimal property-test driver for the differential solver oracles.
//
// Design goals, in order: deterministic (every case derives from
// Rng::StreamAt(master_seed, iteration), so a failure report names the
// exact (seed, iteration, scale) triple that reproduces it), shrinking
// (generation is parameterized by an integer `scale`; on failure the
// driver re-generates the same stream at scale/2, scale/4, ... and
// reports the smallest still-failing instance), and zero dependencies
// beyond GTest and pso::Rng.
//
// Usage:
//   proptest::Config cfg{.master_seed = 41, .iterations = 200,
//                        .max_scale = 16};
//   EXPECT_TRUE(proptest::ForAll<MyCase>(
//       cfg,
//       [](Rng& rng, size_t scale) { return GenCase(rng, scale); },
//       [](const MyCase& c) { return CheckCase(c); }));  // "" = pass
//
// The property returns an empty string on success and a diagnostic on
// failure; the driver folds the diagnostics of the original and the
// shrunk instance into the GTest assertion message.

#ifndef PSO_TESTS_PROPTEST_H_
#define PSO_TESTS_PROPTEST_H_

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/str_util.h"

namespace pso::proptest {

/// Knobs for one ForAll run.
struct Config {
  uint64_t master_seed = 0;  ///< Stream family; pin per test.
  size_t iterations = 100;   ///< Cases to generate.
  size_t max_scale = 16;     ///< Size hint handed to the generator.
  size_t min_scale = 1;      ///< Shrinking floor (halving stops here).
};

/// Runs `property` over `cfg.iterations` generated cases. `gen` is
/// called as gen(rng, scale) with a fresh counter-derived stream per
/// iteration; `property` returns "" to accept a case or a diagnostic to
/// reject it. On rejection the case is re-generated at halved scales
/// (same stream) to find the smallest failing instance before reporting.
template <typename T, typename Gen, typename Prop>
::testing::AssertionResult ForAll(const Config& cfg, Gen gen, Prop property) {
  for (size_t iter = 0; iter < cfg.iterations; ++iter) {
    auto run_at = [&](size_t scale, std::string* diag) {
      Rng rng = Rng::StreamAt(cfg.master_seed, iter);
      T value = gen(rng, scale);
      *diag = property(value);
      return diag->empty();
    };

    std::string diag;
    if (run_at(cfg.max_scale, &diag)) continue;

    // Shrink by halving the scale while the property still fails.
    size_t failing_scale = cfg.max_scale;
    std::string failing_diag = diag;
    for (size_t scale = cfg.max_scale / 2; scale >= cfg.min_scale;
         scale /= 2) {
      std::string smaller_diag;
      if (!run_at(scale, &smaller_diag)) {
        failing_scale = scale;
        failing_diag = smaller_diag;
      }
      if (scale == cfg.min_scale) break;
    }
    return ::testing::AssertionFailure()
           << StrFormat(
                  "property failed (master_seed=%llu iteration=%zu "
                  "scale=%zu, shrunk from scale=%zu): ",
                  (unsigned long long)cfg.master_seed, iter, failing_scale,
                  cfg.max_scale)
           << failing_diag;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace pso::proptest

#endif  // PSO_TESTS_PROPTEST_H_
