// Tests for the census tabulation / reconstruction / re-identification
// pipeline.

#include <gtest/gtest.h>

#include "census/reidentify.h"

namespace pso::census {
namespace {

Population SmallPopulation(uint64_t seed, size_t blocks = 20,
                           size_t min_size = 2, size_t max_size = 7) {
  PopulationOptions opts;
  opts.num_blocks = blocks;
  opts.min_block_size = min_size;
  opts.max_block_size = max_size;
  Rng rng(seed);
  return GeneratePopulation(opts, rng);
}

TEST(PersonCodecTest, EncodeDecodeRoundTrip) {
  for (size_t idx = 0; idx < kPersonDomain; idx += 97) {
    Record r = DecodePerson(idx);
    EXPECT_EQ(EncodePerson(r), idx);
  }
  Record r = {42, 1, 3, 0};  // age 42, M, asian, non-hispanic
  EXPECT_EQ(DecodePerson(EncodePerson(r)), r);
}

TEST(PopulationTest, GeneratesRequestedShape) {
  Population pop = SmallPopulation(1, 15, 3, 9);
  EXPECT_EQ(pop.blocks.size(), 15u);
  size_t total = 0;
  uint64_t last_id = 0;
  for (const Block& b : pop.blocks) {
    EXPECT_GE(b.persons.size(), 3u);
    EXPECT_LE(b.persons.size(), 9u);
    EXPECT_EQ(b.persons.size(), b.person_ids.size());
    total += b.persons.size();
    for (uint64_t id : b.person_ids) {
      EXPECT_GT(id, last_id);  // ids strictly increasing
      last_id = id;
    }
  }
  EXPECT_EQ(pop.total_persons, total);
}

TEST(TabulatorTest, ExactTablesMatchData) {
  Population pop = SmallPopulation(2, 5);
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    EXPECT_EQ(t.total, static_cast<int64_t>(b.persons.size()));
    int64_t age_sum = 0;
    for (int64_t c : t.by_age) age_sum += c;
    EXPECT_EQ(age_sum, t.total);
    int64_t race_sum = 0;
    for (int64_t c : t.by_race) race_sum += c;
    EXPECT_EQ(race_sum, t.total);
    int64_t sexage_sum = 0;
    for (int64_t c : t.by_sex_age_bucket) sexage_sum += c;
    EXPECT_EQ(sexage_sum, t.total);
    EXPECT_EQ(t.noise_slack, 0);
    ASSERT_TRUE(t.median_age.has_value());
    // The median must be attained in [0, kMaxAge].
    EXPECT_GE(*t.median_age, 0);
    EXPECT_LE(*t.median_age, kMaxAge);
  }
}

TEST(TabulatorTest, DpTablesAreNoisyAndSlacked) {
  Population pop = SmallPopulation(3, 5);
  Rng rng(4);
  const Block& b = pop.blocks[0];
  BlockTables t = TabulateDp(b, /*eps=*/0.5, rng);
  EXPECT_GT(t.noise_slack, 0);
  EXPECT_FALSE(t.median_age.has_value());
  for (int64_t c : t.by_age) EXPECT_GE(c, 0);  // clamped
}

TEST(ReconstructTest, ExactTablesReconstructSmallBlocksUniquely) {
  Population pop = SmallPopulation(5, 30, 2, 6);
  size_t unique_blocks = 0;
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    BlockReconstruction r = ReconstructBlock(t, b.persons);
    EXPECT_TRUE(r.exhausted);
    ASSERT_GE(r.solutions_found, 1u);  // truth is always a solution
    if (r.unique) {
      ++unique_blocks;
      // Unique solution must equal the truth as a multiset.
      EXPECT_EQ(r.exact_matches, b.persons.size());
    }
  }
  // Small blocks with single-year-of-age tables resolve uniquely most of
  // the time.
  EXPECT_GT(unique_blocks, pop.blocks.size() / 2);
}

TEST(ReconstructTest, TruthIsAlwaysAmongSolutions) {
  Population pop = SmallPopulation(6, 10, 2, 5);
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    ReconstructOptions opts;
    opts.max_solutions = 4096;
    BlockReconstruction r = ReconstructBlock(t, b.persons, opts);
    // The ground truth satisfies its own exact tables, so an exhaustive
    // enumeration must contain it.
    ASSERT_TRUE(r.exhausted);
    EXPECT_TRUE(r.truth_found);
  }
}

TEST(ReconstructTest, DpTablesDegradeReconstruction) {
  Population pop = SmallPopulation(7, 12, 3, 6);
  Rng rng(8);
  std::vector<BlockTables> exact;
  std::vector<BlockTables> noisy;
  for (const Block& b : pop.blocks) {
    exact.push_back(Tabulate(b));
    noisy.push_back(TabulateDp(b, /*eps=*/0.25, rng));
  }
  ReconstructOptions opts;
  opts.max_solutions = 16;
  opts.max_nodes = 200000;
  ReconstructionReport exact_report =
      ReconstructPopulation(pop, exact, opts);
  ReconstructionReport dp_report = ReconstructPopulation(pop, noisy, opts);
  EXPECT_GT(exact_report.block_unique_fraction(),
            dp_report.block_unique_fraction());
  EXPECT_GT(exact_report.person_exact_fraction(),
            dp_report.person_exact_fraction());
}

TEST(CommercialTest, CoverageAndErrors) {
  Population pop = SmallPopulation(9, 40, 3, 8);
  CommercialOptions opts;
  opts.coverage = 0.5;
  opts.age_error_rate = 0.2;
  Rng rng(10);
  auto db = SimulateCommercialDatabase(pop, opts, rng);
  double cov = static_cast<double>(db.size()) /
               static_cast<double>(pop.total_persons);
  EXPECT_NEAR(cov, 0.5, 0.1);
  // Some (but not all) entries should carry age errors.
  size_t errors = 0;
  for (const auto& e : db) {
    const Block& b = pop.blocks[e.block_id];
    for (size_t i = 0; i < b.person_ids.size(); ++i) {
      if (b.person_ids[i] == e.person_id &&
          b.persons.At(i, kAge) != e.age) {
        ++errors;
      }
    }
  }
  EXPECT_GT(errors, 0u);
  EXPECT_LT(errors, db.size());
}

TEST(ReidentifyTest, ExactReconstructionYieldsHighPrecision) {
  Population pop = SmallPopulation(11, 40, 2, 6);
  std::vector<BlockTables> tables;
  for (const Block& b : pop.blocks) tables.push_back(Tabulate(b));
  std::vector<BlockReconstruction> recon;
  ReconstructPopulation(pop, tables, {}, &recon);

  CommercialOptions copts;
  copts.coverage = 0.7;
  copts.age_error_rate = 0.05;
  Rng rng(12);
  auto db = SimulateCommercialDatabase(pop, copts, rng);
  ReidentificationReport report = Reidentify(pop, recon, db);
  EXPECT_GT(report.putative, 0u);
  EXPECT_GT(report.confirmed, 0u);
  EXPECT_GT(report.precision(), 0.5);
  EXPECT_LE(report.confirmed, report.putative);
  EXPECT_EQ(report.population, pop.total_persons);
}

TEST(ReidentifyTest, EmptyReconstructionNoClaims) {
  Population pop = SmallPopulation(13, 5, 2, 4);
  std::vector<BlockReconstruction> recon(pop.blocks.size());
  for (size_t i = 0; i < recon.size(); ++i) {
    recon[i].block_id = pop.blocks[i].id;
  }
  ReidentificationReport report = Reidentify(pop, recon, {});
  EXPECT_EQ(report.putative, 0u);
  EXPECT_EQ(report.confirmed, 0u);
}

}  // namespace
}  // namespace pso::census
