// Targeted tests for the sparse revised-simplex backend: anti-cycling on
// classic degenerate instances, eta-file refactorization on long solves,
// warm starts (identical instance and after appending constraints),
// recovery from singular / mis-shaped warm bases, and the degenerate
// shapes (empty, 1x1, all-slack) that never show up in the random
// differential suites. The dense tableau backend serves as the oracle
// throughout.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "solver/lp.h"
#include "solver/revised_simplex.h"

namespace pso {
namespace {

std::unique_ptr<LpBackend> Sparse() {
  Result<std::unique_ptr<LpBackend>> r = MakeLpBackend("sparse");
  return std::move(*r);
}
std::unique_ptr<LpBackend> Dense() {
  Result<std::unique_ptr<LpBackend>> r = MakeLpBackend("dense");
  return std::move(*r);
}

uint64_t CounterValue(const char* name) {
  return metrics::GetCounter(name).value();
}

// Beale's classic cycling example: the textbook Dantzig rule cycles
// forever on this LP, so reaching the optimum at all exercises the Bland
// fallback that kicks in after a degenerate-pivot streak.
LpProblem BealeCyclingLp() {
  LpProblem lp;
  size_t x1 = lp.AddVariable(0.0, LpProblem::kInfinity, -0.75);
  size_t x2 = lp.AddVariable(0.0, LpProblem::kInfinity, 150.0);
  size_t x3 = lp.AddVariable(0.0, LpProblem::kInfinity, -0.02);
  size_t x4 = lp.AddVariable(0.0, LpProblem::kInfinity, 6.0);
  lp.AddConstraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Relation::kLessEq, 0.0);
  lp.AddConstraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Relation::kLessEq, 0.0);
  lp.AddConstraint({{x3, 1.0}}, Relation::kLessEq, 1.0);
  return lp;
}

TEST(RevisedSimplexTest, BealeDegenerateCyclingInstance) {
  LpProblem lp = BealeCyclingLp();
  Result<LpSolution> got = lp.SolveWith(*Sparse(), LpSolveOptions{});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NEAR(got->objective, -0.05, 1e-9);
  // Termination must come from optimality, not the iteration cap.
  EXPECT_LT(got->iterations, 1000u);
}

// An L1-fit LP shaped exactly like the reconstruction decoder: n box
// variables, q equality rows with +u -v residual splits. Long enough to
// cross kRefactorInterval several times.
LpProblem L1FitLp(size_t n, size_t q, uint64_t seed) {
  Rng rng(seed);
  LpProblem lp;
  std::vector<size_t> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = lp.AddVariable(0.0, 1.0, 0.0);
  for (size_t j = 0; j < q; ++j) {
    size_t u = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    size_t v = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    std::vector<std::pair<size_t, double>> row;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) row.emplace_back(x[i], 1.0);
    }
    row.emplace_back(u, 1.0);
    row.emplace_back(v, -1.0);
    lp.AddConstraint(row, Relation::kEqual,
                     static_cast<double>(rng.UniformInt(0, (int64_t)n / 2)));
  }
  return lp;
}

TEST(RevisedSimplexTest, LongSolveCrossesRefactorizationInterval) {
  LpProblem lp = L1FitLp(/*n=*/16, /*q=*/96, /*seed=*/71);
  const uint64_t refactors_before = CounterValue("lp.refactorizations");
  Result<LpSolution> sparse = lp.SolveWith(*Sparse(), LpSolveOptions{});
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  ASSERT_GT(sparse->iterations, revised_simplex_internal::kRefactorInterval)
      << "instance too easy to exercise refactorization";
  // At least one periodic refactorization beyond the initial one.
  EXPECT_GE(CounterValue("lp.refactorizations") - refactors_before, 2u);

  Result<LpSolution> dense = lp.SolveWith(*Dense(), LpSolveOptions{});
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  EXPECT_NEAR(sparse->objective, dense->objective, 1e-7);
}

TEST(RevisedSimplexTest, WarmRestartOfSolvedInstanceTakesNoPivots) {
  LpProblem lp = L1FitLp(/*n=*/8, /*q=*/24, /*seed=*/5);
  LpBasis basis;
  LpSolveOptions first;
  first.final_basis = &basis;
  Result<LpSolution> cold = lp.SolveWith(*Sparse(), first);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(basis.empty());

  const uint64_t warms_before = CounterValue("lp.warm_starts");
  LpSolveOptions second;
  second.warm_start = &basis;
  Result<LpSolution> warm = lp.SolveWith(*Sparse(), second);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(CounterValue("lp.warm_starts") - warms_before, 1u);
  // The optimal basis re-prices as optimal: zero pivots, same vertex (the
  // fresh factorization may clean sub-tolerance residue off the cold
  // path's basic values, so "same point" is up to tolerance here; exact
  // replay determinism is warm-vs-warm, below).
  EXPECT_EQ(warm->iterations, 0u);
  EXPECT_EQ(warm->objective, cold->objective);
  ASSERT_EQ(warm->values.size(), cold->values.size());
  for (size_t i = 0; i < warm->values.size(); ++i) {
    EXPECT_NEAR(warm->values[i], cold->values[i], 1e-9) << "value " << i;
  }

  Result<LpSolution> warm2 = lp.SolveWith(*Sparse(), second);
  ASSERT_TRUE(warm2.ok()) << warm2.status().ToString();
  EXPECT_EQ(warm2->iterations, warm->iterations);
  EXPECT_EQ(warm2->values, warm->values);  // bit-identical replay
}

TEST(RevisedSimplexTest, WarmStartAfterConstraintAppend) {
  const size_t n = 8;
  auto build = [&](size_t q) { return L1FitLp(n, q, /*seed=*/43); };
  LpBasis basis;
  LpSolveOptions first;
  first.final_basis = &basis;
  LpProblem base = build(20);
  Result<LpSolution> base_solve = base.SolveWith(*Sparse(), first);
  ASSERT_TRUE(base_solve.ok()) << base_solve.status().ToString();

  // Same instance grown by four more rows (and their u/v columns): the
  // smaller basis must pad (new rows basic on their logical, new columns
  // at lower bound) and still reach the optimum.
  LpProblem grown = build(24);
  LpSolveOptions warm;
  warm.warm_start = &basis;
  Result<LpSolution> warm_solve = grown.SolveWith(*Sparse(), warm);
  ASSERT_TRUE(warm_solve.ok()) << warm_solve.status().ToString();
  Result<LpSolution> oracle = grown.SolveWith(*Dense(), LpSolveOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_NEAR(warm_solve->objective, oracle->objective, 1e-7);
}

TEST(RevisedSimplexTest, SingularWarmBasisFallsBackToColdStart) {
  // Two identical columns: marking both basic makes the warm basis
  // numerically singular, which the backend must detect and repair (or
  // cold-start) rather than produce garbage.
  LpProblem lp;
  size_t a = lp.AddVariable(0.0, 10.0, -1.0);
  size_t b = lp.AddVariable(0.0, 10.0, -1.0);
  lp.AddConstraint({{a, 1.0}, {b, 1.0}}, Relation::kLessEq, 5.0);
  lp.AddConstraint({{a, 1.0}, {b, 1.0}}, Relation::kLessEq, 7.0);

  LpBasis singular;
  singular.structurals = {LpVarStatus::kBasic, LpVarStatus::kBasic};
  singular.logicals = {LpVarStatus::kAtLower, LpVarStatus::kAtLower};
  LpSolveOptions options;
  options.warm_start = &singular;
  Result<LpSolution> got = lp.SolveWith(*Sparse(), options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NEAR(got->objective, -5.0, 1e-9);
}

TEST(RevisedSimplexTest, MisshapedWarmBasisIsIgnored) {
  LpProblem lp;
  size_t x = lp.AddVariable(0.0, 1.0, -1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEq, 0.5);

  LpBasis wrong;  // basic count != row count: unusable as a basis
  wrong.structurals = {LpVarStatus::kBasic};
  wrong.logicals = {LpVarStatus::kBasic};
  LpSolveOptions options;
  options.warm_start = &wrong;
  Result<LpSolution> got = lp.SolveWith(*Sparse(), options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NEAR(got->objective, -0.5, 1e-9);
}

TEST(RevisedSimplexTest, EmptyProblemSolvesToZero) {
  LpProblem lp;
  for (const auto& backend : {Dense(), Sparse()}) {
    Result<LpSolution> got = lp.SolveWith(*backend, LpSolveOptions{});
    ASSERT_TRUE(got.ok()) << backend->name() << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->objective, 0.0) << backend->name();
    EXPECT_TRUE(got->values.empty()) << backend->name();
  }
}

TEST(RevisedSimplexTest, VariablesOnlyProblemRestsAtBestBounds) {
  // No constraints at all: each variable independently sits at whichever
  // bound its cost prefers (upper for negative cost via a bound flip).
  LpProblem lp;
  lp.AddVariable(0.0, 3.0, -2.0);
  lp.AddVariable(-1.0, 4.0, 1.0);
  for (const auto& backend : {Dense(), Sparse()}) {
    Result<LpSolution> got = lp.SolveWith(*backend, LpSolveOptions{});
    ASSERT_TRUE(got.ok()) << backend->name() << ": "
                          << got.status().ToString();
    EXPECT_NEAR(got->objective, -7.0, 1e-9) << backend->name();
    EXPECT_NEAR(got->values[0], 3.0, 1e-9) << backend->name();
    EXPECT_NEAR(got->values[1], -1.0, 1e-9) << backend->name();
  }
}

TEST(RevisedSimplexTest, OneByOneProblem) {
  LpProblem lp;
  size_t x = lp.AddVariable(0.0, LpProblem::kInfinity, -1.0);
  lp.AddConstraint({{x, 2.0}}, Relation::kLessEq, 6.0);
  for (const auto& backend : {Dense(), Sparse()}) {
    Result<LpSolution> got = lp.SolveWith(*backend, LpSolveOptions{});
    ASSERT_TRUE(got.ok()) << backend->name() << ": "
                          << got.status().ToString();
    EXPECT_NEAR(got->objective, -3.0, 1e-9) << backend->name();
    EXPECT_NEAR(got->values[0], 3.0, 1e-9) << backend->name();
  }
}

TEST(RevisedSimplexTest, AllSlackOptimumTakesNoPivots) {
  // Costs are all nonnegative and every constraint is satisfied at the
  // lower bounds, so the initial all-logical basis is already optimal.
  LpProblem lp;
  size_t x = lp.AddVariable(0.0, 5.0, 1.0);
  size_t y = lp.AddVariable(0.0, 5.0, 2.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 8.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEq, 4.0);
  Result<LpSolution> got = lp.SolveWith(*Sparse(), LpSolveOptions{});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->iterations, 0u);
  EXPECT_NEAR(got->objective, 0.0, 1e-12);
}

TEST(RevisedSimplexTest, UnboundedAndInfeasibleStatuses) {
  LpProblem unbounded;
  size_t u = unbounded.AddVariable(0.0, LpProblem::kInfinity, -1.0);
  unbounded.AddConstraint({{u, -1.0}}, Relation::kLessEq, 1.0);
  Result<LpSolution> ray = unbounded.SolveWith(*Sparse(), LpSolveOptions{});
  ASSERT_FALSE(ray.ok());
  EXPECT_EQ(ray.status().code(), StatusCode::kUnbounded);

  LpProblem infeasible;
  size_t x = infeasible.AddVariable(0.0, 1.0, 0.0);
  infeasible.AddConstraint({{x, 1.0}}, Relation::kGreaterEq, 2.0);
  Result<LpSolution> none = infeasible.SolveWith(*Sparse(), LpSolveOptions{});
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace pso
