// Tests for the exponential mechanism and DP quantiles.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "dp/exponential.h"

namespace pso::dp {
namespace {

Schema ValueSchema(int64_t lo, int64_t hi) {
  return Schema({Attribute::Integer("v", lo, hi)});
}

TEST(ExponentialMechanismTest, PrefersHighScores) {
  Rng rng(1);
  std::vector<double> scores = {0.0, 0.0, 10.0, 0.0};
  int best = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (ExponentialMechanism(scores, /*eps=*/2.0, 1.0, rng) == 2) ++best;
  }
  EXPECT_GT(best / static_cast<double>(kTrials), 0.95);
}

TEST(ExponentialMechanismTest, RatioMatchesDefinition) {
  // Two candidates with score gap g: selection odds should be
  // ~ exp(eps * g / 2).
  Rng rng(2);
  const double eps = 1.0;
  const double gap = 2.0;
  std::vector<double> scores = {gap, 0.0};
  int first = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    if (ExponentialMechanism(scores, eps, 1.0, rng) == 0) ++first;
  }
  double odds = static_cast<double>(first) /
                static_cast<double>(kTrials - first);
  EXPECT_NEAR(odds, std::exp(eps * gap / 2.0), 0.15);
}

TEST(ExponentialMechanismTest, UniformScoresUniformSelection) {
  Rng rng(3);
  std::vector<double> scores(5, 1.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[ExponentialMechanism(scores, 1.0, 1.0, rng)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ExponentialMechanismTest, NumericallyStableWithHugeScores) {
  Rng rng(4);
  std::vector<double> scores = {1e6, 1e6 - 1.0};
  // Must not produce NaN/infinite weights; both should be selectable.
  int second = 0;
  for (int i = 0; i < 10000; ++i) {
    if (ExponentialMechanism(scores, 1.0, 1.0, rng) == 1) ++second;
  }
  EXPECT_GT(second, 1000);
}

TEST(DpMedianTest, ConcentratesNearTrueMedian) {
  Schema s = ValueSchema(0, 99);
  Dataset d{s};
  for (int i = 0; i < 200; ++i) d.Append({40 + (i % 11)});  // median ~45
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.Add(static_cast<double>(DpMedian(d, 0, /*eps=*/1.0, rng)));
  }
  EXPECT_NEAR(stats.mean(), 45.0, 3.0);
}

TEST(DpMedianTest, MoreNoiseAtSmallEps) {
  Schema s = ValueSchema(0, 99);
  Dataset d{s};
  for (int i = 0; i < 100; ++i) d.Append({50});
  Rng rng(6);
  RunningStats tight;
  RunningStats loose;
  for (int i = 0; i < 400; ++i) {
    tight.Add(static_cast<double>(DpMedian(d, 0, 2.0, rng)));
    loose.Add(static_cast<double>(DpMedian(d, 0, 0.02, rng)));
  }
  EXPECT_LT(tight.stddev(), loose.stddev());
  EXPECT_NEAR(tight.mean(), 50.0, 2.0);
}

TEST(DpQuantileTest, QuartilesOrdered) {
  Schema s = ValueSchema(0, 999);
  Dataset d{s};
  Rng gen(7);
  for (int i = 0; i < 500; ++i) d.Append({gen.UniformInt(0, 999)});
  Rng rng(8);
  double q25 = 0.0;
  double q75 = 0.0;
  for (int i = 0; i < 200; ++i) {
    q25 += static_cast<double>(DpQuantile(d, 0, 0.25, 1.0, rng));
    q75 += static_cast<double>(DpQuantile(d, 0, 0.75, 1.0, rng));
  }
  EXPECT_LT(q25, q75);
  EXPECT_NEAR(q25 / 200.0, 250.0, 60.0);
  EXPECT_NEAR(q75 / 200.0, 750.0, 60.0);
}

TEST(DpModeTest, FindsTheMode) {
  Schema s = ValueSchema(0, 9);
  Dataset d{s};
  for (int i = 0; i < 100; ++i) d.Append({i % 10 == 0 ? 7 : i % 3});
  // Values 0,1,2 each ~30; plus 10 sevens. Mode among {0,1,2}.
  Rng rng(9);
  int mode_hits = 0;
  for (int i = 0; i < 300; ++i) {
    int64_t m = DpMode(d, 0, 2.0, rng);
    if (m >= 0 && m <= 2) ++mode_hits;
  }
  EXPECT_GT(mode_hits, 250);
}

// Property: DpQuantile output is always in the attribute domain.
class DpQuantileDomainTest : public ::testing::TestWithParam<double> {};

TEST_P(DpQuantileDomainTest, StaysInDomain) {
  Schema s = ValueSchema(10, 20);
  Dataset d{s};
  for (int i = 0; i < 30; ++i) d.Append({15});
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    int64_t v = DpQuantile(d, 0, GetParam(), 0.1, rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, DpQuantileDomainTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace pso::dp
