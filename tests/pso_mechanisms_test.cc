// Tests for the mechanism zoo and the Theorem 2.7 incomposability pair.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

namespace pso {
namespace {

Dataset SampleGic(size_t n, uint64_t seed) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(seed);
  return u.distribution.SampleDataset(n, rng);
}

TEST(MechanismOutputTest, TypedPayloads) {
  MechanismOutput out = MechanismOutput::Of(3.5);
  ASSERT_NE(out.As<double>(), nullptr);
  EXPECT_DOUBLE_EQ(*out.As<double>(), 3.5);
  EXPECT_EQ(out.As<int>(), nullptr);  // wrong type
  MechanismOutput empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.As<double>(), nullptr);
}

TEST(CountMechanismTest, ExactCount) {
  Dataset x = SampleGic(200, 1);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto mech = MakeCountMechanism(q, "sex=F");
  Rng rng(2);
  MechanismOutput y = mech->Run(x, rng);
  ASSERT_NE(y.As<double>(), nullptr);
  EXPECT_DOUBLE_EQ(*y.As<double>(),
                   static_cast<double>(CountMatches(*q, x)));
  EXPECT_EQ(mech->Name(), "M#sex=F");
}

TEST(LaplaceCountMechanismTest, NoisyButCentered) {
  Dataset x = SampleGic(200, 3);
  auto q = MakeAttributeEquals(3, 0, "sex");
  double truth = static_cast<double>(CountMatches(*q, x));
  auto mech = MakeLaplaceCountMechanism(q, "sex=F", 1.0);
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.Add(*mech->Run(x, rng).As<double>());
  }
  EXPECT_NEAR(stats.mean(), truth, 0.2);
  EXPECT_GT(stats.variance(), 1.0);
}

TEST(GeometricCountMechanismTest, IntegerOutputs) {
  Dataset x = SampleGic(100, 5);
  auto q = MakeAttributeEquals(3, 1, "sex");
  auto mech = MakeGeometricCountMechanism(q, "sex=M", 0.5);
  Rng rng(6);
  MechanismOutput y = mech->Run(x, rng);
  ASSERT_NE(y.As<double>(), nullptr);
  double v = *y.As<double>();
  EXPECT_DOUBLE_EQ(v, std::floor(v));  // integral
}

TEST(NoisyHistogramMechanismTest, OutputsPerBucket) {
  Dataset x = SampleGic(300, 7);
  auto mech = MakeNoisyHistogramMechanism(3, 1.0);  // sex histogram
  Rng rng(8);
  MechanismOutput y = mech->Run(x, rng);
  const auto* hist = y.As<std::vector<int64_t>>();
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->size(), 2u);
}

TEST(KAnonMechanismTest, ProducesAnonymizationResult) {
  Universe u = MakeGicMedicalUniverse(100);
  Dataset x = SampleGic(300, 9);
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      {0, 1, 2, 3});
  Rng rng(10);
  MechanismOutput y = mech->Run(x, rng);
  const auto* result = y.As<kanon::AnonymizationResult>();
  ASSERT_NE(result, nullptr);
  for (const auto& cls : result->classes) EXPECT_GE(cls.size(), 5u);
  EXPECT_EQ(mech->Name(), "Mondrian(k=5)");
}

TEST(KAnonMechanismTest, InfeasibleYieldsEmptyOutput) {
  Universe u = MakeGicMedicalUniverse(100);
  Dataset x = SampleGic(3, 11);  // fewer rows than k
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 10,
      kanon::HierarchySet::Defaults(u.schema), {0, 1});
  Rng rng(12);
  EXPECT_TRUE(mech->Run(x, rng).empty());
}

TEST(BundleMechanismTest, RunsAllParts) {
  Dataset x = SampleGic(100, 13);
  auto q1 = MakeAttributeEquals(3, 0, "sex");
  auto q2 = MakeAttributeEquals(3, 1, "sex");
  auto mech = MakeBundleMechanism(
      {MakeCountMechanism(q1, "F"), MakeCountMechanism(q2, "M")});
  Rng rng(14);
  MechanismOutput y = mech->Run(x, rng);
  const auto* parts = y.As<std::vector<MechanismOutput>>();
  ASSERT_NE(parts, nullptr);
  ASSERT_EQ(parts->size(), 2u);
  double f = *(*parts)[0].As<double>();
  double m = *(*parts)[1].As<double>();
  EXPECT_DOUBLE_EQ(f + m, 100.0);
}

TEST(PadTest, EncryptDecryptRoundTrip) {
  uint64_t key = 0xdeadbeefcafef00dULL;
  for (int64_t v : {0LL, 1LL, 42LL, -7LL, 123456789LL}) {
    for (size_t pos : {0u, 1u, 5u}) {
      int64_t ct = PadValue(key, pos, v);
      EXPECT_EQ(PadValue(key, pos, ct), v);
      EXPECT_NE(ct, v);  // pad actually changes the value
    }
  }
}

TEST(PadTest, KeyDependsOnTailRecordsOnly) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(15);
  Dataset x = u.distribution.SampleDataset(10, rng);
  uint64_t k1 = DerivePadKey(x);
  // Changing record 0 must not change the key (it is derived from 2..n).
  Dataset x2 = x;
  // Rebuild with a different first record.
  Dataset y{u.schema};
  y.Append(u.distribution.Sample(rng));
  for (size_t i = 1; i < x.size(); ++i) y.Append(x.record(i));
  EXPECT_EQ(DerivePadKey(y), k1);
}

// Theorem 2.7, operationally: the pair's bundle is broken by the
// decrypting adversary...
TEST(IncomposabilityTest, BundleIsBroken) {
  Universe u = MakeGicMedicalUniverse(100);
  auto bundle =
      MakeBundleMechanism({MakeCiphertextMechanism(), MakePadMechanism()});
  auto adv = MakeDecryptPairAdversary();
  PsoGameOptions opts;
  opts.trials = 80;
  opts.weight_pool = 20000;
  PsoGame game(u.distribution, 100, opts);
  auto result = game.Run(*bundle, *adv);
  // x_1 is unique in x with overwhelming probability and its exact-match
  // predicate has negligible exact weight.
  EXPECT_GT(result.pso_success.rate(), 0.95);
}

// ...while each mechanism alone gives that adversary nothing.
TEST(IncomposabilityTest, EachAloneIsUseless) {
  Universe u = MakeGicMedicalUniverse(100);
  auto adv = MakeDecryptPairAdversary();
  PsoGameOptions opts;
  opts.trials = 40;
  opts.weight_pool = 20000;
  for (const MechanismRef& mech :
       {MakeCiphertextMechanism(), MakePadMechanism()}) {
    PsoGame game(u.distribution, 100, opts);
    auto result = game.Run(*mech, *adv);
    EXPECT_EQ(result.pso_success.successes(), 0u) << mech->Name();
  }
}

// And a trivial attacker cannot beat the baseline against either half.
TEST(IncomposabilityTest, HalvesResistTrivialAttack) {
  Universe u = MakeGicMedicalUniverse(100);
  auto adv = MakeTrivialHashAdversary(1e-4);
  PsoGameOptions opts;
  opts.trials = 120;
  opts.weight_pool = 20000;
  for (const MechanismRef& mech :
       {MakeCiphertextMechanism(), MakePadMechanism()}) {
    PsoGame game(u.distribution, 100, opts);
    auto result = game.Run(*mech, *adv);
    EXPECT_LT(result.pso_success.rate(), result.baseline + 0.1);
  }
}

}  // namespace
}  // namespace pso
