// Tests for the simplex LP solvers. Every scenario runs against each
// registered backend (the dense tableau and the sparse revised simplex)
// through the same LpProblem front end, so the suite doubles as the
// backends' shared conformance contract.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "common/rng.h"
#include "solver/lp.h"

namespace pso {
namespace {

// Fixture parameterized on the backend registry name; Solve() routes
// through LpProblem::SolveWith so build validation still applies.
class LpBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  Result<LpSolution> Solve(const LpProblem& lp) {
    Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend(GetParam());
    if (!backend.ok()) return backend.status();
    return lp.SolveWith(**backend, LpSolveOptions{});
  }
};

TEST_P(LpBackendTest, SimpleTwoVariableMaximization) {
  // max x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0.
  // As minimization of -(x+y); optimum at (8/5, 6/5), value 14/5.
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  size_t y = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  lp.AddConstraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEq, 4.0);
  lp.AddConstraint({{x, 3.0}, {y, 1.0}}, Relation::kLessEq, 6.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -14.0 / 5.0, 1e-7);
  EXPECT_NEAR(sol->values[x], 8.0 / 5.0, 1e-7);
  EXPECT_NEAR(sol->values[y], 6.0 / 5.0, 1e-7);
}

TEST_P(LpBackendTest, EqualityConstraint) {
  // min x + y  s.t.  x + y = 3, x <= 2, y <= 2.
  LpProblem lp;
  size_t x = lp.AddVariable(0, 2.0, 1.0);
  size_t y = lp.AddVariable(0, 2.0, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 3.0, 1e-7);
  EXPECT_NEAR(sol->values[x] + sol->values[y], 3.0, 1e-7);
}

TEST_P(LpBackendTest, GreaterEqualConstraint) {
  // min 2x + y  s.t.  x + y >= 4, x >= 0, y >= 0. Optimum (0,4) value 4.
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, 2.0);
  size_t y = lp.AddVariable(0, LpProblem::kInfinity, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 4.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 4.0, 1e-7);
  EXPECT_NEAR(sol->values[y], 4.0, 1e-7);
}

TEST_P(LpBackendTest, NonZeroLowerBounds) {
  // min x  s.t.  x >= 5 via bounds. Optimum 5.
  LpProblem lp;
  size_t x = lp.AddVariable(5.0, 10.0, 1.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->values[x], 5.0, 1e-9);
}

TEST_P(LpBackendTest, NegativeLowerBounds) {
  // min x  s.t.  x in [-3, 3]. Optimum -3.
  LpProblem lp;
  size_t x = lp.AddVariable(-3.0, 3.0, 1.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->values[x], -3.0, 1e-9);
}

TEST_P(LpBackendTest, InfeasibleDetected) {
  LpProblem lp;
  size_t x = lp.AddVariable(0, 1.0, 0.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kGreaterEq, 2.0);
  auto sol = Solve(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST_P(LpBackendTest, ContradictoryEqualitiesInfeasible) {
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, 0.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kEqual, 1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kEqual, 2.0);
  EXPECT_FALSE(Solve(lp).ok());
}

TEST_P(LpBackendTest, UnboundedDetected) {
  // min -x with x unbounded above.
  LpProblem lp;
  lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  auto sol = Solve(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kUnbounded);
}

TEST_P(LpBackendTest, UnboundedWithConstraintsIsNotInternal) {
  // min -x - y  s.t.  x - y <= 1, x,y >= 0: the ray (t, t) improves the
  // objective forever. Must classify as kUnbounded — a model property —
  // never as kInternal (a solver failure).
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  size_t y = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  lp.AddConstraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEq, 1.0);
  auto sol = Solve(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kUnbounded);
  EXPECT_NE(sol.status().code(), StatusCode::kInternal);
}

TEST_P(LpBackendTest, BoundingTheRayRestoresOptimality) {
  // The same model with an upper bound on each variable is bounded again:
  // regression pair for the unbounded classifier.
  LpProblem lp;
  size_t x = lp.AddVariable(0, 10.0, -1.0);
  size_t y = lp.AddVariable(0, 10.0, -1.0);
  lp.AddConstraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEq, 1.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -20.0, 1e-7);
}

TEST_P(LpBackendTest, RedundantConstraintsHandled) {
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, 1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kEqual, 2.0);
  lp.AddConstraint({{x, 2.0}}, Relation::kEqual, 4.0);  // same constraint
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->values[x], 2.0, 1e-7);
}

TEST_P(LpBackendTest, DegenerateVertexTerminates) {
  // Multiple constraints meeting at the optimum (degeneracy stress).
  LpProblem lp;
  size_t x = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  size_t y = lp.AddVariable(0, LpProblem::kInfinity, -1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEq, 1.0);
  lp.AddConstraint({{y, 1.0}}, Relation::kLessEq, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 2.0);
  lp.AddConstraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEq, 3.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -2.0, 1e-7);
}

TEST_P(LpBackendTest, L1FitRecoversPoint) {
  // min |x - 3| + |y + 1| encoded with slack variables.
  LpProblem lp;
  size_t x = lp.AddVariable(-10, 10, 0.0);
  size_t y = lp.AddVariable(-10, 10, 0.0);
  size_t tx = lp.AddVariable(0, LpProblem::kInfinity, 1.0);
  size_t ty = lp.AddVariable(0, LpProblem::kInfinity, 1.0);
  lp.AddConstraint({{x, 1.0}, {tx, -1.0}}, Relation::kLessEq, 3.0);
  lp.AddConstraint({{x, 1.0}, {tx, 1.0}}, Relation::kGreaterEq, 3.0);
  lp.AddConstraint({{y, 1.0}, {ty, -1.0}}, Relation::kLessEq, -1.0);
  lp.AddConstraint({{y, 1.0}, {ty, 1.0}}, Relation::kGreaterEq, -1.0);
  auto sol = Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.0, 1e-7);
  EXPECT_NEAR(sol->values[x], 3.0, 1e-7);
  EXPECT_NEAR(sol->values[y], -1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Backends, LpBackendTest,
                         ::testing::Values("dense", "sparse"),
                         [](const auto& info) { return info.param; });

// Property sweep: random feasible systems must solve and satisfy all
// constraints at the reported solution — on every backend.
class LpRandomTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(LpRandomTest, SolutionSatisfiesConstraints) {
  const auto& [seed, backend_name] = GetParam();
  Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend(backend_name);
  ASSERT_TRUE(backend.ok());
  Rng rng(1000 + seed);
  const size_t n = 6;
  const size_t m = 8;
  LpProblem lp;
  std::vector<size_t> vars;
  for (size_t i = 0; i < n; ++i) {
    vars.push_back(lp.AddVariable(0.0, 5.0, rng.UniformDouble()));
  }
  // Constraints built around a known feasible point x* in [0,1]^n.
  std::vector<double> x_star(n);
  for (auto& v : x_star) v = rng.UniformDouble();
  struct RowSpec {
    std::vector<std::pair<size_t, double>> coeffs;
    Relation rel;
    double rhs;
  };
  std::vector<RowSpec> rows;
  for (size_t j = 0; j < m; ++j) {
    RowSpec row;
    double lhs_at_star = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double c = rng.UniformDouble() * 2.0 - 1.0;
      row.coeffs.emplace_back(vars[i], c);
      lhs_at_star += c * x_star[i];
    }
    row.rel = Relation::kLessEq;
    row.rhs = lhs_at_star + rng.UniformDouble();  // slack keeps x* feasible
    lp.AddConstraint(row.coeffs, row.rel, row.rhs);
    rows.push_back(std::move(row));
  }
  auto sol = lp.SolveWith(**backend, LpSolveOptions{});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  for (const auto& row : rows) {
    double lhs = 0.0;
    for (const auto& [idx, c] : row.coeffs) lhs += c * sol->values[idx];
    EXPECT_LE(lhs, row.rhs + 1e-6);
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol->values[i], -1e-9);
    EXPECT_LE(sol->values[i], 5.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LpRandomTest,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values("dense", "sparse")),
    [](const auto& info) {
      return std::string(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace pso
