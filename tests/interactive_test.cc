// Tests for the interactive query-session layer.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "pso/game.h"
#include "pso/interactive.h"

namespace pso {
namespace {

TEST(SessionTest, ExactCountsAreExact) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(1);
  Dataset x = u.distribution.SampleDataset(100, rng);
  auto mech = MakeExactCountSessionMechanism();
  auto session = mech->StartSession(x, rng);
  auto q = MakeAttributeEquals(3, 0, "sex");
  double answer = session->AnswerCount(*q);
  EXPECT_DOUBLE_EQ(answer, static_cast<double>(CountMatches(*q, x)));
  EXPECT_EQ(session->queries_answered(), 1u);
  EXPECT_TRUE(std::isinf(session->PrivacySpent().eps));
}

TEST(SessionTest, LaplaceSessionTracksBudget) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(2);
  Dataset x = u.distribution.SampleDataset(100, rng);
  auto mech = MakeLaplaceCountSessionMechanism(0.5);
  auto session = mech->StartSession(x, rng);
  auto q = MakeAttributeEquals(3, 0, "sex");
  for (int i = 0; i < 4; ++i) session->AnswerCount(*q);
  EXPECT_EQ(session->queries_answered(), 4u);
  // 4 queries at eps 0.5: basic composition gives 2.0 (advanced is worse
  // at this k).
  EXPECT_NEAR(session->PrivacySpent().eps, 2.0, 1e-9);
}

TEST(SessionTest, LaplaceAnswersAreNoisy) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(3);
  Dataset x = u.distribution.SampleDataset(100, rng);
  auto mech = MakeLaplaceCountSessionMechanism(1.0);
  auto session = mech->StartSession(x, rng);
  auto q = MakeAttributeEquals(3, 0, "sex");
  double truth = static_cast<double>(CountMatches(*q, x));
  bool saw_noise = false;
  for (int i = 0; i < 10; ++i) {
    if (std::fabs(session->AnswerCount(*q) - truth) > 1e-9) saw_noise = true;
  }
  EXPECT_TRUE(saw_noise);
}

TEST(SessionTest, QueryBudgetRefusesAfterLimit) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(4);
  Dataset x = u.distribution.SampleDataset(50, rng);
  auto mech = MakeLaplaceCountSessionMechanism(1.0, /*max_queries=*/3);
  auto session = mech->StartSession(x, rng);
  auto q = MakeAttributeEquals(3, 0, "sex");
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(std::isnan(session->AnswerCount(*q)));
  EXPECT_TRUE(std::isnan(session->AnswerCount(*q)));
  EXPECT_EQ(session->queries_answered(), 3u);
}

// The interactive face of Theorems 2.8 vs 2.9: exact count sessions fall
// to the binary-search attacker; per-query Laplace noise stops it.
TEST(InteractiveGameTest, ExactSessionFallsNoisySessionResists) {
  Universe u = MakeGicMedicalUniverse(100);
  PsoGameOptions opts;
  opts.trials = 60;
  opts.weight_pool = 60000;
  PsoGame game(u.distribution, 300, opts);
  auto adversary = MakeBinarySearchIsolationAdversary(200);

  auto exact =
      game.RunInteractive(*MakeExactCountSessionMechanism(), *adversary);
  EXPECT_GT(exact.pso_success.rate(), 0.9) << exact.Summary();

  auto noisy = game.RunInteractive(
      *MakeLaplaceCountSessionMechanism(/*eps_per_query=*/0.5), *adversary);
  EXPECT_LT(noisy.pso_success.rate(), noisy.baseline + 0.07)
      << noisy.Summary();
  EXPECT_GT(exact.pso_success.rate(), noisy.pso_success.rate() + 0.5);
}

TEST(InteractiveGameTest, DeterministicGivenSeed) {
  Universe u = MakeGicMedicalUniverse(100);
  PsoGameOptions opts;
  opts.trials = 20;
  opts.weight_pool = 20000;
  auto adversary = MakeBinarySearchIsolationAdversary(100);
  PsoGame g1(u.distribution, 200, opts);
  PsoGame g2(u.distribution, 200, opts);
  auto r1 = g1.RunInteractive(*MakeExactCountSessionMechanism(), *adversary);
  auto r2 = g2.RunInteractive(*MakeExactCountSessionMechanism(), *adversary);
  EXPECT_EQ(r1.pso_success.successes(), r2.pso_success.successes());
}

}  // namespace
}  // namespace pso
