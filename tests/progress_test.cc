// Tests for solver progress heartbeats and the stall watchdog: the
// deterministic work-count cadence, the final destructor beat (tiny
// budgets still leave evidence), trace instants, and watchdog stall
// detection. The watchdog spawns a real thread, so this suite also runs
// in the TSan `parallel` lane.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/trace.h"

namespace pso {
namespace {

uint64_t GlobalCounter(const std::string& name) {
  return metrics::Registry::Global().TakeSnapshot().counters[name];
}

TEST(ProgressReporterTest, HeartbeatsAtWorkCountCadence) {
  progress::ProgressReporter reporter("test", /*every=*/10);
  for (uint64_t work = 1; work <= 35; ++work) {
    reporter.Tick(work, {{"work", static_cast<double>(work)}});
  }
  // Boundaries crossed at 10, 20, 30 — deterministic in the work count,
  // independent of how long the loop took.
  EXPECT_EQ(reporter.heartbeats(), 3u);
}

TEST(ProgressReporterTest, BurstyWorkEmitsOneBeatNotABacklog) {
  progress::ProgressReporter reporter("test", /*every=*/10);
  reporter.Tick(95, {});  // one jump over nine boundaries
  EXPECT_EQ(reporter.heartbeats(), 1u);
  reporter.Tick(99, {});  // next boundary is 100, not 20
  EXPECT_EQ(reporter.heartbeats(), 1u);
  reporter.Tick(100, {});
  EXPECT_EQ(reporter.heartbeats(), 2u);
}

TEST(ProgressReporterTest, DestructorEmitsFinalBeatForTinyBudgets) {
  const uint64_t before = GlobalCounter("progress.heartbeats");
  {
    progress::ProgressReporter reporter("tiny", /*every=*/1000);
    reporter.Tick(3, {{"conflicts", 3.0}});
    EXPECT_EQ(reporter.heartbeats(), 0u);  // never reached the cadence
  }
  // The destructor still emitted one "final" heartbeat.
  EXPECT_EQ(GlobalCounter("progress.heartbeats"), before + 1);
}

TEST(ProgressReporterTest, NoWorkMeansNoFinalBeat) {
  const uint64_t before = GlobalCounter("progress.heartbeats");
  { progress::ProgressReporter reporter("idle", /*every=*/10); }
  EXPECT_EQ(GlobalCounter("progress.heartbeats"), before);
}

TEST(ProgressReporterTest, HeartbeatInstantsCarryEngineAndStats) {
  trace::Collector::Global().Enable();
  {
    progress::ProgressReporter reporter("cdcl", /*every=*/5);
    reporter.Tick(5, {{"conflicts", 5.0}, {"decisions", 12.0}});
  }
  std::vector<trace::Event> events = trace::Collector::Global().TakeEvents();
  trace::Collector::Global().Disable();

  int ticks = 0;
  int finals = 0;
  for (const trace::Event& e : events) {
    if (e.name != "progress.heartbeat") continue;
    bool engine_ok = false;
    std::string phase;
    for (const auto& [k, v] : e.args) {
      if (k == "engine" && v == "cdcl") engine_ok = true;
      if (k == "phase") phase = v;
      if (k == "conflicts") EXPECT_EQ(v, "5");
    }
    EXPECT_TRUE(engine_ok);
    if (phase == "tick") ++ticks;
    if (phase == "final") ++finals;
  }
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(finals, 1);
}

TEST(WatchdogTest, ArmDisarmLifecycle) {
  progress::Watchdog& dog = progress::Watchdog::Global();
  EXPECT_FALSE(dog.armed());
  dog.Start(50);
  EXPECT_TRUE(dog.armed());
  dog.Start(50);  // idempotent while armed
  EXPECT_TRUE(dog.armed());
  dog.Stop();
  EXPECT_FALSE(dog.armed());
  dog.Stop();  // safe when already stopped
  dog.Start(0);  // <= 0 disarms instead of arming
  EXPECT_FALSE(dog.armed());
}

TEST(WatchdogTest, FlagsStallWhenActiveSolveStopsTicking) {
  progress::Watchdog& dog = progress::Watchdog::Global();
  dog.Start(20);
  {
    progress::ScopedSolve solve;  // active solve, never ticks
    // Sleep in test code only: we are deliberately simulating a wedged
    // solver so the wall-clock watchdog has something to catch.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  dog.Stop();
  EXPECT_GE(dog.stalls(), 1u);
}

TEST(WatchdogTest, NoStallWhileHeartbeatsFlow) {
  progress::Watchdog& dog = progress::Watchdog::Global();
  dog.Start(30);
  {
    progress::ScopedSolve solve;
    progress::ProgressReporter reporter("live", /*every=*/1);
    for (int i = 1; i <= 15; ++i) {
      reporter.Tick(static_cast<uint64_t>(i), {});
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  dog.Stop();
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(WatchdogTest, IdleProcessIsNotStalled) {
  progress::Watchdog& dog = progress::Watchdog::Global();
  dog.Start(20);
  // No active solves: intervals elapse but nothing is "stalled".
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  dog.Stop();
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(WatchdogTest, StallEmitsResourceExhaustedDiagnostic) {
  log::SetMinLevel(log::kWARN);
  log::CaptureToString(true);
  trace::Collector::Global().Enable();
  progress::Watchdog& dog = progress::Watchdog::Global();
  dog.Start(20);
  {
    progress::ScopedSolve solve;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  dog.Stop();
  const std::string logs = log::TakeCaptured();
  log::CaptureToString(false);
  std::vector<trace::Event> events = trace::Collector::Global().TakeEvents();
  trace::Collector::Global().Disable();

  EXPECT_NE(logs.find("RESOURCE_EXHAUSTED"), std::string::npos) << logs;
  bool stall_instant = false;
  for (const trace::Event& e : events) {
    if (e.name == "watchdog.stall") stall_instant = true;
  }
  EXPECT_TRUE(stall_instant);
}

}  // namespace
}  // namespace pso
