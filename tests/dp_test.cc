// Tests for the differential-privacy library (Definition 1.2, Theorem 1.3).

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "dp/accountant.h"
#include "dp/audit.h"
#include "dp/mechanisms.h"

namespace pso::dp {
namespace {

Schema BinarySchema() {
  return Schema({Attribute::Integer("trait", 0, 1)});
}

Dataset MakeBits(const std::vector<int64_t>& bits) {
  Dataset d{BinarySchema()};
  for (int64_t b : bits) d.Append({b});
  return d;
}

TEST(LaplaceCountTest, UnbiasedAndScaled) {
  Dataset d = MakeBits({1, 1, 1, 0, 0, 0, 0, 0, 0, 0});
  auto q = MakeAttributeEquals(0, 1, "trait");
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(LaplaceCount(d, *q, /*eps=*/1.0, rng));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  // Var(Lap(1/eps)) = 2/eps^2 = 2.
  EXPECT_NEAR(stats.variance(), 2.0, 0.15);
}

TEST(LaplaceValueTest, SensitivityScalesNoise) {
  Rng rng(2);
  RunningStats s1;
  RunningStats s5;
  for (int i = 0; i < 20000; ++i) {
    s1.Add(LaplaceValue(0.0, 1.0, 1.0, rng));
    s5.Add(LaplaceValue(0.0, 5.0, 1.0, rng));
  }
  EXPECT_NEAR(s5.stddev() / s1.stddev(), 5.0, 0.5);
}

TEST(GeometricCountTest, IntegerValuedAndUnbiased) {
  Dataset d = MakeBits({1, 1, 0, 0});
  auto q = MakeAttributeEquals(0, 1, "trait");
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = GeometricCount(d, *q, 1.0, rng);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.05);
}

TEST(NoisyHistogramTest, ShapePreserved) {
  Schema s({Attribute::Integer("v", 0, 3)});
  Dataset d{s};
  for (int i = 0; i < 400; ++i) d.Append({i % 4 == 0 ? 0 : 1});
  Rng rng(4);
  std::vector<int64_t> hist = NoisyHistogram(d, 0, /*eps=*/2.0, rng);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_NEAR(static_cast<double>(hist[0]), 100.0, 10.0);
  EXPECT_NEAR(static_cast<double>(hist[1]), 300.0, 10.0);
  EXPECT_NEAR(static_cast<double>(hist[2]), 0.0, 10.0);
}

TEST(RandomizedResponseTest, EstimateIsUnbiased) {
  std::vector<int64_t> bits(2000, 0);
  for (size_t i = 0; i < 700; ++i) bits[i] = 1;
  Dataset d = MakeBits(bits);
  Rng rng(5);
  RunningStats est;
  for (int rep = 0; rep < 200; ++rep) {
    auto reports = RandomizedResponse(d, 0, /*eps=*/1.0, rng);
    est.Add(RandomizedResponseEstimate(reports, 1.0));
  }
  EXPECT_NEAR(est.mean(), 700.0, 15.0);
}

TEST(RandomizedResponseTest, FlipRateMatchesEps) {
  std::vector<int64_t> bits(50000, 1);
  Dataset d = MakeBits(bits);
  Rng rng(6);
  auto reports = RandomizedResponse(d, 0, /*eps=*/1.0, rng);
  double kept = 0;
  for (int64_t b : reports) kept += static_cast<double>(b);
  double keep_prob = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(kept / 50000.0, keep_prob, 0.01);
}

TEST(AccountantTest, BasicCompositionAdds) {
  PrivacyAccountant acc;
  acc.Spend(0.5, 0.0, "count A");
  acc.Spend(0.7, 1e-6, "count B");
  PrivacyGuarantee g = acc.BasicComposition();
  EXPECT_DOUBLE_EQ(g.eps, 1.2);
  EXPECT_DOUBLE_EQ(g.delta, 1e-6);
  EXPECT_EQ(acc.num_releases(), 2u);
}

TEST(AccountantTest, AdvancedBeatsBasicForManySmallReleases) {
  PrivacyAccountant acc;
  for (int i = 0; i < 400; ++i) acc.Spend(0.05);
  PrivacyGuarantee basic = acc.BasicComposition();
  PrivacyGuarantee advanced = acc.AdvancedComposition(1e-6);
  EXPECT_LT(advanced.eps, basic.eps);
  EXPECT_NEAR(basic.eps, 20.0, 1e-9);
  PrivacyGuarantee best = acc.BestBound(1e-6);
  EXPECT_DOUBLE_EQ(best.eps, advanced.eps);
}

TEST(AccountantTest, BasicBeatsAdvancedForFewReleases) {
  PrivacyAccountant acc;
  acc.Spend(1.0);
  PrivacyGuarantee best = acc.BestBound(1e-6);
  EXPECT_DOUBLE_EQ(best.eps, 1.0);
  EXPECT_DOUBLE_EQ(best.delta, 0.0);
}

TEST(AccountantTest, EmptyLedger) {
  PrivacyAccountant acc;
  EXPECT_DOUBLE_EQ(acc.BasicComposition().eps, 0.0);
  EXPECT_DOUBLE_EQ(acc.AdvancedComposition(0.01).eps, 0.0);
}

// Definition 1.2 verified empirically: the Laplace count's measured
// privacy loss must not exceed eps (up to sampling slack), while the exact
// count's loss is effectively unbounded.
TEST(AuditTest, LaplaceCountWithinBudget) {
  const double eps = 1.0;
  // Neighboring datasets: counts 5 vs 6.
  BucketizedMechanism mech = [eps](int which, Rng& rng) {
    double count = which == 0 ? 5.0 : 6.0;
    double y = count + rng.Laplace(1.0 / eps);
    return static_cast<int64_t>(std::floor(y * 2.0));  // buckets of 0.5
  };
  Rng rng(7);
  AuditResult audit = AuditPrivacyLoss(mech, 400000, rng, 200);
  EXPECT_GT(audit.buckets_compared, 5u);
  // Measured loss must be near (and statistically never far above) eps.
  EXPECT_LT(audit.empirical_eps, eps * 1.2);
  // And the mechanism is not trivially private: some loss is visible.
  EXPECT_GT(audit.empirical_eps, eps * 0.3);
}

TEST(AuditTest, ExactCountHasUnboundedLoss) {
  BucketizedMechanism mech = [](int which, Rng&) {
    return static_cast<int64_t>(which == 0 ? 5 : 6);
  };
  Rng rng(8);
  AuditResult audit = AuditPrivacyLoss(mech, 10000, rng, 20);
  // Disjoint supports: no shared bucket clears min_support, so nothing is
  // comparable — the right reading is "no finite eps certified".
  EXPECT_EQ(audit.buckets_compared, 0u);
}

TEST(AuditTest, RandomizedResponseLossMatchesEps) {
  const double eps = 1.5;
  double keep = std::exp(eps) / (1.0 + std::exp(eps));
  BucketizedMechanism mech = [keep](int which, Rng& rng) {
    int64_t bit = which;  // neighboring "datasets": the single bit flips
    return rng.Bernoulli(keep) ? bit : 1 - bit;
  };
  Rng rng(9);
  AuditResult audit = AuditPrivacyLoss(mech, 300000, rng, 100);
  // RR on one bit realizes exactly eps loss.
  EXPECT_NEAR(audit.empirical_eps, eps, 0.05);
}

// Property sweep: geometric noise symmetric for a range of eps.
class GeometricEpsTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricEpsTest, MeanZeroNoise) {
  double eps = GetParam();
  Rng rng(11);
  double sum = 0.0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(GeometricValue(0, eps, rng));
  }
  double sd = std::sqrt(2.0 * std::exp(-eps)) / (1.0 - std::exp(-eps));
  EXPECT_NEAR(sum / kTrials, 0.0,
              5.0 * sd / std::sqrt(static_cast<double>(kTrials)));
}

INSTANTIATE_TEST_SUITE_P(Eps, GeometricEpsTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace pso::dp
