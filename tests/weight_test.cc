// Tests for weight computation (Definition 2.4's w_D(p)).

#include <gtest/gtest.h>

#include "predicate/weight.h"

namespace pso {
namespace {

Schema TestSchema() {
  return Schema({Attribute::Integer("a", 0, 9),
                 Attribute::Integer("b", 0, 9)});
}

TEST(WeightTest, ExactPathForDecomposablePredicates) {
  auto d = ProductDistribution::UniformOver(TestSchema());
  Rng rng(1);
  auto p = MakeAnd({MakeAttributeEquals(0, 3), MakeAttributeEquals(1, 7)});
  WeightEstimate w = ComputeWeight(*p, d, rng);
  EXPECT_TRUE(w.exact);
  EXPECT_DOUBLE_EQ(w.value, 0.01);
  EXPECT_EQ(w.samples, 0u);
  EXPECT_DOUBLE_EQ(w.interval.lo, w.interval.hi);
}

TEST(WeightTest, MonteCarloPathForHashPredicates) {
  // A large domain so the hash's realized weight concentrates at the
  // design weight (on a tiny domain the per-key assignment fluctuates).
  Schema s({Attribute::Integer("a", 0, 9999),
            Attribute::Integer("b", 0, 9999)});
  auto d = ProductDistribution::UniformOver(s);
  Rng rng(2);
  UniversalHash h(rng, 20);
  auto p = MakeHashPredicate(s, h, 0);
  WeightEstimate w = ComputeWeight(*p, d, rng, 50000);
  EXPECT_FALSE(w.exact);
  EXPECT_EQ(w.samples, 50000u);
  EXPECT_NEAR(w.value, 0.05, 0.01);
  EXPECT_TRUE(w.interval.Contains(w.value));
  EXPECT_LT(w.interval.lo, w.interval.hi);
}

TEST(WeightTest, MonteCarloConsistentWithExact) {
  Schema s = TestSchema();
  auto d = ProductDistribution::UniformOver(s);
  Rng rng(3);
  auto p = MakeAttributeRange(0, 0, 4);
  WeightEstimate mc = EstimateWeightMonteCarlo(*p, d, rng, 100000);
  EXPECT_NEAR(mc.value, 0.5, 0.01);
  EXPECT_TRUE(mc.interval.Contains(0.5));
}

TEST(WeightTest, NegligibleThresholdScalesInverseSquare) {
  EXPECT_DOUBLE_EQ(NegligibleWeightThreshold(10), 0.01);
  EXPECT_DOUBLE_EQ(NegligibleWeightThreshold(100), 1e-4);
  EXPECT_DOUBLE_EQ(NegligibleWeightThreshold(100, 2.0), 2e-4);
}

TEST(WeightTest, ZeroWeightPredicate) {
  auto d = ProductDistribution::UniformOver(TestSchema());
  Rng rng(4);
  WeightEstimate w = ComputeWeight(*MakeFalse(), d, rng);
  EXPECT_TRUE(w.exact);
  EXPECT_DOUBLE_EQ(w.value, 0.0);
}

}  // namespace
}  // namespace pso
