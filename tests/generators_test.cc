// Tests for the prebuilt universes.

#include <gtest/gtest.h>

#include "data/generators.h"

namespace pso {
namespace {

TEST(GeneratorsTest, BirthdayUniverseMatchesPaper) {
  Universe u = MakeBirthdayUniverse();
  EXPECT_EQ(u.schema.NumAttributes(), 1u);
  EXPECT_EQ(u.schema.attribute(0).DomainSize(), 365);
  EXPECT_DOUBLE_EQ(u.distribution.RecordProbability({0}), 1.0 / 365.0);
}

TEST(GeneratorsTest, GicUniverseShape) {
  Universe u = MakeGicMedicalUniverse(100);
  ASSERT_TRUE(u.schema.IndexOf("zip").ok());
  ASSERT_TRUE(u.schema.IndexOf("birth_year").ok());
  ASSERT_TRUE(u.schema.IndexOf("birth_day").ok());
  ASSERT_TRUE(u.schema.IndexOf("sex").ok());
  ASSERT_TRUE(u.schema.IndexOf("diagnosis").ok());
  EXPECT_EQ(u.schema.NumAttributes(), 8u);
  // Rich domain: the class-predicate negligibility precondition of
  // Theorem 2.10 needs log2 |X| >> log2 n.
  EXPECT_GT(u.schema.Log2DomainSize(), 30.0);
}

TEST(GeneratorsTest, GicSamplesAreValid) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(1);
  Dataset x = u.distribution.SampleDataset(500, rng);
  for (const Record& r : x.records()) {
    EXPECT_TRUE(u.schema.IsValidRecord(r));
  }
}

TEST(GeneratorsTest, CensusUniverseMarginals) {
  Universe u = MakeCensusPersonUniverse();
  EXPECT_EQ(u.schema.NumAttributes(), 4u);
  // Hispanic share ~ 16.3%.
  EXPECT_NEAR(u.distribution.marginal(3).Probability(1), 0.163, 1e-9);
  // Ages sum to 1.
  double total = 0.0;
  for (int64_t a = 0; a <= 115; ++a) {
    total += u.distribution.marginal(0).Probability(a);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GeneratorsTest, BinaryTraitProbability) {
  Universe u = MakeBinaryTraitUniverse(0.3);
  EXPECT_DOUBLE_EQ(u.distribution.RecordProbability({1}), 0.3);
  EXPECT_DOUBLE_EQ(u.distribution.RecordProbability({0}), 0.7);
}

TEST(GeneratorsTest, RatingsUniverseSparse) {
  Universe u = MakeRatingsUniverse(32, 0.05);
  EXPECT_EQ(u.schema.NumAttributes(), 32u);
  Rng rng(2);
  Dataset x = u.distribution.SampleDataset(200, rng);
  // Mean rated count should be modest (sparse) but nonzero.
  double total = 0.0;
  for (const Record& r : x.records()) {
    for (int64_t v : r) total += static_cast<double>(v);
  }
  double mean_rated = total / 200.0;
  EXPECT_GT(mean_rated, 0.5);
  EXPECT_LT(mean_rated, 10.0);
}

TEST(GeneratorsTest, RatingsPopularityDecays) {
  Universe u = MakeRatingsUniverse(64, 0.08);
  double first = u.distribution.marginal(0).Probability(1);
  double last = u.distribution.marginal(63).Probability(1);
  EXPECT_GT(first, last);
}

}  // namespace
}  // namespace pso
