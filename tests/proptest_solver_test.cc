// Differential property tests for the three solvers, each checked
// against an independent brute-force oracle on randomized tiny
// instances (ctest label: proptest):
//
//   * LP simplex vs exhaustive vertex enumeration (a bounded feasible
//     region's optimum is attained at a vertex, and every vertex is the
//     intersection of n active planes from the bound/constraint set);
//   * both SAT backends (DPLL and CDCL) vs exhaustive truth-table
//     search, and vs each other (status must agree exactly);
//   * count-CSP vs a SAT cross-encoding of the same instance solved by
//     each backend (and vs direct multiset enumeration).
//
// All cases derive from pinned Rng::StreamAt seeds; see proptest.h.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "proptest.h"
#include "solver/csp.h"
#include "solver/lp.h"
#include "solver/lp_io.h"
#include "solver/sat.h"
#include "solver/sat_backend.h"

namespace pso {
namespace {

// ---------------------------------------------------------------------
// LP vs brute-force vertex enumeration.
// ---------------------------------------------------------------------

// Integer-valued tiny LPs keep the oracle's Gaussian elimination exact to
// well below the comparison tolerance. About one variable in seven gets
// an infinite upper bound, so the generator reaches the kUnbounded status
// path (the vertex oracle only runs on fully box-bounded instances).
LpInstance GenTinyLp(Rng& rng, size_t scale) {
  LpInstance inst;
  const size_t n = 1 + static_cast<size_t>(rng.UniformUint64(3));
  for (size_t i = 0; i < n; ++i) {
    LpInstance::Variable v;
    v.lower = static_cast<double>(rng.UniformInt(-3, 3));
    const int64_t max_width = static_cast<int64_t>(scale < 4 ? scale : 4);
    if (rng.Bernoulli(0.15)) {
      v.upper = std::numeric_limits<double>::infinity();
    } else {
      v.upper = v.lower + static_cast<double>(rng.UniformInt(0, max_width));
    }
    v.cost = static_cast<double>(rng.UniformInt(-3, 3));
    inst.variables.push_back(v);
  }
  const uint64_t max_rows = scale < 4 ? scale : 4;
  const size_t m = static_cast<size_t>(rng.UniformUint64(max_rows + 1));
  for (size_t r = 0; r < m; ++r) {
    LpInstance::Row row;
    for (size_t i = 0; i < n; ++i) {
      int64_t c = rng.UniformInt(-2, 2);
      if (c != 0) row.coeffs.emplace_back(i, static_cast<double>(c));
    }
    row.rel = static_cast<Relation>(rng.UniformUint64(3));
    row.rhs = static_cast<double>(rng.UniformInt(-6, 6));
    inst.rows.push_back(std::move(row));
  }
  return inst;
}

struct LpOracleResult {
  bool feasible = false;
  double objective = std::numeric_limits<double>::infinity();
};

// Solves the k x k system A x = b by Gaussian elimination with partial
// pivoting; false when singular (within tolerance).
bool SolveSquare(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>* x) {
  const size_t k = b.size();
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-9) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (size_t c = col; c < k; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  x->assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) (*x)[i] = b[i] / a[i][i];
  return true;
}

bool PointFeasible(const LpInstance& inst, const std::vector<double>& x,
                   double tol) {
  for (size_t i = 0; i < inst.variables.size(); ++i) {
    if (x[i] < inst.variables[i].lower - tol ||
        x[i] > inst.variables[i].upper + tol) {
      return false;
    }
  }
  for (const LpInstance::Row& row : inst.rows) {
    double sum = 0.0;
    for (const auto& [idx, coeff] : row.coeffs) sum += coeff * x[idx];
    switch (row.rel) {
      case Relation::kLessEq:
        if (sum > row.rhs + tol) return false;
        break;
      case Relation::kGreaterEq:
        if (sum < row.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::fabs(sum - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

// Enumerates every intersection of n planes drawn from the variable
// bounds and the constraint boundaries; the minimum objective over the
// feasible intersections is the LP optimum (the region is a polytope:
// every variable is box-bounded).
LpOracleResult BruteForceLp(const LpInstance& inst) {
  const size_t n = inst.variables.size();
  std::vector<std::vector<double>> planes;  // a . x = b, a has n entries
  std::vector<double> rhs;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> unit(n, 0.0);
    unit[i] = 1.0;
    planes.push_back(unit);
    rhs.push_back(inst.variables[i].lower);
    planes.push_back(std::move(unit));
    rhs.push_back(inst.variables[i].upper);
  }
  for (const LpInstance::Row& row : inst.rows) {
    std::vector<double> dense(n, 0.0);
    for (const auto& [idx, coeff] : row.coeffs) dense[idx] += coeff;
    planes.push_back(std::move(dense));
    rhs.push_back(row.rhs);
  }

  LpOracleResult out;
  std::vector<size_t> pick(n, 0);
  // Odometer over all n-subsets (with repetition pruned by ordering).
  auto visit = [&](auto&& self, size_t depth, size_t first) -> void {
    if (depth == n) {
      std::vector<std::vector<double>> a(n);
      std::vector<double> b(n);
      for (size_t k = 0; k < n; ++k) {
        a[k] = planes[pick[k]];
        b[k] = rhs[pick[k]];
      }
      std::vector<double> x;
      if (!SolveSquare(std::move(a), std::move(b), &x)) return;
      if (!PointFeasible(inst, x, 1e-6)) return;
      double obj = 0.0;
      for (size_t i = 0; i < n; ++i) obj += inst.variables[i].cost * x[i];
      out.feasible = true;
      if (obj < out.objective) out.objective = obj;
      return;
    }
    for (size_t p = first; p < planes.size(); ++p) {
      pick[depth] = p;
      self(self, depth + 1, p + 1);
    }
  };
  visit(visit, 0, 0);
  return out;
}

// Every generated instance is solved by BOTH registered backends; the
// statuses must match exactly (optimal / kInfeasible / kUnbounded) and
// optimal objectives must agree. Box-bounded instances are additionally
// checked against the brute-force vertex oracle.
struct BackendOutcome {
  Status status;  // default-constructed OK
  double objective = 0.0;

  bool ok() const { return status.ok(); }
};

BackendOutcome SolveOn(const char* backend, const LpInstance& inst) {
  BackendOutcome out;
  Result<std::unique_ptr<LpBackend>> be = MakeLpBackend(backend);
  Result<LpSolution> got = (*be)->Solve(inst, LpSolveOptions{});
  if (got.ok()) {
    out.objective = got->objective;
  } else {
    out.status = got.status();
  }
  return out;
}

bool BoxBounded(const LpInstance& inst) {
  for (const LpInstance::Variable& v : inst.variables) {
    if (std::isinf(v.upper)) return false;
  }
  return true;
}

TEST(LpDifferentialTest, BackendsAgreeAndMatchVertexEnumeration) {
  proptest::Config cfg{/*master_seed=*/0x11aa22bb, /*iterations=*/300,
                       /*max_scale=*/4, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<LpInstance>(
      cfg, GenTinyLp, [](const LpInstance& inst) -> std::string {
        BackendOutcome dense = SolveOn("dense", inst);
        BackendOutcome sparse = SolveOn("sparse", inst);
        for (const BackendOutcome* r : {&dense, &sparse}) {
          if (!r->ok() &&
              r->status.code() != StatusCode::kInfeasible &&
              r->status.code() != StatusCode::kUnbounded) {
            return "solver returned unexpected status " +
                   r->status.ToString();
          }
        }
        if (dense.status.code() != sparse.status.code()) {
          return StrFormat(
              "status disagrees: dense=%s sparse=%s (%zu vars, %zu rows)",
              dense.status.ToString().c_str(),
              sparse.status.ToString().c_str(), inst.variables.size(),
              inst.rows.size());
        }
        if (dense.ok() &&
            std::fabs(dense.objective - sparse.objective) > 1e-6) {
          return StrFormat(
              "backends disagree on objective: dense=%.9g sparse=%.9g",
              dense.objective, sparse.objective);
        }
        if (!BoxBounded(inst)) return "";  // oracle needs a polytope

        LpOracleResult oracle = BruteForceLp(inst);
        if (dense.ok() != oracle.feasible) {
          return StrFormat(
              "feasibility disagrees: simplex=%s oracle=%s (%zu vars, %zu "
              "rows)",
              dense.ok() ? "feasible" : "infeasible",
              oracle.feasible ? "feasible" : "infeasible",
              inst.variables.size(), inst.rows.size());
        }
        if (dense.ok() &&
            std::fabs(dense.objective - oracle.objective) > 1e-5) {
          return StrFormat("objective disagrees: simplex=%.9g oracle=%.9g",
                           dense.objective, oracle.objective);
        }
        return "";
      }));
}

// ---------------------------------------------------------------------
// SAT vs exhaustive truth-table search.
// ---------------------------------------------------------------------

struct CnfCase {
  uint32_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

CnfCase GenCnf(Rng& rng, size_t scale) {
  CnfCase cnf;
  const uint64_t max_vars = 2 + (scale < 10 ? scale : 10);  // <= 12
  cnf.num_vars = 1 + static_cast<uint32_t>(rng.UniformUint64(max_vars));
  const size_t num_clauses =
      static_cast<size_t>(rng.UniformUint64(3 * scale + 2));
  for (size_t c = 0; c < num_clauses; ++c) {
    size_t len = 1 + static_cast<size_t>(rng.UniformUint64(3));
    std::vector<Lit> clause;
    for (size_t k = 0; k < len; ++k) {
      uint32_t var = static_cast<uint32_t>(rng.UniformUint64(cnf.num_vars));
      clause.push_back(MakeLit(var, rng.Bernoulli(0.5)));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool AssignmentSatisfies(const CnfCase& cnf, uint64_t mask) {
  for (const std::vector<Lit>& clause : cnf.clauses) {
    bool sat = false;
    for (Lit l : clause) {
      bool value = (mask >> LitVar(l)) & 1;
      if (value == LitPositive(l)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST(SatDifferentialTest, BackendsMatchExhaustiveSearchAndEachOther) {
  proptest::Config cfg{/*master_seed=*/0x33cc44dd, /*iterations=*/300,
                       /*max_scale=*/10, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<CnfCase>(
      cfg, GenCnf, [](const CnfCase& cnf) -> std::string {
        bool oracle_sat = false;
        for (uint64_t mask = 0; mask < (1ull << cnf.num_vars); ++mask) {
          if (AssignmentSatisfies(cnf, mask)) {
            oracle_sat = true;
            break;
          }
        }
        for (const char* backend : {"dpll", "cdcl"}) {
          SatSolver solver(cnf.num_vars);
          for (const auto& clause : cnf.clauses) solver.AddClause(clause);
          Result<std::unique_ptr<SatBackend>> engine =
              MakeSatBackend(backend);
          if (!engine.ok()) {
            return "backend error: " + engine.status().ToString();
          }
          Result<SatSolution> got = solver.SolveWith(**engine, {});
          if (!got.ok()) return "solver error: " + got.status().ToString();
          if (got->satisfiable != oracle_sat) {
            return StrFormat(
                "satisfiability disagrees: %s=%d exhaustive=%d (%u vars, "
                "%zu clauses)",
                backend, got->satisfiable ? 1 : 0, oracle_sat ? 1 : 0,
                cnf.num_vars, cnf.clauses.size());
          }
          if (got->satisfiable) {
            uint64_t mask = 0;
            for (uint32_t v = 0; v < cnf.num_vars; ++v) {
              if (got->assignment[v]) mask |= 1ull << v;
            }
            if (!AssignmentSatisfies(cnf, mask)) {
              return StrFormat("%s's model does not satisfy the formula",
                               backend);
            }
          }
        }
        return "";
      }));
}

// ---------------------------------------------------------------------
// Count-CSP vs SAT cross-encoding (and vs direct multiset enumeration).
// ---------------------------------------------------------------------

struct CspCase {
  size_t num_vars = 0;
  size_t domain = 0;
  struct Count {
    std::vector<bool> match;
    int64_t lo = 0;
    int64_t hi = 0;
  };
  std::vector<Count> counts;
};

CspCase GenCsp(Rng& rng, size_t scale) {
  CspCase c;
  const uint64_t max_vars = 1 + (scale < 4 ? scale : 4);  // <= 5
  c.num_vars = 1 + static_cast<size_t>(rng.UniformUint64(max_vars));
  c.domain = 1 + static_cast<size_t>(rng.UniformUint64(4));
  const size_t m = static_cast<size_t>(rng.UniformUint64(4));
  for (size_t k = 0; k < m; ++k) {
    CspCase::Count count;
    count.match.resize(c.domain);
    for (size_t v = 0; v < c.domain; ++v) count.match[v] = rng.Bernoulli(0.5);
    count.lo = rng.UniformInt(0, static_cast<int64_t>(c.num_vars));
    count.hi = rng.UniformInt(count.lo, static_cast<int64_t>(c.num_vars));
    c.counts.push_back(std::move(count));
  }
  return c;
}

// SAT encoding: one boolean per (variable, value) with exactly-one rows,
// an auxiliary "matches constraint k" literal per variable, and Sinz
// cardinality bounds over the auxiliaries — the same construction
// census::ReconstructBlockSat uses, exercised here against the CSP and
// solved by the named backend.
bool CspSatisfiableViaSat(const CspCase& c, const char* backend,
                          std::string* error) {
  SatSolver solver(static_cast<uint32_t>(c.num_vars * c.domain));
  auto x = [&](size_t var, size_t val) {
    return MakeLit(static_cast<uint32_t>(var * c.domain + val), true);
  };
  for (size_t i = 0; i < c.num_vars; ++i) {
    std::vector<Lit> row;
    for (size_t v = 0; v < c.domain; ++v) row.push_back(x(i, v));
    solver.AddExactlyOne(row);
  }
  for (const CspCase::Count& count : c.counts) {
    std::vector<Lit> ys;
    for (size_t i = 0; i < c.num_vars; ++i) {
      Lit y = MakeLit(solver.NewVariable(), true);
      // y <-> OR_{v in mask} x(i, v).
      std::vector<Lit> forward{LitNegate(y)};
      for (size_t v = 0; v < c.domain; ++v) {
        if (!count.match[v]) continue;
        forward.push_back(x(i, v));
        solver.AddBinary(LitNegate(x(i, v)), y);
      }
      solver.AddClause(forward);
      ys.push_back(y);
    }
    solver.AddAtMostK(ys, static_cast<size_t>(count.hi));
    solver.AddAtLeastK(ys, static_cast<size_t>(count.lo));
  }
  Result<std::unique_ptr<SatBackend>> engine = MakeSatBackend(backend);
  if (!engine.ok()) {
    *error = "backend error: " + engine.status().ToString();
    return false;
  }
  Result<SatSolution> got = solver.SolveWith(**engine, {});
  if (!got.ok()) {
    *error = "SAT encoding error: " + got.status().ToString();
    return false;
  }
  return got->satisfiable;
}

// Direct enumeration of non-decreasing value sequences (the CSP's own
// solution space), independent of its pruning logic.
size_t BruteForceCspSolutions(const CspCase& c) {
  size_t found = 0;
  std::vector<size_t> seq(c.num_vars, 0);
  auto visit = [&](auto&& self, size_t depth, size_t min_val) -> void {
    if (depth == c.num_vars) {
      for (const CspCase::Count& count : c.counts) {
        int64_t matched = 0;
        for (size_t v : seq) matched += count.match[v] ? 1 : 0;
        if (matched < count.lo || matched > count.hi) return;
      }
      ++found;
      return;
    }
    for (size_t v = min_val; v < c.domain; ++v) {
      seq[depth] = v;
      self(self, depth + 1, v);
    }
  };
  visit(visit, 0, 0);
  return found;
}

TEST(CspDifferentialTest, CspMatchesSatCrossEncodingAndBruteForce) {
  proptest::Config cfg{/*master_seed=*/0x55ee66ff, /*iterations=*/250,
                       /*max_scale=*/4, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<CspCase>(
      cfg, GenCsp, [](const CspCase& c) -> std::string {
        CountCsp csp(c.num_vars, c.domain);
        for (const CspCase::Count& count : c.counts) {
          csp.AddCountConstraint(count.match, count.lo, count.hi);
        }
        if (!csp.build_status().ok()) {
          return "CSP build error: " + csp.build_status().ToString();
        }
        CspStats stats;
        std::vector<std::vector<size_t>> sols =
            csp.Enumerate(/*max_solutions=*/100000, /*max_nodes=*/1000000,
                          &stats);
        if (!stats.complete) return "CSP search hit a cap unexpectedly";

        size_t brute = BruteForceCspSolutions(c);
        if (sols.size() != brute) {
          return StrFormat(
              "solution count disagrees: csp=%zu brute-force=%zu (%zu "
              "vars, domain %zu, %zu constraints)",
              sols.size(), brute, c.num_vars, c.domain, c.counts.size());
        }

        for (const char* backend : {"dpll", "cdcl"}) {
          std::string sat_error;
          bool sat = CspSatisfiableViaSat(c, backend, &sat_error);
          if (!sat_error.empty()) return sat_error;
          if (sat != !sols.empty()) {
            return StrFormat(
                "satisfiability disagrees: sat-encoding(%s)=%d csp=%d",
                backend, sat ? 1 : 0, sols.empty() ? 0 : 1);
          }
        }
        return "";
      }));
}

}  // namespace
}  // namespace pso
