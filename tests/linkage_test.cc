// Tests for quasi-identifier uniqueness and the Sweeney join attack.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kanon/datafly.h"
#include "linkage/join_attack.h"
#include "linkage/uniqueness.h"

namespace pso::linkage {
namespace {

TEST(UniquenessTest, CraftedGroups) {
  Schema s({Attribute::Integer("zip", 0, 9),
            Attribute::Integer("age", 0, 99)});
  Dataset d(s, {{1, 30}, {1, 30}, {2, 40}, {3, 50}, {3, 50}, {3, 50}});
  UniquenessReport r = AnalyzeUniqueness(d, {0, 1});
  EXPECT_EQ(r.records, 6u);
  EXPECT_EQ(r.unique, 1u);  // only (2, 40)
  EXPECT_EQ(r.groups, 3u);
  EXPECT_DOUBLE_EQ(r.unique_fraction(), 1.0 / 6.0);
}

TEST(UniquenessTest, MoreAttributesMoreUnique) {
  // The Sweeney effect: uniqueness grows monotonically with QI size.
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(1);
  Dataset data = u.distribution.SampleDataset(20000, rng);
  double zip_only = AnalyzeUniqueness(data, {0}).unique_fraction();
  double zip_sex = AnalyzeUniqueness(data, {0, 3}).unique_fraction();
  double zip_yob_sex = AnalyzeUniqueness(data, {0, 1, 3}).unique_fraction();
  double full_qi =
      AnalyzeUniqueness(data, {0, 1, 2, 3}).unique_fraction();
  EXPECT_LE(zip_only, zip_sex);
  EXPECT_LE(zip_sex, zip_yob_sex);
  EXPECT_LE(zip_yob_sex, full_qi);
  // ZIP x DOB x sex makes the vast majority unique (the paper's claim).
  EXPECT_GT(full_qi, 0.85);
  EXPECT_LT(zip_only, 0.05);
}

TEST(UniquenessTest, PartialKnowledgeNetflixEffect) {
  Universe u = MakeRatingsUniverse(64, 0.08);
  Rng rng(2);
  Dataset data = u.distribution.SampleDataset(5000, rng);
  Rng attack_rng(3);
  double know2 = PartialKnowledgeUniqueness(data, 2, 300, attack_rng);
  double know6 = PartialKnowledgeUniqueness(data, 6, 300, attack_rng);
  // Narayanan–Shmatikov: a handful of known ratings identifies most
  // subscribers.
  EXPECT_GT(know6, know2);
  EXPECT_GT(know6, 0.5);
}

TEST(JoinAttackTest, PerfectVoterFileReidentifiesUniques) {
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(4);
  IdentifiedPopulation pop = SamplePopulation(u, 5000, rng);
  std::vector<size_t> qi = {0, 1, 2, 3};  // zip, birth_year, birth_day, sex
  auto voters = BuildVoterFile(pop, qi, /*coverage=*/1.0, rng);
  LinkageReport r = JoinAttack(pop, voters, qi);
  // With full coverage, every QI-unique record is claimed and every claim
  // is correct.
  EXPECT_GT(r.claim_rate(), 0.85);
  EXPECT_EQ(r.claims, r.confirmed);
}

TEST(JoinAttackTest, PartialCoverageStillConfirmsMostClaims) {
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(5);
  IdentifiedPopulation pop = SamplePopulation(u, 4000, rng);
  std::vector<size_t> qi = {0, 1, 2, 3};
  auto voters = BuildVoterFile(pop, qi, /*coverage=*/0.6, rng);
  LinkageReport r = JoinAttack(pop, voters, qi);
  EXPECT_GT(r.claims, 0u);
  // Partial coverage introduces wrong claims (the unique voter may not be
  // the released person), but most should still confirm.
  EXPECT_GT(static_cast<double>(r.confirmed) /
                static_cast<double>(r.claims),
            0.55);
}

TEST(JoinAttackTest, FewQiAttributesYieldFewClaims) {
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(6);
  IdentifiedPopulation pop = SamplePopulation(u, 5000, rng);
  std::vector<size_t> qi = {3};  // sex only
  auto voters = BuildVoterFile(pop, qi, 1.0, rng);
  LinkageReport r = JoinAttack(pop, voters, qi);
  EXPECT_EQ(r.claims, 0u);  // nobody is unique on sex alone
}

TEST(JoinAttackGeneralizedTest, KAnonymityBlocksTheJoin) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(7);
  IdentifiedPopulation pop = SamplePopulation(u, 1500, rng);
  std::vector<size_t> qi = {0, 1, 2, 3};

  // Raw join: many confirmed re-identifications.
  auto voters = BuildVoterFile(pop, qi, 1.0, rng);
  LinkageReport raw = JoinAttack(pop, voters, qi);
  EXPECT_GT(raw.confirmed_rate(), 0.5);

  // 5-anonymous release: the same voter file yields (almost) no unique
  // joins. This is exactly the attack k-anonymity was designed to stop.
  kanon::HierarchySet hs = kanon::HierarchySet::Defaults(u.schema);
  kanon::DataflyOptions opts;
  opts.k = 5;
  opts.qi_attrs = qi;
  opts.max_suppression = 0.05;
  auto anon = kanon::DataflyAnonymize(pop.records, hs, opts);
  ASSERT_TRUE(anon.ok());
  LinkageReport gen =
      JoinAttackGeneralized(pop, anon->generalized, voters, qi);
  EXPECT_LT(gen.claim_rate(), 0.02);
}

}  // namespace
}  // namespace pso::linkage
