// Tests for the SAT back-end of the census reconstruction, including
// cross-validation against the CSP engine and the cardinality encodings.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "census/reconstruct.h"
#include "census/sat_reconstruct.h"
#include "solver/sat.h"

namespace pso::census {
namespace {

Population SmallPopulation(uint64_t seed, size_t blocks, size_t min_size,
                           size_t max_size) {
  PopulationOptions opts;
  opts.num_blocks = blocks;
  opts.min_block_size = min_size;
  opts.max_block_size = max_size;
  Rng rng(seed);
  return GeneratePopulation(opts, rng);
}

// Multiset equality of record lists.
bool SameMultiset(const std::vector<Record>& a, const Dataset& b) {
  if (a.size() != b.size()) return false;
  std::map<Record, int> counts;
  for (const Record& r : a) ++counts[r];
  for (const Record& r : b.records()) --counts[r];
  for (const auto& [r, c] : counts) {
    if (c != 0) return false;
  }
  return true;
}

// Checks a candidate solution against the exact tables.
bool ConsistentWithTables(const std::vector<Record>& solution,
                          const BlockTables& t) {
  if (static_cast<int64_t>(solution.size()) != t.total) return false;
  std::vector<int64_t> by_age(t.by_age.size(), 0);
  std::vector<int64_t> by_race(6, 0);
  for (const Record& r : solution) {
    ++by_age[static_cast<size_t>(r[kAge])];
    ++by_race[static_cast<size_t>(r[kRace])];
  }
  return by_age == t.by_age && by_race == t.by_race;
}

TEST(SatCardinalityTest, AtMostKEnforced) {
  // 5 literals, at most 2 true, with 3 forced true: UNSAT.
  SatSolver s(5);
  std::vector<Lit> lits;
  for (uint32_t v = 0; v < 5; ++v) lits.push_back(MakeLit(v, true));
  s.AddAtMostK(lits, 2);
  s.AddUnit(lits[0]);
  s.AddUnit(lits[2]);
  s.AddUnit(lits[4]);
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST(SatCardinalityTest, AtMostKSatisfiableAtBound) {
  SatSolver s(5);
  std::vector<Lit> lits;
  for (uint32_t v = 0; v < 5; ++v) lits.push_back(MakeLit(v, true));
  s.AddAtMostK(lits, 2);
  s.AddUnit(lits[1]);
  s.AddUnit(lits[3]);
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  int trues = 0;
  for (uint32_t v = 0; v < 5; ++v) trues += sol->assignment[v] ? 1 : 0;
  EXPECT_LE(trues, 2);
}

TEST(SatCardinalityTest, ExactlyKCounts) {
  for (size_t k : {0u, 1u, 3u, 6u}) {
    SatSolver s(6);
    std::vector<Lit> lits;
    for (uint32_t v = 0; v < 6; ++v) lits.push_back(MakeLit(v, true));
    s.AddExactlyK(lits, k);
    auto sol = s.Solve();
    ASSERT_TRUE(sol.ok());
    ASSERT_TRUE(sol->satisfiable) << "k=" << k;
    size_t trues = 0;
    for (uint32_t v = 0; v < 6; ++v) trues += sol->assignment[v] ? 1 : 0;
    EXPECT_EQ(trues, k);
  }
}

TEST(SatCardinalityTest, AtLeastImpossibleIsUnsat) {
  SatSolver s(3);
  std::vector<Lit> lits = {MakeLit(0, true), MakeLit(1, true),
                           MakeLit(2, true)};
  s.AddAtLeastK(lits, 2);
  s.AddUnit(MakeLit(0, false));
  s.AddUnit(MakeLit(1, false));
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST(SatReconstructTest, SolutionConsistentWithTables) {
  Population pop = SmallPopulation(21, 10, 2, 5);
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    auto sat = ReconstructBlockSat(t, /*max_decisions=*/500000);
    ASSERT_TRUE(sat.ok()) << sat.status().ToString();
    ASSERT_TRUE(sat->satisfiable);
    EXPECT_TRUE(ConsistentWithTables(sat->reconstructed, t));
  }
}

TEST(SatReconstructTest, AgreesWithCspOnUniqueBlocks) {
  Population pop = SmallPopulation(22, 15, 2, 5);
  size_t unique_checked = 0;
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    BlockReconstruction csp = ReconstructBlock(t, b.persons);
    if (!csp.unique) continue;
    ++unique_checked;
    auto sat = ReconstructBlockSat(t, 500000);
    ASSERT_TRUE(sat.ok());
    ASSERT_TRUE(sat->satisfiable);
    // Unique solution: SAT must return exactly the ground truth multiset.
    EXPECT_TRUE(SameMultiset(sat->reconstructed, b.persons));
  }
  EXPECT_GT(unique_checked, 3u);  // the comparison actually exercised
}

TEST(SatReconstructTest, EmptyBlock) {
  Block empty{0, Dataset{MakeCensusBlockUniverse().schema}, {}};
  BlockTables t = Tabulate(empty);
  auto sat = ReconstructBlockSat(t);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(sat->satisfiable);
  EXPECT_TRUE(sat->reconstructed.empty());
}

TEST(SatReconstructTest, BudgetExhaustionIsFirstClassOutcome) {
  // A starved decision budget must never surface as an error: the
  // reconstruction reports budget_exhausted = true and stays ok().
  Population pop = SmallPopulation(23, 1, 5, 5);
  BlockTables t = Tabulate(pop.blocks[0]);
  for (const std::string& backend : {std::string("dpll"),
                                     std::string("cdcl")}) {
    auto sat = ReconstructBlockSat(t, /*max_decisions=*/1, backend);
    ASSERT_TRUE(sat.ok()) << sat.status().ToString();
    if (sat->budget_exhausted) {
      EXPECT_TRUE(sat->reconstructed.empty());
      EXPECT_EQ(sat->decisions, 1u);
    } else {
      // Solved within one decision (all units): a complete solution.
      EXPECT_TRUE(sat->satisfiable);
    }
  }
}

TEST(SatReconstructTest, BackendsAgreeBlockwise) {
  // Both registered engines must produce table-consistent solutions and
  // identical satisfiability on the same census encodings.
  Population pop = SmallPopulation(24, 6, 2, 5);
  for (const Block& b : pop.blocks) {
    BlockTables t = Tabulate(b);
    auto dpll = ReconstructBlockSat(t, 500000, "dpll");
    auto cdcl = ReconstructBlockSat(t, 500000, "cdcl");
    ASSERT_TRUE(dpll.ok());
    ASSERT_TRUE(cdcl.ok());
    ASSERT_FALSE(dpll->budget_exhausted);
    ASSERT_FALSE(cdcl->budget_exhausted);
    EXPECT_EQ(dpll->satisfiable, cdcl->satisfiable);
    EXPECT_TRUE(ConsistentWithTables(dpll->reconstructed, t));
    EXPECT_TRUE(ConsistentWithTables(cdcl->reconstructed, t));
  }
}

TEST(SatReconstructTest, UnknownBackendRejected) {
  Population pop = SmallPopulation(25, 1, 2, 2);
  BlockTables t = Tabulate(pop.blocks[0]);
  auto sat = ReconstructBlockSat(t, 1000, "no-such-engine");
  ASSERT_FALSE(sat.ok());
  EXPECT_EQ(sat.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pso::census
