// End-to-end integration tests: miniature versions of the benches, wiring
// several subsystems together.

#include <gtest/gtest.h>

#include <cmath>

#include "census/reidentify.h"
#include "data/generators.h"
#include "legal/report.h"
#include "pso/adversaries.h"
#include "pso/composition_attack.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "recon/attacks.h"

namespace pso {
namespace {

// E8 in miniature: the full Theorem 2.10 story — k-anonymize, attack,
// conclude the legal theorem.
TEST(Integration, KAnonymityFailsAndLegalTheoremFollows) {
  Universe u = MakeGicMedicalUniverse(100);
  // Every attribute is a potential quasi-identifier (Cohen's setting,
  // Section 1.1), so class predicates constrain the full record and their
  // weights are negligible.
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      /*qi_attrs=*/{});
  PsoGameOptions opts;
  opts.trials = 120;
  opts.weight_pool = 50000;
  PsoGame game(u.distribution, 300, opts);

  auto hash_result = game.Run(*mech, *MakeKAnonHashAdversary());
  auto min_result = game.Run(*mech, *MakeKAnonMinimalityAdversary());

  // Theorem 2.10 shape: hash attack ~37%, minimality attack higher.
  EXPECT_GT(hash_result.pso_success.rate(), 0.2);
  EXPECT_GT(min_result.pso_success.rate(),
            hash_result.pso_success.rate());
  EXPECT_GT(min_result.pso_success.rate(), 0.6);

  legal::LegalClaim claim = legal::EvaluateSinglingOutClaim(
      "k-anonymity (Mondrian, k=5)", {hash_result, min_result});
  EXPECT_EQ(claim.verdict, legal::Verdict::kFails);
  legal::LegalClaim corollary = legal::DeriveAnonymizationCorollary(claim);
  EXPECT_EQ(corollary.verdict, legal::Verdict::kFails);
}

// Footnote 3: enforcing l-diversity on top of k-anonymity does not stop
// the PSO attacks — the variants inherit the failure.
TEST(Integration, LDiverseReleaseStillFalls) {
  Universe u = MakeGicMedicalUniverse(100);
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      /*qi_attrs=*/{}, /*l_diversity=*/2, /*sensitive_attr=*/4);
  EXPECT_NE(mech->Name().find("2-diverse"), std::string::npos);
  PsoGameOptions opts;
  opts.trials = 80;
  opts.weight_pool = 50000;
  PsoGame game(u.distribution, 300, opts);
  auto result = game.Run(*mech, *MakeKAnonMinimalityAdversary());
  EXPECT_GT(result.pso_success.rate(), 0.6);
  EXPECT_GT(result.advantage, 0.4);
}

// E7 in miniature: DP mechanisms resist the same attacker family
// (Theorem 2.9's empirical face).
TEST(Integration, DifferentialPrivacyResists) {
  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  PsoGameOptions opts;
  opts.trials = 150;
  opts.weight_pool = 50000;
  PsoGame game(u.distribution, 300, opts);

  for (double eps : {0.5, 1.0}) {
    auto mech = MakeLaplaceCountMechanism(q, "sex=F", eps);
    auto result = game.Run(*mech, *MakeTrivialHashAdversary(1.0 / 3000.0));
    EXPECT_LT(result.pso_success.rate(), result.baseline + 0.07)
        << result.Summary();
  }
}

// E6 in miniature: count mechanisms are individually secure but compose
// into a near-certain attack (Theorems 2.5 + 2.8 side by side).
TEST(Integration, CountsSecureAloneBrokenTogether) {
  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 300;
  const double tau = 1.0 / (10.0 * n);

  // Alone: a single count mechanism resists.
  auto q = MakeAttributeEquals(3, 0, "sex");
  PsoGameOptions opts;
  opts.trials = 100;
  opts.weight_pool = 40000;
  PsoGame game(u.distribution, n, opts);
  auto single = game.Run(*MakeCountMechanism(q, "sex=F"),
                         *MakeCountTunedAdversary(q, "sex=F"));
  EXPECT_LT(single.pso_success.rate(), single.baseline + 0.07);

  // Composed (adaptively chosen counts): near-certain PSO.
  auto composed = RunCompositionGame(u.distribution, n, 40, true, tau, 200,
                                     /*seed=*/7);
  EXPECT_GT(composed.pso_success.rate(), 0.9);
}

// E9 in miniature: census reconstruction + re-identification, with the DP
// defense flipping the outcome.
TEST(Integration, CensusReconstructionAndDpDefense) {
  census::PopulationOptions popts;
  popts.num_blocks = 25;
  popts.min_block_size = 2;
  popts.max_block_size = 7;
  Rng rng(11);
  census::Population pop = census::GeneratePopulation(popts, rng);

  std::vector<census::BlockTables> exact;
  std::vector<census::BlockTables> noisy;
  for (const auto& b : pop.blocks) {
    exact.push_back(census::Tabulate(b));
    noisy.push_back(census::TabulateDp(b, /*eps=*/0.25, rng));
  }
  std::vector<census::BlockReconstruction> recon;
  census::ReconstructionReport exact_report =
      census::ReconstructPopulation(pop, exact, {}, &recon);
  census::ReconstructOptions dp_opts;
  dp_opts.max_solutions = 8;
  dp_opts.max_nodes = 100000;
  census::ReconstructionReport dp_report =
      census::ReconstructPopulation(pop, noisy, dp_opts);

  EXPECT_GT(exact_report.person_exact_fraction(), 0.6);
  EXPECT_LT(dp_report.person_exact_fraction(),
            exact_report.person_exact_fraction());

  census::CommercialOptions copts;
  Rng crng(12);
  auto db = census::SimulateCommercialDatabase(pop, copts, crng);
  census::ReidentificationReport reid =
      census::Reidentify(pop, recon, db);
  // Confirmed re-identification far above the 0.003% ballpark the Bureau
  // once assumed.
  EXPECT_GT(reid.confirmed_rate(), 0.05);
}

// E1/E2 in miniature: the Fundamental Law — accurate answers enable
// reconstruction; heavy noise stops it.
TEST(Integration, FundamentalLawOfInformationRecovery) {
  Rng rng(13);
  const size_t n = 48;
  auto secret = recon::RandomBits(n, rng);

  recon::BoundedNoiseOracle small_noise(secret, 0.2 * std::sqrt((double)n),
                                        /*seed=*/1);
  recon::Reconstruction good =
      recon::LeastSquaresReconstruct(small_noise, 6 * n, rng);
  recon::BoundedNoiseOracle big_noise(secret, static_cast<double>(n),
                                      /*seed=*/2);
  recon::Reconstruction bad =
      recon::LeastSquaresReconstruct(big_noise, 6 * n, rng);

  double good_acc = recon::FractionAgree(good.estimate, secret);
  double bad_acc = recon::FractionAgree(bad.estimate, secret);
  EXPECT_GT(good_acc, 0.9);
  EXPECT_GT(good_acc, bad_acc);
}

}  // namespace
}  // namespace pso
