// Tests for the Dataset container.

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace pso {
namespace {

Schema TwoColSchema() {
  return Schema({Attribute::Integer("a", 0, 9),
                 Attribute::Integer("b", 0, 9)});
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset d{TwoColSchema()};
  EXPECT_TRUE(d.empty());
  d.Append({1, 2});
  d.Append({3, 4});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.At(0, 1), 2);
  EXPECT_EQ(d.record(1), (Record{3, 4}));
}

TEST(DatasetTest, ConstructorValidatesRecords) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}});
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatasetTest, ProjectSelectsColumns) {
  Dataset d(TwoColSchema(), {{1, 2}, {3, 4}});
  Dataset p = d.Project({1});
  EXPECT_EQ(p.schema().NumAttributes(), 1u);
  EXPECT_EQ(p.schema().attribute(0).name(), "b");
  EXPECT_EQ(p.At(0, 0), 2);
  EXPECT_EQ(p.At(1, 0), 4);
}

TEST(DatasetTest, ProjectReorders) {
  Dataset d(TwoColSchema(), {{1, 2}});
  Dataset p = d.Project({1, 0});
  EXPECT_EQ(p.record(0), (Record{2, 1}));
}

TEST(DatasetTest, SelectRows) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}, {3, 3}});
  Dataset s = d.Select({2, 0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.record(0), (Record{3, 3}));
  EXPECT_EQ(s.record(1), (Record{1, 1}));
}

TEST(DatasetTest, CountEqual) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}, {1, 1}});
  EXPECT_EQ(d.CountEqual({1, 1}), 2u);
  EXPECT_EQ(d.CountEqual({9, 9}), 0u);
}

TEST(DatasetTest, GroupIdenticalPartitionsRows) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}, {1, 1}, {3, 3}});
  auto groups = d.GroupIdentical();
  EXPECT_EQ(groups.size(), 3u);
  size_t covered = 0;
  for (const auto& g : groups) covered += g.size();
  EXPECT_EQ(covered, 4u);
}

TEST(DatasetTest, FractionUnique) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}, {1, 1}, {3, 3}});
  EXPECT_DOUBLE_EQ(d.FractionUnique(), 0.5);  // rows {2,2} and {3,3}
}

TEST(DatasetTest, FractionUniqueEmpty) {
  Dataset d{TwoColSchema()};
  EXPECT_DOUBLE_EQ(d.FractionUnique(), 0.0);
}

TEST(DatasetTest, ToStringTruncates) {
  Dataset d(TwoColSchema(), {{1, 1}, {2, 2}, {3, 3}});
  std::string s = d.ToString(2);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace pso
