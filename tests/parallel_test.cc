// Tests for the ThreadPool / ParallelFor substrate. Written to be run
// under ThreadSanitizer (cmake -DPSO_SANITIZE=thread): every assertion
// doubles as a race detector when the schedule is adversarial.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace pso {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < kTasks) {
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ChunkingTest, BoundariesDependOnlyOnN) {
  // The determinism contract hinges on this: chunk boundaries are a pure
  // function of n, never of the pool size.
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 1000u, 100000u}) {
    size_t chunk = DefaultChunkSize(n);
    if (n == 0) continue;
    EXPECT_GE(chunk, 1u);
    EXPECT_EQ(NumChunks(n, chunk), (n + chunk - 1) / chunk);
  }
  EXPECT_EQ(NumChunks(0), 0u);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, kN, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, kN);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSerialInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 100, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  ParallelFor(nullptr, 0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops reuse the same pool. The caller participates in its own
  // loop's chunks, so a pool of ANY size (even 1) cannot deadlock.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<uint64_t>> sums(kOuter);
  for (auto& s : sums) s.store(0);
  ParallelFor(&pool, kOuter, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      ParallelFor(&pool, kInner, [&, o](size_t ib, size_t ie) {
        uint64_t local = 0;
        for (size_t i = ib; i < ie; ++i) local += i;
        sums[o].fetch_add(local);
      });
    }
  });
  const uint64_t expect = kInner * (kInner - 1) / 2;
  for (size_t o = 0; o < kOuter; ++o) EXPECT_EQ(sums[o].load(), expect);
}

TEST(ParallelForTest, PropagatesExceptionToCaller) {
  ThreadPool pool(4);
  std::atomic<int> seen{0};
  try {
    ParallelFor(&pool, 1000, [&](size_t begin, size_t end) {
      seen.fetch_add(1);
      if (begin <= 500 && 500 < end) {
        throw std::runtime_error("boom at 500");
      }
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 500");
  }
  EXPECT_GT(seen.load(), 0);
}

TEST(ParallelForTest, LowestChunkExceptionWins) {
  // When several chunks throw, the caller deterministically sees the one
  // from the lowest chunk index.
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    try {
      ParallelFor(
          &pool, 64,
          [&](size_t begin, size_t) {
            throw std::runtime_error(begin == 0 ? "first" : "later");
          },
          /*chunk_size=*/1);
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(ParallelForTest, StressManyTinyTasks) {
  // 10k tiny chunks through a small pool: exercises the queue, the chunk
  // counter, and completion signalling under contention (TSAN food).
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::atomic<uint64_t> sum{0};
  ParallelFor(
      &pool, kN,
      [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      },
      /*chunk_size=*/1);
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kN) * (kN - 1) / 2);
}

TEST(TaskGroupTest, WaitsForAllSubmittedTasks) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(group.pending(), 0u);
  // The group stays usable after a Wait.
  group.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  group.Wait();
  EXPECT_EQ(done.load(), kTasks + 1);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int order = 0;
  group.Submit([&order] { EXPECT_EQ(order++, 0); });
  group.Submit([&order] { EXPECT_EQ(order++, 1); });
  // Inline execution finished before Submit returned.
  EXPECT_EQ(order, 2);
  group.Wait();
}

TEST(TaskGroupTest, TasksMaySubmitFurtherTasks) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> done{0};
  group.Submit([&group, &done] {
    done.fetch_add(1, std::memory_order_relaxed);
    group.Submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); });
  });
  group.Wait();
  EXPECT_EQ(done.load(), 2);
}

TEST(TaskGroupTest, CountsThrowingTasksAsFailed) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("task failure"); });
  group.Submit([] {});
  group.Wait();
  EXPECT_EQ(group.failed(), 1u);
}

TEST(ParallelForTest, RepeatedRunsOnOnePool) {
  // Back-to-back loops on the same pool must not interfere.
  ThreadPool pool(3);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<int> data(257, 0);
    ParallelFor(&pool, data.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) data[i] = static_cast<int>(i);
    });
    long long total = std::accumulate(data.begin(), data.end(), 0ll);
    ASSERT_EQ(total, 257ll * 256 / 2);
  }
}

}  // namespace
}  // namespace pso
