// Unit tests for Status, Result, string utilities, and TextTable.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table.h"

namespace pso {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kInfeasible}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(StrUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "bc", "d"};
  std::string joined = Join(parts, ",");
  EXPECT_EQ(joined, "a,,bc,d");
  EXPECT_EQ(Split(joined, ','), parts);
}

TEST(StrUtilTest, SplitSingleToken) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "10000"});
  std::string rendered = t.Render();
  EXPECT_NE(rendered.find("| name "), std::string::npos);
  EXPECT_NE(rendered.find("| alpha "), std::string::npos);
  EXPECT_NE(rendered.find("| 10000 "), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, NumericRowPrecision) {
  TextTable t({"x"});
  t.AddNumericRow({0.123456}, 2);
  EXPECT_NE(t.Render().find("0.12"), std::string::npos);
}

}  // namespace
}  // namespace pso
