// Tests for the runtime lock-order verifier (-DPSO_DEADLOCK_CHECK=ON,
// common/mutex.h). Violations abort, so the negative cases are death
// tests: each asserts the witness chain names the mutexes involved and
// the acquisition sites. In builds without the verifier the whole suite
// self-skips — the `deadlock-check` CI lane (and the TSan lane) build
// with the option ON.

#include <cstdint>

#include "common/lock_rank.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "dp/budget.h"
#include "gtest/gtest.h"

namespace pso {
namespace {

#if PSO_DEADLOCK_CHECK

TEST(DeadlockCheckTest, DescendingRankAcquisitionRuns) {
  Mutex service_mu{LockRank::kService, "test.order_service"};
  Mutex budget_mu{LockRank::kBudget, "test.order_budget"};
  Mutex metrics_mu{LockRank::kMetrics, "test.order_metrics"};
  EXPECT_EQ(deadlock::HeldCount(), 0);
  {
    MutexLock service(service_mu);
    MutexLock budget(budget_mu);
    MutexLock metrics(metrics_mu);
    EXPECT_EQ(deadlock::HeldCount(), 3);
  }
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

TEST(DeadlockCheckTest, ReacquisitionAfterReleaseRuns) {
  Mutex high_mu{LockRank::kBudget, "test.seq_high"};
  Mutex low_mu{LockRank::kMetrics, "test.seq_low"};
  // Sequential (non-nested) acquisitions are order-free by definition.
  for (int i = 0; i < 3; ++i) {
    { MutexLock low(low_mu); }
    { MutexLock high(high_mu); }
  }
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

TEST(DeadlockCheckDeathTest, RankInversionDiesNamingBothMutexes) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex budget_mu{LockRank::kBudget, "test.inv_budget"};
  Mutex metrics_mu{LockRank::kMetrics, "test.inv_metrics"};
  // Acquiring budget (rank 5) under metrics (rank 1) inverts the global
  // order. The witness head line must name both mutexes and both ranks.
  EXPECT_DEATH(
      {
        MutexLock metrics(metrics_mu);
        MutexLock budget(budget_mu);
      },
      "lock-rank inversion: acquiring 'test\\.inv_budget' \\(rank budget\\) "
      "while holding 'test\\.inv_metrics' \\(rank metrics\\)");
}

TEST(DeadlockCheckDeathTest, WitnessNamesHeldAcquisitionSites) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex budget_mu{LockRank::kBudget, "test.site_budget"};
  Mutex metrics_mu{LockRank::kMetrics, "test.site_metrics"};
  // The held-lock stack in the witness carries the file:line of every
  // held acquisition — this file, since MutexLock captures its caller.
  EXPECT_DEATH(
      {
        MutexLock metrics(metrics_mu);
        MutexLock budget(budget_mu);
      },
      "held\\[0\\]: 'test\\.site_metrics' \\(rank metrics\\) acquired at "
      ".*deadlock_test\\.cc:[0-9]+");
}

TEST(DeadlockCheckDeathTest, SameRankNestingDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex first_mu{LockRank::kParallel, "test.peer_a"};
  Mutex second_mu{LockRank::kParallel, "test.peer_b"};
  // Equal ranks are unordered: nesting them is rejected, since another
  // thread could nest them the other way around.
  EXPECT_DEATH(
      {
        MutexLock first(first_mu);
        MutexLock second(second_mu);
      },
      "lock-rank inversion: acquiring 'test\\.peer_b' \\(rank parallel\\) "
      "while holding 'test\\.peer_a' \\(rank parallel\\)");
}

TEST(DeadlockCheckDeathTest, RecursiveAcquisitionDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kMetrics, "test.recursive"};
  EXPECT_DEATH(
      {
        MutexLock outer(mu);
        MutexLock inner(mu);
      },
      "recursive acquisition: 'test\\.recursive' is already held");
}

TEST(DeadlockCheckDeathTest, ObservedPairCycleDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Declared outside EXPECT_DEATH: the braced initializers hold commas,
  // which the preprocessor would split into extra macro arguments. The
  // threadsafe death-test child re-runs the whole test body, so the
  // legal-direction acquisition below is re-observed there too.
  Mutex low_mu{LockRank::kMetrics, "test.cyc_low"};
  Mutex high_mu{LockRank::kBudget, "test.cyc_high"};
  {
    // Legal direction, recorded in the global pair graph.
    MutexLock high(high_mu);
    MutexLock low(low_mu);
  }
  EXPECT_DEATH(
      {
        // TryLock skips the rank check (a failed try_lock cannot block),
        // but the graph still sees low -> high contradict high -> low.
        MutexLock low(low_mu);
        if (high_mu.TryLock()) high_mu.Unlock();
      },
      "lock-order cycle: acquiring 'test\\.cyc_high' while holding "
      "'test\\.cyc_low'");
}

TEST(DeadlockCheckTest, RealModulesRunCleanUnderVerifier) {
  // Drive the production nesting (service work -> budget ledger ->
  // metrics/log) through the real classes at several thread counts; the
  // verifier aborts the test on any ordering violation.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    dp::BudgetLedger ledger(1.0);
    ParallelFor(&pool, 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const uint64_t client = i % 8;
        Result<uint64_t> charged = ledger.Charge(client, 0.05);
        metrics::GetCounter("deadlock_test.charges").Add(1);
        if (!charged.ok()) {
          metrics::GetCounter("deadlock_test.rejections").Add(1);
        }
      }
    });
    EXPECT_EQ(ledger.TotalAnswered() + ledger.TotalRejected(), 64u);
  }
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

#else  // !PSO_DEADLOCK_CHECK

TEST(DeadlockCheckTest, VerifierCompiledOut) {
  GTEST_SKIP() << "build with -DPSO_DEADLOCK_CHECK=ON to run the "
                  "lock-order verifier tests";
}

#endif  // PSO_DEADLOCK_CHECK

}  // namespace
}  // namespace pso
