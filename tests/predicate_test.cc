// Tests for the predicate algebra and isolation semantics (Definition 2.1).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "predicate/predicate.h"

namespace pso {
namespace {

Schema TestSchema() {
  return Schema({Attribute::Integer("age", 0, 99),
                 Attribute::Categorical("sex", {"F", "M"}),
                 Attribute::Integer("zip", 0, 999)});
}

ProductDistribution UniformDist() {
  return ProductDistribution::UniformOver(TestSchema());
}

TEST(PredicateTest, Constants) {
  EXPECT_TRUE(MakeTrue()->Eval({1, 0, 2}));
  EXPECT_FALSE(MakeFalse()->Eval({1, 0, 2}));
  auto d = UniformDist();
  EXPECT_DOUBLE_EQ(*MakeTrue()->ExactWeight(d), 1.0);
  EXPECT_DOUBLE_EQ(*MakeFalse()->ExactWeight(d), 0.0);
}

TEST(PredicateTest, AttributeEquals) {
  auto p = MakeAttributeEquals(0, 42, "age");
  EXPECT_TRUE(p->Eval({42, 0, 0}));
  EXPECT_FALSE(p->Eval({41, 0, 0}));
  EXPECT_EQ(p->AttributesTouched(), std::vector<size_t>{0});
  auto d = UniformDist();
  EXPECT_DOUBLE_EQ(*p->ExactWeight(d), 0.01);
  EXPECT_NE(p->Description().find("age"), std::string::npos);
}

TEST(PredicateTest, AttributeIn) {
  auto p = MakeAttributeIn(1, {1}, "sex");
  EXPECT_TRUE(p->Eval({0, 1, 0}));
  EXPECT_FALSE(p->Eval({0, 0, 0}));
  auto d = UniformDist();
  EXPECT_DOUBLE_EQ(*p->ExactWeight(d), 0.5);
  auto p2 = MakeAttributeIn(0, {1, 2, 3}, "age");
  EXPECT_DOUBLE_EQ(*p2->ExactWeight(d), 0.03);
}

TEST(PredicateTest, AttributeRange) {
  auto p = MakeAttributeRange(0, 30, 39, "age");
  EXPECT_TRUE(p->Eval({30, 0, 0}));
  EXPECT_TRUE(p->Eval({39, 0, 0}));
  EXPECT_FALSE(p->Eval({29, 0, 0}));
  EXPECT_FALSE(p->Eval({40, 0, 0}));
  auto d = UniformDist();
  EXPECT_NEAR(*p->ExactWeight(d), 0.1, 1e-12);
}

TEST(PredicateTest, AndOrNotSemantics) {
  auto age = MakeAttributeRange(0, 30, 39, "age");
  auto sex = MakeAttributeEquals(1, 0, "sex");
  auto both = MakeAnd({age, sex});
  EXPECT_TRUE(both->Eval({35, 0, 0}));
  EXPECT_FALSE(both->Eval({35, 1, 0}));
  auto either = MakeOr({age, sex});
  EXPECT_TRUE(either->Eval({35, 1, 0}));
  EXPECT_TRUE(either->Eval({10, 0, 0}));
  EXPECT_FALSE(either->Eval({10, 1, 0}));
  auto neg = MakeNot(sex);
  EXPECT_TRUE(neg->Eval({0, 1, 0}));
  EXPECT_FALSE(neg->Eval({0, 0, 0}));
}

TEST(PredicateTest, EmptyConnectives) {
  EXPECT_TRUE(MakeAnd({})->Eval({0, 0, 0}));
  EXPECT_FALSE(MakeOr({})->Eval({0, 0, 0}));
}

TEST(PredicateTest, AndExactWeightDisjointAttrs) {
  auto d = UniformDist();
  auto p = MakeAnd({MakeAttributeRange(0, 0, 9, "age"),
                    MakeAttributeEquals(1, 0, "sex"),
                    MakeAttributeRange(2, 0, 99, "zip")});
  ASSERT_TRUE(p->ExactWeight(d).has_value());
  EXPECT_NEAR(*p->ExactWeight(d), 0.1 * 0.5 * 0.1, 1e-12);
}

TEST(PredicateTest, AndExactWeightOverlappingAttrsUnavailable) {
  auto d = UniformDist();
  // Two constraints on the same attribute are not independent.
  auto p = MakeAnd({MakeAttributeRange(0, 0, 49, "age"),
                    MakeAttributeRange(0, 40, 99, "age")});
  EXPECT_FALSE(p->ExactWeight(d).has_value());
}

TEST(PredicateTest, NotExactWeight) {
  auto d = UniformDist();
  auto p = MakeNot(MakeAttributeEquals(1, 0, "sex"));
  EXPECT_DOUBLE_EQ(*p->ExactWeight(d), 0.5);
}

TEST(PredicateTest, RecordEquals) {
  Schema s = TestSchema();
  auto p = MakeRecordEquals(s, {42, 1, 100});
  EXPECT_TRUE(p->Eval({42, 1, 100}));
  EXPECT_FALSE(p->Eval({42, 1, 101}));
  auto d = UniformDist();
  EXPECT_NEAR(*p->ExactWeight(d), 1.0 / (100.0 * 2.0 * 1000.0), 1e-15);
}

TEST(PredicateTest, HashPredicateDesignWeight) {
  Schema s = TestSchema();
  Rng rng(5);
  UniversalHash h(rng, 50);
  auto p = MakeHashPredicate(s, h, 0);
  // Monte-Carlo weight under the uniform product distribution ~ 1/50.
  auto d = UniformDist();
  Rng sample_rng(7);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (p->Eval(d.Sample(sample_rng))) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.02, 0.004);
  // No exact weight claimed.
  EXPECT_FALSE(p->ExactWeight(d).has_value());
}

TEST(PredicateTest, HashPredicateRestrictedAttrs) {
  Schema s = TestSchema();
  Rng rng(11);
  UniversalHash h(rng, 10);
  auto p = MakeHashPredicate(s, h, 3, {0, 2});
  // Only attrs 0 and 2 matter: flipping sex must not change the result.
  Record a = {42, 0, 777};
  Record b = {42, 1, 777};
  EXPECT_EQ(p->Eval(a), p->Eval(b));
}

TEST(PredicateTest, HashIntervalPredicateHalving) {
  Schema s = TestSchema();
  Rng rng(13);
  UniversalHash h(rng, 1ULL << 20);
  auto full = MakeHashIntervalPredicate(s, h, 0, 1ULL << 20);
  auto half = MakeHashIntervalPredicate(s, h, 0, 1ULL << 19);
  auto d = UniformDist();
  Rng sample_rng(17);
  int full_hits = 0;
  int half_hits = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    Record r = d.Sample(sample_rng);
    if (full->Eval(r)) ++full_hits;
    if (half->Eval(r)) ++half_hits;
  }
  EXPECT_EQ(full_hits, kTrials);  // full range matches everything
  EXPECT_NEAR(half_hits / static_cast<double>(kTrials), 0.5, 0.02);
}

TEST(IsolationTest, CountMatchesAndIsolates) {
  Schema s = TestSchema();
  Dataset x(s, {{30, 0, 1}, {35, 1, 2}, {35, 0, 3}});
  auto p30 = MakeAttributeEquals(0, 30, "age");
  auto p35 = MakeAttributeEquals(0, 35, "age");
  EXPECT_EQ(CountMatches(*p30, x), 1u);
  EXPECT_EQ(CountMatches(*p35, x), 2u);
  EXPECT_TRUE(Isolates(*p30, x));
  EXPECT_FALSE(Isolates(*p35, x));       // two matches
  EXPECT_FALSE(Isolates(*MakeFalse(), x));  // zero matches
}

TEST(IsolationTest, IsolatedIndex) {
  Schema s = TestSchema();
  Dataset x(s, {{30, 0, 1}, {35, 1, 2}});
  auto p = MakeAttributeEquals(0, 35, "age");
  auto idx = IsolatedIndex(*p, x);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(IsolatedIndex(*MakeTrue(), x).has_value());
  EXPECT_FALSE(IsolatedIndex(*MakeFalse(), x).has_value());
}

// Definition 2.1 rules out isolation by position: predicates only see
// values, so two identical records can never be separated.
TEST(IsolationTest, IdenticalRecordsCannotBeSeparated) {
  Schema s = TestSchema();
  Dataset x(s, {{30, 0, 1}, {30, 0, 1}});
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    UniversalHash h(rng, 1000);
    auto p = MakeHashPredicate(s, h, 0);
    EXPECT_EQ(p->Eval(x.record(0)), p->Eval(x.record(1)));
  }
}

}  // namespace
}  // namespace pso
