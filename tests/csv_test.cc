// Tests for CSV serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "data/csv.h"

namespace pso {
namespace {

Schema TestSchema() {
  return Schema({Attribute::Integer("age", 0, 99),
                 Attribute::Categorical("sex", {"F", "M"})});
}

TEST(CsvTest, RoundTrip) {
  Schema s = TestSchema();
  Dataset d(s, {{30, 0}, {45, 1}});
  std::string csv = DatasetToCsv(d);
  Result<Dataset> back = DatasetFromCsv(s, csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->record(0), (Record{30, 0}));
  EXPECT_EQ(back->record(1), (Record{45, 1}));
}

TEST(CsvTest, HeaderUsesAttributeNames) {
  Dataset d(TestSchema(), {{30, 0}});
  std::string csv = DatasetToCsv(d);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "age,sex");
}

TEST(CsvTest, CategoricalValuesAreLabels) {
  Dataset d(TestSchema(), {{30, 1}});
  EXPECT_NE(DatasetToCsv(d).find("30,M"), std::string::npos);
}

TEST(CsvTest, ColumnReorderingByName) {
  Schema s = TestSchema();
  Result<Dataset> d = DatasetFromCsv(s, "sex,age\nF,25\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->record(0), (Record{25, 0}));
}

TEST(CsvTest, RejectsUnknownColumn) {
  EXPECT_FALSE(DatasetFromCsv(TestSchema(), "age,height\n30,170\n").ok());
}

TEST(CsvTest, RejectsOutOfDomainValue) {
  EXPECT_FALSE(DatasetFromCsv(TestSchema(), "age,sex\n300,F\n").ok());
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(DatasetFromCsv(TestSchema(), "age,sex\n30\n").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  Result<Dataset> d = DatasetFromCsv(TestSchema(), "age,sex\n30,F\n\n31,M\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  Schema s = TestSchema();
  Dataset d(s, {{20, 1}, {21, 0}});
  std::string path = ::testing::TempDir() + "/pso_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(d, path).ok());
  Result<Dataset> back = ReadCsvFile(s, path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->record(1), (Record{21, 0}));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_FALSE(ReadCsvFile(TestSchema(), "/nonexistent/x.csv").ok());
}

TEST(CsvTest, CrlfLineEndingsParse) {
  Result<Dataset> d =
      DatasetFromCsv(TestSchema(), "age,sex\r\n30,F\r\n31,M\r\n");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 2u);
  EXPECT_EQ(d->record(0), (Record{30, 0}));
  EXPECT_EQ(d->record(1), (Record{31, 1}));
}

TEST(CsvTest, LoneCarriageReturnLineEndingsParse) {
  Result<Dataset> d = DatasetFromCsv(TestSchema(), "age,sex\r30,F\r31,M\r");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 2u);
}

TEST(CsvTest, CrlfRoundTripThroughRewrittenEndings) {
  // Serialize with LF, rewrite to CRLF (what a Windows editor does), and
  // parse back: the dataset must survive unchanged.
  Schema s = TestSchema();
  Dataset d(s, {{20, 1}, {21, 0}});
  std::string csv = DatasetToCsv(d);
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  Result<Dataset> back = DatasetFromCsv(s, crlf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->record(0), (Record{20, 1}));
  EXPECT_EQ(back->record(1), (Record{21, 0}));
}

TEST(CsvTest, QuotedCellWithCommaIsInvalidArgumentNotMisSplit) {
  // A quoted cell would shear into two cells under blind comma-splitting;
  // the parser must refuse it loudly instead.
  Result<Dataset> d =
      DatasetFromCsv(TestSchema(), "age,sex\n\"30,extra\",F\n");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(d.status().message().find("quote"), std::string::npos);
}

TEST(CsvTest, QuotedHeaderIsInvalidArgument) {
  Result<Dataset> d = DatasetFromCsv(TestSchema(), "\"age\",sex\n30,F\n");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pso
