// Tests for the legal-theorem layer (Section 2.4).

#include <gtest/gtest.h>

#include "legal/report.h"
#include "legal/verdict.h"

namespace pso::legal {
namespace {

PsoGameResult FakeGame(const std::string& mech, const std::string& adv,
                       size_t successes, size_t trials, double baseline) {
  PsoGameResult r;
  r.mechanism = mech;
  r.adversary = adv;
  r.n = 500;
  r.weight_threshold = 1.0 / 5000.0;
  r.pso_success.AddBatch(successes, trials);
  r.isolation.AddBatch(successes, trials);
  r.baseline = baseline;
  r.advantage = r.pso_success.rate() - baseline;
  return r;
}

TEST(EvidenceTest, LargeAdvantageDemonstratesFailure) {
  Evidence e = EvidenceFromGame(FakeGame("Mondrian(k=5)", "KAnonHash",
                                         /*successes=*/74, /*trials=*/200,
                                         /*baseline=*/0.09));
  EXPECT_TRUE(e.demonstrates_failure);
  EXPECT_NEAR(e.attack_rate, 0.37, 1e-9);
}

TEST(EvidenceTest, BaselineLevelSuccessDoesNot) {
  Evidence e = EvidenceFromGame(
      FakeGame("M#q", "Trivial", 18, 200, 0.09));
  EXPECT_FALSE(e.demonstrates_failure);
}

TEST(EvidenceTest, SmallSampleHighRateNeedsCiSeparation) {
  // 3/5 success looks high but the Wilson lower bound is weak.
  Evidence e = EvidenceFromGame(FakeGame("X", "A", 3, 5, 0.2));
  EXPECT_FALSE(e.demonstrates_failure);
}

TEST(ClaimTest, FailingTechnologyGetsLegalTheorem) {
  std::vector<PsoGameResult> games = {
      FakeGame("Mondrian(k=5)", "Trivial", 10, 200, 0.09),
      FakeGame("Mondrian(k=5)", "KAnonHash", 74, 200, 0.09),
  };
  LegalClaim claim = EvaluateSinglingOutClaim("k-anonymity (Mondrian)",
                                              games);
  EXPECT_EQ(claim.verdict, Verdict::kFails);
  EXPECT_NE(claim.id.find("Legal Theorem 2.1"), std::string::npos);
  EXPECT_EQ(claim.evidence.size(), 2u);
  EXPECT_NE(claim.ToString().find("FAILS"), std::string::npos);
}

TEST(ClaimTest, ResistingTechnologyNeedsFurtherAnalysis) {
  std::vector<PsoGameResult> games = {
      FakeGame("Laplace(eps=1)", "Trivial", 15, 200, 0.09),
      FakeGame("Laplace(eps=1)", "CountTuned", 12, 200, 0.09),
  };
  LegalClaim claim =
      EvaluateSinglingOutClaim("differential privacy", games);
  EXPECT_EQ(claim.verdict, Verdict::kNeedsFurtherAnalysis);
}

TEST(CorollaryTest, FailurePropagatesToAnonymizationStandard) {
  LegalClaim fails = EvaluateSinglingOutClaim(
      "k-anonymity", {FakeGame("Datafly(k=5)", "KAnonHash", 74, 200, 0.09)});
  LegalClaim corollary = DeriveAnonymizationCorollary(fails);
  EXPECT_EQ(corollary.verdict, Verdict::kFails);
  EXPECT_NE(corollary.id.find("Legal Corollary 2.1"), std::string::npos);
  EXPECT_NE(corollary.statement.find("does not meet"), std::string::npos);
}

TEST(CorollaryTest, ResistancePropagatesAsOpen) {
  LegalClaim open = EvaluateSinglingOutClaim(
      "differential privacy",
      {FakeGame("Laplace(eps=1)", "Trivial", 10, 200, 0.09)});
  LegalClaim corollary = DeriveAnonymizationCorollary(open);
  EXPECT_EQ(corollary.verdict, Verdict::kNeedsFurtherAnalysis);
  EXPECT_NE(corollary.statement.find("further"), std::string::npos);
}

TEST(ReportTest, RenderIncludesAllClaims) {
  LegalReport report;
  report.AddClaim(EvaluateSinglingOutClaim(
      "k-anonymity", {FakeGame("Datafly", "KAnonHash", 74, 200, 0.09)}));
  report.AddClaim(EvaluateSinglingOutClaim(
      "differential privacy",
      {FakeGame("Laplace", "Trivial", 10, 200, 0.09)}));
  std::string text = report.Render();
  EXPECT_NE(text.find("k-anonymity"), std::string::npos);
  EXPECT_NE(text.find("differential privacy"), std::string::npos);
  EXPECT_EQ(report.claims().size(), 2u);
}

// Section 2.4.3: the Working Party's table vs ours. Their "No" for
// k-anonymity conflicts with our demonstrated attack; their "may not" for
// DP conflicts with no attack existing.
TEST(Article29Test, ConflictsMatchThePaper) {
  auto rows = LegalReport::Article29Comparison({
      {"k-anonymity", true},
      {"l-diversity", true},
      {"differential privacy", false},
  });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].wp_opinion, "No");
  EXPECT_TRUE(rows[0].conflict);
  EXPECT_EQ(rows[1].wp_opinion, "No");
  EXPECT_TRUE(rows[1].conflict);
  EXPECT_EQ(rows[2].wp_opinion, "May not");
  EXPECT_TRUE(rows[2].conflict);
  std::string table = LegalReport::RenderArticle29Table(rows);
  EXPECT_NE(table.find("k-anonymity"), std::string::npos);
  EXPECT_NE(table.find("May not"), std::string::npos);
}

TEST(Article29Test, AgreementIsPossible) {
  // If an attack existed on DP, the WP's hedge would be vindicated.
  auto rows = LegalReport::Article29Comparison({
      {"differential privacy", true},
  });
  EXPECT_FALSE(rows[0].conflict);
}

TEST(VerdictNameTest, AllNamed) {
  EXPECT_STREQ(VerdictName(Verdict::kSatisfies), "SATISFIES");
  EXPECT_STREQ(VerdictName(Verdict::kFails), "FAILS");
  EXPECT_STREQ(VerdictName(Verdict::kNeedsFurtherAnalysis),
               "NEEDS FURTHER ANALYSIS");
}

}  // namespace
}  // namespace pso::legal
