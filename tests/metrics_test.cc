// Tests for the metrics registry: counter/timer/span semantics,
// concurrent increments under ParallelFor (the TSan `parallel` lane runs
// this suite), and merge determinism at 1 vs N threads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"

namespace pso {
namespace {

TEST(MetricsTest, CounterAddAndReset) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, TimerAccumulatesIntervals) {
  metrics::Timer t;
  t.Record(0.25);
  t.Record(0.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_NEAR(t.seconds(), 0.75, 1e-6);
  t.Reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(MetricsTest, ScopedSpanRecordsOneInterval) {
  metrics::Timer t;
  {
    metrics::ScopedSpan span(t);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(MetricsTest, RegistryHandlesAreStableAndNamed) {
  metrics::Registry reg;
  metrics::Counter& a = reg.GetCounter("a");
  metrics::Counter& b = reg.GetCounter("b");
  b.Add(7);
  // Same name => same handle, even after more insertions.
  EXPECT_EQ(&a, &reg.GetCounter("a"));
  a.Add(3);
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("a"), 3u);
  EXPECT_EQ(snap.counters.at("b"), 7u);
}

TEST(MetricsTest, GaugesOverwrite) {
  metrics::Registry reg;
  reg.SetGauge("g", 1.0);
  reg.SetGauge("g", 2.5);
  EXPECT_EQ(reg.TakeSnapshot().gauges.at("g"), 2.5);
}

TEST(MetricsTest, ResetAllZeroesButKeepsHandles) {
  metrics::Registry reg;
  metrics::Counter& c = reg.GetCounter("c");
  c.Add(5);
  reg.GetTimer("t").Record(1.0);
  reg.SetGauge("g", 9.0);
  reg.ResetAll();
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.timers.at("t").count, 0u);
  EXPECT_TRUE(snap.gauges.empty());
  c.Add(1);  // handle still valid
  EXPECT_EQ(reg.TakeSnapshot().counters.at("c"), 1u);
}

TEST(MetricsTest, MergeFromAddsCountersAndTimersOverwritesGauges) {
  metrics::Registry dst;
  dst.GetCounter("shared").Add(10);
  dst.SetGauge("g", 1.0);

  metrics::Registry src;
  src.GetCounter("shared").Add(5);
  src.GetCounter("fresh").Add(2);
  src.GetTimer("t").Record(0.5);
  src.GetTimer("t").Record(0.25);
  src.SetGauge("g", 3.0);

  dst.MergeFrom(src.TakeSnapshot());
  metrics::Snapshot snap = dst.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("shared"), 15u);
  EXPECT_EQ(snap.counters.at("fresh"), 2u);
  EXPECT_EQ(snap.timers.at("t").count, 2u);
  EXPECT_NEAR(snap.timers.at("t").seconds, 0.75, 1e-6);
  EXPECT_EQ(snap.gauges.at("g"), 3.0);
}

// Concurrent increments: every ParallelFor worker hammers the same
// counters through the registry. Run under PSO_SANITIZE=thread to prove
// the registry race-free; the totals check exactness (no lost updates).
TEST(MetricsTest, ConcurrentIncrementsUnderParallelForAreExact) {
  metrics::Registry reg;
  metrics::Counter& items = reg.GetCounter("items");
  metrics::Timer& spans = reg.GetTimer("spans");
  const size_t n = 100000;
  ThreadPool pool(4);
  ParallelFor(&pool, n, [&](size_t begin, size_t end) {
    metrics::ScopedSpan span(spans);
    // Mix per-item increments with one bulk Add per chunk.
    for (size_t i = begin; i < end; ++i) reg.GetCounter("per_item").Add(1);
    items.Add(end - begin);
  });
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("items"), n);
  EXPECT_EQ(snap.counters.at("per_item"), n);
  EXPECT_EQ(snap.timers.at("spans").count, NumChunks(n));
}

// Merge determinism: worker-local registries merged in chunk order must
// produce the same counter totals no matter how many threads ran, and
// the same totals as direct shared-registry accumulation.
TEST(MetricsTest, MergeDeterminismOneVsManyThreads) {
  const size_t n = 20000;
  auto run_at = [&](size_t threads) {
    ThreadPool pool(threads);
    const size_t chunk = DefaultChunkSize(n);
    // One local registry per chunk, merged in chunk-index order.
    std::vector<metrics::Registry> locals(NumChunks(n, chunk));
    ParallelFor(
        &pool, n,
        [&](size_t begin, size_t end) {
          metrics::Registry& local = locals[begin / chunk];
          for (size_t i = begin; i < end; ++i) {
            local.GetCounter("events").Add(i % 7 == 0 ? 3 : 1);
          }
          local.GetTimer("chunk").Record(0.001);
        },
        chunk);
    metrics::Registry merged;
    for (metrics::Registry& local : locals) {
      merged.MergeFrom(local.TakeSnapshot());
    }
    return merged.TakeSnapshot();
  };

  metrics::Snapshot at1 = run_at(1);
  metrics::Snapshot at4 = run_at(4);
  EXPECT_EQ(at1.counters.at("events"), at4.counters.at("events"));
  EXPECT_EQ(at1.timers.at("chunk").count, at4.timers.at("chunk").count);
  EXPECT_EQ(metrics::SnapshotToJson(at1).find("\"events\""),
            metrics::SnapshotToJson(at4).find("\"events\""));
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(metrics::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(metrics::JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(MetricsTest, SnapshotToJsonShape) {
  metrics::Registry reg;
  reg.GetCounter("lp.pivots").Add(12);
  reg.GetTimer("lp.solve").Record(0.5);
  reg.SetGauge("pool.imbalance", 2.0);
  std::string json = metrics::SnapshotToJson(reg.TakeSnapshot());
  EXPECT_NE(json.find("\"counters\": {\"lp.pivots\": 12}"),
            std::string::npos);
  EXPECT_NE(json.find("\"lp.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.imbalance\""), std::string::npos);
}

TEST(MetricsTest, SnapshotToTextListsEverySection) {
  metrics::Registry reg;
  reg.GetCounter("c").Add(1);
  reg.GetTimer("t").Record(0.1);
  reg.SetGauge("g", 4.0);
  std::string text = metrics::SnapshotToText(reg.TakeSnapshot());
  EXPECT_NE(text.find("counters:"), std::string::npos);
  EXPECT_NE(text.find("timers:"), std::string::npos);
  EXPECT_NE(text.find("gauges:"), std::string::npos);
}

TEST(MetricsTest, PoolGaugesPublishWorkerDistribution) {
  {
    ThreadPool pool(2);
    ParallelFor(&pool, 10000, [](size_t, size_t) {});
    RecordPoolGauges(&pool);
  }
  metrics::Snapshot snap = metrics::Registry::Global().TakeSnapshot();
  ASSERT_TRUE(snap.gauges.count("pool.workers"));
  EXPECT_EQ(snap.gauges.at("pool.workers"), 2.0);
  EXPECT_GE(snap.gauges.at("pool.tasks_max"),
            snap.gauges.at("pool.tasks_min"));
}

}  // namespace
}  // namespace pso
