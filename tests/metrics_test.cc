// Tests for the metrics registry: counter/timer/span semantics,
// concurrent increments under ParallelFor (the TSan `parallel` lane runs
// this suite), merge determinism at 1 vs N threads, the log-bucketed
// histogram (fixed boundaries, exact shard merges, quantile brackets),
// and the JSON / Prometheus renderings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "proptest.h"

namespace pso {
namespace {

TEST(MetricsTest, CounterAddAndReset) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, TimerAccumulatesIntervals) {
  metrics::Timer t;
  t.Record(0.25);
  t.Record(0.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_NEAR(t.seconds(), 0.75, 1e-6);
  t.Reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(MetricsTest, ScopedSpanRecordsOneInterval) {
  metrics::Timer t;
  {
    metrics::ScopedSpan span(t);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(MetricsTest, RegistryHandlesAreStableAndNamed) {
  metrics::Registry reg;
  metrics::Counter& a = reg.GetCounter("a");
  metrics::Counter& b = reg.GetCounter("b");
  b.Add(7);
  // Same name => same handle, even after more insertions.
  EXPECT_EQ(&a, &reg.GetCounter("a"));
  a.Add(3);
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("a"), 3u);
  EXPECT_EQ(snap.counters.at("b"), 7u);
}

TEST(MetricsTest, GaugesOverwrite) {
  metrics::Registry reg;
  reg.SetGauge("g", 1.0);
  reg.SetGauge("g", 2.5);
  EXPECT_EQ(reg.TakeSnapshot().gauges.at("g"), 2.5);
}

TEST(MetricsTest, ResetAllZeroesButKeepsHandles) {
  metrics::Registry reg;
  metrics::Counter& c = reg.GetCounter("c");
  c.Add(5);
  reg.GetTimer("t").Record(1.0);
  reg.SetGauge("g", 9.0);
  reg.ResetAll();
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.timers.at("t").count, 0u);
  EXPECT_TRUE(snap.gauges.empty());
  c.Add(1);  // handle still valid
  EXPECT_EQ(reg.TakeSnapshot().counters.at("c"), 1u);
}

TEST(MetricsTest, MergeFromAddsCountersAndTimersOverwritesGauges) {
  metrics::Registry dst;
  dst.GetCounter("shared").Add(10);
  dst.SetGauge("g", 1.0);

  metrics::Registry src;
  src.GetCounter("shared").Add(5);
  src.GetCounter("fresh").Add(2);
  src.GetTimer("t").Record(0.5);
  src.GetTimer("t").Record(0.25);
  src.SetGauge("g", 3.0);

  dst.MergeFrom(src.TakeSnapshot());
  metrics::Snapshot snap = dst.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("shared"), 15u);
  EXPECT_EQ(snap.counters.at("fresh"), 2u);
  EXPECT_EQ(snap.timers.at("t").count, 2u);
  EXPECT_NEAR(snap.timers.at("t").seconds, 0.75, 1e-6);
  EXPECT_EQ(snap.gauges.at("g"), 3.0);
}

// Concurrent increments: every ParallelFor worker hammers the same
// counters through the registry. Run under PSO_SANITIZE=thread to prove
// the registry race-free; the totals check exactness (no lost updates).
TEST(MetricsTest, ConcurrentIncrementsUnderParallelForAreExact) {
  metrics::Registry reg;
  metrics::Counter& items = reg.GetCounter("items");
  metrics::Timer& spans = reg.GetTimer("spans");
  const size_t n = 100000;
  ThreadPool pool(4);
  ParallelFor(&pool, n, [&](size_t begin, size_t end) {
    metrics::ScopedSpan span(spans);
    // Mix per-item increments with one bulk Add per chunk.
    for (size_t i = begin; i < end; ++i) reg.GetCounter("per_item").Add(1);
    items.Add(end - begin);
  });
  metrics::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("items"), n);
  EXPECT_EQ(snap.counters.at("per_item"), n);
  EXPECT_EQ(snap.timers.at("spans").count, NumChunks(n));
}

// Merge determinism: worker-local registries merged in chunk order must
// produce the same counter totals no matter how many threads ran, and
// the same totals as direct shared-registry accumulation.
TEST(MetricsTest, MergeDeterminismOneVsManyThreads) {
  const size_t n = 20000;
  auto run_at = [&](size_t threads) {
    ThreadPool pool(threads);
    const size_t chunk = DefaultChunkSize(n);
    // One local registry per chunk, merged in chunk-index order.
    std::vector<metrics::Registry> locals(NumChunks(n, chunk));
    ParallelFor(
        &pool, n,
        [&](size_t begin, size_t end) {
          metrics::Registry& local = locals[begin / chunk];
          for (size_t i = begin; i < end; ++i) {
            local.GetCounter("events").Add(i % 7 == 0 ? 3 : 1);
          }
          local.GetTimer("chunk").Record(0.001);
        },
        chunk);
    metrics::Registry merged;
    for (metrics::Registry& local : locals) {
      merged.MergeFrom(local.TakeSnapshot());
    }
    return merged.TakeSnapshot();
  };

  metrics::Snapshot at1 = run_at(1);
  metrics::Snapshot at4 = run_at(4);
  EXPECT_EQ(at1.counters.at("events"), at4.counters.at("events"));
  EXPECT_EQ(at1.timers.at("chunk").count, at4.timers.at("chunk").count);
  EXPECT_EQ(metrics::SnapshotToJson(at1).find("\"events\""),
            metrics::SnapshotToJson(at4).find("\"events\""));
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(metrics::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(metrics::JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(MetricsTest, SnapshotToJsonShape) {
  metrics::Registry reg;
  reg.GetCounter("lp.pivots").Add(12);
  reg.GetTimer("lp.solve").Record(0.5);
  reg.SetGauge("pool.imbalance", 2.0);
  std::string json = metrics::SnapshotToJson(reg.TakeSnapshot());
  EXPECT_NE(json.find("\"counters\": {\"lp.pivots\": 12}"),
            std::string::npos);
  EXPECT_NE(json.find("\"lp.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.imbalance\""), std::string::npos);
}

TEST(MetricsTest, SnapshotToTextListsEverySection) {
  metrics::Registry reg;
  reg.GetCounter("c").Add(1);
  reg.GetTimer("t").Record(0.1);
  reg.SetGauge("g", 4.0);
  std::string text = metrics::SnapshotToText(reg.TakeSnapshot());
  EXPECT_NE(text.find("counters:"), std::string::npos);
  EXPECT_NE(text.find("timers:"), std::string::npos);
  EXPECT_NE(text.find("gauges:"), std::string::npos);
}

TEST(HistogramTest, RecordAndAccessors) {
  metrics::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.Record(0.25);
  h.Record(0.5);
  h.Record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 2.75, 1e-9);
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_fp(), 0u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreFixedAndConsistent) {
  using H = metrics::Histogram;
  // Exact powers of two start their octave: the value IS the bucket's
  // lower bound.
  for (int e : {-12, -3, 0, 5, 20}) {
    const double v = std::ldexp(1.0, e);
    const int idx = H::BucketIndex(v);
    EXPECT_EQ(H::BucketLowerBound(idx), v) << "e=" << e;
  }
  // Every sampled value lands in a bucket that brackets it.
  for (double v : {1e-9, 3.7e-6, 0.001, 0.42, 1.0, 1.5, 777.25, 9.9e8}) {
    const int idx = H::BucketIndex(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, H::kNumBuckets - 1) << v;
    EXPECT_LE(H::BucketLowerBound(idx), v) << v;
    EXPECT_LT(v, H::BucketUpperBound(idx)) << v;
  }
  // Boundaries tile: bucket i's upper bound is bucket i+1's lower bound.
  for (int i = 1; i < H::kNumBuckets - 2; ++i) {
    EXPECT_EQ(H::BucketUpperBound(i), H::BucketLowerBound(i + 1)) << i;
  }
}

TEST(HistogramTest, UnderOverflowAndNonFiniteLandInEdgeBuckets) {
  using H = metrics::Histogram;
  EXPECT_EQ(H::BucketIndex(0.0), 0);
  EXPECT_EQ(H::BucketIndex(-1.0), 0);
  EXPECT_EQ(H::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(H::BucketIndex(std::ldexp(1.0, H::kMinExponent - 1)), 0);
  EXPECT_EQ(H::BucketIndex(std::ldexp(1.0, H::kMaxExponent)),
            H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::infinity()),
            H::kNumBuckets - 1);

  metrics::Histogram h;
  h.Record(-3.0);
  h.Record(0.0);
  h.Record(std::nan(""));
  h.Record(1.0);
  EXPECT_EQ(h.count(), 4u);           // every Record counts
  EXPECT_NEAR(h.sum(), 1.0, 1e-9);    // only positive finite values sum
  EXPECT_EQ(h.min(), -3.0);           // NaN skipped, negatives tracked
  EXPECT_EQ(h.max(), 1.0);
}

// The tentpole determinism claim: merging N per-shard histograms is
// bit-identical to recording every value into one histogram — the whole
// rendered snapshot matches, buckets, fixed-point sum, min/max and all.
TEST(HistogramTest, MergeOfShardsIsBitIdenticalToSingleRecording) {
  const size_t n = 10000;
  auto value_at = [](size_t i) {
    // Deterministic spread over several octaves, incl. edge cases.
    if (i % 97 == 0) return 0.0;
    return 1e-6 * static_cast<double>((i * 2654435761u) % 1000003);
  };

  metrics::Registry single;
  metrics::Histogram& all = single.GetHistogram("lat");
  for (size_t i = 0; i < n; ++i) all.Record(value_at(i));

  const size_t kShards = 8;
  std::vector<metrics::Registry> shards(kShards);
  for (size_t i = 0; i < n; ++i) {
    shards[i % kShards].GetHistogram("lat").Record(value_at(i));
  }
  metrics::Registry merged;
  for (metrics::Registry& shard : shards) {
    merged.MergeFrom(shard.TakeSnapshot());
  }

  EXPECT_EQ(metrics::SnapshotToJson(single.TakeSnapshot()),
            metrics::SnapshotToJson(merged.TakeSnapshot()));
}

// Concurrent recording into one shared histogram: run under
// PSO_SANITIZE=thread (the `parallel` ctest lane) to prove the CAS
// min/max and atomic tallies race-free; the totals check exactness.
TEST(HistogramTest, ConcurrentRecordingIsExact) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.GetHistogram("lat");
  const size_t n = 100000;
  ThreadPool pool(4);
  ParallelFor(&pool, n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      h.Record(1e-6 * static_cast<double>(i % 1024 + 1));
    }
  });
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.min(), 1e-6);
  EXPECT_EQ(h.max(), 1024e-6);
  uint64_t tally = 0;
  const metrics::Snapshot snap = reg.TakeSnapshot();
  for (const auto& [idx, c] : snap.histograms.at("lat").buckets) tally += c;
  EXPECT_EQ(tally, n);
}

// Merge determinism at 1 vs N threads with worker-local registries —
// the histogram analogue of MergeDeterminismOneVsManyThreads, gated on
// the full JSON rendering (bucket tallies, sum_fp, min, max, quantiles).
TEST(HistogramTest, OneVsManyThreadsBitIdentical) {
  const size_t n = 20000;
  auto run_at = [&](size_t threads) {
    ThreadPool pool(threads);
    const size_t chunk = DefaultChunkSize(n);
    std::vector<metrics::Registry> locals(NumChunks(n, chunk));
    ParallelFor(
        &pool, n,
        [&](size_t begin, size_t end) {
          metrics::Histogram& h =
              locals[begin / chunk].GetHistogram("work");
          for (size_t i = begin; i < end; ++i) {
            h.Record(0.5 + static_cast<double>(i % 331) / 256.0);
          }
        },
        chunk);
    metrics::Registry merged;
    for (metrics::Registry& local : locals) {
      merged.MergeFrom(local.TakeSnapshot());
    }
    return metrics::SnapshotToJson(merged.TakeSnapshot());
  };
  EXPECT_EQ(run_at(1), run_at(4));
}

// Quantile property: the estimate never under-reports (it is an upper
// bound of the true empirical quantile) and overshoots by at most one
// sub-bucket's relative width (12.5%), the histogram's resolution bound.
TEST(HistogramTest, QuantileEstimateBracketsTrueQuantile) {
  proptest::Config cfg{.master_seed = 0x4157, .iterations = 60,
                       .max_scale = 2048};
  EXPECT_TRUE(proptest::ForAll<std::vector<double>>(
      cfg,
      [](Rng& rng, size_t scale) {
        std::vector<double> values;
        const size_t n = 2 + static_cast<size_t>(rng.UniformInt(
                                 1, static_cast<int64_t>(scale) + 1));
        values.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          // Positive, spanning ~9 octaves — well inside the bucketed
          // range so edge buckets don't blunt the resolution bound.
          values.push_back(std::ldexp(1.0 + rng.UniformDouble(),
                                      static_cast<int>(rng.UniformInt(-5, 4))));
        }
        return values;
      },
      [](const std::vector<double>& values) -> std::string {
        metrics::Registry reg;
        metrics::Histogram& h = reg.GetHistogram("q");
        for (double v : values) h.Record(v);
        const metrics::Snapshot::HistogramValue hv =
            reg.TakeSnapshot().histograms.at("q");
        std::vector<double> sorted = values;
        std::sort(sorted.begin(), sorted.end());
        for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
          const size_t rank = std::max<size_t>(
              1, static_cast<size_t>(
                     std::ceil(q * static_cast<double>(sorted.size()))));
          const double truth = sorted[rank - 1];
          const double est = hv.ValueAtQuantile(q);
          const double bound =
              1.0 + 1.0 / metrics::Histogram::kSubBuckets + 1e-12;
          if (est < truth || est > truth * bound) {
            return StrFormat(
                "q=%.3f: estimate %.9g outside [truth, truth*%.4f] "
                "(truth %.9g, n=%zu)",
                q, est, bound, truth, sorted.size());
          }
        }
        return "";
      }));
}

// Satellite regression: hostile metric names (quotes, backslashes,
// control characters) and non-finite values must not corrupt the JSON
// document.
TEST(MetricsTest, SnapshotToJsonEscapesHostileNamesAndNonFinite) {
  metrics::Registry reg;
  const std::string hostile = "bad\"name\\with\nnewline";
  reg.GetCounter(hostile).Add(1);
  reg.SetGauge("inf_gauge", std::numeric_limits<double>::infinity());
  reg.SetGauge("nan_gauge", std::nan(""));
  reg.GetHistogram("h").Record(0.5);
  const std::string json = metrics::SnapshotToJson(reg.TakeSnapshot());
  EXPECT_NE(json.find("\"bad\\\"name\\\\with\\nnewline\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"inf_gauge\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nan_gauge\": null"), std::string::npos) << json;
  // No raw quote/backslash/newline from the name survives unescaped,
  // and no inf/nan literal leaks into the document.
  EXPECT_EQ(json.find("bad\"name"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find("inf"), json.find("inf_gauge"));
  EXPECT_EQ(json.find("nan"), json.find("nan_gauge"));
}

TEST(MetricsTest, SnapshotToTextIncludesHistograms) {
  metrics::Registry reg;
  reg.GetHistogram("lat").Record(0.25);
  const std::string text = metrics::SnapshotToText(reg.TakeSnapshot());
  EXPECT_NE(text.find("histograms:"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

// Promtool-style validation: every non-comment line must be
// `name{labels} value`, counters end in _total, histogram bucket series
// are cumulative and end with le="+Inf" == _count.
TEST(MetricsTest, ExpositionToPromParses) {
  metrics::Registry reg;
  reg.GetCounter("sat.conflicts").Add(42);
  reg.SetGauge("pool.workers", 4.0);
  reg.GetTimer("lp.solve").Record(0.5);
  metrics::Histogram& h = reg.GetHistogram("lp.solve");
  h.Record(0.001);
  h.Record(0.002);
  h.Record(0.25);
  const std::string prom =
      metrics::ExpositionToProm(reg.TakeSnapshot());

  const std::regex help_re(R"(^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  const std::regex type_re(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram)$)");
  const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (NaN|[+-]?Inf|[0-9.eE+-]+)$)");

  size_t lines = 0;
  uint64_t last_cum = 0;
  uint64_t inf_bucket = 0;
  std::set<std::string> typed_names;
  std::istringstream in(prom);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    if (line.rfind("# HELP", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, help_re)) << line;
    } else if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re)) << line;
      // A metric may be declared once; a timer + same-named histogram
      // must not both publish (scrapers reject conflicting TYPEs).
      const std::string declared =
          line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(typed_names.insert(declared).second)
          << "duplicate TYPE for " << declared;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
    }
    if (line.rfind("lp_solve_seconds_bucket{le=", 0) == 0) {
      const uint64_t cum =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(cum, last_cum) << "buckets must be cumulative: " << line;
      last_cum = cum;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = cum;
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_NE(prom.find("sat_conflicts_total 42"), std::string::npos) << prom;
  EXPECT_NE(prom.find("pool_workers 4"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lp_solve_seconds_count 3"), std::string::npos) << prom;
  EXPECT_EQ(inf_bucket, 3u) << "le=\"+Inf\" must equal _count";
}

TEST(MetricsTest, PoolGaugesPublishWorkerDistribution) {
  {
    ThreadPool pool(2);
    ParallelFor(&pool, 10000, [](size_t, size_t) {});
    RecordPoolGauges(&pool);
  }
  metrics::Snapshot snap = metrics::Registry::Global().TakeSnapshot();
  ASSERT_TRUE(snap.gauges.count("pool.workers"));
  EXPECT_EQ(snap.gauges.at("pool.workers"), 2.0);
  EXPECT_GE(snap.gauges.at("pool.tasks_max"),
            snap.gauges.at("pool.tasks_min"));
}

}  // namespace
}  // namespace pso
