#include "common/str_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pso {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "ab"), "x=3 y=1.50 s=ab");
  EXPECT_EQ(StrFormat("%zu/%zu", size_t{2}, size_t{10}), "2/10");
}

TEST(StrFormatTest, EmptyAndLongOutputs) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  std::string big(500, 'q');
  EXPECT_EQ(StrFormat("%s!", big.c_str()), big + "!");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"", ""}, "-"), "-");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("trailing,", ','),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(SplitJoinTest, JoinInvertsSplit) {
  const std::string cases[] = {"", "a", "a,b", ",,", "x,,y,"};
  for (const std::string& s : cases) {
    EXPECT_EQ(Join(Split(s, ','), ","), s) << "input: \"" << s << "\"";
  }
}

TEST(TrimTest, StripsAsciiWhitespaceOnly) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(" \t\r\n a b \n"), "a b");
  EXPECT_EQ(Trim("inner  kept"), "inner  kept");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(StartsWith("", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xabc", "abc"));
}

}  // namespace
}  // namespace pso
