// Tests for generalization hierarchies and the generalized-dataset view.

#include <gtest/gtest.h>

#include "kanon/generalized.h"
#include "kanon/hierarchy.h"

namespace pso::kanon {
namespace {

Schema TestSchema() {
  return Schema({Attribute::Integer("age", 0, 99),
                 Attribute::Categorical("sex", {"F", "M"}),
                 Attribute::Integer("zip", 0, 99)});
}

TEST(GenCellTest, ContainsAndWidth) {
  GenCell c{30, 39};
  EXPECT_TRUE(c.Contains(30));
  EXPECT_TRUE(c.Contains(39));
  EXPECT_FALSE(c.Contains(40));
  EXPECT_EQ(c.Width(), 10);
  EXPECT_EQ(c, (GenCell{30, 39}));
}

TEST(ValueHierarchyTest, IntervalsGeneralize) {
  Attribute age = Attribute::Integer("age", 0, 99);
  ValueHierarchy h = ValueHierarchy::Intervals(age, {1, 5, 25});
  // Appends the full-domain level automatically: 1, 5, 25, 100.
  EXPECT_EQ(h.NumLevels(), 4u);
  EXPECT_EQ(h.Generalize(42, 0), (GenCell{42, 42}));
  EXPECT_EQ(h.Generalize(42, 1), (GenCell{40, 44}));
  EXPECT_EQ(h.Generalize(42, 2), (GenCell{25, 49}));
  EXPECT_EQ(h.Generalize(42, 3), (GenCell{0, 99}));
}

TEST(ValueHierarchyTest, LevelsNest) {
  Attribute age = Attribute::Integer("age", 0, 99);
  ValueHierarchy h = ValueHierarchy::Intervals(age, {1, 2, 10, 50});
  for (int64_t v = 0; v <= 99; v += 7) {
    for (size_t l = 0; l + 1 < h.NumLevels(); ++l) {
      GenCell fine = h.Generalize(v, l);
      GenCell coarse = h.Generalize(v, l + 1);
      EXPECT_LE(coarse.lo, fine.lo);
      EXPECT_GE(coarse.hi, fine.hi);
    }
  }
}

TEST(ValueHierarchyTest, NumCells) {
  Attribute age = Attribute::Integer("age", 0, 99);
  ValueHierarchy h = ValueHierarchy::Intervals(age, {1, 5});
  EXPECT_EQ(h.NumCells(0), 100);
  EXPECT_EQ(h.NumCells(1), 20);
  EXPECT_EQ(h.NumCells(2), 1);
}

TEST(ValueHierarchyTest, NonAlignedDomain) {
  Attribute a = Attribute::Integer("x", 10, 22);  // 13 values
  ValueHierarchy h = ValueHierarchy::Intervals(a, {1, 5});
  EXPECT_EQ(h.Generalize(10, 1), (GenCell{10, 14}));
  EXPECT_EQ(h.Generalize(22, 1), (GenCell{20, 22}));  // clipped at max
  EXPECT_EQ(h.NumCells(1), 3);
}

TEST(ValueHierarchyTest, IdentityOrSuppress) {
  Attribute sex = Attribute::Categorical("sex", {"F", "M"});
  ValueHierarchy h = ValueHierarchy::IdentityOrSuppress(sex);
  EXPECT_EQ(h.NumLevels(), 2u);
  EXPECT_EQ(h.Generalize(1, 0), (GenCell{1, 1}));
  EXPECT_EQ(h.Generalize(1, 1), (GenCell{0, 1}));
}

TEST(ValueHierarchyTest, TaxonomyLabels) {
  Attribute disease =
      Attribute::Categorical("disease", {"COVID", "FLU", "CF", "Asthma"});
  ValueHierarchy h = ValueHierarchy::Intervals(disease, {1, 2});
  h.SetLevelLabels(1, {"VIRAL", "PULM"});
  EXPECT_EQ(h.CellLabel(0, 1), "VIRAL");
  EXPECT_EQ(h.CellLabel(1, 1), "VIRAL");
  EXPECT_EQ(h.CellLabel(2, 1), "PULM");
  EXPECT_EQ(h.CellLabel(3, 1), "PULM");
  EXPECT_EQ(h.CellLabel(2, 0), "");  // unlabelled level
}

TEST(HierarchySetTest, CellToStringUsesTaxonomyLabels) {
  Schema s({Attribute::Categorical("disease",
                                   {"COVID", "FLU", "CF", "Asthma"})});
  ValueHierarchy h = ValueHierarchy::Intervals(s.attribute(0), {1, 2});
  h.SetLevelLabels(1, {"VIRAL", "PULM"});
  HierarchySet hs(s, {std::move(h)});
  EXPECT_EQ(hs.CellToString(0, GenCell{2, 3}), "PULM");
  EXPECT_EQ(hs.CellToString(0, GenCell{0, 1}), "VIRAL");
  EXPECT_EQ(hs.CellToString(0, GenCell{0, 0}), "COVID");
  EXPECT_EQ(hs.CellToString(0, GenCell{0, 3}), "*");
}

TEST(HierarchySetTest, DefaultsCoverSchema) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  EXPECT_EQ(hs.NumAttributes(), 3u);
  for (size_t a = 0; a < 3; ++a) {
    EXPECT_GE(hs.hierarchy(a).NumLevels(), 2u);
  }
}

TEST(HierarchySetTest, CellToString) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  EXPECT_EQ(hs.CellToString(0, GenCell{42, 42}), "42");
  EXPECT_EQ(hs.CellToString(0, GenCell{40, 49}), "40-49");
  EXPECT_EQ(hs.CellToString(0, GenCell{0, 99}), "*");
  EXPECT_EQ(hs.CellToString(1, GenCell{0, 0}), "F");
  EXPECT_EQ(hs.CellToString(1, GenCell{0, 1}), "*");
}

TEST(HierarchySetTest, CellsPredicateMatchesCover) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  std::vector<GenCell> cells = {{30, 39}, {0, 0}, {0, 99}};
  auto p = hs.CellsPredicate(cells);
  EXPECT_TRUE(p->Eval({35, 0, 50}));
  EXPECT_FALSE(p->Eval({35, 1, 50}));
  EXPECT_FALSE(p->Eval({40, 0, 50}));
}

TEST(GeneralizedDatasetTest, CoversAndPredicate) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  GeneralizedDataset gds{hs};
  gds.Append({{30, 39}, {0, 0}, {10, 19}});
  EXPECT_TRUE(gds.Covers(0, {31, 0, 15}));
  EXPECT_FALSE(gds.Covers(0, {31, 1, 15}));
  auto p = gds.RowPredicate(0);
  EXPECT_TRUE(p->Eval({31, 0, 15}));
}

TEST(GeneralizedDatasetTest, EquivalenceClasses) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  GeneralizedDataset gds{hs};
  gds.Append({{30, 39}, {0, 0}, {10, 19}});
  gds.Append({{30, 39}, {0, 0}, {10, 19}});
  gds.Append({{40, 49}, {0, 0}, {10, 19}});
  auto classes = gds.EquivalenceClasses();
  EXPECT_EQ(classes.size(), 2u);
}

TEST(GeneralizedDatasetTest, IsKAnonymousOverQi) {
  Schema s = TestSchema();
  HierarchySet hs = HierarchySet::Defaults(s);
  GeneralizedDataset gds{hs};
  gds.Append({{30, 39}, {0, 0}, {5, 5}});
  gds.Append({{30, 39}, {0, 0}, {7, 7}});
  // Over QI {age, sex} the two rows share a class of size 2.
  EXPECT_TRUE(IsKAnonymous(gds, 2, {0, 1}));
  // Over all attributes the exact zips split them.
  EXPECT_FALSE(IsKAnonymous(gds, 2));
  EXPECT_FALSE(IsKAnonymous(gds, 3, {0, 1}));
}

}  // namespace
}  // namespace pso::kanon
