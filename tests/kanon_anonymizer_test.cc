// Tests for the Datafly and Mondrian anonymizers, the paper's Section 1.1
// toy example, and the l-diversity / t-closeness checks and metrics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kanon/checks.h"
#include "kanon/datafly.h"
#include "kanon/metrics.h"
#include "kanon/mondrian.h"

namespace pso::kanon {
namespace {

// The paper's toy dataset (Section 1.1): ZIP, Age, Sex, Disease. Disease
// codes are laid out so the pulmonary group {CF, Asthma} is contiguous.
Schema ToySchema() {
  return Schema({
      Attribute::Integer("zip", 10000, 29999),
      Attribute::Integer("age", 0, 99),
      Attribute::Categorical("sex", {"F", "M"}),
      Attribute::Categorical("disease", {"COVID", "FLU", "CF", "Asthma"}),
  });
}

Dataset ToyData() {
  return Dataset(ToySchema(), {
                                  {23456, 55, 0, 0},  // F, COVID
                                  {23456, 42, 0, 0},  // F, COVID
                                  {12345, 30, 1, 2},  // M, CF
                                  {12346, 33, 0, 3},  // F, Asthma
                              });
}

HierarchySet ToyHierarchies() {
  Schema s = ToySchema();
  return HierarchySet(
      s, {
             ValueHierarchy::Intervals(s.attribute(0), {1, 10, 100, 1000}),
             ValueHierarchy::Intervals(s.attribute(1), {1, 10, 50}),
             ValueHierarchy::IdentityOrSuppress(s.attribute(2)),
             // Width-2 level groups {COVID, FLU} and {CF, Asthma}=PULM.
             ValueHierarchy::Intervals(s.attribute(3), {1, 2}),
         });
}

TEST(DataflyTest, ToyExampleReaches2Anonymity) {
  DataflyOptions opts;
  opts.k = 2;
  opts.qi_attrs = {0, 1, 2, 3};
  opts.max_suppression = 0.0;
  auto result = DataflyAnonymize(ToyData(), ToyHierarchies(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->generalized, 2, opts.qi_attrs));
  EXPECT_EQ(result->suppressed_rows, 0u);
  // Every generalized row covers its original record.
  Dataset data = ToyData();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(result->generalized.Covers(i, data.record(i)));
  }
  // The paper's table pairs rows {0,1} and rows {2,3} (the PULM class).
  bool found_pulm_pair = false;
  for (const auto& cls : result->classes) {
    if (cls.size() == 2 &&
        ((cls[0] == 2 && cls[1] == 3) || (cls[0] == 3 && cls[1] == 2))) {
      found_pulm_pair = true;
    }
  }
  EXPECT_TRUE(found_pulm_pair);
}

TEST(DataflyTest, SuppressionBudgetRespected) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(1);
  Dataset data = u.distribution.SampleDataset(300, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  DataflyOptions opts;
  opts.k = 5;
  opts.qi_attrs = {0, 1, 2, 3};  // zip, birth_year, birth_day, sex
  opts.max_suppression = 0.05;
  auto result = DataflyAnonymize(data, hs, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->suppressed_rows, static_cast<size_t>(0.05 * 300));
  EXPECT_TRUE(IsKAnonymous(result->generalized, 5, opts.qi_attrs));
}

TEST(DataflyTest, RejectsBadOptions) {
  Dataset data = ToyData();
  HierarchySet hs = ToyHierarchies();
  DataflyOptions opts;
  opts.k = 2;
  opts.qi_attrs = {};
  EXPECT_FALSE(DataflyAnonymize(data, hs, opts).ok());
  opts.qi_attrs = {99};
  EXPECT_FALSE(DataflyAnonymize(data, hs, opts).ok());
  opts.qi_attrs = {0};
  opts.k = 0;
  EXPECT_FALSE(DataflyAnonymize(data, hs, opts).ok());
}

TEST(MondrianTest, ProducesKAnonymousClasses) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(2);
  Dataset data = u.distribution.SampleDataset(500, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  MondrianOptions opts;
  opts.k = 5;
  opts.qi_attrs = {0, 1, 2, 3};
  auto result = MondrianAnonymize(data, hs, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& cls : result->classes) {
    EXPECT_GE(cls.size(), 5u);
  }
  // Coverage: every generalized row covers its original.
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(result->generalized.Covers(i, data.record(i)));
  }
  // Classes partition the rows.
  size_t covered = 0;
  for (const auto& cls : result->classes) covered += cls.size();
  EXPECT_EQ(covered, data.size());
}

TEST(MondrianTest, TightRangesAreAttained) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(3);
  Dataset data = u.distribution.SampleDataset(300, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  MondrianOptions opts;
  opts.k = 5;
  opts.qi_attrs = {0, 1, 2, 3};
  opts.tight_ranges = true;
  auto result = MondrianAnonymize(data, hs, opts);
  ASSERT_TRUE(result.ok());
  // For each class and each QI attribute, some member attains the lo and
  // some member attains the hi (the leak the minimality attack uses).
  for (const auto& cls : result->classes) {
    const auto& cells = result->generalized.row(cls.front());
    for (size_t qi : opts.qi_attrs) {
      bool lo_attained = false;
      bool hi_attained = false;
      for (size_t i : cls) {
        if (data.At(i, qi) == cells[qi].lo) lo_attained = true;
        if (data.At(i, qi) == cells[qi].hi) hi_attained = true;
      }
      EXPECT_TRUE(lo_attained);
      EXPECT_TRUE(hi_attained);
    }
  }
}

TEST(MondrianTest, FewerRowsThanKIsInfeasible) {
  Dataset data = ToyData();
  HierarchySet hs = ToyHierarchies();
  MondrianOptions opts;
  opts.k = 10;
  opts.qi_attrs = {0, 1};
  auto result = MondrianAnonymize(data, hs, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(MetricsTest, LossGrowsWithK) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(4);
  Dataset data = u.distribution.SampleDataset(400, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  MondrianOptions opts;
  opts.qi_attrs = {0, 1, 2, 3};
  opts.k = 2;
  auto k2 = MondrianAnonymize(data, hs, opts);
  opts.k = 20;
  auto k20 = MondrianAnonymize(data, hs, opts);
  ASSERT_TRUE(k2.ok() && k20.ok());
  EXPECT_LT(GeneralizedInformationLoss(k2->generalized),
            GeneralizedInformationLoss(k20->generalized));
  EXPECT_LT(AverageClassSize(*k2), AverageClassSize(*k20));
  EXPECT_LT(DiscernibilityMetric(*k2), DiscernibilityMetric(*k20));
}

TEST(MetricsTest, ExactDataHasZeroLoss) {
  Schema s = ToySchema();
  HierarchySet hs = ToyHierarchies();
  GeneralizedDataset gds{hs};
  gds.Append({{23456, 23456}, {55, 55}, {0, 0}, {0, 0}});
  EXPECT_DOUBLE_EQ(GeneralizedInformationLoss(gds), 0.0);
}

TEST(ChecksTest, LDiversity) {
  Dataset data = ToyData();
  // Classes: rows {0,1} share disease 0 (1 distinct), rows {2,3} have
  // diseases 2 and 3 (2 distinct).
  std::vector<std::vector<size_t>> classes = {{0, 1}, {2, 3}};
  EXPECT_TRUE(IsLDiverse(data, classes, 3, 1));
  EXPECT_FALSE(IsLDiverse(data, classes, 3, 2));  // class {0,1} fails
  EXPECT_TRUE(IsLDiverse(data, {{2, 3}}, 3, 2));
}

TEST(ChecksTest, TCloseness) {
  Dataset data = ToyData();
  // One class with all rows is 0-close by definition.
  std::vector<std::vector<size_t>> one_class = {{0, 1, 2, 3}};
  EXPECT_NEAR(TClosenessValue(data, one_class, 3), 0.0, 1e-12);
  EXPECT_TRUE(IsTClose(data, one_class, 3, 0.01));
  // Fully skewed classes are far from the global distribution.
  std::vector<std::vector<size_t>> skewed = {{0, 1}, {2, 3}};
  double t = TClosenessValue(data, skewed, 3);
  EXPECT_GT(t, 0.4);
  EXPECT_FALSE(IsTClose(data, skewed, 3, 0.3));
}

// Property sweep: Datafly output is k-anonymous for every k.
class DataflyKSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DataflyKSweep, OutputIsKAnonymous) {
  size_t k = GetParam();
  Universe u = MakeGicMedicalUniverse(30);
  Rng rng(100 + k);
  Dataset data = u.distribution.SampleDataset(250, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  DataflyOptions opts;
  opts.k = k;
  opts.qi_attrs = {0, 1, 2, 3};
  opts.max_suppression = 0.1;
  auto result = DataflyAnonymize(data, hs, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->generalized, k, opts.qi_attrs));
}

INSTANTIATE_TEST_SUITE_P(Ks, DataflyKSweep,
                         ::testing::Values(2, 3, 5, 10, 25));

}  // namespace
}  // namespace pso::kanon
