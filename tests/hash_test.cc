// Tests for the universal hash family underlying the leftover-hash-lemma
// predicates.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"

namespace pso {
namespace {

TEST(MixTest, DeterministicAndSpread) {
  EXPECT_EQ(MixUint64(42), MixUint64(42));
  EXPECT_NE(MixUint64(42), MixUint64(43));
  // Nearby inputs land far apart (avalanche sanity).
  uint64_t d = MixUint64(1) ^ MixUint64(2);
  int bits = __builtin_popcountll(d);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashBytesTest, BasicProperties) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(UniversalHashTest, EvalInRange) {
  Rng rng(5);
  UniversalHash h(rng, 17);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Eval(x), 17u);
}

TEST(UniversalHashTest, DeterministicGivenCoefficients) {
  UniversalHash h(123456, 654321, 100);
  EXPECT_EQ(h.Eval(42), h.Eval(42));
  UniversalHash h2(123456, 654321, 100);
  EXPECT_EQ(h.Eval(42), h2.Eval(42));
}

TEST(UniversalHashTest, BucketLoadsAreBalanced) {
  Rng rng(7);
  const uint64_t kRange = 10;
  UniversalHash h(rng, kRange);
  std::vector<int> counts(kRange, 0);
  const int kKeys = 100000;
  for (int x = 0; x < kKeys; ++x) ++counts[h.Eval(MixUint64(x))];
  for (int c : counts) EXPECT_NEAR(c, kKeys / 10, 800);
}

TEST(UniversalHashTest, PairwiseCollisionRateNearOneOverM) {
  // Across random (a, b), Pr[h(x) == h(y)] should be ~ 1/m for x != y.
  Rng rng(11);
  const uint64_t kRange = 64;
  const int kFamilies = 20000;
  int collisions = 0;
  for (int i = 0; i < kFamilies; ++i) {
    UniversalHash h(rng, kRange);
    if (h.Eval(123456789) == h.Eval(987654321)) ++collisions;
  }
  double rate = collisions / static_cast<double>(kFamilies);
  EXPECT_NEAR(rate, 1.0 / kRange, 0.006);
}

// Property sweep over ranges: design weight of bucket 0 is ~ 1/range for
// high-entropy keys.
class HashWeightTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashWeightTest, BucketZeroWeightMatchesDesign) {
  const uint64_t range = GetParam();
  Rng rng(13);
  UniversalHash h(rng, range);
  const int kKeys = 200000;
  int hits = 0;
  Rng keys(17);
  for (int i = 0; i < kKeys; ++i) {
    if (h.Eval(keys.NextUint64()) == 0) ++hits;
  }
  double w = hits / static_cast<double>(kKeys);
  double design = 1.0 / static_cast<double>(range);
  EXPECT_NEAR(w, design, 4.0 * std::sqrt(design / kKeys) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Ranges, HashWeightTest,
                         ::testing::Values(2, 5, 16, 100, 1024));

}  // namespace
}  // namespace pso
