// Tests for marginals, product distributions, and empirical distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "data/distribution.h"

namespace pso {
namespace {

TEST(MarginalTest, NormalizesWeights) {
  Marginal m(0, {2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(m.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(m.Probability(1), 0.25);
  EXPECT_DOUBLE_EQ(m.Probability(2), 0.5);
  EXPECT_DOUBLE_EQ(m.Probability(3), 0.0);
  EXPECT_DOUBLE_EQ(m.Probability(-1), 0.0);
}

TEST(MarginalTest, UniformFactory) {
  Marginal m = Marginal::Uniform(5, 9);
  EXPECT_EQ(m.min_value(), 5);
  EXPECT_EQ(m.max_value(), 9);
  for (int64_t v = 5; v <= 9; ++v) EXPECT_DOUBLE_EQ(m.Probability(v), 0.2);
}

TEST(MarginalTest, ZipfDecreasing) {
  Marginal m = Marginal::Zipf(0, 10, 1.0);
  for (int64_t v = 1; v < 10; ++v) {
    EXPECT_GT(m.Probability(v - 1), m.Probability(v));
  }
  EXPECT_NEAR(m.Probability(0) / m.Probability(1), 2.0, 1e-9);
}

TEST(MarginalTest, MassInRange) {
  Marginal m = Marginal::Uniform(0, 9);
  EXPECT_DOUBLE_EQ(m.MassInRange(0, 9), 1.0);
  EXPECT_DOUBLE_EQ(m.MassInRange(0, 4), 0.5);
  EXPECT_DOUBLE_EQ(m.MassInRange(3, 3), 0.1);
  EXPECT_DOUBLE_EQ(m.MassInRange(8, 20), 0.2);    // clipped
  EXPECT_DOUBLE_EQ(m.MassInRange(-5, -1), 0.0);   // disjoint
  EXPECT_DOUBLE_EQ(m.MassInRange(5, 4), 0.0);     // empty
}

TEST(MarginalTest, MaxProbability) {
  Marginal m(0, {1.0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(m.MaxProbability(), 0.6);
}

TEST(MarginalTest, SamplingMatchesProbabilities) {
  Marginal m(10, {1.0, 2.0, 7.0});
  Rng rng(3);
  std::vector<int> counts(3, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    int64_t v = m.Sample(rng);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 12);
    ++counts[v - 10];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kTrials), 0.7, 0.01);
}

Schema SmallSchema() {
  return Schema({Attribute::Integer("a", 0, 1),
                 Attribute::Integer("b", 0, 2)});
}

TEST(ProductDistributionTest, RecordProbabilityIsProduct) {
  Schema s = SmallSchema();
  ProductDistribution d(
      s, {Marginal(0, {0.25, 0.75}), Marginal(0, {0.5, 0.3, 0.2})});
  EXPECT_DOUBLE_EQ(d.RecordProbability({1, 0}), 0.75 * 0.5);
  EXPECT_DOUBLE_EQ(d.RecordProbability({0, 2}), 0.25 * 0.2);
  EXPECT_DOUBLE_EQ(d.RecordProbability({0, 5}), 0.0);
  EXPECT_DOUBLE_EQ(d.RecordProbability({0}), 0.0);  // wrong arity
}

TEST(ProductDistributionTest, UniformOverFactory) {
  Schema s = SmallSchema();
  ProductDistribution d = ProductDistribution::UniformOver(s);
  EXPECT_DOUBLE_EQ(d.RecordProbability({0, 0}), 1.0 / 6.0);
}

TEST(ProductDistributionTest, MinEntropySumsPerAttribute) {
  Schema s = SmallSchema();
  ProductDistribution d(
      s, {Marginal(0, {0.5, 0.5}), Marginal(0, {0.25, 0.25, 0.5})});
  // -log2(0.5) + -log2(0.5) = 1 + 1 = 2 bits.
  EXPECT_NEAR(d.MinEntropyBits(), 2.0, 1e-9);
}

TEST(ProductDistributionTest, SampleDatasetShape) {
  Schema s = SmallSchema();
  ProductDistribution d = ProductDistribution::UniformOver(s);
  Rng rng(9);
  Dataset x = d.SampleDataset(50, rng);
  EXPECT_EQ(x.size(), 50u);
  for (const Record& r : x.records()) EXPECT_TRUE(s.IsValidRecord(r));
}

TEST(ProductDistributionTest, SamplingMatchesJointProbability) {
  Schema s = SmallSchema();
  ProductDistribution d(
      s, {Marginal(0, {0.3, 0.7}), Marginal(0, {0.6, 0.3, 0.1})});
  Rng rng(15);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    Record r = d.Sample(rng);
    if (r[0] == 1 && r[1] == 0) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.42, 0.01);
}

TEST(EmpiricalDistributionTest, ResamplesReference) {
  Schema s = SmallSchema();
  Dataset ref(s, {{0, 0}, {0, 0}, {1, 2}, {1, 1}});
  EmpiricalDistribution d{ref};
  EXPECT_DOUBLE_EQ(d.RecordProbability({0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(d.RecordProbability({1, 2}), 0.25);
  EXPECT_DOUBLE_EQ(d.RecordProbability({1, 0}), 0.0);
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(d.RecordProbability(d.Sample(rng)), 0.0);
  }
}

}  // namespace
}  // namespace pso
