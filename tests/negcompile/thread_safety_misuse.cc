// Negative-compile proof that the thread-safety gate works: this file
// reads and writes a PSO_GUARDED_BY member without holding its mutex,
// so `clang -Wthread-safety -Werror` MUST refuse to compile it.
// tools/negcompile_test.py drives both directions:
//
//   plain compile                       -> must FAIL with a
//                                          -Wthread-safety diagnostic
//   -DPSO_NEGCOMPILE_FIXED              -> must SUCCEED (control: proves
//                                          the file is otherwise valid
//                                          and only the locking is bad)
//
// Under GCC the annotations are no-ops and the test self-skips.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
#ifdef PSO_NEGCOMPILE_FIXED
    pso::MutexLock lock(mu_);
#endif
    balance_ += amount;  // unguarded access: the analysis must reject this
  }

  int balance() const {
    pso::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable pso::Mutex mu_;
  int balance_ PSO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
