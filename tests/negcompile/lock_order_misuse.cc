// Negative-compile proof that the lock-ORDER gate works: this file
// acquires two mutexes against their declared acquired_after order, so
// `clang -Wthread-safety -Wthread-safety-beta -Werror` MUST refuse to
// compile it (acquired_before/acquired_after checking lives behind the
// beta flag). tools/negcompile_test.py drives both directions:
//
//   plain compile                       -> must FAIL with a
//                                          -Wthread-safety diagnostic
//   -DPSO_NEGCOMPILE_FIXED              -> must SUCCEED (control: the
//                                          same two locks taken in the
//                                          declared order are fine)
//
// Under GCC the annotations are no-ops and the test self-skips.

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

// Direct edge: inner_mu must only ever be acquired after outer_mu.
pso::Mutex outer_mu;
pso::Mutex inner_mu PSO_ACQUIRED_AFTER(outer_mu);

void Nested() {
#ifdef PSO_NEGCOMPILE_FIXED
  pso::MutexLock outer(outer_mu);
  pso::MutexLock inner(inner_mu);
#else
  pso::MutexLock inner(inner_mu);
  pso::MutexLock outer(outer_mu);  // inversion: the gate must reject this
#endif
}

// Rank-table edge: two PSO_LOCK_ORDER mutexes acquired in the correct
// (descending-rank) order in both directions. Compiles either way —
// present so the gate also parses the boundary-sentinel chain that the
// whole tree uses, not just a bare two-mutex edge.
pso::Mutex budget_mu PSO_LOCK_ORDER(kBudget){pso::LockRank::kBudget,
                                             "negcompile.budget"};
pso::Mutex metrics_mu PSO_LOCK_ORDER(kMetrics){pso::LockRank::kMetrics,
                                               "negcompile.metrics"};

void RankedNested() {
  pso::MutexLock budget(budget_mu);
  pso::MutexLock metrics(metrics_mu);
}

}  // namespace

int main() {
  Nested();
  RankedNested();
  return 0;
}
