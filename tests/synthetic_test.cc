// Tests for the synthetic-data mechanisms and the copy adversary
// (Section 1.2's "synthetic data" question under the PSO lens).

#include <gtest/gtest.h>

#include "data/generators.h"
#include "pso/game.h"
#include "pso/synthetic.h"

namespace pso {
namespace {

TEST(SyntheticMechanismTest, OutputShape) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(1);
  Dataset x = u.distribution.SampleDataset(100, rng);
  for (SyntheticMode mode :
       {SyntheticMode::kBootstrap, SyntheticMode::kMarginal,
        SyntheticMode::kDpMarginal}) {
    auto mech = MakeSyntheticDataMechanism(mode, /*out_records=*/50);
    MechanismOutput y = mech->Run(x, rng);
    const Dataset* synth = y.As<Dataset>();
    ASSERT_NE(synth, nullptr);
    EXPECT_EQ(synth->size(), 50u);
    for (const Record& r : synth->records()) {
      EXPECT_TRUE(u.schema.IsValidRecord(r));
    }
  }
}

TEST(SyntheticMechanismTest, DefaultSizeMatchesInput) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(2);
  Dataset x = u.distribution.SampleDataset(77, rng);
  auto mech = MakeSyntheticDataMechanism(SyntheticMode::kMarginal);
  MechanismOutput y = mech->Run(x, rng);
  EXPECT_EQ(y.As<Dataset>()->size(), 77u);
}

TEST(SyntheticMechanismTest, BootstrapRecordsComeFromInput) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(3);
  Dataset x = u.distribution.SampleDataset(60, rng);
  auto mech = MakeSyntheticDataMechanism(SyntheticMode::kBootstrap, 40);
  MechanismOutput y = mech->Run(x, rng);
  const Dataset* synth = y.As<Dataset>();
  ASSERT_NE(synth, nullptr);
  for (const Record& r : synth->records()) {
    EXPECT_GE(x.CountEqual(r), 1u);
  }
}

TEST(SyntheticMechanismTest, MarginalPreservesAttributeFrequencies) {
  Universe u = MakeBinaryTraitUniverse(0.3);
  Rng rng(4);
  Dataset x = u.distribution.SampleDataset(5000, rng);
  double true_rate = 0.0;
  for (const Record& r : x.records()) true_rate += (double)r[0];
  true_rate /= (double)x.size();

  auto mech = MakeSyntheticDataMechanism(SyntheticMode::kMarginal, 5000);
  MechanismOutput y = mech->Run(x, rng);
  const Dataset* synth = y.As<Dataset>();
  double synth_rate = 0.0;
  for (const Record& r : synth->records()) synth_rate += (double)r[0];
  synth_rate /= (double)synth->size();
  EXPECT_NEAR(synth_rate, true_rate, 0.03);
}

TEST(SyntheticMechanismTest, MarginalRecordsRarelyCopyRareInputs) {
  // With 8 attributes, an independent-marginals sample almost never equals
  // a specific input record; the bootstrap always does.
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(5);
  Dataset x = u.distribution.SampleDataset(100, rng);
  auto mech = MakeSyntheticDataMechanism(SyntheticMode::kMarginal, 100);
  MechanismOutput y = mech->Run(x, rng);
  const Dataset* synth = y.As<Dataset>();
  size_t copies = 0;
  for (const Record& r : synth->records()) copies += x.CountEqual(r);
  EXPECT_LT(copies, 3u);
}

TEST(SyntheticGameTest, BootstrapFailsPso) {
  Universe u = MakeGicMedicalUniverse(100);
  PsoGameOptions opts;
  opts.trials = 60;
  opts.weight_pool = 30000;
  PsoGame game(u.distribution, 200, opts);
  auto result = game.Run(
      *MakeSyntheticDataMechanism(SyntheticMode::kBootstrap),
      *MakeSyntheticCopyAdversary());
  EXPECT_GT(result.pso_success.rate(), 0.9);
  EXPECT_GT(result.advantage, 0.7);
}

TEST(SyntheticGameTest, MarginalSynthesisResists) {
  Universe u = MakeGicMedicalUniverse(100);
  PsoGameOptions opts;
  opts.trials = 60;
  opts.weight_pool = 30000;
  PsoGame game(u.distribution, 200, opts);
  for (SyntheticMode mode :
       {SyntheticMode::kMarginal, SyntheticMode::kDpMarginal}) {
    auto result = game.Run(*MakeSyntheticDataMechanism(mode),
                           *MakeSyntheticCopyAdversary());
    EXPECT_LT(result.pso_success.rate(), result.baseline + 0.07)
        << result.Summary();
  }
}

}  // namespace
}  // namespace pso
