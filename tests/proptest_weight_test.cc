// Differential property test: exact predicate weights vs Monte-Carlo
// estimates, on randomized product distributions and predicate trees
// (ctest label: proptest).
//
// For every generated (distribution, predicate) pair with an analytic
// weight, the Monte-Carlo estimator must land close to it: the exact
// value has to fall inside the doubled Wilson interval (an ~4-sigma
// event to miss), and across the whole run the strict 95% interval must
// contain the exact value at least 85% of the time (it nominally does
// ~95% of the time). Seeds are pinned, so both checks are deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "data/distribution.h"
#include "data/schema.h"
#include "predicate/predicate.h"
#include "predicate/weight.h"
#include "proptest.h"

namespace pso {
namespace {

struct WeightCase {
  ProductDistribution dist;
  PredicateRef pred;
};

// A product distribution over `num_attrs` small categorical attributes
// with random (non-degenerate) marginal weights.
ProductDistribution GenDistribution(Rng& rng, size_t num_attrs) {
  std::vector<Attribute> attrs;
  std::vector<Marginal> marginals;
  for (size_t a = 0; a < num_attrs; ++a) {
    size_t domain = 2 + static_cast<size_t>(rng.UniformUint64(4));
    std::vector<std::string> labels;
    std::vector<double> weights;
    for (size_t v = 0; v < domain; ++v) {
      labels.push_back(StrFormat("a%zu_v%zu", a, v));
      weights.push_back(0.1 + rng.UniformDouble());
    }
    attrs.push_back(
        Attribute::Categorical(StrFormat("attr%zu", a), std::move(labels)));
    marginals.emplace_back(0, std::move(weights));
  }
  Schema schema(std::move(attrs));
  return ProductDistribution(schema, std::move(marginals));
}

// One atom over attribute `attr` (equals / in-set / range), all of which
// carry analytic weights under a product distribution.
PredicateRef GenAtom(Rng& rng, const Schema& schema, size_t attr) {
  const Attribute& a = schema.attribute(attr);
  switch (rng.UniformUint64(3)) {
    case 0:
      return MakeAttributeEquals(
          attr, rng.UniformInt(a.MinValue(), a.MaxValue()), a.name());
    case 1: {
      std::vector<int64_t> values;
      for (int64_t v = a.MinValue(); v <= a.MaxValue(); ++v) {
        if (rng.Bernoulli(0.5)) values.push_back(v);
      }
      return MakeAttributeIn(attr, std::move(values), a.name());
    }
    default: {
      int64_t lo = rng.UniformInt(a.MinValue(), a.MaxValue());
      int64_t hi = rng.UniformInt(lo, a.MaxValue());
      return MakeAttributeRange(attr, lo, hi, a.name());
    }
  }
}

// Combines one atom per attribute (disjoint attribute sets keep the
// conjunction/disjunction weights exact), possibly negated.
WeightCase GenWeightCase(Rng& rng, size_t scale) {
  size_t num_attrs = 1 + static_cast<size_t>(
                             rng.UniformUint64(scale < 3 ? scale : 3));
  ProductDistribution dist = GenDistribution(rng, num_attrs);
  std::vector<PredicateRef> atoms;
  for (size_t a = 0; a < num_attrs; ++a) {
    PredicateRef atom = GenAtom(rng, dist.schema(), a);
    if (rng.Bernoulli(0.25)) atom = MakeNot(atom);
    atoms.push_back(std::move(atom));
  }
  PredicateRef pred;
  if (atoms.size() == 1) {
    pred = atoms[0];
  } else if (rng.Bernoulli(0.5)) {
    pred = MakeAnd(std::move(atoms));
  } else {
    pred = MakeOr(std::move(atoms));
  }
  if (rng.Bernoulli(0.25)) pred = MakeNot(pred);
  return WeightCase{std::move(dist), std::move(pred)};
}

TEST(WeightDifferentialTest, ExactWeightInsideMonteCarloWilsonInterval) {
  constexpr size_t kSamples = 20000;
  size_t strict_hits = 0;
  size_t cases = 0;

  proptest::Config cfg{/*master_seed=*/0x77aa88bb, /*iterations=*/60,
                       /*max_scale=*/3, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<WeightCase>(
      cfg, GenWeightCase, [&](const WeightCase& c) -> std::string {
        std::optional<double> exact = c.pred->ExactWeight(c.dist);
        if (!exact.has_value()) {
          return "generated predicate lost its analytic weight: " +
                 c.pred->Description();
        }
        Rng mc_rng(0x9cull);
        WeightEstimate est = EstimateWeightMonteCarlo(*c.pred, c.dist,
                                                      mc_rng, kSamples);
        ++cases;
        if (est.interval.Contains(*exact)) ++strict_hits;
        // Doubled interval: ~4 sigma, deterministic under pinned seeds.
        double mid = (est.interval.lo + est.interval.hi) / 2.0;
        double half = (est.interval.hi - est.interval.lo) / 2.0;
        Interval widened{mid - 2.0 * half, mid + 2.0 * half};
        if (!widened.Contains(*exact)) {
          return StrFormat(
              "exact weight %.6f outside doubled Wilson interval "
              "[%.6f, %.6f] (mc=%.6f, %zu samples) for %s",
              *exact, widened.lo, widened.hi, est.value, est.samples,
              c.pred->Description().c_str());
        }
        return "";
      }));

  // Statistical sanity in the other direction: the strict 95% interval
  // should cover the exact weight nearly always (85% is a generous floor
  // for a nominal 95% under pinned seeds).
  ASSERT_GT(cases, 0u);
  EXPECT_GE(static_cast<double>(strict_hits),
            0.85 * static_cast<double>(cases))
      << strict_hits << "/" << cases
      << " strict Wilson-interval hits — Monte-Carlo estimator is biased";
}

// The estimator itself must be deterministic: the differential bound
// above is only reproducible because the same seed always produces the
// same estimate.
TEST(WeightDifferentialTest, MonteCarloEstimateIsSeedDeterministic) {
  Rng gen_rng = Rng::StreamAt(0x1234, 7);
  WeightCase c = GenWeightCase(gen_rng, 3);
  Rng r1(42), r2(42);
  WeightEstimate a = EstimateWeightMonteCarlo(*c.pred, c.dist, r1, 5000);
  WeightEstimate b = EstimateWeightMonteCarlo(*c.pred, c.dist, r2, 5000);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.interval.lo, b.interval.lo);
  EXPECT_EQ(a.interval.hi, b.interval.hi);
}

}  // namespace
}  // namespace pso
