// Tests for the SAT layer, parameterized over both registered backends
// (chronological DPLL and conflict-driven CDCL). Every functional property
// must hold regardless of which engine solves the instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "solver/sat.h"
#include "solver/sat_backend.h"

namespace pso {
namespace {

TEST(SatTest, LiteralEncoding) {
  Lit pos = MakeLit(3, true);
  Lit neg = MakeLit(3, false);
  EXPECT_EQ(LitVar(pos), 3u);
  EXPECT_TRUE(LitPositive(pos));
  EXPECT_FALSE(LitPositive(neg));
  EXPECT_EQ(LitNegate(pos), neg);
  EXPECT_EQ(LitNegate(neg), pos);
}

TEST(SatTest, BackendRegistryListsBothEngines) {
  auto names = SatBackendNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "dpll"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cdcl"), names.end());
  EXPECT_FALSE(MakeSatBackend("no-such-engine").ok());
}

// Fixture solving through a named backend from the registry.
class SatBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  Result<SatSolution> Solve(SatSolver& s, size_t max_decisions = 0) {
    auto backend = MakeSatBackend(GetParam());
    if (!backend.ok()) return backend.status();
    SatSolveOptions options;
    options.max_decisions = max_decisions;
    return s.SolveWith(**backend, options);
  }
};

TEST_P(SatBackendTest, TrivialSat) {
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_TRUE(sol->assignment[0]);
}

TEST_P(SatBackendTest, TrivialUnsat) {
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  s.AddUnit(MakeLit(0, false));
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST_P(SatBackendTest, EmptyClauseIsUnsat) {
  SatSolver s(2);
  s.AddClause({});
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST_P(SatBackendTest, EmptyFormulaIsSat) {
  SatSolver s(3);
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->satisfiable);
}

TEST_P(SatBackendTest, TautologicalClauseDropped) {
  SatSolver s(1);
  s.AddBinary(MakeLit(0, true), MakeLit(0, false));  // x or ~x
  s.AddUnit(MakeLit(0, false));
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_FALSE(sol->assignment[0]);
}

TEST_P(SatBackendTest, ImplicationChainPropagates) {
  // x0 and (x0 -> x1) and (x1 -> x2) ... forces all true.
  const uint32_t n = 20;
  SatSolver s(n);
  s.AddUnit(MakeLit(0, true));
  for (uint32_t i = 0; i + 1 < n; ++i) {
    s.AddBinary(MakeLit(i, false), MakeLit(i + 1, true));
  }
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  for (uint32_t i = 0; i < n; ++i) EXPECT_TRUE(sol->assignment[i]);
}

TEST_P(SatBackendTest, ExactlyOneConstraint) {
  SatSolver s(4);
  std::vector<Lit> lits;
  for (uint32_t v = 0; v < 4; ++v) lits.push_back(MakeLit(v, true));
  s.AddExactlyOne(lits);
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  int trues = 0;
  for (uint32_t v = 0; v < 4; ++v) trues += sol->assignment[v] ? 1 : 0;
  EXPECT_EQ(trues, 1);
}

TEST_P(SatBackendTest, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: var p*3+h means pigeon p in hole h.
  const uint32_t pigeons = 4;
  const uint32_t holes = 3;
  SatSolver s(pigeons * holes);
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (uint32_t h = 0; h < holes; ++h) {
      somewhere.push_back(MakeLit(p * holes + h, true));
    }
    s.AddClause(somewhere);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddBinary(MakeLit(p1 * holes + h, false),
                    MakeLit(p2 * holes + h, false));
      }
    }
  }
  auto sol = Solve(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST_P(SatBackendTest, DecisionLimitIsResourceExhausted) {
  // Hard pigeonhole with a tiny decision budget: the solver must report
  // kResourceExhausted (a first-class budget outcome), never kInternal.
  const uint32_t pigeons = 9;
  const uint32_t holes = 8;
  SatSolver s(pigeons * holes);
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (uint32_t h = 0; h < holes; ++h) {
      somewhere.push_back(MakeLit(p * holes + h, true));
    }
    s.AddClause(somewhere);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddBinary(MakeLit(p1 * holes + h, false),
                    MakeLit(p2 * holes + h, false));
      }
    }
  }
  auto sol = Solve(s, /*max_decisions=*/5);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(Backends, SatBackendTest,
                         ::testing::Values("dpll", "cdcl"),
                         [](const auto& info) { return info.param; });

// Property: on random satisfiable 3-SAT (planted solution), both backends
// must find some satisfying assignment, and it must actually satisfy every
// clause.
class SatRandomTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(SatRandomTest, PlantedInstanceSolvedAndVerified) {
  Rng rng(500 + std::get<0>(GetParam()));
  const uint32_t n = 30;
  const size_t m = 100;
  std::vector<bool> planted(n);
  for (uint32_t v = 0; v < n; ++v) planted[v] = rng.Bernoulli(0.5);

  SatSolver s(n);
  std::vector<std::vector<Lit>> clauses;
  for (size_t j = 0; j < m; ++j) {
    std::vector<Lit> clause;
    bool satisfied_by_planted = false;
    for (int k = 0; k < 3; ++k) {
      uint32_t v = static_cast<uint32_t>(rng.UniformUint64(n));
      bool sign = rng.Bernoulli(0.5);
      clause.push_back(MakeLit(v, sign));
      if (planted[v] == sign) satisfied_by_planted = true;
    }
    if (!satisfied_by_planted) {
      // Flip one literal to agree with the planted assignment.
      uint32_t v = LitVar(clause[0]);
      clause[0] = MakeLit(v, planted[v]);
    }
    s.AddClause(clause);
    clauses.push_back(std::move(clause));
  }
  auto backend = MakeSatBackend(std::get<1>(GetParam()));
  ASSERT_TRUE(backend.ok());
  auto sol = s.SolveWith(**backend, {});
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  for (const auto& clause : clauses) {
    bool ok = false;
    for (Lit l : clause) {
      if (sol->assignment[LitVar(l)] == LitPositive(l)) {
        ok = true;
        break;
      }
    }
    EXPECT_TRUE(ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SatRandomTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values("dpll", "cdcl")),
    [](const auto& info) {
      return std::get<1>(info.param) + "_" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace pso
