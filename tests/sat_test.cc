// Tests for the DPLL SAT solver.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/sat.h"

namespace pso {
namespace {

TEST(SatTest, LiteralEncoding) {
  Lit pos = MakeLit(3, true);
  Lit neg = MakeLit(3, false);
  EXPECT_EQ(LitVar(pos), 3u);
  EXPECT_TRUE(LitPositive(pos));
  EXPECT_FALSE(LitPositive(neg));
  EXPECT_EQ(LitNegate(pos), neg);
  EXPECT_EQ(LitNegate(neg), pos);
}

TEST(SatTest, TrivialSat) {
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_TRUE(sol->assignment[0]);
}

TEST(SatTest, TrivialUnsat) {
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  s.AddUnit(MakeLit(0, false));
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST(SatTest, EmptyClauseIsUnsat) {
  SatSolver s(2);
  s.AddClause({});
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST(SatTest, EmptyFormulaIsSat) {
  SatSolver s(3);
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->satisfiable);
}

TEST(SatTest, TautologicalClauseDropped) {
  SatSolver s(1);
  s.AddBinary(MakeLit(0, true), MakeLit(0, false));  // x or ~x
  s.AddUnit(MakeLit(0, false));
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_FALSE(sol->assignment[0]);
}

TEST(SatTest, ImplicationChainPropagates) {
  // x0 and (x0 -> x1) and (x1 -> x2) ... forces all true.
  const uint32_t n = 20;
  SatSolver s(n);
  s.AddUnit(MakeLit(0, true));
  for (uint32_t i = 0; i + 1 < n; ++i) {
    s.AddBinary(MakeLit(i, false), MakeLit(i + 1, true));
  }
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  for (uint32_t i = 0; i < n; ++i) EXPECT_TRUE(sol->assignment[i]);
}

TEST(SatTest, ExactlyOneConstraint) {
  SatSolver s(4);
  std::vector<Lit> lits;
  for (uint32_t v = 0; v < 4; ++v) lits.push_back(MakeLit(v, true));
  s.AddExactlyOne(lits);
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  int trues = 0;
  for (bool b : sol->assignment) trues += b ? 1 : 0;
  EXPECT_EQ(trues, 1);
}

TEST(SatTest, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: var p*3+h means pigeon p in hole h.
  const uint32_t pigeons = 4;
  const uint32_t holes = 3;
  SatSolver s(pigeons * holes);
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (uint32_t h = 0; h < holes; ++h) {
      somewhere.push_back(MakeLit(p * holes + h, true));
    }
    s.AddClause(somewhere);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddBinary(MakeLit(p1 * holes + h, false),
                    MakeLit(p2 * holes + h, false));
      }
    }
  }
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
}

TEST(SatTest, DecisionLimitReported) {
  // Hard pigeonhole with a tiny decision budget must error out.
  const uint32_t pigeons = 9;
  const uint32_t holes = 8;
  SatSolver s(pigeons * holes);
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (uint32_t h = 0; h < holes; ++h) {
      somewhere.push_back(MakeLit(p * holes + h, true));
    }
    s.AddClause(somewhere);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddBinary(MakeLit(p1 * holes + h, false),
                    MakeLit(p2 * holes + h, false));
      }
    }
  }
  auto sol = s.Solve(/*max_decisions=*/5);
  EXPECT_FALSE(sol.ok());
}

// Property: on random satisfiable 3-SAT (planted solution), the solver
// must find some satisfying assignment, and it must actually satisfy every
// clause.
class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, PlantedInstanceSolvedAndVerified) {
  Rng rng(500 + GetParam());
  const uint32_t n = 30;
  const size_t m = 100;
  std::vector<bool> planted(n);
  for (uint32_t v = 0; v < n; ++v) planted[v] = rng.Bernoulli(0.5);

  SatSolver s(n);
  std::vector<std::vector<Lit>> clauses;
  for (size_t j = 0; j < m; ++j) {
    std::vector<Lit> clause;
    bool satisfied_by_planted = false;
    for (int k = 0; k < 3; ++k) {
      uint32_t v = static_cast<uint32_t>(rng.UniformUint64(n));
      bool sign = rng.Bernoulli(0.5);
      clause.push_back(MakeLit(v, sign));
      if (planted[v] == sign) satisfied_by_planted = true;
    }
    if (!satisfied_by_planted) {
      // Flip one literal to agree with the planted assignment.
      uint32_t v = LitVar(clause[0]);
      clause[0] = MakeLit(v, planted[v]);
    }
    s.AddClause(clause);
    clauses.push_back(std::move(clause));
  }
  auto sol = s.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  for (const auto& clause : clauses) {
    bool ok = false;
    for (Lit l : clause) {
      if (sol->assignment[LitVar(l)] == LitPositive(l)) {
        ok = true;
        break;
      }
    }
    EXPECT_TRUE(ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace pso
