// Tests for the psoctl flag parser.

#include <gtest/gtest.h>

#include "tools/flags.h"

namespace pso::tools {
namespace {

Flags Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "psoctl");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = Parse({"game", "--n=400", "--eps=1.5"});
  EXPECT_EQ(f.GetInt("n", 0), 400);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 1.5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "game");
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = Parse({"census", "--blocks", "25", "--seed", "7"});
  EXPECT_EQ(f.GetInt("blocks", 0), 25);
  EXPECT_EQ(f.GetInt("seed", 0), 7);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Parse({"census", "--dp-median"});
  EXPECT_TRUE(f.GetBool("dp-median", false));
  EXPECT_TRUE(f.Has("dp-median"));
  EXPECT_FALSE(f.Has("eps"));
}

TEST(FlagsTest, ExplicitFalse) {
  Flags f = Parse({"x", "--verbose=false", "--quiet=0"});
  EXPECT_FALSE(f.GetBool("verbose", true));
  EXPECT_FALSE(f.GetBool("quiet", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags f = Parse({"x"});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(f.GetString("mechanism", "mondrian"), "mondrian");
  EXPECT_TRUE(f.GetBool("flag", true));
}

TEST(FlagsTest, StringValues) {
  Flags f = Parse({"game", "--mechanism", "laplace", "--adversary=hash"});
  EXPECT_EQ(f.GetString("mechanism", ""), "laplace");
  EXPECT_EQ(f.GetString("adversary", ""), "hash");
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  // "--a --b=1": a must not swallow "--b=1" as its value.
  Flags f = Parse({"x", "--a", "--b=1"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_EQ(f.GetInt("b", 0), 1);
}

TEST(FlagsTest, MultiplePositionals) {
  Flags f = Parse({"game", "extra", "--n=1"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, EmptyFlagNamesAreParseErrors) {
  Flags f = Parse({"x", "--", "--=7"});
  EXPECT_EQ(f.parse_errors().size(), 2u);
  Flags ok = Parse({"x", "--n=1"});
  EXPECT_TRUE(ok.parse_errors().empty());
}

TEST(FlagsTest, UnknownFlagsReportsUnlistedNames) {
  Flags f = Parse({"x", "--n=1", "--bogus", "--eps=0.5"});
  std::vector<std::string> unknown = f.UnknownFlags({"n", "eps"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_TRUE(f.UnknownFlags({"n", "eps", "bogus"}).empty());
}

TEST(FlagsTest, WellFormedIntAcceptsSignedDigits) {
  EXPECT_TRUE(WellFormedInt("42"));
  EXPECT_TRUE(WellFormedInt("-7"));
  EXPECT_TRUE(WellFormedInt("+3"));
  EXPECT_FALSE(WellFormedInt(""));
  EXPECT_FALSE(WellFormedInt("-"));
  EXPECT_FALSE(WellFormedInt("abc"));
  EXPECT_FALSE(WellFormedInt("4.5"));
  EXPECT_FALSE(WellFormedInt("12x"));
}

TEST(FlagsTest, WellFormedDoubleAcceptsFullStrtodValues) {
  EXPECT_TRUE(WellFormedDouble("0.5"));
  EXPECT_TRUE(WellFormedDouble("-1e-4"));
  EXPECT_TRUE(WellFormedDouble("3"));
  EXPECT_FALSE(WellFormedDouble(""));
  EXPECT_FALSE(WellFormedDouble("abc"));
  EXPECT_FALSE(WellFormedDouble("1.5garbage"));
}

TEST(FlagsTest, ValidateFlagsPassesWellTypedInvocation) {
  Flags f = Parse({"game", "--n=400", "--eps=1.5", "--dp-median",
                   "--mechanism", "laplace"});
  std::vector<FlagSpec> specs = {
      {"n", FlagSpec::Type::kInt},
      {"eps", FlagSpec::Type::kDouble},
      {"dp-median", FlagSpec::Type::kBool},
      {"mechanism", FlagSpec::Type::kString},
  };
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidateFlags(f, specs, &errors));
  EXPECT_TRUE(errors.empty());
}

TEST(FlagsTest, ValidateFlagsRejectsUnknownFlag) {
  Flags f = Parse({"game", "--n=400", "--bogus=1"});
  std::vector<FlagSpec> specs = {{"n", FlagSpec::Type::kInt}};
  std::vector<std::string> errors;
  EXPECT_FALSE(ValidateFlags(f, specs, &errors));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown flag --bogus"), std::string::npos);
}

TEST(FlagsTest, ValidateFlagsRejectsMalformedValues) {
  Flags f = Parse({"game", "--n=abc", "--eps=x", "--dp-median=maybe"});
  std::vector<FlagSpec> specs = {
      {"n", FlagSpec::Type::kInt},
      {"eps", FlagSpec::Type::kDouble},
      {"dp-median", FlagSpec::Type::kBool},
  };
  std::vector<std::string> errors;
  EXPECT_FALSE(ValidateFlags(f, specs, &errors));
  EXPECT_EQ(errors.size(), 3u);
  for (const std::string& e : errors) {
    EXPECT_NE(e.find("malformed value"), std::string::npos) << e;
  }
}

TEST(FlagsTest, ValidateFlagsAcceptsBoolSpellings) {
  Flags f = Parse({"x", "--a=true", "--b=false", "--c=0", "--d=1", "--e"});
  std::vector<FlagSpec> specs = {{"a", FlagSpec::Type::kBool},
                                 {"b", FlagSpec::Type::kBool},
                                 {"c", FlagSpec::Type::kBool},
                                 {"d", FlagSpec::Type::kBool},
                                 {"e", FlagSpec::Type::kBool}};
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidateFlags(f, specs, &errors)) << (errors.empty() ? "" : errors[0]);
}

TEST(FlagsTest, ValidateFlagsSurfacesParseErrors) {
  Flags f = Parse({"x", "--=3", "--n=1"});
  std::vector<FlagSpec> specs = {{"n", FlagSpec::Type::kInt}};
  std::vector<std::string> errors;
  EXPECT_FALSE(ValidateFlags(f, specs, &errors));
  EXPECT_EQ(errors.size(), 1u);
}

}  // namespace
}  // namespace pso::tools
