// Tests for the psoctl flag parser.

#include <gtest/gtest.h>

#include "tools/flags.h"

namespace pso::tools {
namespace {

Flags Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "psoctl");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = Parse({"game", "--n=400", "--eps=1.5"});
  EXPECT_EQ(f.GetInt("n", 0), 400);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 1.5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "game");
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = Parse({"census", "--blocks", "25", "--seed", "7"});
  EXPECT_EQ(f.GetInt("blocks", 0), 25);
  EXPECT_EQ(f.GetInt("seed", 0), 7);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Parse({"census", "--dp-median"});
  EXPECT_TRUE(f.GetBool("dp-median", false));
  EXPECT_TRUE(f.Has("dp-median"));
  EXPECT_FALSE(f.Has("eps"));
}

TEST(FlagsTest, ExplicitFalse) {
  Flags f = Parse({"x", "--verbose=false", "--quiet=0"});
  EXPECT_FALSE(f.GetBool("verbose", true));
  EXPECT_FALSE(f.GetBool("quiet", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags f = Parse({"x"});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(f.GetString("mechanism", "mondrian"), "mondrian");
  EXPECT_TRUE(f.GetBool("flag", true));
}

TEST(FlagsTest, StringValues) {
  Flags f = Parse({"game", "--mechanism", "laplace", "--adversary=hash"});
  EXPECT_EQ(f.GetString("mechanism", ""), "laplace");
  EXPECT_EQ(f.GetString("adversary", ""), "hash");
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  // "--a --b=1": a must not swallow "--b=1" as its value.
  Flags f = Parse({"x", "--a", "--b=1"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_EQ(f.GetInt("b", 0), 1);
}

TEST(FlagsTest, MultiplePositionals) {
  Flags f = Parse({"game", "extra", "--n=1"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[1], "extra");
}

}  // namespace
}  // namespace pso::tools
