// Tests for the Dinur–Nissim reconstruction module (Theorem 1.1).

#include <gtest/gtest.h>

#include <cmath>

#include "recon/attacks.h"
#include "recon/oracle.h"

namespace pso::recon {
namespace {

TEST(OracleTest, ExactAnswers) {
  ExactOracle oracle({1, 0, 1, 1});
  EXPECT_DOUBLE_EQ(oracle.Answer({1, 1, 1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(oracle.Answer({1, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Answer({0, 1, 0, 0}), 0.0);
  EXPECT_EQ(oracle.queries_answered(), 3u);
}

TEST(OracleTest, BoundedNoiseStaysInBounds) {
  std::vector<uint8_t> bits(50, 1);
  BoundedNoiseOracle oracle(bits, /*alpha=*/2.5, /*seed=*/1);
  SubsetQuery all(50, 1);
  for (int i = 0; i < 1000; ++i) {
    double a = oracle.Answer(all);
    EXPECT_GE(a, 50.0 - 2.5);
    EXPECT_LE(a, 50.0 + 2.5);
  }
}

TEST(OracleTest, RoundingErrorAtMostHalfGranularity) {
  std::vector<uint8_t> bits = {1, 1, 1, 0, 0, 1, 0, 1};
  RoundingOracle oracle(bits, /*granularity=*/5.0);
  SubsetQuery q(8, 1);
  double a = oracle.Answer(q);  // true sum 5
  EXPECT_DOUBLE_EQ(a, 5.0);
  SubsetQuery q2 = {1, 1, 1, 0, 0, 0, 0, 0};  // true 3 -> rounds to 5
  EXPECT_DOUBLE_EQ(oracle.Answer(q2), 5.0);
  SubsetQuery q3 = {1, 1, 0, 0, 0, 0, 0, 0};  // true 2 -> rounds to 0
  EXPECT_DOUBLE_EQ(oracle.Answer(q3), 0.0);
}

TEST(OracleTest, LaplaceNoiseCentered) {
  std::vector<uint8_t> bits(20, 1);
  LaplaceOracle oracle(bits, /*eps_per_query=*/1.0, /*seed=*/3);
  SubsetQuery all(20, 1);
  double sum = 0.0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += oracle.Answer(all);
  EXPECT_NEAR(sum / kTrials, 20.0, 0.05);
}

TEST(OracleTest, FractionAgree) {
  EXPECT_DOUBLE_EQ(FractionAgree({1, 0, 1}, {1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(FractionAgree({1, 0, 1, 0}, {1, 1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(FractionAgree({0}, {1}), 0.0);
}

TEST(OracleTest, RandomBitsBalanced) {
  Rng rng(5);
  auto bits = RandomBits(10000, rng);
  double ones = 0;
  for (uint8_t b : bits) ones += b;
  EXPECT_NEAR(ones / 10000.0, 0.5, 0.02);
}

// Theorem 1.1(i): with exact answers to all subset queries, the exhaustive
// attack recovers x perfectly.
TEST(ExhaustiveTest, ExactOracleFullRecovery) {
  Rng rng(7);
  auto secret = RandomBits(10, rng);
  ExactOracle oracle(secret);
  Reconstruction r = ExhaustiveReconstruct(oracle, /*alpha=*/0.0);
  EXPECT_EQ(r.estimate, secret);
  EXPECT_EQ(r.queries_used, 1024u);
}

// With bounded noise alpha < 1/2 the answers identify x exactly (rounding
// recovers the exact counts).
TEST(ExhaustiveTest, SmallNoiseStillExact) {
  Rng rng(9);
  auto secret = RandomBits(10, rng);
  BoundedNoiseOracle oracle(secret, /*alpha=*/0.4, /*seed=*/11);
  Reconstruction r = ExhaustiveReconstruct(oracle, /*alpha=*/0.4);
  EXPECT_DOUBLE_EQ(FractionAgree(r.estimate, secret), 1.0);
}

// With moderate noise (alpha = c*n for small c) the reconstruction error
// stays below ~ 4*alpha/n of entries (the Theorem 1.1 regime).
TEST(ExhaustiveTest, ModerateNoiseSmallError) {
  Rng rng(13);
  const size_t n = 12;
  auto secret = RandomBits(n, rng);
  const double alpha = 1.5;
  BoundedNoiseOracle oracle(secret, alpha, /*seed=*/15);
  Reconstruction r = ExhaustiveReconstruct(oracle, alpha);
  double agree = FractionAgree(r.estimate, secret);
  // Any candidate consistent within alpha differs in < ~4*alpha bits.
  EXPECT_GE(agree, 1.0 - 4.0 * alpha / static_cast<double>(n));
}

// Theorem 1.1(ii): LP decoding from polynomially many noisy queries.
TEST(LpReconstructTest, ExactQueriesFullRecovery) {
  Rng rng(17);
  const size_t n = 24;
  auto secret = RandomBits(n, rng);
  ExactOracle oracle(secret);
  auto r = LpReconstruct(oracle, /*num_queries=*/4 * n, rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(FractionAgree(r->estimate, secret), 0.95);
}

TEST(LpReconstructTest, NoiseBelowSqrtNRecovered) {
  Rng rng(19);
  const size_t n = 32;
  auto secret = RandomBits(n, rng);
  const double alpha = 0.3 * std::sqrt(static_cast<double>(n));
  BoundedNoiseOracle oracle(secret, alpha, /*seed=*/21);
  auto r = LpReconstruct(oracle, 5 * n, rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(FractionAgree(r->estimate, secret), 0.85);
}

TEST(LeastSquaresTest, ExactQueriesFullRecovery) {
  Rng rng(23);
  const size_t n = 64;
  auto secret = RandomBits(n, rng);
  ExactOracle oracle(secret);
  Reconstruction r = LeastSquaresReconstruct(oracle, 5 * n, rng);
  EXPECT_GE(FractionAgree(r.estimate, secret), 0.97);
}

TEST(LeastSquaresTest, ModerateNoiseMostlyRecovered) {
  Rng rng(29);
  const size_t n = 96;
  auto secret = RandomBits(n, rng);
  const double alpha = 0.4 * std::sqrt(static_cast<double>(n));
  BoundedNoiseOracle oracle(secret, alpha, /*seed=*/31);
  Reconstruction r = LeastSquaresReconstruct(oracle, 6 * n, rng);
  EXPECT_GE(FractionAgree(r.estimate, secret), 0.85);
}

// The flip side of the Fundamental Law: enough noise (DP-style, scaled to
// the query count) defeats reconstruction — accuracy drops toward the 50%
// coin-flip line.
TEST(LeastSquaresTest, LargeNoiseDefeatsReconstruction) {
  Rng rng(37);
  const size_t n = 64;
  auto secret = RandomBits(n, rng);
  // Noise magnitude ~ n: far beyond the c*sqrt(n) threshold.
  BoundedNoiseOracle oracle(secret, static_cast<double>(n), /*seed=*/41);
  Reconstruction r = LeastSquaresReconstruct(oracle, 5 * n, rng);
  double agree = FractionAgree(r.estimate, secret);
  EXPECT_LT(agree, 0.8);  // far from the <5%-error regime
}

// Property sweep over n: exhaustive attack with exact answers always
// recovers exactly.
class ExhaustiveSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ExhaustiveSweep, ExactRecovery) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  auto secret = RandomBits(n, rng);
  ExactOracle oracle(secret);
  Reconstruction r = ExhaustiveReconstruct(oracle, 0.0);
  EXPECT_EQ(r.estimate, secret);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveSweep,
                         ::testing::Values(2, 4, 6, 8, 11));

}  // namespace
}  // namespace pso::recon
