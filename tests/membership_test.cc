// Tests for the Homer-style membership-inference module.

#include <gtest/gtest.h>

#include "membership/membership.h"

namespace pso::membership {
namespace {

TEST(AggregateTest, FrequenciesAreMeans) {
  Schema s({Attribute::Integer("a", 0, 1), Attribute::Integer("b", 0, 1)});
  Dataset pool(s, {{1, 0}, {1, 1}, {0, 1}, {1, 0}});
  auto freqs = AggregateFrequencies(pool);
  ASSERT_EQ(freqs.size(), 2u);
  EXPECT_DOUBLE_EQ(freqs[0], 0.75);
  EXPECT_DOUBLE_EQ(freqs[1], 0.5);
}

TEST(AggregateTest, DpFrequenciesClampedAndNoisy) {
  Schema s({Attribute::Integer("a", 0, 1)});
  Dataset pool{s};
  for (int i = 0; i < 20; ++i) pool.Append({1});
  Rng rng(1);
  bool saw_below_one = false;
  for (int i = 0; i < 50; ++i) {
    auto freqs = DpAggregateFrequencies(pool, /*eps=*/0.5, rng);
    EXPECT_GE(freqs[0], 0.0);
    EXPECT_LE(freqs[0], 1.0);
    if (freqs[0] < 1.0) saw_below_one = true;
  }
  EXPECT_TRUE(saw_below_one);  // noise actually applied
}

TEST(StatisticTest, MemberPullsStatisticPositive) {
  // Pool frequencies identical to the target, references far away: the
  // statistic must be positive; reversed, negative.
  Record target = {1, 1, 0, 0};
  std::vector<double> pool = {0.9, 0.9, 0.1, 0.1};   // close to target
  std::vector<double> ref = {0.5, 0.5, 0.5, 0.5};    // far
  EXPECT_GT(MembershipStatistic(target, pool, ref), 0.0);
  EXPECT_LT(MembershipStatistic(target, ref, pool), 0.0);
}

TEST(ExperimentTest, ExactAggregatesLeakMembership) {
  // 500 attributes vs a pool of 40: the separation is far from the 0.95
  // assertion (AUC ~0.98 across seeds), so the test doesn't flap on the
  // seed. (At 300 attributes the true AUC sits almost exactly on 0.95.)
  Universe u = MakeGenotypeUniverse(500, /*freq_seed=*/42);
  MembershipOptions opts;
  opts.pool_size = 40;
  opts.trials = 150;
  MembershipResult r = RunMembershipExperiment(u, opts);
  // Homer et al.: many attributes vs a small pool => near-perfect
  // separation.
  EXPECT_GT(r.auc, 0.95);
  EXPECT_GT(r.advantage, 0.75);
  EXPECT_GT(r.mean_in, r.mean_out);
}

TEST(ExperimentTest, FewAttributesWeakAttack) {
  Universe u = MakeGenotypeUniverse(10, 43);
  MembershipOptions opts;
  opts.pool_size = 200;
  opts.trials = 150;
  MembershipResult r = RunMembershipExperiment(u, opts);
  EXPECT_LT(r.auc, 0.8);  // 10 attributes vs pool of 200: weak signal
}

TEST(ExperimentTest, DpAggregatesNeutralizeTheAttack) {
  Universe u = MakeGenotypeUniverse(300, 44);
  MembershipOptions exact;
  exact.pool_size = 40;
  exact.trials = 120;
  MembershipOptions dp = exact;
  dp.eps = 1.0;
  MembershipResult r_exact = RunMembershipExperiment(u, exact);
  MembershipResult r_dp = RunMembershipExperiment(u, dp);
  EXPECT_GT(r_exact.auc, r_dp.auc + 0.2);
  EXPECT_LT(r_dp.auc, 0.75);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  Universe u = MakeGenotypeUniverse(100, 45);
  MembershipOptions opts;
  opts.pool_size = 30;
  opts.trials = 50;
  MembershipResult a = RunMembershipExperiment(u, opts);
  MembershipResult b = RunMembershipExperiment(u, opts);
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
  EXPECT_DOUBLE_EQ(a.advantage, b.advantage);
}

}  // namespace
}  // namespace pso::membership
