// Binary LP-instance codec: round-trip property, every decoder
// rejection path, and the solver-facing build_status contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "proptest.h"
#include "solver/lp.h"
#include "solver/lp_io.h"

namespace pso {
namespace {

LpInstance SampleInstance() {
  LpInstance inst;
  inst.variables.push_back({0.0, 1.0, 2.0});
  inst.variables.push_back({-1.0, LpProblem::kInfinity, -0.5});
  LpInstance::Row row;
  row.coeffs = {{0, 1.0}, {1, 2.0}};
  row.rel = Relation::kGreaterEq;
  row.rhs = 0.5;
  inst.rows.push_back(row);
  return inst;
}

TEST(LpIoTest, EncodeDecodeRoundTripsSample) {
  LpInstance inst = SampleInstance();
  Result<LpInstance> again = DecodeLpInstance(EncodeLpInstance(inst));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->variables.size(), 2u);
  EXPECT_EQ(again->variables[1].lower, -1.0);
  EXPECT_TRUE(std::isinf(again->variables[1].upper));
  ASSERT_EQ(again->rows.size(), 1u);
  EXPECT_EQ(again->rows[0].rel, Relation::kGreaterEq);
  EXPECT_EQ(again->rows[0].coeffs, inst.rows[0].coeffs);
}

TEST(LpIoTest, DecodedInstanceSolves) {
  // min 2a - b/2  s.t.  a + 2b >= 1/2, a in [0,1], b in [-1, 2].
  LpInstance inst;
  inst.variables.push_back({0.0, 1.0, 2.0});
  inst.variables.push_back({-1.0, 2.0, -0.5});
  inst.rows.push_back({{{0, 1.0}, {1, 2.0}}, Relation::kGreaterEq, 0.5});
  Result<LpInstance> decoded = DecodeLpInstance(EncodeLpInstance(inst));
  ASSERT_TRUE(decoded.ok());
  LpProblem lp = decoded->ToProblem();
  EXPECT_TRUE(lp.build_status().ok());
  Result<LpSolution> sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 2.0 * 0.0 - 0.5 * 2.0, 1e-9);
}

TEST(LpIoTest, RejectsBadMagicAndTruncation) {
  std::string good = EncodeLpInstance(SampleInstance());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeLpInstance(bad_magic).ok());

  // Every proper prefix must be rejected as truncated, never crash.
  for (size_t len = 0; len < good.size(); ++len) {
    Result<LpInstance> r = DecodeLpInstance(good.substr(0, len));
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
  }

  std::string trailing = good + "junk";
  EXPECT_FALSE(DecodeLpInstance(trailing).ok());
}

TEST(LpIoTest, RejectsSemanticGarbage) {
  // NaN cost.
  LpInstance nan_cost = SampleInstance();
  nan_cost.variables[0].cost = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeLpInstance(EncodeLpInstance(nan_cost)).ok());

  // Empty bounds.
  LpInstance empty_bounds = SampleInstance();
  empty_bounds.variables[0].lower = 2.0;
  empty_bounds.variables[0].upper = 1.0;
  EXPECT_FALSE(DecodeLpInstance(EncodeLpInstance(empty_bounds)).ok());

  // Out-of-range coefficient index.
  LpInstance bad_index = SampleInstance();
  bad_index.rows[0].coeffs[0].first = 7;
  EXPECT_FALSE(DecodeLpInstance(EncodeLpInstance(bad_index)).ok());

  // Cap violation in the header.
  std::string oversized("PSOLP1", 6);
  uint32_t vars = kLpInstanceMaxVars + 1;
  uint32_t rows = 0;
  oversized.append(reinterpret_cast<const char*>(&vars), 4);
  oversized.append(reinterpret_cast<const char*>(&rows), 4);
  EXPECT_FALSE(DecodeLpInstance(oversized).ok());
}

TEST(LpIoTest, MalformedBuilderInputPoisonsSolveWithStatus) {
  LpProblem lp;
  lp.AddVariable(1.0, 0.0, 0.0);  // empty bounds
  EXPECT_FALSE(lp.build_status().ok());
  Result<LpSolution> sol = lp.Solve();
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);

  LpProblem lp2;
  size_t x = lp2.AddVariable(0.0, 1.0, 1.0);
  lp2.AddConstraint({{x + 5, 1.0}}, Relation::kLessEq, 1.0);  // unknown var
  EXPECT_FALSE(lp2.Solve().ok());
}

// Round-trip property on random well-formed instances (pinned seeds).
TEST(LpIoRoundTripTest, EncodeThenDecodeIsIdentity) {
  proptest::Config cfg{/*master_seed=*/0xabc123, /*iterations=*/150,
                       /*max_scale=*/8, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<LpInstance>(
      cfg,
      [](Rng& rng, size_t scale) {
        LpInstance inst;
        size_t n = 1 + static_cast<size_t>(rng.UniformUint64(2 * scale));
        for (size_t i = 0; i < n; ++i) {
          LpInstance::Variable v;
          v.lower = rng.UniformDouble() * 10 - 5;
          v.upper = rng.Bernoulli(0.2)
                        ? LpProblem::kInfinity
                        : v.lower + rng.UniformDouble() * 10;
          v.cost = rng.UniformDouble() * 4 - 2;
          inst.variables.push_back(v);
        }
        size_t m = static_cast<size_t>(rng.UniformUint64(scale + 1));
        for (size_t r = 0; r < m; ++r) {
          LpInstance::Row row;
          for (size_t i = 0; i < n; ++i) {
            if (rng.Bernoulli(0.5)) {
              row.coeffs.emplace_back(i, rng.UniformDouble() * 6 - 3);
            }
          }
          row.rel = static_cast<Relation>(rng.UniformUint64(3));
          row.rhs = rng.UniformDouble() * 8 - 4;
          inst.rows.push_back(std::move(row));
        }
        return inst;
      },
      [](const LpInstance& inst) -> std::string {
        Result<LpInstance> again = DecodeLpInstance(EncodeLpInstance(inst));
        if (!again.ok()) {
          return "round trip rejected: " + again.status().ToString();
        }
        if (again->variables.size() != inst.variables.size() ||
            again->rows.size() != inst.rows.size()) {
          return "round trip changed the shape";
        }
        for (size_t i = 0; i < inst.variables.size(); ++i) {
          if (std::memcmp(&again->variables[i], &inst.variables[i],
                          sizeof(LpInstance::Variable)) != 0) {
            return "round trip changed a variable";
          }
        }
        for (size_t r = 0; r < inst.rows.size(); ++r) {
          if (again->rows[r].rel != inst.rows[r].rel ||
              again->rows[r].rhs != inst.rows[r].rhs ||
              again->rows[r].coeffs != inst.rows[r].coeffs) {
            return "round trip changed a row";
          }
        }
        return "";
      }));
}

}  // namespace
}  // namespace pso
