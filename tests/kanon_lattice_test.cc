// Tests for the optimal full-domain lattice anonymizer, plus the
// l-diversity-enforcing Mondrian option.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "data/generators.h"
#include "kanon/checks.h"
#include "kanon/datafly.h"
#include "kanon/lattice.h"
#include "kanon/metrics.h"
#include "kanon/mondrian.h"

namespace pso::kanon {
namespace {

struct LatticeFixture {
  Universe universe = MakeGicMedicalUniverse(50);
  Dataset data;
  HierarchySet hierarchies;
  std::vector<size_t> qi = {0, 1, 3};  // zip, birth_year, sex

  explicit LatticeFixture(uint64_t seed, size_t n = 300)
      : data(Sample(universe, seed, n)),
        hierarchies(HierarchySet::Defaults(universe.schema)) {}

  static Dataset Sample(const Universe& u, uint64_t seed, size_t n) {
    Rng rng(seed);
    return u.distribution.SampleDataset(n, rng);
  }
};

TEST(LatticeTest, OutputIsKAnonymousAndMinimal) {
  LatticeFixture s(1);
  LatticeOptions opts;
  opts.k = 5;
  opts.qi_attrs = s.qi;
  auto result = OptimalFullDomainAnonymize(s.data, s.hierarchies, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->anonymization.generalized, 5, s.qi));
  EXPECT_GE(result->minimal_nodes, 1u);
  // Minimality: lowering any single chosen level breaks k-anonymity.
  for (size_t j = 0; j < s.qi.size(); ++j) {
    if (result->levels[j] == 0) continue;
    std::vector<size_t> lowered = result->levels;
    --lowered[j];
    // Re-check anonymity at the lowered vector.
    std::map<std::vector<std::pair<int64_t, int64_t>>, size_t> counts;
    for (const Record& r : s.data.records()) {
      std::vector<std::pair<int64_t, int64_t>> key;
      for (size_t jj = 0; jj < s.qi.size(); ++jj) {
        GenCell c = s.hierarchies.hierarchy(s.qi[jj]).Generalize(
            r[s.qi[jj]], lowered[jj]);
        key.emplace_back(c.lo, c.hi);
      }
      ++counts[std::move(key)];
    }
    bool anonymous = true;
    for (const auto& [key, count] : counts) {
      if (count < 5) {
        anonymous = false;
        break;
      }
    }
    EXPECT_FALSE(anonymous)
        << "level vector is not minimal in coordinate " << j;
  }
}

TEST(LatticeTest, NeverWorseThanDataflyWithoutSuppression) {
  LatticeFixture s(2);
  LatticeOptions lopts;
  lopts.k = 5;
  lopts.qi_attrs = s.qi;
  auto optimal = OptimalFullDomainAnonymize(s.data, s.hierarchies, lopts);
  ASSERT_TRUE(optimal.ok());

  DataflyOptions dopts;
  dopts.k = 5;
  dopts.qi_attrs = s.qi;
  dopts.max_suppression = 0.0;  // same feasible set as the lattice
  auto greedy = DataflyAnonymize(s.data, s.hierarchies, dopts);
  ASSERT_TRUE(greedy.ok());

  EXPECT_LE(
      GeneralizedInformationLoss(optimal->anonymization.generalized),
      GeneralizedInformationLoss(greedy->generalized) + 1e-12);
}

TEST(LatticeTest, CoversOriginals) {
  LatticeFixture s(3, 200);
  LatticeOptions opts;
  opts.k = 3;
  opts.qi_attrs = s.qi;
  auto result = OptimalFullDomainAnonymize(s.data, s.hierarchies, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < s.data.size(); ++i) {
    EXPECT_TRUE(result->anonymization.generalized.Covers(
        i, s.data.record(i)));
  }
}

TEST(LatticeTest, InfeasibleWhenKExceedsDuplication) {
  // 3 distinct records, k = 4, even "*" on the single QI cannot merge
  // fewer-than-k rows... it can (suppression merges all). So use k > n.
  LatticeFixture s(4, 3);
  LatticeOptions opts;
  opts.k = 4;
  opts.qi_attrs = s.qi;
  auto result = OptimalFullDomainAnonymize(s.data, s.hierarchies, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(LatticeTest, RejectsBadArguments) {
  LatticeFixture s(5, 50);
  LatticeOptions opts;
  opts.k = 5;
  opts.qi_attrs = {};
  EXPECT_FALSE(OptimalFullDomainAnonymize(s.data, s.hierarchies, opts).ok());
  opts.qi_attrs = {99};
  EXPECT_FALSE(OptimalFullDomainAnonymize(s.data, s.hierarchies, opts).ok());
}

TEST(MondrianLDiversityTest, EnforcedLeavesAreDiverse) {
  LatticeFixture s(6, 400);
  MondrianOptions opts;
  opts.k = 4;
  opts.qi_attrs = {0, 1, 2, 3};
  opts.l_diversity = 2;
  opts.sensitive_attr = 4;  // diagnosis
  auto result = MondrianAnonymize(s.data, s.hierarchies, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsLDiverse(s.data, result->classes, 4, 2));
  for (const auto& cls : result->classes) EXPECT_GE(cls.size(), 4u);
}

TEST(MondrianLDiversityTest, EnforcementCoarsensThePartition) {
  LatticeFixture s(7, 400);
  MondrianOptions plain;
  plain.k = 4;
  plain.qi_attrs = {0, 1, 2, 3};
  MondrianOptions diverse = plain;
  diverse.l_diversity = 3;
  diverse.sensitive_attr = 4;
  auto p = MondrianAnonymize(s.data, s.hierarchies, plain);
  auto d = MondrianAnonymize(s.data, s.hierarchies, diverse);
  ASSERT_TRUE(p.ok() && d.ok());
  EXPECT_LE(d->classes.size(), p->classes.size());
  EXPECT_TRUE(IsLDiverse(s.data, d->classes, 4, 3));
}

TEST(MondrianLDiversityTest, InfeasibleWhenDataNotDiverse) {
  // All records share one diagnosis value.
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(8);
  Dataset data{u.schema};
  for (int i = 0; i < 50; ++i) {
    Record r = u.distribution.Sample(rng);
    r[4] = 0;
    data.Append(r);
  }
  MondrianOptions opts;
  opts.k = 4;
  opts.qi_attrs = {0, 1};
  opts.l_diversity = 2;
  opts.sensitive_attr = 4;
  auto result =
      MondrianAnonymize(data, HierarchySet::Defaults(u.schema), opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace pso::kanon
