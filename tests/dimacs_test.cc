// DIMACS CNF parser: accepted dialect, every rejection path, and a
// randomized round-trip property (ToDimacs o ParseDimacsCnf = identity).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "proptest.h"
#include "solver/dimacs.h"

namespace pso {
namespace {

TEST(DimacsParseTest, ParsesSimpleFormula) {
  Result<DimacsCnf> r = ParseDimacsCnf(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 -1 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_vars, 3u);
  ASSERT_EQ(r->clauses.size(), 2u);
  EXPECT_EQ(r->clauses[0],
            (std::vector<Lit>{MakeLit(0, true), MakeLit(1, false)}));
  EXPECT_EQ(r->clauses[1], (std::vector<Lit>{MakeLit(1, true),
                                             MakeLit(2, true),
                                             MakeLit(0, false)}));
}

TEST(DimacsParseTest, ClausesMayWrapLinesAndCommentsMayInterleave) {
  Result<DimacsCnf> r = ParseDimacsCnf(
      "p cnf 2 1\n"
      "1\n"
      "c interleaved comment\n"
      "-2 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->clauses.size(), 1u);
  EXPECT_EQ(r->clauses[0],
            (std::vector<Lit>{MakeLit(0, true), MakeLit(1, false)}));
}

TEST(DimacsParseTest, EmptyFormulaAndEmptyClauseParse) {
  Result<DimacsCnf> empty = ParseDimacsCnf("p cnf 0 0\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_vars, 0u);
  EXPECT_TRUE(empty->clauses.empty());

  Result<DimacsCnf> empty_clause = ParseDimacsCnf("p cnf 1 1\n0\n");
  ASSERT_TRUE(empty_clause.ok());
  ASSERT_EQ(empty_clause->clauses.size(), 1u);
  EXPECT_TRUE(empty_clause->clauses[0].empty());
}

TEST(DimacsParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                          // no header
      "q cnf 1 1\n1 0\n",          // wrong leader
      "p dnf 1 1\n1 0\n",          // wrong format word
      "p cnf x 1\n1 0\n",          // junk variable count
      "p cnf 1 y\n1 0\n",          // junk clause count
      "p cnf -1 0\n",              // negative counts
      "p cnf 1 1\n2 0\n",          // literal out of range
      "p cnf 1 1\n1\n",            // missing 0 terminator
      "p cnf 1 2\n1 0\n",          // fewer clauses than declared
      "p cnf 1 1\n1 0\n-1 0\n",    // more clauses than declared
      "p cnf 1 1\n1 zz 0\n",       // junk literal token
      "p cnf 99999999999999 1\n",  // count overflows the cap
  };
  for (const char* text : bad) {
    Result<DimacsCnf> r = ParseDimacsCnf(text);
    EXPECT_FALSE(r.ok()) << "accepted malformed input: " << text;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(DimacsParseTest, Int64MinLiteralRejectedWithoutNegating) {
  // Regression: the token -9223372036854775808 parses to INT64_MIN, whose
  // negation overflows int64_t (UB). The parser must range-check the
  // literal against the declared variable count before forming |lit|.
  Result<DimacsCnf> r =
      ParseDimacsCnf("p cnf 3 1\n-9223372036854775808 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // The positive twin and both extreme in-range rejections stay errors.
  for (const char* text : {"p cnf 3 1\n9223372036854775807 0\n",
                           "p cnf 3 1\n-4 0\n", "p cnf 3 1\n4 0\n"}) {
    Result<DimacsCnf> bad = ParseDimacsCnf(text);
    EXPECT_FALSE(bad.ok()) << text;
  }
  // Negative literals at the declared bound still parse.
  Result<DimacsCnf> ok = ParseDimacsCnf("p cnf 3 1\n-3 0\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->clauses[0], (std::vector<Lit>{MakeLit(2, false)}));
}

TEST(DimacsParseTest, ParsedFormulaSolves) {
  Result<DimacsCnf> r = ParseDimacsCnf("p cnf 2 2\n1 2 0\n-1 0\n");
  ASSERT_TRUE(r.ok());
  SatSolver solver = BuildSatSolver(*r);
  Result<SatSolution> got = solver.Solve();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->satisfiable);
  EXPECT_FALSE(got->assignment[0]);
  EXPECT_TRUE(got->assignment[1]);
}

// Round-trip property: rendering and re-parsing any in-cap formula is
// the identity (pinned seeds; see proptest.h).
TEST(DimacsRoundTripTest, ToDimacsThenParseIsIdentity) {
  proptest::Config cfg{/*master_seed=*/0x99dd00ee, /*iterations=*/150,
                       /*max_scale=*/16, /*min_scale=*/1};
  EXPECT_TRUE(proptest::ForAll<DimacsCnf>(
      cfg,
      [](Rng& rng, size_t scale) {
        DimacsCnf cnf;
        cnf.num_vars =
            1 + static_cast<uint32_t>(rng.UniformUint64(4 * scale));
        size_t clauses = static_cast<size_t>(rng.UniformUint64(2 * scale));
        for (size_t c = 0; c < clauses; ++c) {
          size_t len = static_cast<size_t>(rng.UniformUint64(5));
          std::vector<Lit> clause;
          for (size_t k = 0; k < len; ++k) {
            clause.push_back(MakeLit(
                static_cast<uint32_t>(rng.UniformUint64(cnf.num_vars)),
                rng.Bernoulli(0.5)));
          }
          cnf.clauses.push_back(std::move(clause));
        }
        return cnf;
      },
      [](const DimacsCnf& cnf) -> std::string {
        Result<DimacsCnf> again = ParseDimacsCnf(ToDimacs(cnf));
        if (!again.ok()) {
          return "round trip failed to parse: " + again.status().ToString();
        }
        if (again->num_vars != cnf.num_vars ||
            again->clauses != cnf.clauses) {
          return "round trip changed the formula";
        }
        return "";
      }));
}

}  // namespace
}  // namespace pso
